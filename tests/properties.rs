//! Property-based integration tests: for arbitrary (valid) datatype shapes
//! and message counts, every scheme must deliver exactly the bytes the host
//! reference pack/unpack would, the simulation must be deterministic, and
//! basic performance invariants must hold.

use fusedpack::prelude::*;
use fusedpack_datatype::TypeDesc;
use fusedpack_mpi::NaiveFlavor;
use fusedpack_sim::Pcg32;
use proptest::prelude::*;
use std::sync::Arc;

/// A random but valid non-contiguous datatype of modest size.
fn arb_type() -> impl Strategy<Value = Arc<TypeDesc>> {
    prop_oneof![
        // Strided vector of doubles.
        (2u64..24, 1u64..8, 1u64..8).prop_map(|(count, blocklen, gap)| {
            TypeBuilder::vector(count, blocklen, blocklen + gap, TypeBuilder::double())
        }),
        // Sparse indexed floats.
        prop::collection::vec((1u64..5, 1u64..4), 2..40).prop_map(|raw| {
            let mut disp = 0;
            let blocks: Vec<(u64, u64)> = raw
                .into_iter()
                .map(|(gap, len)| {
                    let d = disp + gap;
                    disp = d + len;
                    (d, len)
                })
                .collect();
            TypeBuilder::indexed(&blocks, TypeBuilder::float())
        }),
        // 2-D subarray of ints.
        (3u64..10, 3u64..10).prop_flat_map(|(rows, cols)| {
            (1..rows, 1..cols).prop_map(move |(sr, sc)| {
                TypeBuilder::subarray(&[rows, cols], &[sr, sc], &[0, 0], TypeBuilder::int())
            })
        }),
    ]
}

fn arb_scheme() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::fusion_default()),
        Just(SchemeKind::GpuSync),
        Just(SchemeKind::GpuAsync),
        Just(SchemeKind::CpuGpuHybrid),
        Just(SchemeKind::Adaptive),
        Just(SchemeKind::NaiveCopy(NaiveFlavor::OpenMpi)),
        (1u64..2048).prop_map(|kb| SchemeKind::fusion_with_threshold(kb * 1024)),
    ]
}

/// Build a 2-rank exchange and verify rank 1 received rank 0's bytes.
fn exchange_preserves_bytes(
    scheme: SchemeKind,
    desc: Arc<TypeDesc>,
    count: u64,
    n_msgs: usize,
    platform: Platform,
) -> Result<(), TestCaseError> {
    let layout = Layout::of(&desc);
    let len = layout.footprint(count).max(1);

    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let sbufs: Vec<BufId> = (0..n_msgs)
            .map(|i| p.buffer(len, BufInit::Random(seed + i as u64)))
            .collect();
        let rbufs: Vec<BufId> = (0..n_msgs).map(|_| p.buffer(len, BufInit::Zero)).collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        for (i, &buf) in rbufs.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf,
                ty: TypeSlot(0),
                count,
                src: peer,
                tag: i as u32,
            });
        }
        for (i, &buf) in sbufs.iter().enumerate() {
            p.push(AppOp::Isend {
                buf,
                ty: TypeSlot(0),
                count,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        (p, rbufs)
    };

    let (p0, _) = build(50, RankId(1));
    let (p1, rbufs1) = build(150, RankId(0));
    let mut cluster = ClusterBuilder::new(platform, scheme)
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    cluster.run();

    for (i, &rbuf) in rbufs1.iter().enumerate() {
        let got = cluster.rank_buffer(RankId(1), rbuf);
        let mut want = vec![0u8; len as usize];
        Pcg32::new(50 + i as u64, 0).fill_bytes(&mut want);
        for (addr, seg_len) in layout.absolute_segments(0, count) {
            let (a, b) = (addr as usize, (addr + seg_len) as usize);
            prop_assert_eq!(&got[a..b], &want[a..b], "msg {} segment {}", i, addr);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any scheme, any layout, any message count: bytes arrive intact.
    #[test]
    fn any_scheme_any_layout_preserves_bytes(
        scheme in arb_scheme(),
        desc in arb_type(),
        count in 1u64..4,
        n_msgs in 1usize..6,
        lassen in any::<bool>(),
    ) {
        let platform = if lassen { Platform::lassen() } else { Platform::abci() };
        exchange_preserves_bytes(scheme, desc, count, n_msgs, platform)?;
    }

    /// The virtual clock is deterministic: identical runs give identical
    /// end times.
    #[test]
    fn simulation_is_deterministic(
        desc in arb_type(),
        count in 1u64..3,
        n_msgs in 1usize..5,
    ) {
        let run = || {
            let w = Workload {
                name: "prop",
                class: fusedpack::workloads::LayoutClass::Sparse,
                desc: desc.clone(),
                count,
            };
            run_exchange(&ExchangeConfig::new(
                Platform::lassen(),
                SchemeKind::fusion_default(),
                w,
                n_msgs,
            ))
            .latency
        };
        prop_assert_eq!(run(), run());
    }

    /// Latency is monotone (weakly) in the number of messages for the
    /// serial baselines.
    #[test]
    fn gpu_sync_latency_monotone_in_messages(
        desc in arb_type(),
        count in 1u64..3,
    ) {
        let w = Workload {
            name: "prop",
            class: fusedpack::workloads::LayoutClass::Sparse,
            desc,
            count,
        };
        let lat = |n: usize| {
            run_exchange(&ExchangeConfig::new(
                Platform::lassen(),
                SchemeKind::GpuSync,
                w.clone(),
                n,
            ))
            .latency
        };
        let l2 = lat(2);
        let l8 = lat(8);
        prop_assert!(l8 >= l2, "8 msgs {} < 2 msgs {}", l8, l2);
    }

    /// Bulk fusion never loses to GPU-Sync when there are many messages —
    /// the paper's core claim, across arbitrary layouts.
    #[test]
    fn fusion_never_loses_bulk(desc in arb_type(), count in 1u64..3) {
        let w = Workload {
            name: "prop",
            class: fusedpack::workloads::LayoutClass::Sparse,
            desc,
            count,
        };
        let f = run_exchange(&ExchangeConfig::new(
            Platform::lassen(), SchemeKind::fusion_default(), w.clone(), 16,
        )).latency;
        let s = run_exchange(&ExchangeConfig::new(
            Platform::lassen(), SchemeKind::GpuSync, w, 16,
        )).latency;
        prop_assert!(f <= s, "fusion {} vs gpu-sync {}", f, s);
    }
}
