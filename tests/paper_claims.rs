//! The paper's headline claims, as executable assertions against this
//! reproduction. Factors are *this model's* measured values (recorded in
//! EXPERIMENTS.md next to the paper's); the assertions pin the direction
//! and rough magnitude of every claim.

use fusedpack::prelude::*;
use fusedpack::workloads::{
    milc::milc_su3_zdown,
    nas::nas_mg_y,
    specfem::{specfem3d_cm, specfem3d_oc},
};
use fusedpack_mpi::NaiveFlavor;

fn lat(platform: &Platform, scheme: SchemeKind, w: &Workload, n: usize) -> Duration {
    run_exchange(&ExchangeConfig::new(platform.clone(), scheme, w.clone(), n)).latency
}

/// §V headline: "up to 8X ... for sparse ... compared to the
/// state-of-the-art approaches on the Lassen system".
#[test]
fn sparse_speedup_on_lassen_is_multi_x() {
    let platform = Platform::lassen();
    let mut best = 0.0f64;
    for pts in [512, 1024, 2048, 4096] {
        let w = specfem3d_cm(pts);
        let f = lat(&platform, SchemeKind::fusion_default(), &w, 16);
        for s in [
            SchemeKind::GpuSync,
            SchemeKind::GpuAsync,
            SchemeKind::CpuGpuHybrid,
        ] {
            let b = lat(&platform, s, &w, 16);
            best = best.max(b.as_nanos() as f64 / f.as_nanos() as f64);
        }
    }
    assert!(
        best > 3.5,
        "peak sparse speedup {best:.1}x should be multi-x (paper: up to 8x)"
    );
}

/// §V headline: "up to 19X improvement over existing approaches on the
/// ABCI system" — and strictly larger than the Lassen gain.
#[test]
fn abci_peak_speedup_exceeds_lassen() {
    // Compare against the kernel-driven baselines, which exist identically
    // on both platforms (the hybrid baseline's policy differs per platform
    // and would confound the comparison).
    let peak = |platform: &Platform| {
        let mut best = 0.0f64;
        for pts in [512u64, 1024, 2048] {
            let w = specfem3d_oc(pts);
            let f = lat(platform, SchemeKind::fusion_default(), &w, 16);
            for s in [SchemeKind::GpuSync, SchemeKind::GpuAsync] {
                let b = lat(platform, s, &w, 16);
                best = best.max(b.as_nanos() as f64 / f.as_nanos() as f64);
            }
        }
        best
    };
    let lassen = peak(&Platform::lassen());
    let abci = peak(&Platform::abci());
    assert!(abci > lassen, "ABCI {abci:.1}x vs Lassen {lassen:.1}x");
    assert!(abci > 4.0, "ABCI peak {abci:.1}x (paper: up to 19x)");
}

/// Abstract: "outperforms the production libraries ... by many orders of
/// magnitude" for sparse layouts.
#[test]
fn production_libraries_lose_by_orders_of_magnitude() {
    let platform = Platform::lassen();
    let w = specfem3d_cm(2048);
    let f = lat(&platform, SchemeKind::fusion_default(), &w, 16);
    for flavor in [NaiveFlavor::SpectrumMpi, NaiveFlavor::OpenMpi] {
        let naive = lat(&platform, SchemeKind::NaiveCopy(flavor), &w, 16);
        let speedup = naive.as_nanos() as f64 / f.as_nanos() as f64;
        assert!(
            speedup > 100.0,
            "{flavor:?}: {speedup:.0}x should be orders of magnitude"
        );
    }
}

/// §V-C: "Compared to the optimized scheme in MVAPICH2-GDR ... up to 8.8X
/// and 4.3X lower latency for sparse and dense layouts."
#[test]
fn beats_mvapich_gdr_on_both_layout_classes() {
    let platform = Platform::lassen();
    for (w, min_speedup) in [(specfem3d_cm(2048), 1.5), (nas_mg_y(128), 1.2)] {
        let f = lat(&platform, SchemeKind::fusion_default(), &w, 16);
        let m = lat(&platform, SchemeKind::Adaptive, &w, 16);
        let speedup = m.as_nanos() as f64 / f.as_nanos() as f64;
        assert!(
            speedup > min_speedup,
            "{}: {speedup:.1}x vs MVAPICH2-GDR",
            w.name
        );
    }
}

/// Fig. 10 discussion: GPU-Async "performs worse than GPU-Sync even if
/// there are multiple packing/unpacking operations" on Lassen, while on
/// ABCI's slower interconnect it can slightly win (Fig. 13 discussion).
#[test]
fn async_vs_sync_flips_between_platforms() {
    let dense_small = milc_su3_zdown(4);
    let lassen_sync = lat(&Platform::lassen(), SchemeKind::GpuSync, &dense_small, 16);
    let lassen_async = lat(&Platform::lassen(), SchemeKind::GpuAsync, &dense_small, 16);
    assert!(
        lassen_async.as_nanos() as f64 > 0.95 * lassen_sync.as_nanos() as f64,
        "Lassen: async {lassen_async} should not meaningfully beat sync {lassen_sync}"
    );

    let dense_large = nas_mg_y(384);
    let abci_sync = lat(&Platform::abci(), SchemeKind::GpuSync, &dense_large, 16);
    let abci_async = lat(&Platform::abci(), SchemeKind::GpuAsync, &dense_large, 16);
    assert!(
        abci_async < abci_sync,
        "ABCI dense: async {abci_async} should slightly beat sync {abci_sync}"
    );
}

/// Table I: the proposed design keeps overlap high — its observed
/// communication time should be mostly hidden relative to GPU-Sync's.
#[test]
fn proposed_hides_communication() {
    let platform = Platform::abci();
    let w = milc_su3_zdown(8);
    let cfg = |scheme| ExchangeConfig::new(platform.clone(), scheme, w.clone(), 16);
    let sync = run_exchange(&cfg(SchemeKind::GpuSync));
    let fused = run_exchange(&cfg(SchemeKind::fusion_default()));
    assert!(
        fused.breakdown.comm < sync.breakdown.comm,
        "proposed comm {:?} should be better hidden than GPU-Sync {:?}",
        fused.breakdown.comm,
        sync.breakdown.comm
    );
}

/// §IV-A2: "The scheduling overhead of the proposed scheduler has
/// insignificant overhead as low as 2us per message."
#[test]
fn scheduler_overhead_is_small() {
    let out = run_exchange(&ExchangeConfig::new(
        Platform::lassen(),
        SchemeKind::fusion_default(),
        specfem3d_cm(2000),
        16,
    ));
    // 64 requests scheduled per iteration (16 packs + 16 unpacks, 2 ranks).
    let per_msg = out.breakdown.scheduling.as_micros_f64() / 64.0;
    assert!((0.5..3.0).contains(&per_msg), "{per_msg:.2}us per message");
}

/// Fig. 2's three regimes, as end-to-end kernel counts: fusion launches a
/// handful of kernels where the baselines launch one per operation.
#[test]
fn kernel_launch_counts_match_design() {
    let platform = Platform::lassen();
    let w = specfem3d_cm(1000);
    let kernels = |scheme| {
        run_exchange(&ExchangeConfig::new(
            platform.clone(),
            scheme,
            w.clone(),
            16,
        ))
        .kernels
    };
    // 2 laps x 2 ranks x 32 ops.
    assert_eq!(kernels(SchemeKind::GpuSync), 128);
    assert_eq!(kernels(SchemeKind::GpuAsync), 128);
    assert!(kernels(SchemeKind::fusion_default()) <= 16);
}
