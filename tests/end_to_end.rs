//! Cross-crate integration tests at the facade level: multi-rank halo
//! exchanges with mixed intra-/inter-node paths, full data verification
//! against the host reference pack/unpack.

use fusedpack::prelude::*;
use fusedpack::workloads::{milc::milc_su3_zdown, nas::nas_mg_z, specfem::specfem3d_oc};
use fusedpack_mpi::NaiveFlavor;
use fusedpack_sim::Pcg32;

/// Ring halo exchange over `world` ranks spread over 2 nodes: each rank
/// sends one message to its right neighbor and receives one from its left.
fn ring_programs(world: u32, workload: &Workload) -> Vec<Program> {
    let len = workload.footprint().max(1);
    (0..world)
        .map(|rank| {
            let left = RankId((rank + world - 1) % world);
            let right = RankId((rank + 1) % world);
            let mut p = Program::new();
            let sbuf = p.buffer(len, BufInit::Random(7_000 + rank as u64));
            let rbuf = p.buffer(len, BufInit::Zero);
            p.push(AppOp::Commit {
                slot: TypeSlot(0),
                desc: workload.desc.clone(),
            });
            p.push(AppOp::Irecv {
                buf: rbuf,
                ty: TypeSlot(0),
                count: workload.count,
                src: left,
                tag: 9,
            });
            p.push(AppOp::Isend {
                buf: sbuf,
                ty: TypeSlot(0),
                count: workload.count,
                dst: right,
                tag: 9,
            });
            p.push(AppOp::Waitall);
            p
        })
        .collect()
}

fn expected_send_buffer(rank: u32, len: u64) -> Vec<u8> {
    let mut rng = Pcg32::new(7_000 + rank as u64, rank as u64);
    let mut bytes = vec![0u8; len as usize];
    rng.fill_bytes(&mut bytes);
    bytes
}

fn verify_ring(platform: Platform, scheme: SchemeKind, workload: &Workload) {
    let world = 4u32;
    let layout = Layout::of(&workload.desc);
    let len = workload.footprint().max(1);
    let mut builder = ClusterBuilder::new(platform, scheme);
    for (rank, program) in ring_programs(world, workload).into_iter().enumerate() {
        builder = builder.add_rank(rank as u32 / 2, program);
    }
    let mut cluster = builder.build();
    cluster.run();

    for rank in 0..world {
        let left = (rank + world - 1) % world;
        let got = cluster.rank_buffer(RankId(rank), BufId(1));
        let want = expected_send_buffer(left, len);
        for (addr, seg_len) in layout.absolute_segments(0, workload.count) {
            let (a, b) = (addr as usize, (addr + seg_len) as usize);
            assert_eq!(
                &got[a..b],
                &want[a..b],
                "rank {rank}: bytes from rank {left} corrupted at {addr}"
            );
        }
    }
}

#[test]
fn four_rank_ring_sparse_every_scheme() {
    for scheme in [
        SchemeKind::fusion_default(),
        SchemeKind::GpuSync,
        SchemeKind::GpuAsync,
        SchemeKind::CpuGpuHybrid,
        SchemeKind::Adaptive,
        SchemeKind::NaiveCopy(NaiveFlavor::OpenMpi),
    ] {
        verify_ring(Platform::lassen(), scheme, &specfem3d_oc(800));
    }
}

#[test]
fn four_rank_ring_dense_every_scheme_abci() {
    for scheme in [
        SchemeKind::fusion_default(),
        SchemeKind::GpuSync,
        SchemeKind::CpuGpuHybrid,
    ] {
        verify_ring(Platform::abci(), scheme, &milc_su3_zdown(6));
    }
}

#[test]
fn fine_grained_z_face_roundtrips() {
    // The pathological NAS z-face: n^2 single-double blocks.
    verify_ring(
        Platform::lassen(),
        SchemeKind::fusion_default(),
        &nas_mg_z(24),
    );
    verify_ring(Platform::lassen(), SchemeKind::GpuSync, &nas_mg_z(24));
}

#[test]
fn intra_node_neighbors_are_faster_than_inter_node() {
    // Ranks 0-1 share a node (NVLink); ranks 0-3 of a 4-ring cross nodes.
    let w = nas_mg_z(32);
    let len = w.footprint().max(1);
    let pair_latency = |same_node: bool| {
        let mut p0 = Program::new();
        let s = p0.buffer(len, BufInit::Random(1));
        let _r = p0.buffer(len, BufInit::Zero);
        p0.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: w.desc.clone(),
        });
        p0.push(AppOp::ResetTimer);
        p0.push(AppOp::Isend {
            buf: s,
            ty: TypeSlot(0),
            count: w.count,
            dst: RankId(1),
            tag: 0,
        });
        p0.push(AppOp::Waitall);
        p0.push(AppOp::RecordLap);

        let mut p1 = Program::new();
        let _s = p1.buffer(len, BufInit::Random(2));
        let r = p1.buffer(len, BufInit::Zero);
        p1.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: w.desc.clone(),
        });
        p1.push(AppOp::Irecv {
            buf: r,
            ty: TypeSlot(0),
            count: w.count,
            src: RankId(0),
            tag: 0,
        });
        p1.push(AppOp::Waitall);

        let node1 = if same_node { 0 } else { 1 };
        let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
            .add_rank(0, p0)
            .add_rank(node1, p1)
            .build();
        let report = cluster.run();
        report.end_time
    };
    let intra = pair_latency(true);
    let inter = pair_latency(false);
    assert!(
        intra < inter,
        "NVLink neighbor ({intra:?}) should beat IB neighbor ({inter:?})"
    );
}

#[test]
fn facade_prelude_compiles_and_runs() {
    let workload = fusedpack::workloads::specfem::specfem3d_cm(500);
    let out = run_exchange(&ExchangeConfig::new(
        Platform::lassen(),
        SchemeKind::fusion_default(),
        workload,
        4,
    ));
    assert!(out.latency > Duration::ZERO);
}
