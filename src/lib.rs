//! # fusedpack
//!
//! A from-scratch reproduction of **"Dynamic Kernel Fusion for Bulk
//! Non-contiguous Data Transfer on GPU Clusters"** (Chu, Shafie Khorassani,
//! Zhou, Subramoni, Panda — IEEE CLUSTER 2020) as a Rust workspace: the
//! fusion framework itself, every substrate it needs (a calibrated GPU
//! model, an MPI derived-datatype engine, interconnect models, a GPU-aware
//! MPI-like middleware), every baseline it is evaluated against, the
//! application workloads, and a harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`core`] — the paper's contribution: request list, fusion scheduler,
//!   threshold heuristics and model-based prediction (`fusedpack-core`);
//! * [`mpi`] — the communication middleware with the pluggable
//!   datatype-processing schemes (`fusedpack-mpi`);
//! * [`datatype`] — MPI derived datatypes, flattening, layout cache
//!   (`fusedpack-datatype`);
//! * [`gpu`] — the device model: kernels, streams, fused launches, GDRCopy
//!   (`fusedpack-gpu`);
//! * [`net`] — links, NICs, RDMA, and the Lassen/ABCI platforms
//!   (`fusedpack-net`);
//! * [`workloads`] — specfem3D / MILC / NAS_MG generators and the exchange
//!   driver (`fusedpack-workloads`);
//! * [`sim`] — the deterministic discrete-event engine (`fusedpack-sim`);
//! * [`telemetry`] — the typed event timeline, metrics aggregation, and
//!   Chrome-trace / Perfetto export (`fusedpack-telemetry`).
//!
//! ## Quickstart
//!
//! Run one bulk halo exchange under the proposed design and a baseline:
//!
//! ```
//! use fusedpack::prelude::*;
//!
//! let workload = fusedpack::workloads::specfem::specfem3d_cm(1000);
//! let fusion = run_exchange(&ExchangeConfig::new(
//!     Platform::lassen(), SchemeKind::fusion_default(), workload.clone(), 16,
//! ));
//! let sync = run_exchange(&ExchangeConfig::new(
//!     Platform::lassen(), SchemeKind::GpuSync, workload, 16,
//! ));
//! assert!(fusion.latency < sync.latency);
//! ```

pub use fusedpack_core as core;
pub use fusedpack_datatype as datatype;
pub use fusedpack_gpu as gpu;
pub use fusedpack_mpi as mpi;
pub use fusedpack_net as net;
pub use fusedpack_sim as sim;
pub use fusedpack_telemetry as telemetry;
pub use fusedpack_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use fusedpack_core::{FusionConfig, Scheduler};
    pub use fusedpack_datatype::{Layout, TypeBuilder};
    pub use fusedpack_gpu::DataMode;
    pub use fusedpack_mpi::{
        AppOp, BufId, BufInit, Cluster, ClusterBuilder, Program, RankId, SchemeKind, TypeSlot,
    };
    pub use fusedpack_net::Platform;
    pub use fusedpack_sim::{Duration, Time};
    pub use fusedpack_telemetry::Telemetry;
    pub use fusedpack_workloads::{
        run_exchange, run_exchange_traced, ExchangeConfig, ExchangeOutcome, Workload,
    };
}
