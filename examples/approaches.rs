//! The paper's §III analysis, live: the three ways to move non-contiguous
//! GPU data (MPI explicit pack, application-level kernels, MPI implicit
//! datatypes) measured against each other.
//!
//! ```text
//! cargo run --release --example approaches
//! ```

use fusedpack::prelude::*;
use fusedpack::workloads::approaches::{algorithm1_programs, algorithm2_programs};
use fusedpack::workloads::bulk::bulk_exchange_programs;
use fusedpack::workloads::specfem::specfem3d_cm;

fn run(p0: Program, p1: Program, scheme: SchemeKind) -> Duration {
    let mut cluster = ClusterBuilder::new(Platform::lassen(), scheme)
        .data_mode(DataMode::ModelOnly)
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    cluster.run().lap_makespan(0)
}

fn main() {
    let w = specfem3d_cm(2000);
    let n = 16;
    println!(
        "specfem3D_cm halo exchange, {n} buffers each way, two Lassen nodes\n\
         ({} blocks, {} KB packed per message)\n",
        w.blocks(),
        w.packed_bytes() / 1024
    );

    let (a1p0, a1p1, _) = algorithm1_programs(&w, n, 1);
    let (a2p0, a2p1, _) = algorithm2_programs(&w, n, 1);
    let ((i0, _), (i1, _)) = bulk_exchange_programs(&w, n, 1, 1);
    let ((f0, _), (f1, _)) = bulk_exchange_programs(&w, n, 1, 1);

    let rows = [
        (
            "Algorithm 1: MPI_Pack / MPI_Unpack (blocking)",
            run(a1p0, a1p1, SchemeKind::GpuSync),
        ),
        (
            "Algorithm 2: application kernels + one sync",
            run(a2p0, a2p1, SchemeKind::GpuSync),
        ),
        (
            "Algorithm 3: implicit DDTs, GPU-Sync runtime",
            run(i0, i1, SchemeKind::GpuSync),
        ),
        (
            "Algorithm 3: implicit DDTs, fusion runtime",
            run(f0, f1, SchemeKind::fusion_default()),
        ),
    ];
    let best = rows.iter().map(|&(_, l)| l).min().expect("rows");
    for (name, lat) in rows {
        println!(
            "{name:<48} {:>12}  {:>5.1}x",
            lat.to_string(),
            lat.as_nanos() as f64 / best.as_nanos() as f64
        );
    }
    println!(
        "\nThe paper's observation in numbers: hand-written application kernels\n\
         (Alg. 2) beat the blocking MPI interfaces, which is why applications\n\
         stopped using them — and dynamic kernel fusion makes the 10-line\n\
         implicit version (Alg. 3) the fastest of all."
    );
}
