//! Fusion-threshold tuning: sweep the Fig. 8 grid, compare the heuristic
//! optimum against the model-based prediction (the paper's future-work
//! extension implemented in `fusedpack-core`).
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use fusedpack::core::{predict_threshold, ThresholdTuner};
use fusedpack::prelude::*;
use fusedpack::workloads::{milc::milc_su3_zdown, nas::nas_mg_y, specfem::specfem3d_cm};

fn main() {
    let platform = Platform::lassen();
    let workloads = vec![specfem3d_cm(4096), milc_su3_zdown(12), nas_mg_y(192)];

    for w in workloads {
        let avg_block = w.packed_bytes() as f64 / w.blocks() as f64;
        println!(
            "== {} ({} KB packed, {} blocks, avg block {:.0} B)",
            w.name,
            w.packed_bytes() / 1024,
            w.blocks(),
            avg_block
        );

        let mut tuner = ThresholdTuner::new();
        println!("{:>10} {:>12}", "threshold", "latency");
        for threshold in ThresholdTuner::default_grid() {
            let out = run_exchange(&ExchangeConfig::new(
                platform.clone(),
                SchemeKind::fusion_with_threshold(threshold),
                w.clone(),
                32,
            ));
            tuner.record(threshold, out.latency);
            println!("{:>9}K {:>12}", threshold / 1024, out.latency.to_string());
        }

        let best = tuner.best().expect("grid swept");
        let predicted = predict_threshold(&platform.arch, avg_block);
        let lat_at = |t: u64| {
            run_exchange(&ExchangeConfig::new(
                platform.clone(),
                SchemeKind::fusion_with_threshold(t),
                w.clone(),
                32,
            ))
            .latency
        };
        let best_lat = lat_at(best);
        let pred_lat = lat_at(predicted);
        println!(
            "-> tuned: {}KB ({}), model-predicted: {}KB ({}, {:+.1}% vs tuned)\n",
            best / 1024,
            best_lat,
            predicted / 1024,
            pred_lat,
            (pred_lat.as_nanos() as f64 / best_lat.as_nanos() as f64 - 1.0) * 100.0
        );
    }
    println!(
        "The closed-form predictor inverts the kernel cost model: fuse enough\n\
         bytes that the fused kernel outlives one launch overhead (§IV-C)."
    );
}
