//! Record a typed event timeline of one fused bulk exchange and export it
//! as a Chrome Trace Event JSON you can load in Perfetto
//! (<https://ui.perfetto.dev>) or chrome://tracing — ranks appear as
//! processes, each GPU stream / the host / the NIC as a thread.
//!
//! ```text
//! cargo run --release --example trace_timeline [OUT.json]
//! ```

use fusedpack::prelude::*;
use fusedpack::telemetry::{chrome, reconcile, MetricsSummary};
use fusedpack::workloads::milc::milc_su3_zdown;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_timeline.json".to_string());

    // Same cell as the paper's Fig. 11: MILC su3_zdown, 16 transfers each
    // way, ABCI, the proposed fusion scheme.
    let telemetry = Telemetry::enabled();
    let cfg = ExchangeConfig::new(
        Platform::abci(),
        SchemeKind::fusion_default(),
        milc_su3_zdown(8),
        16,
    );
    let (outcome, breakdowns) = run_exchange_traced(&cfg, &telemetry);
    let snap = telemetry.snapshot();

    std::fs::write(&out_path, chrome::export(&snap)).expect("write trace");
    println!(
        "latency {}; recorded {} events -> {out_path}\n",
        outcome.latency,
        snap.events.len()
    );

    // Aggregate view: counters and histograms derived from the timeline.
    println!("{}", MetricsSummary::from_snapshot(&snap).render());

    // The timeline carries a `BucketCharge` span for every breakdown
    // mutation, so its per-bucket totals reproduce the Fig. 11 ledger
    // exactly — cross-check at zero tolerance.
    let external: Vec<(u32, [Duration; 5])> = breakdowns
        .iter()
        .enumerate()
        .map(|(r, b)| (r as u32, b.values()))
        .collect();
    println!("{}", reconcile(&snap, &external, Duration::ZERO).render());
}
