//! Quickstart: compare the proposed dynamic kernel fusion against every
//! baseline on one bulk halo exchange.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fusedpack::prelude::*;
use fusedpack::workloads::specfem::specfem3d_cm;
use fusedpack_mpi::NaiveFlavor;

fn main() {
    // A sparse specfem3D-style boundary: ~2000 scattered grid points, the
    // kind of layout that makes per-message kernel launches painful.
    let workload = specfem3d_cm(2000);
    println!(
        "workload: {} — {} blocks, {} KB packed per message",
        workload.name,
        workload.blocks(),
        workload.packed_bytes() / 1024
    );
    println!("pattern: 16 messages each way between two Lassen nodes\n");

    let schemes = vec![
        SchemeKind::fusion_default(),
        SchemeKind::GpuSync,
        SchemeKind::GpuAsync,
        SchemeKind::CpuGpuHybrid,
        SchemeKind::Adaptive,
        SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi),
    ];

    let mut results: Vec<(String, Duration, u64)> = Vec::new();
    for scheme in schemes {
        let label = scheme.label().to_string();
        let out = run_exchange(&ExchangeConfig::new(
            Platform::lassen(),
            scheme,
            workload.clone(),
            16,
        ));
        results.push((label, out.latency, out.kernels));
    }

    let best = results.iter().map(|&(_, l, _)| l).min().expect("non-empty");
    println!(
        "{:<16} {:>12} {:>10} {:>9}",
        "scheme", "latency", "kernels", "slowdown"
    );
    println!("{}", "-".repeat(50));
    for (label, latency, kernels) in &results {
        println!(
            "{:<16} {:>12} {:>10} {:>8.1}x",
            label,
            latency.to_string(),
            kernels,
            latency.as_nanos() as f64 / best.as_nanos() as f64
        );
    }
    println!(
        "\nThe proposed design fuses all pack/unpack kernels per iteration into a\n\
         handful of launches; the production-library path pays one staged copy\n\
         per contiguous block and is orders of magnitude slower."
    );
}
