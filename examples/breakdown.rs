//! Where does the time go? Fig. 11-style cost breakdown of each GPU-driven
//! design on both platforms.
//!
//! ```text
//! cargo run --release --example breakdown
//! ```

use fusedpack::mpi::Breakdown;
use fusedpack::prelude::*;
use fusedpack::workloads::milc::milc_su3_zdown;

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled),
        ".".repeat(width.saturating_sub(filled))
    )
}

fn main() {
    for platform in [Platform::lassen(), Platform::abci()] {
        println!("== {} — MILC, 16 transfers each way ==\n", platform.name);
        for scheme in [
            SchemeKind::GpuSync,
            SchemeKind::GpuAsync,
            SchemeKind::fusion_default(),
        ] {
            let label = scheme.label();
            let out = run_exchange(&ExchangeConfig::new(
                platform.clone(),
                scheme,
                milc_su3_zdown(8),
                16,
            ));
            let b = out.breakdown;
            println!("{label}  (total component cost {})", b.total());
            for (name, value, frac) in Breakdown::LABELS
                .iter()
                .zip(b.values())
                .zip(b.fractions())
                .map(|((n, v), f)| (n, v, f))
            {
                println!("  {name:<12} {} {:>10}", bar(frac, 30), value.to_string());
            }
            println!();
        }
    }
    println!(
        "GPU-Sync burns its time in Launching + Sync.; GPU-Async trades sync\n\
         for event scheduling; the proposed design's bars collapse to the\n\
         ~2us/message scheduler cost plus the (shared) fused kernels."
    );
}
