//! A 3-D domain-decomposition halo exchange on four GPUs across two nodes
//! (2 GPUs per node), in the style of LLNL Comb \[33\]: each rank exchanges
//! x-, y- and z-faces with its ring neighbors, mixing intra-node (NVLink)
//! and inter-node (InfiniBand) paths — the paper's §II-B motivation.
//!
//! ```text
//! cargo run --release --example halo3d [grid_extent]
//! ```

use fusedpack::prelude::*;
use fusedpack::workloads::nas::{nas_mg_x, nas_mg_y, nas_mg_z};
use fusedpack_mpi::program::BufInit;

/// Build the per-rank program: exchange all three faces with both ring
/// neighbors, twice (warm-up + measured lap).
fn rank_program(rank: u32, world: u32, n: u64) -> Program {
    let faces = [nas_mg_x(n), nas_mg_y(n), nas_mg_z(n)];
    let left = RankId((rank + world - 1) % world);
    let right = RankId((rank + 1) % world);

    let mut p = Program::new();
    let mut send_bufs = Vec::new();
    let mut recv_bufs = Vec::new();
    for (f, face) in faces.iter().enumerate() {
        let len = face.footprint().max(1);
        // One send + one recv buffer per face per neighbor.
        for nb in 0..2u64 {
            send_bufs.push(p.buffer(
                len,
                BufInit::Random(1000 + rank as u64 * 10 + f as u64 * 2 + nb),
            ));
            recv_bufs.push(p.buffer(len, BufInit::Zero));
        }
    }
    for (f, face) in faces.iter().enumerate() {
        p.push(AppOp::Commit {
            slot: TypeSlot(f),
            desc: face.desc.clone(),
        });
    }
    for lap in 0..2 {
        let _ = lap;
        p.push(AppOp::ResetTimer);
        for (f, face) in faces.iter().enumerate() {
            for (nb, &peer) in [left, right].iter().enumerate() {
                p.push(AppOp::Irecv {
                    buf: recv_bufs[f * 2 + nb],
                    ty: TypeSlot(f),
                    count: face.count,
                    src: peer,
                    tag: (f * 2 + nb) as u32,
                });
            }
        }
        for (f, face) in faces.iter().enumerate() {
            for (nb, &peer) in [right, left].iter().enumerate() {
                p.push(AppOp::Isend {
                    buf: send_bufs[f * 2 + nb],
                    ty: TypeSlot(f),
                    count: face.count,
                    dst: peer,
                    // Match the neighbor's receive tags: our send to the
                    // right lands in their "from left" slot (nb 0).
                    tag: (f * 2 + nb) as u32,
                });
            }
        }
        p.push(AppOp::Waitall);
        p.push(AppOp::RecordLap);
    }
    p
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let world = 4u32;
    println!("3-D halo exchange: {world} ranks on 2 nodes, {n}^3 grid per rank");
    println!("faces: x (contiguous), y (vector), z (fine-grained vector)\n");

    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "scheme", "cold lap", "warm lap", "kernels"
    );
    println!("{}", "-".repeat(53));
    for scheme in [
        SchemeKind::fusion_default(),
        SchemeKind::GpuSync,
        SchemeKind::GpuAsync,
        SchemeKind::CpuGpuHybrid,
    ] {
        let label = scheme.label();
        let mut builder =
            ClusterBuilder::new(Platform::lassen(), scheme).data_mode(DataMode::ModelOnly);
        for rank in 0..world {
            // Ranks 0,1 on node 0; ranks 2,3 on node 1.
            builder = builder.add_rank(rank / 2, rank_program(rank, world, n));
        }
        let report = builder.build().run();
        println!(
            "{:<16} {:>12} {:>12} {:>9}",
            label,
            report.lap_makespan(0).to_string(),
            report.lap_makespan(1).to_string(),
            report.kernels_launched.iter().sum::<u64>()
        );
    }
    println!(
        "\nNeighbor pairs on the same node ride NVLink; cross-node pairs ride\n\
         InfiniBand with GPUDirect. The fused design amortizes one launch over\n\
         all six face transfers per rank."
    );
}
