//! The recorder and the cheap, cloneable [`Telemetry`] handle.

use crate::event::{CounterSample, Event, Lane, Payload, SpanId};
use fusedpack_sim::Time;
use std::sync::{Arc, Mutex};

/// Collected timeline state. Owned behind the [`Telemetry`] handle; use
/// [`Telemetry::snapshot`] to extract it for export.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<Event>,
    counters: Vec<CounterSample>,
    /// Open spans: (id, index into `events`). Spans are recorded at open
    /// time with `dur == None` and patched on close.
    open: Vec<(SpanId, usize)>,
    next_span: u64,
    /// Events discarded because the capacity cap was hit.
    dropped: u64,
    capacity: Option<usize>,
}

impl Recorder {
    fn has_room(&mut self) -> bool {
        match self.capacity {
            Some(cap) if self.events.len() >= cap => {
                self.dropped += 1;
                false
            }
            _ => true,
        }
    }
}

/// Everything a run recorded, detached from the live recorder.
#[derive(Debug, Clone, Default)]
pub struct TimelineSnapshot {
    pub events: Vec<Event>,
    pub counters: Vec<CounterSample>,
    pub dropped: u64,
    /// Spans opened but never closed (should be 0 after a clean run).
    pub unclosed_spans: usize,
}

/// Handle used by instrumented code. Cloning is cheap (an `Option<Arc>`
/// plus a rank tag); a disabled handle costs one branch per call and never
/// evaluates payload closures.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Recorder>>>,
    rank: u32,
}

impl Telemetry {
    /// A no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A live unbounded recorder (rank 0 until re-scoped).
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Recorder::default()))),
            rank: 0,
        }
    }

    /// A live recorder that keeps at most `cap` events and counts drops.
    pub fn with_capacity(cap: usize) -> Self {
        let t = Telemetry::enabled();
        if let Some(r) = &t.inner {
            r.lock().expect("telemetry lock").capacity = Some(cap);
        }
        t
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle that shares this recorder but tags events with `rank`.
    pub fn for_rank(&self, rank: u32) -> Self {
        Telemetry {
            inner: self.inner.clone(),
            rank,
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Record an instantaneous event. `payload` is only evaluated when
    /// the recorder is live.
    pub fn instant(&self, lane: Lane, at: Time, payload: impl FnOnce() -> Payload) {
        if let Some(inner) = &self.inner {
            let mut r = inner.lock().expect("telemetry lock");
            if r.has_room() {
                let ev = Event {
                    rank: self.rank,
                    lane,
                    start: at,
                    dur: None,
                    payload: payload(),
                };
                r.events.push(ev);
            }
        }
    }

    /// Record a complete span `[start, end]` in one call. Most simulation
    /// code knows both endpoints when it models an operation, so this is
    /// the common span API. `end < start` is clamped to an empty span.
    pub fn span(&self, lane: Lane, start: Time, end: Time, payload: impl FnOnce() -> Payload) {
        if let Some(inner) = &self.inner {
            let mut r = inner.lock().expect("telemetry lock");
            if r.has_room() {
                let ev = Event {
                    rank: self.rank,
                    lane,
                    start,
                    dur: Some(end.since(start)),
                    payload: payload(),
                };
                r.events.push(ev);
            }
        }
    }

    /// Open a span whose end is not yet known (e.g. entering a blocking
    /// wait). Returns `None` when disabled; pass the result to [`close`].
    ///
    /// [`close`]: Telemetry::close
    pub fn open(&self, lane: Lane, at: Time, payload: impl FnOnce() -> Payload) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let mut r = inner.lock().expect("telemetry lock");
        if !r.has_room() {
            return None;
        }
        let id = SpanId(r.next_span);
        r.next_span += 1;
        let idx = r.events.len();
        let ev = Event {
            rank: self.rank,
            lane,
            start: at,
            dur: None,
            payload: payload(),
        };
        r.events.push(ev);
        r.open.push((id, idx));
        Some(id)
    }

    /// Close a span returned by [`open`]; a `None` id (disabled recorder)
    /// is a no-op.
    ///
    /// [`open`]: Telemetry::open
    pub fn close(&self, id: Option<SpanId>, at: Time) {
        let (Some(inner), Some(id)) = (&self.inner, id) else {
            return;
        };
        let mut r = inner.lock().expect("telemetry lock");
        if let Some(pos) = r.open.iter().position(|(sid, _)| *sid == id) {
            let (_, idx) = r.open.swap_remove(pos);
            let start = r.events[idx].start;
            r.events[idx].dur = Some(at.since(start));
        }
    }

    /// Sample a counter track (rendered as a Perfetto counter lane).
    pub fn counter(&self, at: Time, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut r = inner.lock().expect("telemetry lock");
            let rank = self.rank;
            r.counters.push(CounterSample {
                rank,
                at,
                name,
                value,
            });
        }
    }

    /// Clone out everything recorded so far.
    pub fn snapshot(&self) -> TimelineSnapshot {
        match &self.inner {
            None => TimelineSnapshot::default(),
            Some(inner) => {
                let r = inner.lock().expect("telemetry lock");
                TimelineSnapshot {
                    events: r.events.clone(),
                    counters: r.counters.clone(),
                    dropped: r.dropped,
                    unclosed_spans: r.open.len(),
                }
            }
        }
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |r| r.lock().expect("telemetry lock").events.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Bucket;
    use fusedpack_sim::Duration;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.instant(Lane::Host, Time(5), || Payload::Marker { label: "x" });
        t.span(Lane::Host, Time(5), Time(9), || Payload::Marker {
            label: "y",
        });
        let id = t.open(Lane::Host, Time(5), || Payload::Marker { label: "z" });
        assert!(id.is_none());
        t.close(id, Time(7));
        t.counter(Time(5), "ring", 1.0);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert!(t.snapshot().events.is_empty());
    }

    /// The acceptance-criteria branch-count assertion: a disabled recorder
    /// must never evaluate the payload closure, so the only cost of an
    /// instrumentation point is the `Option` branch itself.
    #[test]
    fn disabled_recorder_never_evaluates_payloads() {
        let t = Telemetry::disabled();
        t.instant(Lane::Host, Time(0), || {
            panic!("payload closure evaluated on a disabled recorder")
        });
        t.span(Lane::Nic, Time(0), Time(1), || {
            panic!("payload closure evaluated on a disabled recorder")
        });
        let id = t.open(Lane::Stream(0), Time(0), || {
            panic!("payload closure evaluated on a disabled recorder")
        });
        assert!(id.is_none());
    }

    #[test]
    fn open_close_patches_duration() {
        let t = Telemetry::enabled();
        let id = t.open(Lane::Host, Time(10), || Payload::SyncWait {
            kind: crate::event::WaitKindTag::Network,
        });
        assert!(id.is_some());
        t.close(id, Time(25));
        let snap = t.snapshot();
        assert_eq!(snap.unclosed_spans, 0);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].dur, Some(Duration(15)));
        assert_eq!(snap.events[0].end(), Time(25));
    }

    #[test]
    fn rank_scoping_tags_events() {
        let root = Telemetry::enabled();
        let r0 = root.for_rank(0);
        let r1 = root.for_rank(1);
        r0.instant(Lane::Host, Time(1), || Payload::Marker { label: "a" });
        r1.instant(Lane::Host, Time(2), || Payload::Marker { label: "b" });
        let snap = root.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].rank, 0);
        assert_eq!(snap.events[1].rank, 1);
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let t = Telemetry::with_capacity(2);
        for i in 0..5 {
            t.instant(Lane::Host, Time(i), || Payload::BucketCharge {
                bucket: Bucket::Pack,
                label: "p",
            });
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 3);
    }
}
