//! Cross-check between the telemetry timeline and an independent
//! per-bucket accounting (the mpi crate's Fig. 11 `Breakdown`).
//!
//! Instrumented code emits a [`Payload::BucketCharge`] span for every
//! charge it adds to a breakdown bucket; summing those spans per rank must
//! reproduce the breakdown exactly (both systems use integer nanoseconds),
//! so any drift indicates a missed or double-counted charge.

use crate::event::{Bucket, Payload};
use crate::recorder::TimelineSnapshot;
use fusedpack_sim::Duration;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rank, per-bucket durations summed from `BucketCharge` spans.
pub fn bucket_totals(snap: &TimelineSnapshot) -> BTreeMap<u32, [Duration; 5]> {
    let mut totals: BTreeMap<u32, [Duration; 5]> = BTreeMap::new();
    for e in &snap.events {
        if let Payload::BucketCharge { bucket, .. } = e.payload {
            let row = totals.entry(e.rank).or_insert([Duration::ZERO; 5]);
            row[bucket.index()] += e.dur.unwrap_or(Duration::ZERO);
        }
    }
    totals
}

/// One rank's comparison between telemetry and external accounting.
#[derive(Debug, Clone)]
pub struct RankDelta {
    pub rank: u32,
    pub telemetry: [Duration; 5],
    pub external: [Duration; 5],
}

impl RankDelta {
    pub fn worst_delta(&self) -> Duration {
        let mut worst = Duration::ZERO;
        for i in 0..5 {
            let (a, b) = (self.telemetry[i], self.external[i]);
            let d = if a >= b { a - b } else { b - a };
            worst = worst.max(d);
        }
        worst
    }
}

/// Outcome of [`reconcile`].
#[derive(Debug, Clone)]
pub struct ReconcileReport {
    pub ranks: Vec<RankDelta>,
    pub tolerance: Duration,
}

impl ReconcileReport {
    pub fn is_ok(&self) -> bool {
        self.ranks.iter().all(|r| r.worst_delta() <= self.tolerance)
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## breakdown reconciliation (telemetry vs mpi::breakdown, tolerance {} ns)",
            self.tolerance.as_nanos()
        );
        for r in &self.ranks {
            let status = if r.worst_delta() <= self.tolerance {
                "ok"
            } else {
                "MISMATCH"
            };
            let _ = writeln!(out, "  rank {}: {status}", r.rank);
            for (i, b) in Bucket::ALL.iter().enumerate() {
                let (t, x) = (r.telemetry[i], r.external[i]);
                let marker = if t == x { "" } else { "  <-- differs" };
                let _ = writeln!(
                    out,
                    "    {:<10} telemetry {:>12} ns   breakdown {:>12} ns{marker}",
                    b.label(),
                    t.as_nanos(),
                    x.as_nanos()
                );
            }
        }
        out
    }
}

/// Compare telemetry-derived bucket totals against external per-rank
/// totals (ordered `[pack, launch, scheduling, sync, comm]`, matching
/// [`Bucket::index`]). Every rank present in either side is compared.
pub fn reconcile(
    snap: &TimelineSnapshot,
    external: &[(u32, [Duration; 5])],
    tolerance: Duration,
) -> ReconcileReport {
    let telemetry = bucket_totals(snap);
    let mut ranks: Vec<u32> = telemetry.keys().copied().collect();
    for (r, _) in external {
        if !ranks.contains(r) {
            ranks.push(*r);
        }
    }
    ranks.sort_unstable();
    let deltas = ranks
        .into_iter()
        .map(|rank| RankDelta {
            rank,
            telemetry: telemetry.get(&rank).copied().unwrap_or([Duration::ZERO; 5]),
            external: external
                .iter()
                .find(|(r, _)| *r == rank)
                .map(|(_, v)| *v)
                .unwrap_or([Duration::ZERO; 5]),
        })
        .collect();
    ReconcileReport {
        ranks: deltas,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Lane;
    use crate::recorder::Telemetry;
    use fusedpack_sim::Time;

    #[test]
    fn matching_totals_reconcile() {
        let root = Telemetry::enabled();
        let r0 = root.for_rank(0);
        r0.span(Lane::Host, Time(0), Time(100), || Payload::BucketCharge {
            bucket: Bucket::Launch,
            label: "launch",
        });
        r0.span(Lane::Host, Time(100), Time(150), || Payload::BucketCharge {
            bucket: Bucket::Sync,
            label: "wait",
        });
        let external = [(
            0u32,
            [
                Duration::ZERO,
                Duration(100),
                Duration::ZERO,
                Duration(50),
                Duration::ZERO,
            ],
        )];
        let report = reconcile(&root.snapshot(), &external, Duration::ZERO);
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn drift_is_detected_and_rendered() {
        let root = Telemetry::enabled();
        root.for_rank(0)
            .span(Lane::Host, Time(0), Time(80), || Payload::BucketCharge {
                bucket: Bucket::Pack,
                label: "pack",
            });
        let external = [(
            0u32,
            [
                Duration(100),
                Duration::ZERO,
                Duration::ZERO,
                Duration::ZERO,
                Duration::ZERO,
            ],
        )];
        let report = reconcile(&root.snapshot(), &external, Duration(5));
        assert!(!report.is_ok());
        assert_eq!(report.ranks[0].worst_delta(), Duration(20));
        assert!(report.render().contains("MISMATCH"));
    }
}
