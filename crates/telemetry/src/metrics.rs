//! Aggregation layer: counters and histograms derived from a timeline,
//! rendered as aligned text or CSV.

use crate::event::{FlushReasonTag, Payload};
use crate::recorder::TimelineSnapshot;
use std::fmt::Write as _;

/// A power-of-two-bucketed histogram of `u64` samples with exact count /
/// sum / min / max. Good enough for requests-per-launch and bytes-per-flush
/// distributions without keeping every sample.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub name: &'static str,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts samples with `ilog2(sample.max(1)) == i`.
    buckets: [u64; 64],
}

impl Histogram {
    pub fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }

    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        self.buckets[sample.max(1).ilog2() as usize] += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate median: the upper edge of the bucket containing the
    /// middle sample.
    pub fn approx_p50(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen * 2 >= self.count {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.name.to_string(),
            self.count.to_string(),
            self.min().to_string(),
            format!("{:.1}", self.mean()),
            format!("<={}", self.approx_p50()),
            self.max.to_string(),
        ]
    }
}

/// Everything the metrics exporter reports for one run.
#[derive(Debug, Clone)]
pub struct MetricsSummary {
    pub events: u64,
    pub dropped: u64,
    pub kernels: u64,
    pub fused_launches: u64,
    pub requests_fused: u64,
    pub bytes_fused: u64,
    pub enqueues: u64,
    pub rejected: u64,
    pub queries: u64,
    pub flushes_sync: u64,
    pub flushes_threshold: u64,
    pub flushes_pressure: u64,
    pub requests_per_launch: Histogram,
    pub bytes_per_flush: Histogram,
    pub ring_occupancy: Histogram,
    pub wire_bytes: u64,
}

impl MetricsSummary {
    pub fn from_snapshot(snap: &TimelineSnapshot) -> Self {
        let mut m = MetricsSummary {
            events: snap.events.len() as u64,
            dropped: snap.dropped,
            kernels: 0,
            fused_launches: 0,
            requests_fused: 0,
            bytes_fused: 0,
            enqueues: 0,
            rejected: 0,
            queries: 0,
            flushes_sync: 0,
            flushes_threshold: 0,
            flushes_pressure: 0,
            requests_per_launch: Histogram::new("requests/fused-launch"),
            bytes_per_flush: Histogram::new("bytes/flush"),
            ring_occupancy: Histogram::new("ring occupancy"),
            wire_bytes: 0,
        };
        for e in &snap.events {
            match e.payload {
                Payload::KernelExec { .. } => m.kernels += 1,
                Payload::FusedExec {
                    requests, bytes, ..
                } => {
                    m.fused_launches += 1;
                    m.requests_fused += requests as u64;
                    m.bytes_fused += bytes;
                    m.requests_per_launch.record(requests as u64);
                    m.bytes_per_flush.record(bytes);
                }
                Payload::Enqueue { .. } => m.enqueues += 1,
                Payload::EnqueueRejected { .. } => m.rejected += 1,
                Payload::Query { .. } => m.queries += 1,
                Payload::FlushDecision { reason, .. } => match reason {
                    FlushReasonTag::SyncPoint => m.flushes_sync += 1,
                    FlushReasonTag::ThresholdReached => m.flushes_threshold += 1,
                    FlushReasonTag::RingPressure => m.flushes_pressure += 1,
                },
                Payload::WireTransfer { bytes, .. } => m.wire_bytes += bytes,
                _ => {}
            }
        }
        for c in &snap.counters {
            if c.name == "ring_occupancy" {
                m.ring_occupancy.record(c.value.max(0.0) as u64);
            }
        }
        m
    }

    /// Mean requests per fused launch (the paper's fusion degree).
    pub fn fusion_degree(&self) -> f64 {
        self.requests_per_launch.mean()
    }

    /// Aligned plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## telemetry metrics");
        let counters: [(&str, u64); 12] = [
            ("events", self.events),
            ("events dropped", self.dropped),
            ("single kernels", self.kernels),
            ("fused launches", self.fused_launches),
            ("requests fused", self.requests_fused),
            ("bytes fused", self.bytes_fused),
            ("enqueues", self.enqueues),
            ("enqueue rejections", self.rejected),
            ("completion queries", self.queries),
            ("flushes: sync-point", self.flushes_sync),
            ("flushes: threshold", self.flushes_threshold),
            ("flushes: ring-pressure", self.flushes_pressure),
        ];
        let w = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<w$}  {v}");
        }
        let _ = writeln!(out);
        let headers = ["histogram", "count", "min", "mean", "~p50", "max"];
        let rows: Vec<Vec<String>> = [
            &self.requests_per_launch,
            &self.bytes_per_flush,
            &self.ring_occupancy,
        ]
        .iter()
        .map(|h| h.row())
        .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "  {}", line(&hdr));
        for row in &rows {
            let _ = writeln!(out, "  {}", line(row));
        }
        out
    }

    /// CSV rendering: one `metric,value` pair per line, then histogram
    /// rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,count,min,mean,p50,max\n");
        let scalar = |name: &str, v: u64| format!("{name},{v},,,,\n");
        out.push_str(&scalar("events", self.events));
        out.push_str(&scalar("events_dropped", self.dropped));
        out.push_str(&scalar("single_kernels", self.kernels));
        out.push_str(&scalar("fused_launches", self.fused_launches));
        out.push_str(&scalar("requests_fused", self.requests_fused));
        out.push_str(&scalar("bytes_fused", self.bytes_fused));
        out.push_str(&scalar("enqueues", self.enqueues));
        out.push_str(&scalar("enqueue_rejections", self.rejected));
        out.push_str(&scalar("completion_queries", self.queries));
        out.push_str(&scalar("flushes_sync", self.flushes_sync));
        out.push_str(&scalar("flushes_threshold", self.flushes_threshold));
        out.push_str(&scalar("flushes_pressure", self.flushes_pressure));
        out.push_str(&scalar("wire_bytes", self.wire_bytes));
        for h in [
            &self.requests_per_launch,
            &self.bytes_per_flush,
            &self.ring_occupancy,
        ] {
            let _ = writeln!(
                out,
                "{},{},{},{:.2},{},{}",
                h.name.replace([' ', '/'], "_"),
                h.count(),
                h.min(),
                h.mean(),
                h.approx_p50(),
                h.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Bucket, FlushReasonTag, Lane};
    use crate::recorder::Telemetry;
    use fusedpack_sim::Time;

    #[test]
    fn histogram_tracks_moments() {
        let mut h = Histogram::new("t");
        for s in [1u64, 2, 3, 4, 100] {
            h.record(s);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        assert!(h.approx_p50() <= 8);
    }

    #[test]
    fn summary_counts_fused_launches() {
        let t = Telemetry::enabled();
        for i in 0..3u64 {
            t.span(Lane::Stream(0), Time(i * 10), Time(i * 10 + 5), || {
                Payload::FusedExec {
                    requests: 4,
                    bytes: 1024,
                    reason: FlushReasonTag::ThresholdReached,
                }
            });
            t.instant(Lane::Host, Time(i * 10), || Payload::FlushDecision {
                reason: FlushReasonTag::ThresholdReached,
                requests: 4,
                bytes: 1024,
            });
        }
        t.instant(Lane::Host, Time(50), || Payload::BucketCharge {
            bucket: Bucket::Launch,
            label: "launch",
        });
        let m = MetricsSummary::from_snapshot(&t.snapshot());
        assert_eq!(m.fused_launches, 3);
        assert_eq!(m.requests_fused, 12);
        assert_eq!(m.flushes_threshold, 3);
        assert!((m.fusion_degree() - 4.0).abs() < 1e-9);
        assert!(m.render().contains("fused launches"));
        assert!(m.to_csv().contains("requests_fused,12"));
    }
}
