//! The typed event model: lanes, payloads, spans, instants, counters.

use fusedpack_sim::{Duration, FaultSite, Time};

/// Where an event happened within a rank; rendered as a Perfetto thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Host CPU (MPI library + scheduler code).
    Host,
    /// The NIC / wire.
    Nic,
    /// A GPU stream.
    Stream(u32),
    /// Accounting records ([`Payload::BucketCharge`]): durations charged to
    /// cost buckets, kept off the wall-clock lanes so they don't clutter
    /// the execution timeline.
    Accounting,
}

impl Lane {
    /// Stable Perfetto `tid` for this lane. Host and NIC come first so
    /// streams sort after them in the UI; accounting sorts last.
    pub fn tid(self) -> u32 {
        match self {
            Lane::Host => 0,
            Lane::Nic => 1,
            Lane::Stream(s) => 2 + s,
            Lane::Accounting => 99,
        }
    }

    pub fn label(self) -> String {
        match self {
            Lane::Host => "host".to_string(),
            Lane::Nic => "nic".to_string(),
            Lane::Stream(s) => format!("stream {s}"),
            Lane::Accounting => "accounting".to_string(),
        }
    }
}

/// Mirror of `fusedpack_core::FlushReason`, defined here so the telemetry
/// crate sits below `core` in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReasonTag {
    SyncPoint,
    ThresholdReached,
    RingPressure,
}

impl FlushReasonTag {
    pub fn label(self) -> &'static str {
        match self {
            FlushReasonTag::SyncPoint => "sync-point",
            FlushReasonTag::ThresholdReached => "threshold",
            FlushReasonTag::RingPressure => "ring-pressure",
        }
    }
}

/// Mirror of the mpi crate's wait classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKindTag {
    /// Waiting on a local kernel / device operation.
    LocalKernel,
    /// Waiting on the network.
    Network,
}

impl WaitKindTag {
    pub fn label(self) -> &'static str {
        match self {
            WaitKindTag::LocalKernel => "local-kernel",
            WaitKindTag::Network => "network",
        }
    }
}

/// Rendezvous protocol phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RndvPhaseTag {
    Rts,
    Cts,
    /// RGET's RDMA READ request (plays the CTS role in that sub-protocol).
    ReadReq,
    Data,
    Fin,
}

impl RndvPhaseTag {
    pub fn label(self) -> &'static str {
        match self {
            RndvPhaseTag::Rts => "RTS",
            RndvPhaseTag::Cts => "CTS",
            RndvPhaseTag::ReadReq => "READ-REQ",
            RndvPhaseTag::Data => "DATA",
            RndvPhaseTag::Fin => "FIN",
        }
    }
}

/// The paper's Fig. 11 cost buckets, extended with `Comm` so the whole
/// breakdown is expressible. Mirrors `mpi::breakdown::Breakdown` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    Pack,
    Launch,
    Scheduling,
    Sync,
    Comm,
}

impl Bucket {
    pub const ALL: [Bucket; 5] = [
        Bucket::Pack,
        Bucket::Launch,
        Bucket::Scheduling,
        Bucket::Sync,
        Bucket::Comm,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Bucket::Pack => "(Un)Pack",
            Bucket::Launch => "Launching",
            Bucket::Scheduling => "Scheduling",
            Bucket::Sync => "Sync.",
            Bucket::Comm => "Comm.",
        }
    }

    pub fn index(self) -> usize {
        match self {
            Bucket::Pack => 0,
            Bucket::Launch => 1,
            Bucket::Scheduling => 2,
            Bucket::Sync => 3,
            Bucket::Comm => 4,
        }
    }
}

/// What happened. Every variant is a self-contained structured record —
/// no string formatting on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A single (non-fused) pack/unpack kernel executing on a stream.
    KernelExec { bytes: u64, blocks: u64 },
    /// A fused kernel executing on a stream on behalf of many requests.
    FusedExec {
        requests: u32,
        bytes: u64,
        reason: FlushReasonTag,
    },
    /// Host CPU cost of launching a kernel (driver call).
    KernelLaunch { fused: bool },
    /// An async device copy (H2D/D2H staging, GDRCopy, IPC).
    Memcpy { bytes: u64, kind: &'static str },
    /// A request entered the scheduler ring.
    Enqueue {
        uid: u64,
        bytes: u64,
        ring_occupancy: u32,
    },
    /// The ring was full; the request was rejected.
    EnqueueRejected { bytes: u64 },
    /// The scheduler decided to flush pending requests.
    FlushDecision {
        reason: FlushReasonTag,
        requests: u32,
        bytes: u64,
    },
    /// The adaptive controller moved the fusion threshold between flushes.
    ThresholdAdjust {
        /// Threshold in effect for the flush that produced the feedback.
        old_bytes: u64,
        /// Threshold that governs subsequent flush decisions.
        new_bytes: u64,
    },
    /// Host-side completion query against a request.
    Query { uid: u64, ready: bool },
    /// A request left the ring.
    Retire { uid: u64, ring_occupancy: u32 },
    /// Pack (or unpack) lifecycle of one request on the GPU.
    PackSpan { uid: u64, bytes: u64, unpack: bool },
    /// Eager-protocol send issued.
    EagerSend { peer: u32, tag: u32, bytes: u64 },
    /// A rendezvous control/data phase.
    Rndv {
        peer: u32,
        tag: u32,
        phase: RndvPhaseTag,
        bytes: u64,
    },
    /// RDMA verb posted to the NIC. Recorded by the NIC itself, which does
    /// not know the destination rank — routing context lives in the
    /// surrounding [`Payload::Rndv`]/[`Payload::EagerSend`] instants.
    RdmaPost { bytes: u64, gdr: bool },
    /// A message (ctrl or data) arrived from the wire.
    Deliver { peer: u32, tag: u32, bytes: u64 },
    /// Payload bytes in flight on a link.
    WireTransfer { bytes: u64 },
    /// Payload bytes crossing one hop of a routed (topology-aware)
    /// transfer; `hop` indexes the topology's hop table.
    HopTransfer { hop: u32, bytes: u64 },
    /// Host blocked in a sync wait (waitall / device sync).
    SyncWait { kind: WaitKindTag },
    /// Time charged to a Fig. 11 accounting bucket. The reconciliation
    /// check sums these against `mpi::breakdown`.
    BucketCharge { bucket: Bucket, label: &'static str },
    /// Free-form marker for experiment phases (warmup, lap boundaries).
    Marker { label: &'static str },
    /// The simulator clamped a past-scheduled event to `now` (release
    /// builds only — debug builds panic). `skew_ns` is how far in the past
    /// the rewritten timestamp was.
    ClampedEvent { skew_ns: u64 },
    /// End-of-run allocator/queue health snapshot: timing-wheel counters
    /// and slab occupancy high-water marks (`events / slots_drained` is
    /// the events-per-wheel-tick figure).
    QueueHealth {
        event_slab_high_water: u32,
        wire_slab_high_water: u32,
        overflow_hits: u64,
        slots_drained: u64,
        events: u64,
    },
    /// End-of-run layout-compiler cache snapshot, aggregated over every
    /// rank's sharded cache: acquire hits/misses, LRU evictions, resident
    /// compiled bytes, and the residency high-water mark.
    LayoutCacheHealth {
        hits: u64,
        misses: u64,
        evictions: u64,
        resident_bytes: u64,
        high_water_bytes: u64,
    },
    /// A sharded run crossed a conservative window barrier: the
    /// coordinator admitted cross-shard messages and applied deferred
    /// routed transmits before opening the next window. Recorded as an
    /// instant at the barrier's virtual time, so barrier cadence and
    /// per-barrier work are visible in Perfetto.
    ShardBarrier {
        /// Exclusive end of the window just executed (virtual ns).
        window_ns: u64,
        /// Cross-shard messages admitted into destination queues here.
        admitted: u64,
        /// Deferred routed transmits applied against the shared fabric.
        applied: u64,
        /// Route-cache epoch of the shared fabric after this barrier's
        /// transmits were applied (0 without a topology or fault domain).
        /// Every shard observes a hop-state transition at the same barrier,
        /// so the epoch sequence is identical across shard counts.
        route_epoch: u64,
    },
    /// One cell of a parallel experiment sweep executed by the bench
    /// driver; `index` is the cell's position in the deterministic cell
    /// list, `worker` the pool thread that ran it.
    SweepCell { index: u64, worker: u32 },
    /// The fault plan injected a fault at a named site.
    FaultInjected { site: FaultSite },
    /// The transfer protocol retransmitted after a detected loss/NACK.
    Retry {
        site: FaultSite,
        attempt: u32,
        backoff_ns: u64,
    },
    /// A degradation ladder was taken instead of the fast path.
    Degraded {
        site: FaultSite,
        action: &'static str,
    },
    /// The fabric health monitor marked a hop permanently down.
    HopDown { hop: u32 },
    /// A pair's route was re-resolved around dead hops (self-healing
    /// ECMP reroute).
    Rerouted { src: u32, dst: u32 },
    /// A reroute failed over a dead NIC rail to a sibling rail.
    RailFailover { hop: u32 },
}

impl Payload {
    /// Short event name shown in the Perfetto timeline.
    pub fn name(&self) -> &'static str {
        match self {
            Payload::KernelExec { .. } => "kernel",
            Payload::FusedExec { .. } => "fused-kernel",
            Payload::KernelLaunch { fused: false } => "launch",
            Payload::KernelLaunch { fused: true } => "launch-fused",
            Payload::Memcpy { kind, .. } => kind,
            Payload::Enqueue { .. } => "enqueue",
            Payload::EnqueueRejected { .. } => "enqueue-rejected",
            Payload::FlushDecision { .. } => "flush",
            Payload::ThresholdAdjust { .. } => "threshold-adjust",
            Payload::Query { .. } => "query",
            Payload::Retire { .. } => "retire",
            Payload::PackSpan { unpack: false, .. } => "pack",
            Payload::PackSpan { unpack: true, .. } => "unpack",
            Payload::EagerSend { .. } => "eager-send",
            Payload::Rndv { phase, .. } => phase.label(),
            Payload::RdmaPost { .. } => "rdma-post",
            Payload::Deliver { .. } => "deliver",
            Payload::WireTransfer { .. } => "wire",
            Payload::HopTransfer { .. } => "hop",
            Payload::SyncWait { kind } => kind.label(),
            Payload::BucketCharge { label, .. } => label,
            Payload::Marker { label } => label,
            Payload::ClampedEvent { .. } => "past-event-clamp",
            Payload::QueueHealth { .. } => "queue-health",
            Payload::LayoutCacheHealth { .. } => "layout-cache-health",
            Payload::ShardBarrier { .. } => "shard-barrier",
            Payload::SweepCell { .. } => "sweep-cell",
            Payload::FaultInjected { .. } => "fault-injected",
            Payload::Retry { .. } => "retry",
            Payload::Degraded { .. } => "degraded",
            Payload::HopDown { .. } => "hop-down",
            Payload::Rerouted { .. } => "rerouted",
            Payload::RailFailover { .. } => "rail-failover",
        }
    }

    /// Perfetto category, used for filtering in the UI.
    pub fn category(&self) -> &'static str {
        match self {
            Payload::KernelExec { .. }
            | Payload::FusedExec { .. }
            | Payload::KernelLaunch { .. }
            | Payload::Memcpy { .. } => "gpu",
            Payload::Enqueue { .. }
            | Payload::EnqueueRejected { .. }
            | Payload::FlushDecision { .. }
            | Payload::ThresholdAdjust { .. }
            | Payload::Query { .. }
            | Payload::Retire { .. } => "sched",
            Payload::PackSpan { .. } => "pack",
            Payload::EagerSend { .. }
            | Payload::Rndv { .. }
            | Payload::RdmaPost { .. }
            | Payload::Deliver { .. }
            | Payload::WireTransfer { .. }
            | Payload::HopTransfer { .. } => "net",
            Payload::SyncWait { .. } => "sync",
            Payload::BucketCharge { .. } => "bucket",
            Payload::Marker { .. } => "marker",
            Payload::ClampedEvent { .. }
            | Payload::QueueHealth { .. }
            | Payload::LayoutCacheHealth { .. }
            | Payload::ShardBarrier { .. } => "sim",
            Payload::SweepCell { .. } => "sweep",
            Payload::FaultInjected { .. }
            | Payload::Retry { .. }
            | Payload::Degraded { .. }
            | Payload::HopDown { .. }
            | Payload::Rerouted { .. }
            | Payload::RailFailover { .. } => "fault",
        }
    }

    /// Structured args for the Chrome exporter.
    pub fn args(&self) -> Vec<(&'static str, ArgValue)> {
        match *self {
            Payload::KernelExec { bytes, blocks } => vec![
                ("bytes", ArgValue::U64(bytes)),
                ("blocks", ArgValue::U64(blocks)),
            ],
            Payload::FusedExec {
                requests,
                bytes,
                reason,
            } => vec![
                ("requests", ArgValue::U64(requests as u64)),
                ("bytes", ArgValue::U64(bytes)),
                ("reason", ArgValue::Str(reason.label())),
            ],
            Payload::KernelLaunch { fused } => vec![("fused", ArgValue::Bool(fused))],
            Payload::Memcpy { bytes, .. } => vec![("bytes", ArgValue::U64(bytes))],
            Payload::Enqueue {
                uid,
                bytes,
                ring_occupancy,
            } => vec![
                ("uid", ArgValue::U64(uid)),
                ("bytes", ArgValue::U64(bytes)),
                ("ring_occupancy", ArgValue::U64(ring_occupancy as u64)),
            ],
            Payload::EnqueueRejected { bytes } => vec![("bytes", ArgValue::U64(bytes))],
            Payload::FlushDecision {
                reason,
                requests,
                bytes,
            } => vec![
                ("reason", ArgValue::Str(reason.label())),
                ("requests", ArgValue::U64(requests as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
            Payload::ThresholdAdjust {
                old_bytes,
                new_bytes,
            } => vec![
                ("old_bytes", ArgValue::U64(old_bytes)),
                ("new_bytes", ArgValue::U64(new_bytes)),
            ],
            Payload::Query { uid, ready } => vec![
                ("uid", ArgValue::U64(uid)),
                ("ready", ArgValue::Bool(ready)),
            ],
            Payload::Retire {
                uid,
                ring_occupancy,
            } => vec![
                ("uid", ArgValue::U64(uid)),
                ("ring_occupancy", ArgValue::U64(ring_occupancy as u64)),
            ],
            Payload::PackSpan { uid, bytes, unpack } => vec![
                ("uid", ArgValue::U64(uid)),
                ("bytes", ArgValue::U64(bytes)),
                ("unpack", ArgValue::Bool(unpack)),
            ],
            Payload::EagerSend { peer, tag, bytes } => vec![
                ("peer", ArgValue::U64(peer as u64)),
                ("tag", ArgValue::U64(tag as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
            Payload::Rndv {
                peer, tag, bytes, ..
            } => vec![
                ("peer", ArgValue::U64(peer as u64)),
                ("tag", ArgValue::U64(tag as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
            Payload::RdmaPost { bytes, gdr } => vec![
                ("bytes", ArgValue::U64(bytes)),
                ("gdr", ArgValue::Bool(gdr)),
            ],
            Payload::Deliver { peer, tag, bytes } => vec![
                ("peer", ArgValue::U64(peer as u64)),
                ("tag", ArgValue::U64(tag as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
            Payload::WireTransfer { bytes } => vec![("bytes", ArgValue::U64(bytes))],
            Payload::HopTransfer { hop, bytes } => vec![
                ("hop", ArgValue::U64(hop as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
            Payload::SyncWait { kind } => vec![("kind", ArgValue::Str(kind.label()))],
            Payload::BucketCharge { bucket, .. } => {
                vec![("bucket", ArgValue::Str(bucket.label()))]
            }
            Payload::Marker { .. } => vec![],
            Payload::ClampedEvent { skew_ns } => vec![("skew_ns", ArgValue::U64(skew_ns))],
            Payload::QueueHealth {
                event_slab_high_water,
                wire_slab_high_water,
                overflow_hits,
                slots_drained,
                events,
            } => vec![
                (
                    "event_slab_high_water",
                    ArgValue::U64(event_slab_high_water as u64),
                ),
                (
                    "wire_slab_high_water",
                    ArgValue::U64(wire_slab_high_water as u64),
                ),
                ("overflow_hits", ArgValue::U64(overflow_hits)),
                ("slots_drained", ArgValue::U64(slots_drained)),
                (
                    "events_per_tick",
                    ArgValue::F64(if slots_drained == 0 {
                        0.0
                    } else {
                        events as f64 / slots_drained as f64
                    }),
                ),
            ],
            Payload::LayoutCacheHealth {
                hits,
                misses,
                evictions,
                resident_bytes,
                high_water_bytes,
            } => vec![
                ("hits", ArgValue::U64(hits)),
                ("misses", ArgValue::U64(misses)),
                ("evictions", ArgValue::U64(evictions)),
                ("resident_bytes", ArgValue::U64(resident_bytes)),
                ("high_water_bytes", ArgValue::U64(high_water_bytes)),
            ],
            Payload::ShardBarrier {
                window_ns,
                admitted,
                applied,
                route_epoch,
            } => vec![
                ("window_ns", ArgValue::U64(window_ns)),
                ("admitted", ArgValue::U64(admitted)),
                ("applied", ArgValue::U64(applied)),
                ("route_epoch", ArgValue::U64(route_epoch)),
            ],
            Payload::SweepCell { index, worker } => vec![
                ("index", ArgValue::U64(index)),
                ("worker", ArgValue::U64(worker as u64)),
            ],
            Payload::FaultInjected { site } => vec![("site", ArgValue::Str(site.label()))],
            Payload::Retry {
                site,
                attempt,
                backoff_ns,
            } => vec![
                ("site", ArgValue::Str(site.label())),
                ("attempt", ArgValue::U64(attempt as u64)),
                ("backoff_ns", ArgValue::U64(backoff_ns)),
            ],
            Payload::Degraded { site, action } => vec![
                ("site", ArgValue::Str(site.label())),
                ("action", ArgValue::Str(action)),
            ],
            Payload::HopDown { hop } => vec![("hop", ArgValue::U64(hop as u64))],
            Payload::Rerouted { src, dst } => vec![
                ("src", ArgValue::U64(src as u64)),
                ("dst", ArgValue::U64(dst as u64)),
            ],
            Payload::RailFailover { hop } => vec![("hop", ArgValue::U64(hop as u64))],
        }
    }
}

/// A typed argument value for trace export.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(&'static str),
}

/// Identifier of an open span returned by [`crate::Telemetry::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One recorded timeline entry. `dur == None` means an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub rank: u32,
    pub lane: Lane,
    pub start: Time,
    pub dur: Option<Duration>,
    pub payload: Payload,
}

impl Event {
    pub fn is_span(&self) -> bool {
        self.dur.is_some()
    }

    pub fn end(&self) -> Time {
        match self.dur {
            Some(d) => self.start + d,
            None => self.start,
        }
    }
}

/// A sampled counter value (ring occupancy, queue depth, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    pub rank: u32,
    pub at: Time,
    pub name: &'static str,
    pub value: f64,
}
