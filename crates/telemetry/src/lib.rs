//! # fusedpack-telemetry
//!
//! Typed, zero-cost-when-disabled observability for the whole fusedpack
//! stack: a structured event timeline (spans + instants keyed by rank /
//! lane / request UID), an aggregation layer (counters and histograms),
//! and two exporters — Chrome Trace Event JSON loadable in Perfetto, and
//! aligned-text / CSV metrics summaries.
//!
//! ## Model
//!
//! Every event carries a **rank** (simulated MPI process), a [`Lane`]
//! (host CPU, a GPU stream, or the NIC — rendered as threads in Perfetto),
//! a virtual-time stamp, and a typed [`Payload`] describing what happened:
//! kernel launches, fused dispatches with request count + bytes + flush
//! reason, per-request pack/unpack lifecycles, scheduler decisions,
//! eager/rendezvous protocol phases, RDMA verbs, and sync waits.
//!
//! ## Zero cost when disabled
//!
//! The [`Telemetry`] handle is a thin wrapper over
//! `Option<Arc<Mutex<Recorder>>>`. A disabled handle is `None`: every
//! record call is one branch, and payload closures are never evaluated
//! (verified by `disabled_recorder_never_evaluates_payloads` in the test
//! suite).
//!
//! ## Reconciliation
//!
//! [`reconcile`] cross-checks telemetry-derived per-bucket time against
//! the independent `mpi::breakdown` accounting (the paper's Fig. 11
//! buckets), so the two systems validate each other; `reproduce
//! --trace-out` runs this check on every traced experiment.

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod reconcile;
pub mod recorder;

pub use event::{
    Bucket, CounterSample, Event, FlushReasonTag, Lane, Payload, RndvPhaseTag, SpanId, WaitKindTag,
};
pub use metrics::{Histogram, MetricsSummary};
pub use reconcile::{reconcile, RankDelta, ReconcileReport};
pub use recorder::{Recorder, Telemetry, TimelineSnapshot};
