//! Chrome Trace Event JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! Mapping: each simulated rank becomes a *process* (`pid = rank`), and
//! each [`Lane`] within it a *thread* (`tid` from [`Lane::tid`]): host CPU,
//! NIC, and one thread per GPU stream. Spans are `"X"` (complete) events,
//! instants `"i"`, counter samples `"C"`, and process/thread names are
//! emitted as `"M"` metadata. Timestamps are microseconds (the format's
//! unit) with nanosecond precision preserved in the fraction.

use crate::event::Lane;
use crate::json::{write_number, write_string};
use crate::recorder::TimelineSnapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn us(t: fusedpack_sim::Time) -> f64 {
    t.0 as f64 / 1000.0
}

fn us_dur(d: fusedpack_sim::Duration) -> f64 {
    d.as_nanos() as f64 / 1000.0
}

/// Render a snapshot as a complete Chrome Trace Event JSON document.
pub fn export(snapshot: &TimelineSnapshot) -> String {
    let mut out = String::with_capacity(256 + snapshot.events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |entry: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&entry);
    };

    // Metadata: name every (rank, lane) pair that appears.
    let mut ranks: BTreeSet<u32> = BTreeSet::new();
    let mut lanes: BTreeSet<(u32, Lane)> = BTreeSet::new();
    for e in &snapshot.events {
        ranks.insert(e.rank);
        lanes.insert((e.rank, e.lane));
    }
    for c in &snapshot.counters {
        ranks.insert(c.rank);
    }
    for &rank in &ranks {
        let mut m = String::new();
        let _ = write!(
            m,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{rank},\"tid\":0,\"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
        emit(m, &mut out);
    }
    for &(rank, lane) in &lanes {
        let mut m = String::new();
        let _ = write!(
            m,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{rank},\"tid\":{},\"args\":{{\"name\":",
            lane.tid()
        );
        write_string(&mut m, &lane.label());
        m.push_str("}}");
        emit(m, &mut out);
    }

    for e in &snapshot.events {
        let mut s = String::new();
        s.push_str("{\"name\":");
        write_string(&mut s, e.payload.name());
        s.push_str(",\"cat\":");
        write_string(&mut s, e.payload.category());
        match e.dur {
            Some(d) => {
                s.push_str(",\"ph\":\"X\",\"ts\":");
                write_number(&mut s, us(e.start));
                s.push_str(",\"dur\":");
                write_number(&mut s, us_dur(d));
            }
            None => {
                s.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                write_number(&mut s, us(e.start));
            }
        }
        let _ = write!(s, ",\"pid\":{},\"tid\":{}", e.rank, e.lane.tid());
        let args = e.payload.args();
        if !args.is_empty() {
            s.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                write_string(&mut s, k);
                s.push(':');
                match v {
                    crate::event::ArgValue::U64(n) => {
                        let _ = write!(s, "{n}");
                    }
                    crate::event::ArgValue::F64(n) => write_number(&mut s, *n),
                    crate::event::ArgValue::Bool(b) => {
                        s.push_str(if *b { "true" } else { "false" })
                    }
                    crate::event::ArgValue::Str(v) => write_string(&mut s, v),
                }
            }
            s.push('}');
        }
        s.push('}');
        emit(s, &mut out);
    }

    for c in &snapshot.counters {
        let mut s = String::new();
        s.push_str("{\"ph\":\"C\",\"name\":");
        write_string(&mut s, c.name);
        let _ = write!(s, ",\"pid\":{},\"tid\":0,\"ts\":", c.rank);
        write_number(&mut s, us(c.at));
        s.push_str(",\"args\":{");
        write_string(&mut s, c.name);
        s.push(':');
        write_number(&mut s, c.value);
        s.push_str("}}");
        emit(s, &mut out);
    }

    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Bucket, Lane, Payload};
    use crate::recorder::Telemetry;
    use fusedpack_sim::Time;

    #[test]
    fn export_is_valid_json_with_expected_shapes() {
        let root = Telemetry::enabled();
        root.for_rank(0)
            .span(Lane::Stream(0), Time(0), Time(1500), || {
                Payload::KernelExec {
                    bytes: 4096,
                    blocks: 8,
                }
            });
        root.for_rank(1)
            .instant(Lane::Host, Time(2000), || Payload::BucketCharge {
                bucket: Bucket::Sync,
                label: "wait",
            });
        root.for_rank(1).counter(Time(2500), "ring", 3.0);
        let text = export(&root.snapshot());
        let doc = crate::json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process names + 2 thread names + 2 events + 1 counter.
        assert_eq!(events.len(), 7);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one complete span");
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("pid").unwrap().as_u64(), Some(0));
    }
}
