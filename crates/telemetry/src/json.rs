//! A minimal JSON value, writer, and parser.
//!
//! The offline build environment cannot fetch `serde_json`, so trace
//! export writes JSON by hand and the golden tests round-trip through this
//! parser instead. It supports the full JSON grammar except exotic number
//! forms beyond f64.

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Serialize back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape and quote a JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a number the way JSON expects (no `NaN`/`inf`; integers without a
/// trailing `.0`).
pub fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push('0');
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Parse a JSON document. Returns a message with byte offset on error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "bad utf-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_nesting() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\"y\n"}"#;
        let v = parse(src).expect("parses");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\n"));
        let again = parse(&v.render()).expect("re-parses");
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01a").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_number(&mut s, 42.0);
        assert_eq!(s, "42");
    }
}
