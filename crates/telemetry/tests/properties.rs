//! Property-based tests of the recorder invariants, plus the golden
//! Chrome-trace round-trip through the in-tree JSON parser.

use fusedpack_sim::Time;
use fusedpack_telemetry::{chrome, json, Lane, Payload, Telemetry, WaitKindTag};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One randomly-generated record call.
#[derive(Debug, Clone)]
enum Op {
    Instant {
        rank: u32,
        lane_tid: u32,
        at: u64,
    },
    Span {
        rank: u32,
        lane_tid: u32,
        start: u64,
        len: u64,
    },
    OpenClose {
        rank: u32,
        at: u64,
        len: u64,
        close: bool,
    },
}

fn lane_from(tid: u32) -> Lane {
    match tid % 4 {
        0 => Lane::Host,
        1 => Lane::Nic,
        2 => Lane::Stream(tid % 3),
        _ => Lane::Accounting,
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 0u32..6, 0u64..1_000_000).prop_map(|(rank, lane_tid, at)| Op::Instant {
            rank,
            lane_tid,
            at
        }),
        (0u32..4, 0u32..6, 0u64..1_000_000, 0u64..10_000).prop_map(
            |(rank, lane_tid, start, len)| Op::Span {
                rank,
                lane_tid,
                start,
                len
            }
        ),
        (0u32..4, 0u64..1_000_000, 0u64..10_000, any::<bool>()).prop_map(
            |(rank, at, len, close)| Op::OpenClose {
                rank,
                at,
                len,
                close
            }
        ),
    ]
}

fn apply(root: &Telemetry, ops: &[Op]) -> (usize, usize) {
    // Returns (events recorded, opens left unclosed).
    let mut events = 0;
    let mut unclosed = 0;
    for op in ops {
        match *op {
            Op::Instant { rank, lane_tid, at } => {
                root.for_rank(rank)
                    .instant(lane_from(lane_tid), Time(at), || Payload::Marker {
                        label: "i",
                    });
                events += 1;
            }
            Op::Span {
                rank,
                lane_tid,
                start,
                len,
            } => {
                root.for_rank(rank).span(
                    lane_from(lane_tid),
                    Time(start),
                    Time(start + len),
                    || Payload::Marker { label: "s" },
                );
                events += 1;
            }
            Op::OpenClose {
                rank,
                at,
                len,
                close,
            } => {
                let t = root.for_rank(rank);
                let id = t.open(Lane::Host, Time(at), || Payload::SyncWait {
                    kind: WaitKindTag::Network,
                });
                events += 1;
                if close {
                    t.close(id, Time(at + len));
                } else {
                    unclosed += 1;
                }
            }
        }
    }
    (events, unclosed)
}

proptest! {
    /// Every record call lands exactly once, in call order, tagged with
    /// the rank of the handle that made it; spans never have negative
    /// durations and instants never grow one.
    #[test]
    fn recorder_preserves_order_ranks_and_span_shape(ops in prop::collection::vec(arb_op(), 0..64)) {
        let root = Telemetry::enabled();
        let (expect_events, expect_unclosed) = apply(&root, &ops);
        let snap = root.snapshot();

        prop_assert_eq!(snap.events.len(), expect_events);
        prop_assert_eq!(snap.dropped, 0);
        prop_assert_eq!(snap.unclosed_spans, expect_unclosed);

        for (op, ev) in ops.iter().zip(&snap.events) {
            match *op {
                Op::Instant { rank, at, .. } => {
                    prop_assert_eq!(ev.rank, rank);
                    prop_assert_eq!(ev.start, Time(at));
                    prop_assert!(ev.dur.is_none());
                }
                Op::Span { rank, start, len, .. } => {
                    prop_assert_eq!(ev.rank, rank);
                    prop_assert_eq!(ev.start, Time(start));
                    prop_assert_eq!(ev.dur.map(|d| d.as_nanos()), Some(len));
                    prop_assert!(ev.end() >= ev.start);
                }
                Op::OpenClose { rank, at, len, close } => {
                    prop_assert_eq!(ev.rank, rank);
                    prop_assert_eq!(ev.start, Time(at));
                    if close {
                        prop_assert_eq!(ev.dur.map(|d| d.as_nanos()), Some(len));
                    } else {
                        prop_assert!(ev.dur.is_none());
                    }
                }
            }
        }
    }

    /// Open/close bookkeeping: the number of unclosed spans is exactly the
    /// number of opens without a matching close, closing twice is a no-op,
    /// and closing never touches another span's duration.
    #[test]
    fn open_close_matching_is_exact(
        spans in prop::collection::vec((0u64..1_000, 0u64..1_000, any::<bool>()), 1..32),
    ) {
        let t = Telemetry::enabled();
        let mut ids = Vec::new();
        for &(at, _, _) in &spans {
            ids.push(t.open(Lane::Host, Time(at), || Payload::SyncWait {
                kind: WaitKindTag::LocalKernel,
            }));
        }
        let mut open_count = spans.len();
        for (&(at, len, close), id) in spans.iter().zip(&ids) {
            if close {
                t.close(*id, Time(at + len));
                t.close(*id, Time(at + len + 7)); // double close: no-op
                open_count -= 1;
            }
        }
        let snap = t.snapshot();
        prop_assert_eq!(snap.unclosed_spans, open_count);
        for ((&(at, len, close), _), ev) in spans.iter().zip(&ids).zip(&snap.events) {
            prop_assert_eq!(ev.start, Time(at));
            if close {
                // First close wins; the second must not re-patch.
                prop_assert_eq!(ev.dur.map(|d| d.as_nanos()), Some(len));
            } else {
                prop_assert!(ev.dur.is_none());
            }
        }
    }

    /// The Chrome exporter emits parseable JSON for ANY recorded timeline,
    /// with exactly one process per distinct rank.
    #[test]
    fn chrome_export_parses_with_one_process_per_rank(ops in prop::collection::vec(arb_op(), 0..48)) {
        let root = Telemetry::enabled();
        apply(&root, &ops);
        let snap = root.snapshot();
        let doc = json::parse(&chrome::export(&snap)).expect("valid JSON");

        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");
        let ranks: BTreeSet<u64> = snap.events.iter().map(|e| e.rank as u64).collect();
        let named: BTreeSet<u64> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("M")
                    && e.get("name").and_then(|v| v.as_str()) == Some("process_name")
            })
            .filter_map(|e| e.get("pid")?.as_u64())
            .collect();
        prop_assert_eq!(named, ranks);
    }
}

/// Golden round-trip: a small fixed timeline must export to JSON that the
/// in-tree parser reads back, re-renders, and re-parses to the same value,
/// with each rank a separate process and lanes named as threads.
#[test]
fn golden_chrome_round_trip() {
    let root = Telemetry::enabled();
    for rank in 0..3u32 {
        let t = root.for_rank(rank);
        t.span(Lane::Host, Time(10), Time(30), || Payload::KernelLaunch {
            fused: true,
        });
        t.span(Lane::Stream(0), Time(30), Time(90), || Payload::FusedExec {
            requests: 4,
            bytes: 4096,
            reason: fusedpack_telemetry::FlushReasonTag::ThresholdReached,
        });
        t.instant(Lane::Nic, Time(95), || Payload::RdmaPost {
            bytes: 4096,
            gdr: rank == 0,
        });
        t.counter(Time(95), "ring occupancy", rank as f64);
    }
    let snap = root.snapshot();
    let text = chrome::export(&snap);

    let doc = json::parse(&text).expect("golden export must parse");
    let rendered = doc.render();
    let reparsed = json::parse(&rendered).expect("re-render must parse");
    assert_eq!(doc, reparsed, "render/parse must be a fixed point");

    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    // 3 process_name metas, one per rank.
    let procs: Vec<(u64, &str)> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("name").and_then(|v| v.as_str()) == Some("process_name")
        })
        .filter_map(|e| {
            Some((
                e.get("pid")?.as_u64()?,
                e.get("args")?.get("name")?.as_str()?,
            ))
        })
        .collect();
    assert_eq!(
        procs,
        vec![(0, "rank 0"), (1, "rank 1"), (2, "rank 2")],
        "one process per rank, in order"
    );

    // Thread metadata names the lanes we used on every rank.
    let thread_names: BTreeSet<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("name").and_then(|v| v.as_str()) == Some("thread_name")
        })
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    for lane in ["host", "nic", "stream 0"] {
        assert!(thread_names.contains(lane), "missing thread {lane:?}");
    }

    // 9 payload events (3 per rank) + 3 counter samples.
    let payloads = events
        .iter()
        .filter(|e| matches!(e.get("ph").and_then(|v| v.as_str()), Some("X") | Some("i")))
        .count();
    let counters = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
        .count();
    assert_eq!(payloads, 9);
    assert_eq!(counters, 3);

    // Spot-check one complete span: rank 1's fused kernel on stream 0.
    let fused = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("X")
                && e.get("pid").and_then(|v| v.as_u64()) == Some(1)
                && e.get("name").and_then(|v| v.as_str()) == Some("fused-kernel")
        })
        .expect("rank 1 fused-kernel span");
    assert_eq!(fused.get("tid").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(fused.get("cat").and_then(|v| v.as_str()), Some("gpu"));
    let args = fused.get("args").expect("args");
    assert_eq!(args.get("requests").and_then(|v| v.as_u64()), Some(4));
    assert_eq!(args.get("bytes").and_then(|v| v.as_u64()), Some(4096));
    assert_eq!(
        args.get("reason").and_then(|v| v.as_str()),
        Some("threshold")
    );
}
