//! Property tests for the layout compiler pipeline.
//!
//! Two independent implementations exist on purpose: the canonical-IR
//! path (`normalize` → rewrite → `compile`) that production uses, and the
//! pre-IR direct tree walk kept as `flatten_reference`. These tests
//! generate random nested type trees — including shapes none of the unit
//! tests cover — and require the two to agree byte-for-byte, both on the
//! segment lists and on the packed images every copy tier produces.
//!
//! Also here: the LRU pinning law — the sharded cache must never evict a
//! compiled layout while an in-flight request still holds its `Arc`.

use fusedpack_datatype::cache::{LayoutCache, LayoutCacheConfig, TypeHandle};
use fusedpack_datatype::flatten::{flatten, flatten_reference};
use fusedpack_datatype::ir::LayoutIr;
use fusedpack_datatype::pack::{pack_into, pack_into_generic, unpack, unpack_generic};
use fusedpack_datatype::{CompiledLayout, TypeBuilder, TypeDesc};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A random valid datatype tree of bounded depth. Every constructor in
/// the algebra appears, children recurse, and all builder invariants
/// (sorted disjoint blocks, non-overlapping strides) hold by
/// construction.
fn arb_type(depth: u32) -> BoxedStrategy<Arc<TypeDesc>> {
    let prim = prop_oneof![
        Just(TypeBuilder::byte()),
        Just(TypeBuilder::int()),
        Just(TypeBuilder::float()),
        Just(TypeBuilder::double()),
        Just(TypeBuilder::complex()),
    ]
    .boxed();
    if depth == 0 {
        return prim;
    }
    prop_oneof![
        prim,
        (1u64..6, arb_type(depth - 1)).prop_map(|(n, c)| TypeBuilder::contiguous(n, c)),
        (1u64..5, 1u64..4, 0u64..6, arb_type(depth - 1)).prop_map(|(count, blocklen, pad, c)| {
            TypeBuilder::vector(count, blocklen, blocklen + pad, c)
        }),
        (1u64..4, 1u64..3, 0u64..40, arb_type(depth - 1)).prop_map(|(count, blocklen, gap, c)| {
            let stride_bytes = blocklen * c.extent() + gap;
            TypeBuilder::hvector(count, blocklen, stride_bytes, c)
        }),
        (
            prop::collection::vec((0u64..4, 1u64..4), 1..5),
            arb_type(depth - 1)
        )
            .prop_map(|(raw, c)| {
                let mut disp = 0;
                let blocks: Vec<(u64, u64)> = raw
                    .into_iter()
                    .map(|(gap, len)| {
                        let d = disp + gap;
                        disp = d + len;
                        (d, len)
                    })
                    .collect();
                TypeBuilder::indexed(&blocks, c)
            }),
        (
            prop::collection::vec(0u64..5, 1..5),
            1u64..3,
            arb_type(depth - 1)
        )
            .prop_map(|(gaps, blocklen, c)| {
                let mut disp = 0;
                let ds: Vec<u64> = gaps
                    .into_iter()
                    .map(|gap| {
                        let d = disp + gap;
                        disp = d + blocklen;
                        d
                    })
                    .collect();
                TypeBuilder::indexed_block(&ds, blocklen, c)
            }),
        (
            arb_type(depth - 1),
            1u64..3,
            arb_type(depth - 1),
            1u64..3,
            0u64..16
        )
            .prop_map(|(a, ca, b, cb, gap)| {
                let second = ca * a.extent() + gap;
                TypeBuilder::structure(&[(0, ca, a), (second, cb, b)])
            }),
        (2u64..5, 2u64..5, arb_type(depth - 1)).prop_flat_map(|(rows, cols, c)| {
            (1..=rows, 1..=cols).prop_map(move |(sr, sc)| {
                TypeBuilder::subarray(&[rows, cols], &[sr, sc], &[rows - sr, cols - sc], c.clone())
            })
        }),
        (0u64..48, arb_type(depth - 1))
            .prop_map(|(pad, c)| { TypeBuilder::resized(c.extent() + pad, c) }),
    ]
    .boxed()
}

proptest! {
    /// The IR-routed flatten and the legacy tree walk emit identical
    /// segment lists on arbitrary nested trees.
    #[test]
    fn ir_flatten_matches_reference(t in arb_type(2)) {
        prop_assert_eq!(flatten(&t), flatten_reference(&t));
    }

    /// normalize → compile → execute produces byte-identical packed
    /// images to the legacy flatten + generic segment walk, across every
    /// copy tier the plan dispatch can select.
    #[test]
    fn compiled_plans_pack_byte_equal_to_legacy(
        t in arb_type(2),
        count in 1u64..4,
        seed in 0u64..500,
    ) {
        let compiled = CompiledLayout::of(&t);
        let legacy = CompiledLayout::from_segments(flatten_reference(&t), t.extent());
        prop_assert_eq!(compiled.segments(), legacy.segments());

        let fp = compiled.footprint(count) as usize;
        let mut rng = fusedpack_sim::Pcg32::seeded(seed);
        let mut src = vec![0u8; fp];
        rng.fill_bytes(&mut src);

        let total = compiled.total_bytes(count) as usize;
        let mut via_plan = vec![0u8; total];
        let mut via_legacy = vec![0u8; total];
        pack_into(&src, &compiled, count, &mut via_plan);
        pack_into_generic(&src, &legacy, count, &mut via_legacy);
        prop_assert_eq!(&via_plan, &via_legacy);

        // And back out: the plan-dispatched unpack scatters exactly like
        // the legacy generic loop, gaps untouched.
        let mut scat_plan = vec![0xEE; fp];
        let mut scat_legacy = vec![0xEE; fp];
        unpack(&via_plan, &compiled, count, &mut scat_plan);
        unpack_generic(&via_legacy, &legacy, count, &mut scat_legacy);
        prop_assert_eq!(&scat_plan, &scat_legacy);
    }

    /// The IR's exact run count really is exact: at least the coalesced
    /// segment count, at most the legacy upper bound, and the runs carry
    /// exactly the type's payload bytes in pack order.
    #[test]
    fn run_count_is_tight(t in arb_type(2)) {
        let ir = LayoutIr::normalize(&t);
        let segs = flatten(&t);
        prop_assert!(ir.run_count() >= segs.len() as u64);
        prop_assert!(ir.run_count() <= t.leaf_block_upper_bound());
        let mut bytes = 0u64;
        ir.for_each_run(|_, len| bytes += len);
        prop_assert_eq!(bytes, t.size());
        prop_assert_eq!(ir.size(), t.size());
        prop_assert_eq!(ir.extent(), t.extent());
    }

    /// LRU pinning law: a layout whose `Arc` is held outside the cache
    /// (an in-flight request) survives any sequence of commits and
    /// acquires, even in a cache bounded far below the working set — and
    /// the held `Arc` stays the *same allocation* (never evicted and
    /// silently recompiled).
    #[test]
    fn lru_never_evicts_pinned_layouts(
        ops in prop::collection::vec((0u64..12, 0u8..2), 1..60),
    ) {
        let mut cache = LayoutCache::with_config(LayoutCacheConfig {
            shards: 2,
            shard_capacity: 2,
        });
        let mut pins: HashMap<TypeHandle, Arc<CompiledLayout>> = HashMap::new();
        for (i, pin) in ops {
            let ty = TypeBuilder::vector(2, 1, 3 + i, TypeBuilder::double());
            let (handle, _) = cache.commit(&ty);
            if pin == 1 {
                // Simulate an in-flight request holding the layout.
                let held = cache.acquire(handle);
                pins.insert(handle, held);
            } else {
                // Request retired: release the pin.
                pins.remove(&handle);
            }
            for (h, held) in &pins {
                let resident = cache.peek(*h);
                prop_assert!(resident.is_some(), "pinned {h:?} evicted");
                prop_assert!(
                    Arc::ptr_eq(resident.unwrap(), held),
                    "pinned {h:?} was evicted and recompiled behind the pin"
                );
            }
        }
    }
}
