//! Datatype descriptors: a tree mirroring the MPI type-constructor algebra.
//!
//! A [`TypeDesc`] describes the memory footprint of *one* element. Sending
//! `count` elements tiles the description by its extent, exactly as MPI
//! does. Displacements are byte offsets within the element; negative lower
//! bounds are not supported (asserted at construction), which loses no
//! generality for the halo-exchange layouts this workspace models.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// MPI primitive (named) types, with their sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Primitive {
    /// `MPI_BYTE` / `MPI_CHAR`
    Byte,
    /// `MPI_INT`
    Int32,
    /// `MPI_FLOAT`
    Float32,
    /// `MPI_DOUBLE`
    Float64,
    /// `MPI_DOUBLE` pair, e.g. complex numbers (`MPI_2DOUBLE_PRECISION`)
    Complex128,
}

impl Primitive {
    /// Size in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            Primitive::Byte => 1,
            Primitive::Int32 | Primitive::Float32 => 4,
            Primitive::Float64 => 8,
            Primitive::Complex128 => 16,
        }
    }
}

/// A derived-datatype tree node.
///
/// Children are `Arc`-shared: committed types are immutable and reused
/// across many layouts (e.g. the same indexed type sent to 26 neighbors).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeDesc {
    /// A named primitive type.
    Named(Primitive),
    /// `MPI_Type_contiguous`: `count` consecutive children.
    Contiguous { count: u64, child: Arc<TypeDesc> },
    /// `MPI_Type_vector`: `count` blocks of `blocklen` children, with a
    /// stride of `stride` *children* between block starts.
    Vector {
        count: u64,
        blocklen: u64,
        stride: u64,
        child: Arc<TypeDesc>,
    },
    /// `MPI_Type_create_hvector`: stride given in bytes.
    Hvector {
        count: u64,
        blocklen: u64,
        stride_bytes: u64,
        child: Arc<TypeDesc>,
    },
    /// `MPI_Type_indexed`: blocks of `(displacement, blocklen)` in units of
    /// the child extent.
    Indexed {
        blocks: Arc<[(u64, u64)]>,
        child: Arc<TypeDesc>,
    },
    /// `MPI_Type_create_hindexed`: displacements in bytes.
    Hindexed {
        blocks: Arc<[(u64, u64)]>,
        child: Arc<TypeDesc>,
    },
    /// `MPI_Type_create_indexed_block`: constant block length.
    IndexedBlock {
        displacements: Arc<[u64]>,
        blocklen: u64,
        child: Arc<TypeDesc>,
    },
    /// `MPI_Type_create_struct`: fields of `(byte displacement, count,
    /// child)`.
    Struct {
        fields: Arc<[(u64, u64, Arc<TypeDesc>)]>,
    },
    /// `MPI_Type_create_subarray` (C order): an `ndims`-dimensional slab.
    Subarray {
        sizes: Arc<[u64]>,
        subsizes: Arc<[u64]>,
        starts: Arc<[u64]>,
        child: Arc<TypeDesc>,
    },
    /// `MPI_Type_create_resized`: override the extent.
    Resized { extent: u64, child: Arc<TypeDesc> },
}

impl TypeDesc {
    /// True payload size in bytes of one element (sum of all primitive
    /// bytes), as `MPI_Type_size` reports.
    pub fn size(&self) -> u64 {
        match self {
            TypeDesc::Named(p) => p.size(),
            TypeDesc::Contiguous { count, child } => count * child.size(),
            TypeDesc::Vector {
                count,
                blocklen,
                child,
                ..
            }
            | TypeDesc::Hvector {
                count,
                blocklen,
                child,
                ..
            } => count * blocklen * child.size(),
            TypeDesc::Indexed { blocks, child } | TypeDesc::Hindexed { blocks, child } => {
                blocks.iter().map(|&(_, len)| len).sum::<u64>() * child.size()
            }
            TypeDesc::IndexedBlock {
                displacements,
                blocklen,
                child,
            } => displacements.len() as u64 * blocklen * child.size(),
            TypeDesc::Struct { fields } => fields
                .iter()
                .map(|(_, count, child)| count * child.size())
                .sum(),
            TypeDesc::Subarray {
                subsizes, child, ..
            } => subsizes.iter().product::<u64>() * child.size(),
            TypeDesc::Resized { child, .. } => child.size(),
        }
    }

    /// Extent in bytes of one element (`MPI_Type_get_extent`), i.e. the
    /// stride between consecutive elements when `count > 1`. Lower bound is
    /// always zero in this engine.
    pub fn extent(&self) -> u64 {
        match self {
            TypeDesc::Named(p) => p.size(),
            TypeDesc::Contiguous { count, child } => count * child.extent(),
            TypeDesc::Vector {
                count,
                blocklen,
                stride,
                child,
            } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * child.extent()
                }
            }
            TypeDesc::Hvector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                if *count == 0 {
                    0
                } else {
                    (count - 1) * stride_bytes + blocklen * child.extent()
                }
            }
            TypeDesc::Indexed { blocks, child } => blocks
                .iter()
                .map(|&(disp, len)| (disp + len) * child.extent())
                .max()
                .unwrap_or(0),
            TypeDesc::Hindexed { blocks, child } => blocks
                .iter()
                .map(|&(disp, len)| disp + len * child.extent())
                .max()
                .unwrap_or(0),
            TypeDesc::IndexedBlock {
                displacements,
                blocklen,
                child,
            } => displacements
                .iter()
                .map(|&disp| (disp + blocklen) * child.extent())
                .max()
                .unwrap_or(0),
            TypeDesc::Struct { fields } => fields
                .iter()
                .map(|(disp, count, child)| disp + count * child.extent())
                .max()
                .unwrap_or(0),
            TypeDesc::Subarray { sizes, child, .. } => {
                sizes.iter().product::<u64>() * child.extent()
            }
            TypeDesc::Resized { extent, .. } => *extent,
        }
    }

    /// Number of leaf contiguous blocks one element flattens into, *before*
    /// adjacent-segment coalescing (an upper bound). Saturating: deeply
    /// nested constructors can overflow a product of counts long before
    /// they describe a representable layout, and this bound must stay a
    /// bound, not a panic. Pre-sizing uses the *exact* post-normalize run
    /// count from [`crate::ir::LayoutIr::run_count`] instead.
    pub fn leaf_block_upper_bound(&self) -> u64 {
        match self {
            TypeDesc::Named(_) => 1,
            TypeDesc::Contiguous { count, child } => {
                count.saturating_mul(child.leaf_block_upper_bound())
            }
            TypeDesc::Vector {
                count,
                blocklen,
                child,
                ..
            }
            | TypeDesc::Hvector {
                count,
                blocklen,
                child,
                ..
            } => count
                .saturating_mul(*blocklen)
                .saturating_mul(child.leaf_block_upper_bound()),
            TypeDesc::Indexed { blocks, child } | TypeDesc::Hindexed { blocks, child } => blocks
                .iter()
                .map(|&(_, len)| len)
                .fold(0u64, u64::saturating_add)
                .saturating_mul(child.leaf_block_upper_bound()),
            TypeDesc::IndexedBlock {
                displacements,
                blocklen,
                child,
            } => (displacements.len() as u64)
                .saturating_mul(*blocklen)
                .saturating_mul(child.leaf_block_upper_bound()),
            TypeDesc::Struct { fields } => fields
                .iter()
                .map(|(_, count, child)| count.saturating_mul(child.leaf_block_upper_bound()))
                .fold(0u64, u64::saturating_add),
            TypeDesc::Subarray {
                subsizes, child, ..
            } => subsizes
                .iter()
                .fold(1u64, |acc, &s| acc.saturating_mul(s))
                .saturating_mul(child.leaf_block_upper_bound()),
            TypeDesc::Resized { child, .. } => child.leaf_block_upper_bound(),
        }
    }

    /// Is this a (possibly nested) fully contiguous type?
    pub fn is_contiguous(&self) -> bool {
        self.size() == self.true_extent()
    }

    /// Extent ignoring `Resized` overrides (distance from first to last
    /// byte actually touched).
    fn true_extent(&self) -> u64 {
        match self {
            TypeDesc::Resized { child, .. } => child.true_extent(),
            _ => self.extent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    #[test]
    fn primitive_sizes() {
        assert_eq!(Primitive::Byte.size(), 1);
        assert_eq!(Primitive::Int32.size(), 4);
        assert_eq!(Primitive::Float32.size(), 4);
        assert_eq!(Primitive::Float64.size(), 8);
        assert_eq!(Primitive::Complex128.size(), 16);
    }

    #[test]
    fn contiguous_size_and_extent() {
        let t = TypeBuilder::contiguous(10, TypeBuilder::double());
        assert_eq!(t.size(), 80);
        assert_eq!(t.extent(), 80);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_size_vs_extent() {
        // 4 blocks of 2 doubles, stride 5 doubles.
        let t = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        assert_eq!(t.size(), 4 * 2 * 8);
        assert_eq!(t.extent(), ((4 - 1) * 5 + 2) * 8);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn vector_with_unit_stride_is_contiguous() {
        let t = TypeBuilder::vector(4, 1, 1, TypeBuilder::double());
        assert_eq!(t.size(), t.extent());
        assert!(t.is_contiguous());
    }

    #[test]
    fn indexed_extent_is_max_end() {
        // Blocks at element displacements 0(len 2) and 10(len 3) of ints.
        let t = TypeBuilder::indexed(&[(0, 2), (10, 3)], TypeBuilder::int());
        assert_eq!(t.size(), 5 * 4);
        assert_eq!(t.extent(), 13 * 4);
    }

    #[test]
    fn struct_extent_spans_fields() {
        let t =
            TypeBuilder::structure(&[(0, 3, TypeBuilder::float()), (64, 2, TypeBuilder::double())]);
        assert_eq!(t.size(), 3 * 4 + 2 * 8);
        assert_eq!(t.extent(), 64 + 16);
    }

    #[test]
    fn subarray_size_and_extent() {
        // 8x8 array, 3x4 subarray starting at (1,2), ints.
        let t = TypeBuilder::subarray(&[8, 8], &[3, 4], &[1, 2], TypeBuilder::int());
        assert_eq!(t.size(), 12 * 4);
        assert_eq!(t.extent(), 64 * 4);
    }

    #[test]
    fn resized_overrides_extent_only() {
        let inner = TypeBuilder::vector(2, 1, 4, TypeBuilder::int());
        let t = TypeBuilder::resized(64, inner.clone());
        assert_eq!(t.size(), inner.size());
        assert_eq!(t.extent(), 64);
    }

    #[test]
    fn leaf_block_bound_counts_blocks() {
        let t = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        // 4 blocks x 2 doubles each = 8 leaf primitives max.
        assert_eq!(t.leaf_block_upper_bound(), 8);
        let nested = TypeBuilder::vector(3, 1, 2, t);
        assert_eq!(nested.leaf_block_upper_bound(), 24);
    }

    #[test]
    fn empty_vector_has_zero_extent() {
        let t = TypeBuilder::vector(0, 2, 5, TypeBuilder::double());
        assert_eq!(t.extent(), 0);
        assert_eq!(t.size(), 0);
    }
}
