//! Canonical layout IR: strided loop nests over leaf byte runs.
//!
//! TEMPI (PAPERS.md) observes that arbitrary MPI datatype trees — however
//! they were constructed — describe a small family of actual memory
//! shapes, and that *normalizing* the constructor tree into a canonical
//! strided form before lowering unlocks both speed (one analysis, reused
//! everywhere) and generality (every constructor benefits from every fast
//! path). This module is that normalizer.
//!
//! A [`LayoutIr`] is an ordered forest of [`IrNode`]s describing one
//! element in *pack order* (the order MPI packs bytes):
//!
//! * `Run { offset, len }` — one contiguous run of `len` bytes;
//! * `Nest { offset, count, stride, body }` — `count` iterations of
//!   `body`, iteration `i` based at `offset + i * stride`.
//!
//! [`LayoutIr::normalize`] raises a [`TypeDesc`] into raw nodes and then
//! rewrites to a fixed point under four rules, each order-preserving:
//!
//! 1. **fold-degenerate** — empty runs and zero-count nests vanish;
//!    one-count nests inline their body (shifted by the nest offset).
//! 2. **collapse-contiguous** — a nest over a single run whose stride
//!    equals the run length is one big run (`vector(n, b, b, t)` ≡
//!    `contiguous(n*b, t)`).
//! 3. **merge-nests** (uniform-stride hoisting) — a nest over exactly one
//!    inner nest whose iterations tile the outer stride
//!    (`outer.stride == inner.count * inner.stride`) becomes a single
//!    flat nest with the product count. Subarray row/plane loops collapse
//!    to one loop this way.
//! 4. **merge-siblings** — adjacent touching runs coalesce, and runs of
//!    structurally identical siblings at a constant offset delta roll up
//!    into a nest (`indexed_block` with evenly spaced displacements
//!    becomes a vector).
//!
//! The rewrite result is canonical enough that the compile pass
//! ([`crate::compile`]) can classify a layout by *looking at the nodes*
//! instead of pattern-matching constructor trees, and the exact
//! post-rewrite run count ([`LayoutIr::run_count`]) sizes the segment
//! buffer precisely — no more `leaf_block_upper_bound` over-reservation
//! on pathological nested types.

use crate::typedesc::TypeDesc;

/// One node of the canonical layout IR. Offsets are bytes relative to the
/// enclosing iteration's base.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrNode {
    /// A contiguous run of `len` bytes at `offset`.
    Run { offset: u64, len: u64 },
    /// `count` iterations of `body`; iteration `i` is based at
    /// `offset + i * stride`.
    Nest {
        offset: u64,
        count: u64,
        stride: u64,
        body: Vec<IrNode>,
    },
}

impl IrNode {
    /// Shift this node's base offset by `delta`.
    fn shifted(mut self, delta: u64) -> IrNode {
        match &mut self {
            IrNode::Run { offset, .. } | IrNode::Nest { offset, .. } => *offset += delta,
        }
        self
    }

    /// Structural equality ignoring the *top-level* offset (bodies are
    /// compared exactly). Two shape-equal siblings at a constant offset
    /// delta can roll up into a nest.
    fn shape_eq(&self, other: &IrNode) -> bool {
        match (self, other) {
            (IrNode::Run { len: a, .. }, IrNode::Run { len: b, .. }) => a == b,
            (
                IrNode::Nest {
                    count: c1,
                    stride: s1,
                    body: b1,
                    ..
                },
                IrNode::Nest {
                    count: c2,
                    stride: s2,
                    body: b2,
                    ..
                },
            ) => c1 == c2 && s1 == s2 && b1 == b2,
            _ => false,
        }
    }

    /// Top-level offset.
    fn offset(&self) -> u64 {
        match self {
            IrNode::Run { offset, .. } | IrNode::Nest { offset, .. } => *offset,
        }
    }

    /// Exact leaf runs this node emits (saturating on absurd nestings).
    fn run_count(&self) -> u64 {
        match self {
            IrNode::Run { .. } => 1,
            IrNode::Nest { count, body, .. } => {
                count.saturating_mul(body.iter().map(IrNode::run_count).sum())
            }
        }
    }

    /// Payload bytes this node emits.
    fn byte_count(&self) -> u64 {
        match self {
            IrNode::Run { len, .. } => *len,
            IrNode::Nest { count, body, .. } => {
                count.saturating_mul(body.iter().map(IrNode::byte_count).sum())
            }
        }
    }

    /// Nesting depth (a run is depth 1).
    fn depth(&self) -> usize {
        match self {
            IrNode::Run { .. } => 1,
            IrNode::Nest { body, .. } => 1 + body.iter().map(IrNode::depth).max().unwrap_or(0),
        }
    }

    fn for_each_run(&self, base: u64, f: &mut impl FnMut(u64, u64)) {
        match self {
            IrNode::Run { offset, len } => f(base + offset, *len),
            IrNode::Nest {
                offset,
                count,
                stride,
                body,
            } => {
                for i in 0..*count {
                    let b = base + offset + i * stride;
                    for node in body {
                        node.for_each_run(b, f);
                    }
                }
            }
        }
    }
}

/// The canonical (normalized) layout of one datatype element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutIr {
    nodes: Vec<IrNode>,
    size: u64,
    extent: u64,
}

impl LayoutIr {
    /// Raise `desc` into the IR and rewrite to the canonical fixed point.
    pub fn normalize(desc: &TypeDesc) -> LayoutIr {
        let mut nodes = Vec::new();
        raise(desc, 0, &mut nodes);
        let nodes = simplify_to_fixpoint(nodes);
        let ir = LayoutIr {
            nodes,
            size: desc.size(),
            extent: desc.extent(),
        };
        debug_assert_eq!(
            ir.nodes.iter().map(IrNode::byte_count).sum::<u64>(),
            ir.size,
            "rewrite lost bytes"
        );
        ir
    }

    /// The canonical node forest, in pack order.
    pub fn nodes(&self) -> &[IrNode] {
        &self.nodes
    }

    /// Payload bytes per element.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Extent (tiling stride) per element.
    pub fn extent(&self) -> u64 {
        self.extent
    }

    /// Exact number of leaf runs one element emits *after* normalization
    /// (adjacent-run coalescing at emission can only shrink this). This is
    /// the precise pre-allocation bound the flattener uses.
    pub fn run_count(&self) -> u64 {
        self.nodes.iter().map(IrNode::run_count).sum()
    }

    /// Maximum loop-nest depth (1 = flat runs only).
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(IrNode::depth).max().unwrap_or(0)
    }

    /// Visit every `(offset, len)` leaf run of one element, in pack order.
    pub fn for_each_run(&self, mut f: impl FnMut(u64, u64)) {
        for node in &self.nodes {
            node.for_each_run(0, &mut f);
        }
    }
}

/// Raise one constructor level into raw IR nodes, appending to `out`.
fn raise(desc: &TypeDesc, offset: u64, out: &mut Vec<IrNode>) {
    match desc {
        TypeDesc::Named(p) => out.push(IrNode::Run {
            offset,
            len: p.size(),
        }),
        TypeDesc::Contiguous { count, child } => {
            let mut body = Vec::new();
            raise(child, 0, &mut body);
            out.push(IrNode::Nest {
                offset,
                count: *count,
                stride: child.extent(),
                body,
            });
        }
        TypeDesc::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let ext = child.extent();
            raise_strided(child, offset, *count, *blocklen, stride * ext, ext, out);
        }
        TypeDesc::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            let ext = child.extent();
            raise_strided(child, offset, *count, *blocklen, *stride_bytes, ext, out);
        }
        TypeDesc::Indexed { blocks, child } => {
            let ext = child.extent();
            for &(disp, len) in blocks.iter() {
                raise_block(child, offset + disp * ext, len, ext, out);
            }
        }
        TypeDesc::Hindexed { blocks, child } => {
            let ext = child.extent();
            for &(disp, len) in blocks.iter() {
                raise_block(child, offset + disp, len, ext, out);
            }
        }
        TypeDesc::IndexedBlock {
            displacements,
            blocklen,
            child,
        } => {
            let ext = child.extent();
            for &disp in displacements.iter() {
                raise_block(child, offset + disp * ext, *blocklen, ext, out);
            }
        }
        TypeDesc::Struct { fields } => {
            for (disp, count, child) in fields.iter() {
                raise_block(child, offset + disp, *count, child.extent(), out);
            }
        }
        TypeDesc::Subarray {
            sizes,
            subsizes,
            starts,
            child,
        } => {
            // C-order slab: one nest per dimension; dimension d's stride is
            // the row-pitch of everything after it. The start offsets fold
            // into the outermost nest's base.
            let ext = child.extent();
            let ndims = sizes.len();
            let mut pitch = vec![ext; ndims];
            for d in (0..ndims.saturating_sub(1)).rev() {
                pitch[d] = pitch[d + 1] * sizes[d + 1];
            }
            let base: u64 = offset + (0..ndims).map(|d| starts[d] * pitch[d]).sum::<u64>();
            let mut body = Vec::new();
            raise(child, 0, &mut body);
            let mut node = IrNode::Nest {
                offset: 0,
                count: subsizes[ndims - 1],
                stride: pitch[ndims - 1],
                body,
            };
            for d in (0..ndims.saturating_sub(1)).rev() {
                node = IrNode::Nest {
                    offset: 0,
                    count: subsizes[d],
                    stride: pitch[d],
                    body: vec![node],
                };
            }
            out.push(node.shifted(base));
        }
        TypeDesc::Resized { child, .. } => raise(child, offset, out),
    }
}

/// `count` blocks of `blocklen` children, block starts `stride_bytes`
/// apart: the vector/hvector shape.
fn raise_strided(
    child: &TypeDesc,
    offset: u64,
    count: u64,
    blocklen: u64,
    stride_bytes: u64,
    child_ext: u64,
    out: &mut Vec<IrNode>,
) {
    let mut block = Vec::new();
    raise_block(child, 0, blocklen, child_ext, &mut block);
    out.push(IrNode::Nest {
        offset,
        count,
        stride: stride_bytes,
        body: block,
    });
}

/// One run of `count` consecutive children at `offset`.
fn raise_block(child: &TypeDesc, offset: u64, count: u64, child_ext: u64, out: &mut Vec<IrNode>) {
    // Blocks of primitives tile gaplessly (a primitive's extent is its
    // size): emit the collapsed run directly instead of a one-run nest
    // the rewriter would fold anyway. Indexed types raise linearly in
    // block count this way, with no per-block body allocation.
    if let TypeDesc::Named(p) = child {
        out.push(IrNode::Run {
            offset,
            len: count * p.size(),
        });
        return;
    }
    let mut body = Vec::new();
    raise(child, 0, &mut body);
    out.push(IrNode::Nest {
        offset,
        count,
        stride: child_ext,
        body,
    });
}

/// Rewrite to the canonical fixed point, bottom-up: every node's body is
/// canonicalized once (children before parents), the node-local rules
/// (fold-degenerate, collapse-contiguous, merge-nests) run to a local
/// fixed point per node, and the sibling rules (run coalescing, roll-up)
/// iterate per level until that level stops changing. Each subtree is
/// visited exactly once and every pass owns its nodes, so nothing is
/// deep-cloned — the rewrite is linear in tree size times the (small,
/// roll-up-depth-bounded) number of level passes.
fn simplify_to_fixpoint(nodes: Vec<IrNode>) -> Vec<IrNode> {
    canonicalize_siblings(nodes)
}

fn canonicalize_siblings(nodes: Vec<IrNode>) -> Vec<IrNode> {
    let mut flat: Vec<IrNode> = Vec::with_capacity(nodes.len());
    for node in nodes {
        canonicalize_node(node, &mut flat);
    }
    while flat.len() >= 2 {
        let (next, changed) = sibling_pass(flat);
        flat = next;
        if !changed {
            break;
        }
    }
    flat
}

/// Canonicalize one node, appending the result (possibly several inlined
/// nodes, possibly nothing) to `out`.
fn canonicalize_node(node: IrNode, out: &mut Vec<IrNode>) {
    match node {
        IrNode::Run { len: 0, .. } => {} // fold-degenerate: empty run
        run @ IrNode::Run { .. } => out.push(run),
        IrNode::Nest {
            offset,
            count,
            stride,
            body,
        } => {
            if count == 0 {
                return; // fold-degenerate: empty nest
            }
            let body = canonicalize_siblings(body);
            if body.is_empty() {
                return;
            }
            if count == 1 {
                // fold-degenerate: inline a one-iteration nest.
                for child in body {
                    out.push(child.shifted(offset));
                }
                return;
            }
            push_nest(offset, count, stride, body, out);
        }
    }
}

/// Push a nest whose `body` is already canonical (and non-empty, with
/// `count >= 2`), applying the node-local rules to a local fixed point:
///
/// * **collapse-contiguous** — a nest over a single run whose stride
///   equals the run length is one big run.
/// * **merge-nests** — a nest over exactly one inner nest whose
///   iterations tile the outer stride flattens to the product count
///   (and may then collapse-contiguous, hence the loop).
fn push_nest(
    mut offset: u64,
    mut count: u64,
    mut stride: u64,
    mut body: Vec<IrNode>,
    out: &mut Vec<IrNode>,
) {
    loop {
        match body.as_slice() {
            [IrNode::Run {
                offset: ro,
                len: rl,
            }] if stride == *rl => {
                out.push(IrNode::Run {
                    offset: offset + ro,
                    len: count * rl,
                });
                return;
            }
            [IrNode::Nest {
                count: ic,
                stride: is_,
                ..
            }] if stride == ic.saturating_mul(*is_) => {
                let Some(IrNode::Nest {
                    offset: io,
                    count: ic,
                    stride: is_,
                    body: ib,
                }) = body.pop()
                else {
                    unreachable!("single-nest body just matched");
                };
                offset += io;
                count *= ic;
                stride = is_;
                body = ib;
            }
            _ => break,
        }
    }
    out.push(IrNode::Nest {
        offset,
        count,
        stride,
        body,
    });
}

/// One sibling pass over an owned level: adjacent touching runs coalesce,
/// then maximal groups of shape-equal siblings at a constant positive
/// offset delta roll up into nests. Rolled nests go through
/// [`push_nest`], so a roll-up that exposes a merge-nests opportunity
/// (adjacent tiling nests) canonicalizes immediately.
fn sibling_pass(nodes: Vec<IrNode>) -> (Vec<IrNode>, bool) {
    let mut changed = false;

    // merge-siblings (runs): adjacent touching runs coalesce.
    let mut merged: Vec<IrNode> = Vec::with_capacity(nodes.len());
    for node in nodes {
        if let (
            Some(IrNode::Run {
                offset: po,
                len: pl,
            }),
            IrNode::Run { offset, len },
        ) = (merged.last_mut(), &node)
        {
            if *po + *pl == *offset {
                *pl += *len;
                changed = true;
                continue;
            }
        }
        merged.push(node);
    }

    // merge-siblings (roll-up), as a running group over the owned list:
    // `(leader, delta, members, last_offset)`.
    let mut rolled: Vec<IrNode> = Vec::with_capacity(merged.len());
    let mut group: Option<(IrNode, u64, u64, u64)> = None;
    for node in merged {
        group = Some(match group {
            None => (node, 0, 1, 0),
            Some((leader, delta, members, last)) => {
                let off = node.offset();
                let extend = node.shape_eq(&leader)
                    && if members == 1 {
                        off > leader.offset() // only roll forward-marching groups
                    } else {
                        off.wrapping_sub(last) == delta
                    };
                if extend {
                    let d = if members == 1 {
                        off - leader.offset()
                    } else {
                        delta
                    };
                    (leader, d, members + 1, off)
                } else {
                    flush_group(leader, delta, members, &mut rolled, &mut changed);
                    (node, 0, 1, 0)
                }
            }
        });
    }
    if let Some((leader, delta, members, _)) = group {
        flush_group(leader, delta, members, &mut rolled, &mut changed);
    }
    (rolled, changed)
}

/// Emit a finished roll-up group: a singleton passes through unchanged, a
/// group of two or more becomes a nest over the (offset-zeroed) leader.
fn flush_group(
    leader: IrNode,
    delta: u64,
    members: u64,
    out: &mut Vec<IrNode>,
    changed: &mut bool,
) {
    if members >= 2 && delta > 0 {
        let base = leader.offset();
        *changed = true;
        push_nest(base, members, delta, vec![leader.with_offset(0)], out);
    } else {
        out.push(leader);
    }
}

impl IrNode {
    /// This node with its top-level offset replaced.
    fn with_offset(mut self, new: u64) -> IrNode {
        match &mut self {
            IrNode::Run { offset, .. } | IrNode::Nest { offset, .. } => *offset = new,
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    fn runs_of(ir: &LayoutIr) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        ir.for_each_run(|o, l| v.push((o, l)));
        v
    }

    #[test]
    fn primitive_is_one_run() {
        let ir = LayoutIr::normalize(&TypeBuilder::double());
        assert_eq!(ir.nodes(), &[IrNode::Run { offset: 0, len: 8 }]);
        assert_eq!(ir.run_count(), 1);
    }

    #[test]
    fn contiguous_collapses_to_one_run() {
        // contiguous(1M, int) would over-reserve a 1<<20-segment buffer in
        // the legacy flattener; the IR folds it to a single run.
        let ir = LayoutIr::normalize(&TypeBuilder::contiguous(1 << 20, TypeBuilder::int()));
        assert_eq!(
            ir.nodes(),
            &[IrNode::Run {
                offset: 0,
                len: 4 << 20
            }]
        );
        assert_eq!(ir.run_count(), 1);
    }

    #[test]
    fn nested_contiguous_collapses_fully() {
        // contiguous(contiguous(contiguous)) — pathological depth, one run.
        let t = TypeBuilder::contiguous(
            64,
            TypeBuilder::contiguous(64, TypeBuilder::contiguous(64, TypeBuilder::byte())),
        );
        let ir = LayoutIr::normalize(&t);
        assert_eq!(ir.run_count(), 1);
        assert_eq!(runs_of(&ir), vec![(0, 64 * 64 * 64)]);
    }

    #[test]
    fn vector_is_one_flat_nest() {
        // vector(3, 2, 4, int): 3 runs of 8B every 16B.
        let ir = LayoutIr::normalize(&TypeBuilder::vector(3, 2, 4, TypeBuilder::int()));
        assert_eq!(
            ir.nodes(),
            &[IrNode::Nest {
                offset: 0,
                count: 3,
                stride: 16,
                body: vec![IrNode::Run { offset: 0, len: 8 }],
            }]
        );
        assert_eq!(ir.depth(), 2);
        assert_eq!(ir.run_count(), 3);
    }

    #[test]
    fn unit_stride_vector_collapses() {
        let ir = LayoutIr::normalize(&TypeBuilder::vector(5, 2, 2, TypeBuilder::int()));
        assert_eq!(runs_of(&ir), vec![(0, 40)]);
    }

    #[test]
    fn subarray_interior_hoists_row_loops() {
        // Full-width interior rows tile perfectly: the plane and row loops
        // merge into a single uniform-stride nest.
        let t = TypeBuilder::subarray(&[4, 4], &[2, 4], &[1, 0], TypeBuilder::int());
        let ir = LayoutIr::normalize(&t);
        assert_eq!(runs_of(&ir), vec![(16, 32)]);
    }

    #[test]
    fn subarray_column_is_uniform_nest() {
        let t = TypeBuilder::subarray(&[3, 3], &[3, 1], &[0, 0], TypeBuilder::int());
        let ir = LayoutIr::normalize(&t);
        assert_eq!(
            ir.nodes(),
            &[IrNode::Nest {
                offset: 0,
                count: 3,
                stride: 12,
                body: vec![IrNode::Run { offset: 0, len: 4 }],
            }]
        );
    }

    #[test]
    fn evenly_spaced_indexed_block_rolls_into_a_nest() {
        // indexed_block at displacements 0,4,8 (uniform spacing) is a
        // vector in disguise — merge-siblings rolls it up.
        let t = TypeBuilder::indexed_block(&[0, 4, 8], 2, TypeBuilder::float());
        let ir = LayoutIr::normalize(&t);
        assert_eq!(
            ir.nodes(),
            &[IrNode::Nest {
                offset: 0,
                count: 3,
                stride: 16,
                body: vec![IrNode::Run { offset: 0, len: 8 }],
            }]
        );
    }

    #[test]
    fn irregular_indexed_stays_flat() {
        let t = TypeBuilder::indexed(&[(0, 1), (4, 2), (9, 1)], TypeBuilder::float());
        let ir = LayoutIr::normalize(&t);
        assert_eq!(runs_of(&ir), vec![(0, 4), (16, 8), (36, 4)]);
        assert_eq!(ir.run_count(), 3);
    }

    #[test]
    fn runs_match_legacy_flatten_order_and_bytes() {
        let cases = [
            TypeBuilder::vector(7, 3, 5, TypeBuilder::double()),
            TypeBuilder::indexed(&[(0, 2), (4, 1), (9, 5)], TypeBuilder::float()),
            TypeBuilder::subarray(&[5, 7, 3], &[2, 3, 2], &[1, 2, 0], TypeBuilder::int()),
            TypeBuilder::structure(&[
                (0, 4, TypeBuilder::float()),
                (32, 1, TypeBuilder::vector(2, 1, 3, TypeBuilder::int())),
            ]),
            TypeBuilder::hvector(2, 1, 100, TypeBuilder::double()),
        ];
        for t in cases {
            let ir = LayoutIr::normalize(&t);
            let total: u64 = {
                let mut sum = 0;
                ir.for_each_run(|_, l| sum += l);
                sum
            };
            assert_eq!(total, t.size(), "{t:?}");
            assert_eq!(ir.size(), t.size());
            assert_eq!(ir.extent(), t.extent());
        }
    }

    #[test]
    fn run_count_is_exact_not_an_upper_bound() {
        // leaf_block_upper_bound for this shape is 8 (4 blocks x 2 doubles);
        // the IR knows each block coalesces into one run.
        let t = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        assert_eq!(t.leaf_block_upper_bound(), 8);
        assert_eq!(LayoutIr::normalize(&t).run_count(), 4);
    }

    #[test]
    fn resized_changes_extent_only() {
        let inner = TypeBuilder::vector(2, 1, 4, TypeBuilder::int());
        let ir = LayoutIr::normalize(&TypeBuilder::resized(256, inner.clone()));
        assert_eq!(runs_of(&ir), runs_of(&LayoutIr::normalize(&inner)));
        assert_eq!(ir.extent(), 256);
    }
}
