//! # fusedpack-datatype
//!
//! An MPI Derived DataType (DDT) engine: the type constructors of the MPI
//! standard (`contiguous`, `vector`, `hvector`, `indexed`, `hindexed`,
//! `indexed_block`, `struct`, `subarray`, `resized`), *flattening* of a
//! committed type into a list of `(offset, length)` contiguous segments
//! ("flattening on the fly", Träff et al.), a layout cache following the
//! scheme of Chu et al. \[24\], and a host-side reference pack/unpack used
//! both by tests and by the CPU-driven packing paths.
//!
//! The segment list is the lingua franca of the whole workspace: the GPU
//! kernel cost model consumes its [`shape`](layout::Layout::shape), the
//! memory pools consume its absolute segments, and the fusion scheduler
//! carries cached layout references in its request objects.

pub mod builder;
pub mod cache;
pub mod flatten;
pub mod layout;
pub mod pack;
pub mod typedesc;

pub use builder::TypeBuilder;
pub use cache::{CacheStats, LayoutCache, TypeHandle};
pub use layout::{AbsSegments, Layout, Segment, UniformPlan};
pub use typedesc::{Primitive, TypeDesc};
