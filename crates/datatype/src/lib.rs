//! # fusedpack-datatype
//!
//! An MPI Derived DataType (DDT) engine, structured as a three-stage
//! layout compiler:
//!
//! 1. **Normalize** ([`ir`]): the type constructors of the MPI standard
//!    (`contiguous`, `vector`, `hvector`, `indexed`, `hindexed`,
//!    `indexed_block`, `struct`, `subarray`, `resized`) are raised into a
//!    canonical IR — strided loop nests over leaf byte runs — and
//!    rewritten to a fixed point (degenerate constructors fold, adjacent
//!    runs merge, compatible nests hoist into uniform strides).
//! 2. **Compile** ([`compile`]): the IR lowers once into a
//!    [`CompiledLayout`] — the `(offset, length)` segment list
//!    ("flattening on the fly", Träff et al.), packed-offset prefix sums,
//!    a contiguity/uniformity [`LayoutClass`], and the precomputed
//!    [`CopyPlan`] every pack/unpack engine dispatches on.
//! 3. **Cache** ([`cache`]): compiled layouts are cached following the
//!    scheme of Chu et al. \[24\] in a sharded, LRU-bounded
//!    [`LayoutCache`] keyed by structural hash, with per-shard telemetry.
//!
//! The compiled layout is the lingua franca of the whole workspace: the
//! GPU kernel cost model consumes its [`shape`](layout::Layout::shape),
//! the memory pools consume its absolute segments and copy plans, and the
//! fusion scheduler carries cached layout references in its request
//! objects.

pub mod builder;
pub mod cache;
pub mod compile;
pub mod flatten;
pub mod ir;
pub mod layout;
pub mod pack;
pub mod typedesc;

pub use builder::TypeBuilder;
pub use cache::{
    CacheStats, LayoutCache, LayoutCacheConfig, LayoutCacheStats, LayoutShardStats, TypeHandle,
};
pub use compile::{CompiledLayout, CopyPlan, LayoutClass, FIXED_RUN_WIDTH_MAX};
pub use ir::{IrNode, LayoutIr};
pub use layout::{AbsSegments, Layout, Segment, UniformPlan};
pub use typedesc::{Primitive, TypeDesc};
