//! Committed layouts: the flattened form of a datatype, ready for use by
//! packing engines.
//!
//! A [`Layout`] is the unit the paper's layout cache stores and the fusion
//! request objects reference ("data layout: the cached data layout entry,
//! follow the scheme proposed in \[24\]").

use crate::flatten::flatten;
use crate::typedesc::TypeDesc;
use serde::{Deserialize, Serialize};

/// One contiguous run of bytes within an element: `(offset, len)` relative
/// to the element base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    pub offset: u64,
    pub len: u64,
}

/// The flattened, committed form of a datatype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Segments of one element, in pack (traversal) order.
    segments: Vec<Segment>,
    /// Prefix sums of segment lengths: `packed_off[j]` is the byte offset
    /// of segment `j` within the *packed* image of one element. Computed
    /// once at commit time so pack/unpack loops don't re-derive running
    /// cursors (and can jump straight to any segment).
    packed_off: Vec<u64>,
    /// Payload bytes per element.
    size: u64,
    /// Extent (tiling stride) per element.
    extent: u64,
    /// Fixed-stride classification, computed once at commit time: `Some`
    /// when every segment has the same length and consecutive segments sit
    /// a constant stride apart (vectors, subarray rows, regular indexed
    /// types). Copy engines use it to run a chunked fixed-stride loop
    /// instead of walking the segment table per block.
    uniform: Option<UniformInfo>,
}

/// Commit-time fixed-stride classification of one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UniformInfo {
    /// Offset of the first run within the element.
    first: u64,
    /// Distance between consecutive run starts (≥ `len`, so runs never
    /// overlap).
    stride: u64,
    /// Bytes per run.
    len: u64,
    /// Runs per element.
    per_elem: u64,
    /// Whether the stride arithmetic continues across extent-tiled
    /// elements (`extent == per_elem * stride`); when false the plan is
    /// only valid for a single element.
    tiles: bool,
}

/// A resolved fixed-stride copy plan for `count` elements: `runs` copies of
/// `len` bytes whose source offsets start at `first` (relative to the
/// element-base address) and advance by `stride`. The middle tier between
/// "one memcpy" and the generic segment walk — see [`Layout::uniform_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPlan {
    /// Offset of the first run relative to the base address.
    pub first: u64,
    /// Constant distance between consecutive run starts.
    pub stride: u64,
    /// Bytes per run.
    pub len: u64,
    /// Total runs across all `count` elements.
    pub runs: u64,
}

fn classify_uniform(segments: &[Segment], extent: u64) -> Option<UniformInfo> {
    let first = *segments.first()?;
    if first.len == 0 {
        return None;
    }
    let per_elem = segments.len() as u64;
    let stride = if per_elem == 1 {
        extent
    } else {
        segments[1].offset.checked_sub(segments[0].offset)?
    };
    if stride < first.len {
        return None;
    }
    for (j, s) in segments.iter().enumerate() {
        if s.len != first.len || s.offset != first.offset + j as u64 * stride {
            return None;
        }
    }
    Some(UniformInfo {
        first: first.offset,
        stride,
        len: first.len,
        per_elem,
        tiles: extent == per_elem * stride,
    })
}

fn prefix_sums(segments: &[Segment]) -> Vec<u64> {
    let mut off = 0u64;
    segments
        .iter()
        .map(|s| {
            let here = off;
            off += s.len;
            here
        })
        .collect()
}

impl Layout {
    /// Flatten and commit one element of `desc`.
    pub fn of(desc: &TypeDesc) -> Layout {
        let segments = flatten(desc);
        let size = segments.iter().map(|s| s.len).sum();
        debug_assert_eq!(size, desc.size(), "flattening lost bytes");
        let extent = desc.extent();
        Layout {
            packed_off: prefix_sums(&segments),
            uniform: classify_uniform(&segments, extent),
            segments,
            size,
            extent,
        }
    }

    /// Build directly from segments (used by tests and synthetic layouts).
    pub fn from_segments(segments: Vec<Segment>, extent: u64) -> Layout {
        let size = segments.iter().map(|s| s.len).sum();
        Layout {
            packed_off: prefix_sums(&segments),
            uniform: classify_uniform(&segments, extent),
            segments,
            size,
            extent,
        }
    }

    /// Segments of one element.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Packed-image byte offset of each segment within one element
    /// (prefix sums of segment lengths), parallel to [`Self::segments`].
    pub fn packed_offsets(&self) -> &[u64] {
        &self.packed_off
    }

    /// Contiguous blocks per element.
    pub fn num_blocks(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Payload bytes per element.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Extent per element.
    pub fn extent(&self) -> u64 {
        self.extent
    }

    /// Resolve the fixed-stride copy plan for `count` elements, if this
    /// layout has one: all runs equal-length, constant stride, and (for
    /// `count > 1`) the stride arithmetic continuing seamlessly across
    /// extent-tiled elements. Returns `None` for irregular layouts, which
    /// must take the generic segment walk.
    ///
    /// Classification happens once at commit time; this call is a copy of
    /// four words plus one multiply.
    pub fn uniform_for(&self, count: u64) -> Option<UniformPlan> {
        let u = self.uniform.as_ref()?;
        if count > 1 && !u.tiles {
            return None;
        }
        Some(UniformPlan {
            first: u.first,
            stride: u.stride,
            len: u.len,
            runs: u.per_elem * count,
        })
    }

    /// Is one element a single contiguous run starting at offset 0?
    pub fn is_contiguous(&self) -> bool {
        self.segments.len() == 1
            && self.segments[0].offset == 0
            && self.segments[0].len == self.size
    }

    /// Are `count` elements one single contiguous run? Requires each
    /// element to be contiguous *and* elements to tile without gaps
    /// (extent == size) when there is more than one.
    pub fn is_contiguous_for(&self, count: u64) -> bool {
        self.is_contiguous() && (count <= 1 || self.extent == self.size)
    }

    /// Total payload bytes for `count` elements.
    pub fn total_bytes(&self, count: u64) -> u64 {
        self.size * count
    }

    /// Total contiguous blocks for `count` elements (no cross-element
    /// coalescing — elements are extent-tiled, matching what a real packing
    /// kernel sees).
    pub fn total_blocks(&self, count: u64) -> u64 {
        self.num_blocks() * count
    }

    /// Shape summary `(total_bytes, total_blocks)` for `count` elements, in
    /// the form the GPU kernel cost model consumes.
    pub fn shape(&self, count: u64) -> (u64, u64) {
        (self.total_bytes(count), self.total_blocks(count))
    }

    /// Absolute `(address, len)` segments for `count` elements based at
    /// `base`, in pack order. This is the gather/scatter plan handed to the
    /// memory pools.
    pub fn absolute_segments(&self, base: u64, count: u64) -> Vec<(u64, u64)> {
        self.abs_segments(base, count).collect()
    }

    /// Iterator form of [`Self::absolute_segments`]: yields the same
    /// `(address, len)` plan in the same order without materialising a
    /// `Vec` — the allocation-free path for per-message gather/scatter.
    pub fn abs_segments(&self, base: u64, count: u64) -> AbsSegments<'_> {
        AbsSegments {
            layout: self,
            base,
            count,
            elem: 0,
            seg: 0,
        }
    }

    /// The footprint in bytes that `count` elements occupy in memory
    /// (`(count-1)*extent + last element's reach`).
    pub fn footprint(&self, count: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let reach = self
            .segments
            .iter()
            .map(|s| s.offset + s.len)
            .max()
            .unwrap_or(0);
        (count - 1) * self.extent + reach.max(self.extent)
    }
}

/// Borrowing iterator over the absolute `(address, len)` gather/scatter
/// plan of `count` extent-tiled elements. See [`Layout::abs_segments`].
#[derive(Debug, Clone)]
pub struct AbsSegments<'a> {
    layout: &'a Layout,
    base: u64,
    count: u64,
    elem: u64,
    seg: usize,
}

impl Iterator for AbsSegments<'_> {
    type Item = (u64, u64);

    #[inline]
    fn next(&mut self) -> Option<(u64, u64)> {
        if self.elem >= self.count || self.layout.segments.is_empty() {
            return None;
        }
        let s = self.layout.segments[self.seg];
        let addr = self.base + self.elem * self.layout.extent + s.offset;
        self.seg += 1;
        if self.seg == self.layout.segments.len() {
            self.seg = 0;
            self.elem += 1;
        }
        Some((addr, s.len))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let per_elem = self.layout.segments.len();
        let done = self.elem as usize * per_elem + self.seg;
        let total = self.count as usize * per_elem;
        let left = total - done;
        (left, Some(left))
    }
}

impl ExactSizeIterator for AbsSegments<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    #[test]
    fn layout_of_vector() {
        let t = TypeBuilder::vector(3, 2, 4, TypeBuilder::int());
        let l = Layout::of(&t);
        assert_eq!(l.num_blocks(), 3);
        assert_eq!(l.size(), 24);
        assert_eq!(l.extent(), ((3 - 1) * 4 + 2) * 4);
        assert!(!l.is_contiguous());
    }

    #[test]
    fn contiguous_layout_detected() {
        let l = Layout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
        assert!(l.is_contiguous());
        assert_eq!(l.shape(4), (512, 4));
    }

    #[test]
    fn absolute_segments_tile_by_extent() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::int()); // segs (0,4),(12,4), extent 16
        let l = Layout::of(&t);
        let abs = l.absolute_segments(1000, 2);
        assert_eq!(abs, vec![(1000, 4), (1012, 4), (1016, 4), (1028, 4)]);
    }

    #[test]
    fn shape_scales_with_count() {
        let t = TypeBuilder::indexed(&[(0, 1), (4, 2), (9, 1)], TypeBuilder::float());
        let l = Layout::of(&t);
        assert_eq!(l.shape(1), (16, 3));
        assert_eq!(l.shape(10), (160, 30));
    }

    #[test]
    fn footprint_covers_all_segments() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::int());
        let l = Layout::of(&t);
        // extent 16, reach 16 -> 2 elements: 32 bytes.
        assert_eq!(l.footprint(2), 32);
        assert_eq!(l.footprint(0), 0);
        // Every absolute segment must fall inside the footprint.
        for count in [1u64, 2, 5] {
            let fp = l.footprint(count);
            for (addr, len) in l.absolute_segments(0, count) {
                assert!(addr + len <= fp, "segment ({addr},{len}) outside {fp}");
            }
        }
    }

    #[test]
    fn contiguous_for_count_requires_gapless_tiling() {
        // One element of a 1x1 subarray of a 3x3 grid is contiguous, but
        // its extent (the full grid) leaves gaps between elements.
        let t = TypeBuilder::subarray(&[3, 3], &[1, 1], &[0, 0], TypeBuilder::int());
        let l = Layout::of(&t);
        assert!(l.is_contiguous());
        assert!(l.is_contiguous_for(1));
        assert!(!l.is_contiguous_for(2), "extent 36 != size 4");

        let packed = Layout::of(&TypeBuilder::contiguous(4, TypeBuilder::int()));
        assert!(packed.is_contiguous_for(10));
    }

    #[test]
    fn abs_segments_iterator_matches_vec_form() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::int());
        let l = Layout::of(&t);
        for count in [0u64, 1, 2, 7] {
            let it = l.abs_segments(1000, count);
            assert_eq!(it.len() as u64, l.total_blocks(count));
            assert_eq!(
                it.collect::<Vec<_>>(),
                l.absolute_segments(1000, count),
                "count={count}"
            );
        }
    }

    #[test]
    fn packed_offsets_are_prefix_sums() {
        let t = TypeBuilder::indexed(&[(0, 1), (4, 2), (9, 1)], TypeBuilder::float());
        let l = Layout::of(&t);
        assert_eq!(l.packed_offsets(), &[0, 4, 12]);
        assert_eq!(l.packed_offsets().len(), l.segments().len());
        let contig = Layout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
        assert_eq!(contig.packed_offsets(), &[0]);
    }

    #[test]
    fn uniform_plan_covers_vectors_and_rejects_irregular() {
        // vector(3, 2, 4, int): runs of 8 bytes every 16, extent 40 — the
        // canonical fixed-stride shape, but trailing-gap-free extent means
        // tiling breaks (extent 40 != 3*16).
        let v = Layout::of(&TypeBuilder::vector(3, 2, 4, TypeBuilder::int()));
        let one = v.uniform_for(1).expect("vector is uniform");
        assert_eq!((one.first, one.stride, one.len, one.runs), (0, 16, 8, 3));
        assert!(v.uniform_for(2).is_none(), "extent 40 breaks the stride");

        // A subarray column: rows of 4 bytes every 12, and the extent (36)
        // continues the stride across elements — uniform for any count.
        let col = Layout::of(&TypeBuilder::subarray(
            &[3, 3],
            &[3, 1],
            &[0, 0],
            TypeBuilder::int(),
        ));
        let p = col.uniform_for(4).expect("column tiles uniformly");
        assert_eq!((p.first, p.stride, p.len, p.runs), (0, 12, 4, 12));

        // Irregular indexed layout: unequal lengths, no plan.
        let irr = Layout::of(&TypeBuilder::indexed(
            &[(0, 1), (4, 2), (9, 1)],
            TypeBuilder::float(),
        ));
        assert!(irr.uniform_for(1).is_none());

        // Regular indexed layout: equal lengths at constant spacing.
        let reg = Layout::of(&TypeBuilder::indexed(
            &[(0, 1), (3, 1), (6, 1)],
            TypeBuilder::float(),
        ));
        let p = reg.uniform_for(1).expect("evenly spaced blocks");
        assert_eq!((p.first, p.stride, p.len, p.runs), (0, 12, 4, 3));
    }

    #[test]
    fn uniform_plan_enumerates_exactly_the_absolute_segments() {
        let t = TypeBuilder::subarray(&[4, 4], &[4, 2], &[0, 0], TypeBuilder::double());
        let l = Layout::of(&t);
        for count in [1u64, 2, 3] {
            let Some(p) = l.uniform_for(count) else {
                panic!("subarray columns are uniform");
            };
            let walked: Vec<(u64, u64)> = (0..p.runs)
                .map(|i| (1000 + p.first + i * p.stride, p.len))
                .collect();
            assert_eq!(walked, l.absolute_segments(1000, count), "count={count}");
        }
    }

    #[test]
    fn from_segments_roundtrip() {
        let l = Layout::from_segments(
            vec![
                Segment { offset: 4, len: 8 },
                Segment { offset: 20, len: 8 },
            ],
            32,
        );
        assert_eq!(l.size(), 16);
        assert_eq!(l.extent(), 32);
        assert_eq!(l.num_blocks(), 2);
        assert!(!l.is_contiguous());
    }
}
