//! Committed layouts: the compiled form of a datatype, ready for use by
//! packing engines.
//!
//! A [`Layout`] is the unit the paper's layout cache stores and the fusion
//! request objects reference ("data layout: the cached data layout entry,
//! follow the scheme proposed in \[24\]"). Since the layout-compiler
//! refactor it is an alias for [`CompiledLayout`](crate::compile::CompiledLayout):
//! the product of normalizing a [`TypeDesc`](crate::typedesc::TypeDesc)
//! tree into the canonical IR ([`crate::ir`]) and lowering it once
//! ([`crate::compile`]). This module keeps the shared plain-data types —
//! [`Segment`] and [`UniformPlan`] — and the legacy name.

use serde::{Deserialize, Serialize};

pub use crate::compile::{AbsSegments, CompiledLayout};

/// The committed form of a datatype (alias of [`CompiledLayout`], the
/// historical name used throughout the workspace).
pub type Layout = CompiledLayout;

/// One contiguous run of bytes within an element: `(offset, len)` relative
/// to the element base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    pub offset: u64,
    pub len: u64,
}

/// A resolved fixed-stride copy plan for `count` elements: `runs` copies of
/// `len` bytes whose source offsets start at `first` (relative to the
/// element-base address) and advance by `stride`. The middle tiers between
/// "one memcpy" and the generic segment walk — see
/// [`CompiledLayout::uniform_for`] and [`CompiledLayout::plan_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPlan {
    /// Offset of the first run relative to the base address.
    pub first: u64,
    /// Constant distance between consecutive run starts.
    pub stride: u64,
    /// Bytes per run.
    pub len: u64,
    /// Total runs across all `count` elements.
    pub runs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    #[test]
    fn layout_of_vector() {
        let t = TypeBuilder::vector(3, 2, 4, TypeBuilder::int());
        let l = Layout::of(&t);
        assert_eq!(l.num_blocks(), 3);
        assert_eq!(l.size(), 24);
        assert_eq!(l.extent(), ((3 - 1) * 4 + 2) * 4);
        assert!(!l.is_contiguous());
    }

    #[test]
    fn contiguous_layout_detected() {
        let l = Layout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
        assert!(l.is_contiguous());
        assert_eq!(l.shape(4), (512, 4));
    }

    #[test]
    fn absolute_segments_tile_by_extent() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::int()); // segs (0,4),(12,4), extent 16
        let l = Layout::of(&t);
        let abs = l.absolute_segments(1000, 2);
        assert_eq!(abs, vec![(1000, 4), (1012, 4), (1016, 4), (1028, 4)]);
    }

    #[test]
    fn shape_scales_with_count() {
        let t = TypeBuilder::indexed(&[(0, 1), (4, 2), (9, 1)], TypeBuilder::float());
        let l = Layout::of(&t);
        assert_eq!(l.shape(1), (16, 3));
        assert_eq!(l.shape(10), (160, 30));
    }

    #[test]
    fn footprint_covers_all_segments() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::int());
        let l = Layout::of(&t);
        // extent 16, reach 16 -> 2 elements: 32 bytes.
        assert_eq!(l.footprint(2), 32);
        assert_eq!(l.footprint(0), 0);
        // Every absolute segment must fall inside the footprint.
        for count in [1u64, 2, 5] {
            let fp = l.footprint(count);
            for (addr, len) in l.absolute_segments(0, count) {
                assert!(addr + len <= fp, "segment ({addr},{len}) outside {fp}");
            }
        }
    }

    #[test]
    fn contiguous_for_count_requires_gapless_tiling() {
        // One element of a 1x1 subarray of a 3x3 grid is contiguous, but
        // its extent (the full grid) leaves gaps between elements.
        let t = TypeBuilder::subarray(&[3, 3], &[1, 1], &[0, 0], TypeBuilder::int());
        let l = Layout::of(&t);
        assert!(l.is_contiguous());
        assert!(l.is_contiguous_for(1));
        assert!(!l.is_contiguous_for(2), "extent 36 != size 4");

        let packed = Layout::of(&TypeBuilder::contiguous(4, TypeBuilder::int()));
        assert!(packed.is_contiguous_for(10));
    }

    #[test]
    fn abs_segments_iterator_matches_vec_form() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::int());
        let l = Layout::of(&t);
        for count in [0u64, 1, 2, 7] {
            let it = l.abs_segments(1000, count);
            assert_eq!(it.len() as u64, l.total_blocks(count));
            assert_eq!(
                it.collect::<Vec<_>>(),
                l.absolute_segments(1000, count),
                "count={count}"
            );
        }
    }

    #[test]
    fn packed_offsets_are_prefix_sums() {
        let t = TypeBuilder::indexed(&[(0, 1), (4, 2), (9, 1)], TypeBuilder::float());
        let l = Layout::of(&t);
        assert_eq!(l.packed_offsets(), &[0, 4, 12]);
        assert_eq!(l.packed_offsets().len(), l.segments().len());
        let contig = Layout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
        assert_eq!(contig.packed_offsets(), &[0]);
    }

    #[test]
    fn uniform_plan_covers_vectors_and_rejects_irregular() {
        // vector(3, 2, 4, int): runs of 8 bytes every 16, extent 40 — the
        // canonical fixed-stride shape, but trailing-gap-free extent means
        // tiling breaks (extent 40 != 3*16).
        let v = Layout::of(&TypeBuilder::vector(3, 2, 4, TypeBuilder::int()));
        let one = v.uniform_for(1).expect("vector is uniform");
        assert_eq!((one.first, one.stride, one.len, one.runs), (0, 16, 8, 3));
        assert!(v.uniform_for(2).is_none(), "extent 40 breaks the stride");

        // A subarray column: rows of 4 bytes every 12, and the extent (36)
        // continues the stride across elements — uniform for any count.
        let col = Layout::of(&TypeBuilder::subarray(
            &[3, 3],
            &[3, 1],
            &[0, 0],
            TypeBuilder::int(),
        ));
        let p = col.uniform_for(4).expect("column tiles uniformly");
        assert_eq!((p.first, p.stride, p.len, p.runs), (0, 12, 4, 12));

        // Irregular indexed layout: unequal lengths, no plan.
        let irr = Layout::of(&TypeBuilder::indexed(
            &[(0, 1), (4, 2), (9, 1)],
            TypeBuilder::float(),
        ));
        assert!(irr.uniform_for(1).is_none());

        // Regular indexed layout: equal lengths at constant spacing.
        let reg = Layout::of(&TypeBuilder::indexed(
            &[(0, 1), (3, 1), (6, 1)],
            TypeBuilder::float(),
        ));
        let p = reg.uniform_for(1).expect("evenly spaced blocks");
        assert_eq!((p.first, p.stride, p.len, p.runs), (0, 12, 4, 3));
    }

    #[test]
    fn uniform_plan_enumerates_exactly_the_absolute_segments() {
        let t = TypeBuilder::subarray(&[4, 4], &[4, 2], &[0, 0], TypeBuilder::double());
        let l = Layout::of(&t);
        for count in [1u64, 2, 3] {
            let Some(p) = l.uniform_for(count) else {
                panic!("subarray columns are uniform");
            };
            let walked: Vec<(u64, u64)> = (0..p.runs)
                .map(|i| (1000 + p.first + i * p.stride, p.len))
                .collect();
            assert_eq!(walked, l.absolute_segments(1000, count), "count={count}");
        }
    }

    #[test]
    fn from_segments_roundtrip() {
        let l = Layout::from_segments(
            vec![
                Segment { offset: 4, len: 8 },
                Segment { offset: 20, len: 8 },
            ],
            32,
        );
        assert_eq!(l.size(), 16);
        assert_eq!(l.extent(), 32);
        assert_eq!(l.num_blocks(), 2);
        assert!(!l.is_contiguous());
    }
}
