//! Ergonomic constructors mirroring the `MPI_Type_create_*` calls.

use crate::typedesc::{Primitive, TypeDesc};
use std::sync::Arc;

/// Namespace for datatype constructors. All constructors return
/// `Arc<TypeDesc>` so types compose cheaply.
pub struct TypeBuilder;

impl TypeBuilder {
    /// `MPI_BYTE`.
    pub fn byte() -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Named(Primitive::Byte))
    }

    /// `MPI_INT`.
    pub fn int() -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Named(Primitive::Int32))
    }

    /// `MPI_FLOAT`.
    pub fn float() -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Named(Primitive::Float32))
    }

    /// `MPI_DOUBLE`.
    pub fn double() -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Named(Primitive::Float64))
    }

    /// A 16-byte complex-double.
    pub fn complex() -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Named(Primitive::Complex128))
    }

    /// `MPI_Type_contiguous(count, child)`.
    pub fn contiguous(count: u64, child: Arc<TypeDesc>) -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Contiguous { count, child })
    }

    /// `MPI_Type_vector(count, blocklen, stride, child)`; `stride` in units
    /// of the child extent. Requires `stride >= blocklen` (no overlap).
    pub fn vector(count: u64, blocklen: u64, stride: u64, child: Arc<TypeDesc>) -> Arc<TypeDesc> {
        assert!(
            count == 0 || stride >= blocklen,
            "overlapping vector: stride {stride} < blocklen {blocklen}"
        );
        Arc::new(TypeDesc::Vector {
            count,
            blocklen,
            stride,
            child,
        })
    }

    /// `MPI_Type_create_hvector`; stride in bytes.
    pub fn hvector(
        count: u64,
        blocklen: u64,
        stride_bytes: u64,
        child: Arc<TypeDesc>,
    ) -> Arc<TypeDesc> {
        assert!(
            count == 0 || stride_bytes >= blocklen * child.extent(),
            "overlapping hvector"
        );
        Arc::new(TypeDesc::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        })
    }

    /// `MPI_Type_indexed(blocks, child)`; `(displacement, blocklen)` pairs
    /// in units of the child extent. Displacements must be non-decreasing
    /// and non-overlapping (the halo layouts we model always are; this keeps
    /// pack order == address order).
    pub fn indexed(blocks: &[(u64, u64)], child: Arc<TypeDesc>) -> Arc<TypeDesc> {
        for w in blocks.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "indexed blocks must be sorted and disjoint: {w:?}"
            );
        }
        Arc::new(TypeDesc::Indexed {
            blocks: blocks.into(),
            child,
        })
    }

    /// `MPI_Type_create_hindexed`; displacements in bytes.
    pub fn hindexed(blocks: &[(u64, u64)], child: Arc<TypeDesc>) -> Arc<TypeDesc> {
        let ext = child.extent();
        for w in blocks.windows(2) {
            assert!(
                w[0].0 + w[0].1 * ext <= w[1].0,
                "hindexed blocks must be sorted and disjoint: {w:?}"
            );
        }
        Arc::new(TypeDesc::Hindexed {
            blocks: blocks.into(),
            child,
        })
    }

    /// `MPI_Type_create_indexed_block`.
    pub fn indexed_block(
        displacements: &[u64],
        blocklen: u64,
        child: Arc<TypeDesc>,
    ) -> Arc<TypeDesc> {
        for w in displacements.windows(2) {
            assert!(
                w[0] + blocklen <= w[1],
                "indexed_block displacements must be sorted and disjoint"
            );
        }
        Arc::new(TypeDesc::IndexedBlock {
            displacements: displacements.into(),
            blocklen,
            child,
        })
    }

    /// `MPI_Type_create_struct(fields)`; `(byte displacement, count, child)`
    /// triples, sorted by displacement.
    pub fn structure(fields: &[(u64, u64, Arc<TypeDesc>)]) -> Arc<TypeDesc> {
        for w in fields.windows(2) {
            assert!(
                w[0].0 + w[0].1 * w[0].2.extent() <= w[1].0,
                "struct fields must be sorted and disjoint"
            );
        }
        Arc::new(TypeDesc::Struct {
            fields: fields.into(),
        })
    }

    /// `MPI_Type_create_subarray` with C (row-major) order.
    pub fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        child: Arc<TypeDesc>,
    ) -> Arc<TypeDesc> {
        assert_eq!(sizes.len(), subsizes.len());
        assert_eq!(sizes.len(), starts.len());
        assert!(!sizes.is_empty(), "subarray needs at least one dimension");
        for i in 0..sizes.len() {
            assert!(
                starts[i] + subsizes[i] <= sizes[i],
                "subarray dim {i}: start {} + subsize {} > size {}",
                starts[i],
                subsizes[i],
                sizes[i]
            );
        }
        Arc::new(TypeDesc::Subarray {
            sizes: sizes.into(),
            subsizes: subsizes.into(),
            starts: starts.into(),
            child,
        })
    }

    /// `MPI_Type_create_resized(0, extent, child)`.
    pub fn resized(extent: u64, child: Arc<TypeDesc>) -> Arc<TypeDesc> {
        Arc::new(TypeDesc::Resized { extent, child })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "overlapping vector")]
    fn overlapping_vector_rejected() {
        TypeBuilder::vector(2, 4, 2, TypeBuilder::int());
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn unsorted_indexed_rejected() {
        TypeBuilder::indexed(&[(10, 2), (0, 2)], TypeBuilder::int());
    }

    #[test]
    #[should_panic(expected = "subarray dim")]
    fn out_of_bounds_subarray_rejected() {
        TypeBuilder::subarray(&[4, 4], &[2, 2], &[3, 0], TypeBuilder::int());
    }

    #[test]
    fn nested_composition_works() {
        // MILC-style nested vector: vector of vectors of complex.
        let inner = TypeBuilder::vector(4, 2, 8, TypeBuilder::complex());
        let outer = TypeBuilder::vector(3, 1, 2, inner);
        assert!(outer.size() > 0);
        assert!(outer.extent() > outer.size());
    }
}
