//! Flattening a datatype tree into contiguous segments.
//!
//! "Flattening on the fly" (Träff et al., the paper's ref \[35\]): a committed
//! type is lowered to an ordered list of `(byte offset, byte length)`
//! segments describing one element. Segments are emitted in *traversal*
//! order — the order MPI packs bytes — and adjacent segments that happen to
//! be contiguous in memory are coalesced as they are emitted, so a
//! `vector(count, blocklen=stride, ...)` collapses to a single segment.
//!
//! [`flatten`] routes through the canonical IR ([`crate::ir`]): the tree is
//! normalized once (which already coalesces everything the rewrite rules
//! can see) and the leaf runs are emitted through the coalescing
//! [`Emitter`], which mops up any cross-node adjacency the node-local
//! rules could not. The pre-IR direct tree walk is kept as
//! [`flatten_reference`] — the independent ground truth the IR property
//! tests compare against.

use crate::ir::LayoutIr;
use crate::layout::Segment;
use crate::typedesc::TypeDesc;

/// Flatten one element of `desc` into segments via the canonical IR.
/// Offsets are relative to the element base.
pub fn flatten(desc: &TypeDesc) -> Vec<Segment> {
    emit_ir_segments(&LayoutIr::normalize(desc))
}

/// Emit the coalesced segment list of a normalized IR. The IR's exact
/// post-rewrite run count sizes the buffer precisely (coalescing can only
/// shrink it) — unlike the legacy `leaf_block_upper_bound` clamp, which
/// over-reserved by the full pre-coalesce leaf count on pathological
/// nested types (e.g. a deeply nested `contiguous` that flattens to one
/// run).
pub(crate) fn emit_ir_segments(ir: &LayoutIr) -> Vec<Segment> {
    let cap = usize::try_from(ir.run_count()).unwrap_or(usize::MAX);
    let mut out = Vec::with_capacity(cap.min(1 << 16));
    let mut emitter = Emitter { out: &mut out };
    ir.for_each_run(|offset, len| emitter.emit(offset, len));
    out
}

/// Flatten one element of `desc` by walking the constructor tree directly
/// (the pre-IR implementation). Kept as an independently-derived reference
/// for property tests; production code uses [`flatten`].
pub fn flatten_reference(desc: &TypeDesc) -> Vec<Segment> {
    let mut out = Vec::with_capacity(desc.leaf_block_upper_bound().min(1 << 16) as usize);
    let mut emitter = Emitter { out: &mut out };
    walk(desc, 0, &mut emitter);
    out
}

struct Emitter<'a> {
    out: &'a mut Vec<Segment>,
}

impl Emitter<'_> {
    /// Emit a segment, coalescing with the previous one when contiguous.
    fn emit(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.out.last_mut() {
            if last.offset + last.len == offset {
                last.len += len;
                return;
            }
        }
        self.out.push(Segment { offset, len });
    }
}

fn walk(desc: &TypeDesc, base: u64, em: &mut Emitter<'_>) {
    match desc {
        TypeDesc::Named(p) => em.emit(base, p.size()),
        TypeDesc::Contiguous { count, child } => {
            let ext = child.extent();
            // Like `walk_block`: the single-run shortcut also needs the
            // child to tile gaplessly (`size == extent`), otherwise a
            // `resized` child's padding must separate the copies.
            if child.is_contiguous() && child.size() == ext {
                em.emit(base, count * child.size());
            } else {
                for i in 0..*count {
                    walk(child, base + i * ext, em);
                }
            }
        }
        TypeDesc::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let ext = child.extent();
            walk_strided(child, base, *count, *blocklen, stride * ext, ext, em);
        }
        TypeDesc::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            let ext = child.extent();
            walk_strided(child, base, *count, *blocklen, *stride_bytes, ext, em);
        }
        TypeDesc::Indexed { blocks, child } => {
            let ext = child.extent();
            for &(disp, len) in blocks.iter() {
                walk_block(child, base + disp * ext, len, ext, em);
            }
        }
        TypeDesc::Hindexed { blocks, child } => {
            let ext = child.extent();
            for &(disp, len) in blocks.iter() {
                walk_block(child, base + disp, len, ext, em);
            }
        }
        TypeDesc::IndexedBlock {
            displacements,
            blocklen,
            child,
        } => {
            let ext = child.extent();
            for &disp in displacements.iter() {
                walk_block(child, base + disp * ext, *blocklen, ext, em);
            }
        }
        TypeDesc::Struct { fields } => {
            for (disp, count, child) in fields.iter() {
                let ext = child.extent();
                walk_block(child, base + disp, *count, ext, em);
            }
        }
        TypeDesc::Subarray {
            sizes,
            subsizes,
            starts,
            child,
        } => {
            walk_subarray(sizes, subsizes, starts, child, base, 0, 0, em);
        }
        TypeDesc::Resized { child, .. } => walk(child, base, em),
    }
}

/// `count` blocks of `blocklen` children, block starts `stride_bytes` apart.
fn walk_strided(
    child: &TypeDesc,
    base: u64,
    count: u64,
    blocklen: u64,
    stride_bytes: u64,
    child_ext: u64,
    em: &mut Emitter<'_>,
) {
    for i in 0..count {
        walk_block(child, base + i * stride_bytes, blocklen, child_ext, em);
    }
}

/// One run of `count` consecutive children at `base`.
fn walk_block(child: &TypeDesc, base: u64, count: u64, child_ext: u64, em: &mut Emitter<'_>) {
    if child.is_contiguous() && child.size() == child_ext {
        em.emit(base, count * child.size());
    } else {
        for i in 0..count {
            walk(child, base + i * child_ext, em);
        }
    }
}

/// Row-major traversal of an n-dimensional subarray.
#[allow(clippy::too_many_arguments)]
fn walk_subarray(
    sizes: &[u64],
    subsizes: &[u64],
    starts: &[u64],
    child: &TypeDesc,
    base: u64,
    dim: usize,
    index_offset: u64,
    em: &mut Emitter<'_>,
) {
    let ext = child.extent();
    if dim == sizes.len() - 1 {
        // Innermost dimension: one contiguous run of `subsizes[dim]` children.
        let elem = index_offset * sizes[dim] + starts[dim];
        walk_block(child, base + elem * ext, subsizes[dim], ext, em);
        return;
    }
    for i in 0..subsizes[dim] {
        walk_subarray(
            sizes,
            subsizes,
            starts,
            child,
            base,
            dim + 1,
            (index_offset * sizes[dim]) + starts[dim] + i,
            em,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;
    use crate::layout::Segment;

    fn segs(v: &[(u64, u64)]) -> Vec<Segment> {
        v.iter()
            .map(|&(offset, len)| Segment { offset, len })
            .collect()
    }

    #[test]
    fn primitive_is_one_segment() {
        assert_eq!(flatten(&TypeBuilder::double()), segs(&[(0, 8)]));
    }

    #[test]
    fn contiguous_coalesces_to_one_segment() {
        let t = TypeBuilder::contiguous(100, TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(0, 400)]));
    }

    #[test]
    fn vector_emits_count_blocks() {
        // 3 blocks of 2 ints, stride 4 ints.
        let t = TypeBuilder::vector(3, 2, 4, TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(0, 8), (16, 8), (32, 8)]));
    }

    #[test]
    fn unit_stride_vector_coalesces() {
        let t = TypeBuilder::vector(5, 2, 2, TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(0, 40)]));
    }

    #[test]
    fn hvector_uses_byte_stride() {
        let t = TypeBuilder::hvector(2, 1, 100, TypeBuilder::double());
        assert_eq!(flatten(&t), segs(&[(0, 8), (100, 8)]));
    }

    #[test]
    fn indexed_respects_displacements() {
        let t = TypeBuilder::indexed(&[(0, 2), (5, 1), (8, 3)], TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(0, 8), (20, 4), (32, 12)]));
    }

    #[test]
    fn adjacent_indexed_blocks_coalesce() {
        let t = TypeBuilder::indexed(&[(0, 2), (2, 3)], TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(0, 20)]));
    }

    #[test]
    fn indexed_block_constant_length() {
        let t = TypeBuilder::indexed_block(&[0, 4, 8], 2, TypeBuilder::float());
        assert_eq!(flatten(&t), segs(&[(0, 8), (16, 8), (32, 8)]));
    }

    #[test]
    fn struct_on_indexed_nests() {
        // specfem3D_cm-style: struct of two indexed fields.
        let idx = TypeBuilder::indexed(&[(0, 1), (3, 1)], TypeBuilder::float());
        let t = TypeBuilder::structure(&[(0, 1, idx.clone()), (64, 1, idx)]);
        assert_eq!(flatten(&t), segs(&[(0, 4), (12, 4), (64, 4), (76, 4)]));
    }

    #[test]
    fn nested_vector_of_vector() {
        // Outer: 2 elements of inner, stride 2 inner-extents.
        // Inner: 2 blocks of 1 int, stride 3 ints (extent 16B... compute).
        let inner = TypeBuilder::vector(2, 1, 3, TypeBuilder::int()); // ext (1*3+1-3)->((2-1)*3+1)*4=16
        let outer = TypeBuilder::vector(2, 1, 2, inner);
        // inner segments: (0,4),(12,4); outer tiles at 0 and 32.
        assert_eq!(flatten(&outer), segs(&[(0, 4), (12, 4), (32, 4), (44, 4)]));
    }

    #[test]
    fn subarray_2d_rows() {
        // 4x6 ints, subarray 2x3 at (1,2): rows at elements 8..11 and 14..17.
        let t = TypeBuilder::subarray(&[4, 6], &[2, 3], &[1, 2], TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(32, 12), (56, 12)]));
    }

    #[test]
    fn subarray_3d_planes() {
        // 3x3x3 doubles, 1x2x2 subarray at (1,0,1).
        let t = TypeBuilder::subarray(&[3, 3, 3], &[1, 2, 2], &[1, 0, 1], TypeBuilder::double());
        // plane k=1: rows (1,0,1..3) elem 9*1+0+... elements: (1*3+0)*3+1=10 len2; (1*3+1)*3+1=13 len2
        assert_eq!(flatten(&t), segs(&[(80, 16), (104, 16)]));
    }

    #[test]
    fn full_subarray_coalesces_fully() {
        let t = TypeBuilder::subarray(&[4, 4], &[4, 4], &[0, 0], TypeBuilder::int());
        assert_eq!(flatten(&t), segs(&[(0, 64)]));
    }

    #[test]
    fn total_flattened_bytes_equals_type_size() {
        let layouts = [
            TypeBuilder::vector(7, 3, 5, TypeBuilder::double()),
            TypeBuilder::indexed(&[(0, 2), (4, 1), (9, 5)], TypeBuilder::float()),
            TypeBuilder::subarray(&[5, 7, 3], &[2, 3, 2], &[1, 2, 0], TypeBuilder::int()),
            TypeBuilder::structure(&[
                (0, 4, TypeBuilder::float()),
                (32, 1, TypeBuilder::vector(2, 1, 3, TypeBuilder::int())),
            ]),
        ];
        for t in layouts {
            let total: u64 = flatten(&t).iter().map(|s| s.len).sum();
            assert_eq!(total, t.size(), "{t:?}");
        }
    }

    #[test]
    fn resized_does_not_change_segments() {
        let inner = TypeBuilder::vector(2, 1, 4, TypeBuilder::int());
        let t = TypeBuilder::resized(256, inner.clone());
        assert_eq!(flatten(&t), flatten(&inner));
    }
}
