//! Host-side reference pack/unpack.
//!
//! The ground truth for every packing engine in the workspace: tests verify
//! the simulated GPU gather/scatter paths and the wire protocols against
//! these functions, and the CPU-driven (GDRCopy) paths use them directly.

use crate::compile::CopyPlan;
use crate::layout::{Layout, UniformPlan};

/// Pack `count` elements laid out per `layout` starting at `src\[0\]` into a
/// contiguous buffer. Returns the packed bytes.
pub fn pack(src: &[u8], layout: &Layout, count: u64) -> Vec<u8> {
    let mut dst = vec![0u8; layout.total_bytes(count) as usize];
    pack_into(src, layout, count, &mut dst);
    dst
}

/// Pack into a caller-provided buffer of exactly `layout.total_bytes(count)`
/// bytes.
///
/// Dispatches on the layout's precomputed [`CopyPlan`] — four tiers,
/// decided once at compile time: fully contiguous layouts (single gapless
/// segment, gapless tiling) take a single-`memcpy` fast path; block-uniform
/// layouts (equal large runs a constant stride apart) take a fixed-stride
/// loop of chunked inner copies; fixed-run layouts (equal small runs) take
/// const-generic fixed-width moves; everything else runs the generic
/// segment loop driven by the layout's prefix sums.
pub fn pack_into(src: &[u8], layout: &Layout, count: u64, dst: &mut [u8]) {
    assert_eq!(
        dst.len() as u64,
        layout.total_bytes(count),
        "destination size mismatch"
    );
    match layout.plan_for(count) {
        CopyPlan::Memcpy { .. } => {
            let n = dst.len();
            dst.copy_from_slice(&src[..n]);
        }
        CopyPlan::BlockUniform(plan) => pack_into_block_uniform(src, &plan, dst),
        CopyPlan::FixedRuns(plan) => pack_into_uniform(src, &plan, dst),
        CopyPlan::Generic => pack_into_generic(src, layout, count, dst),
    }
}

/// The fixed-stride middle tier: `plan.runs` copies of `plan.len` bytes at
/// constant source stride. Widths up to 32 bytes dispatch to const-generic
/// bodies so each run is a fixed-size (register-width, SIMD-friendly) move
/// instead of a variable-length `memcpy` call.
pub fn pack_into_uniform(src: &[u8], plan: &UniformPlan, dst: &mut [u8]) {
    debug_assert_eq!(dst.len() as u64, plan.runs * plan.len);
    match plan.len {
        2 => gather_fixed::<2>(src, plan, dst),
        4 => gather_fixed::<4>(src, plan, dst),
        8 => gather_fixed::<8>(src, plan, dst),
        16 => gather_fixed::<16>(src, plan, dst),
        32 => gather_fixed::<32>(src, plan, dst),
        _ => {
            let len = plan.len as usize;
            let stride = plan.stride as usize;
            let mut lo = plan.first as usize;
            for chunk in dst.chunks_exact_mut(len) {
                chunk.copy_from_slice(&src[lo..lo + len]);
                lo += stride;
            }
        }
    }
}

#[inline]
fn gather_fixed<const N: usize>(src: &[u8], plan: &UniformPlan, dst: &mut [u8]) {
    let stride = plan.stride as usize;
    let mut lo = plan.first as usize;
    for chunk in dst.chunks_exact_mut(N) {
        let run: &[u8; N] = src[lo..lo + N].try_into().expect("run width");
        chunk.copy_from_slice(run);
        lo += stride;
    }
}

/// The block-uniform tier: `plan.runs` copies of a *large* fixed run
/// length (> [`crate::compile::FIXED_RUN_WIDTH_MAX`] bytes) at constant
/// source stride. Each run is moved in fixed 64-byte chunks — a
/// SIMD-friendly shape the compiler turns into full-width vector moves —
/// with one variable tail copy, avoiding both the per-run `memcpy` call
/// of the fallback loop and the per-segment table walk of the generic
/// tier.
pub fn pack_into_block_uniform(src: &[u8], plan: &UniformPlan, dst: &mut [u8]) {
    debug_assert_eq!(dst.len() as u64, plan.runs * plan.len);
    let len = plan.len as usize;
    let stride = plan.stride as usize;
    let mut lo = plan.first as usize;
    for chunk in dst.chunks_exact_mut(len) {
        copy_run_chunked(&src[lo..lo + len], chunk);
        lo += stride;
    }
}

/// Scatter counterpart of [`pack_into_block_uniform`].
pub fn unpack_block_uniform(src: &[u8], plan: &UniformPlan, dst: &mut [u8]) {
    debug_assert_eq!(src.len() as u64, plan.runs * plan.len);
    let len = plan.len as usize;
    let stride = plan.stride as usize;
    let mut lo = plan.first as usize;
    for chunk in src.chunks_exact(len) {
        copy_run_chunked(chunk, &mut dst[lo..lo + len]);
        lo += stride;
    }
}

/// Copy one run as fixed 64-byte blocks plus a variable tail.
#[inline]
fn copy_run_chunked(src: &[u8], dst: &mut [u8]) {
    const CHUNK: usize = 64;
    debug_assert_eq!(src.len(), dst.len());
    let mut i = 0;
    while i + CHUNK <= src.len() {
        let block: &[u8; CHUNK] = src[i..i + CHUNK].try_into().expect("chunk width");
        dst[i..i + CHUNK].copy_from_slice(block);
        i += CHUNK;
    }
    if i < src.len() {
        dst[i..].copy_from_slice(&src[i..]);
    }
}

#[inline]
fn scatter_fixed<const N: usize>(src: &[u8], plan: &UniformPlan, dst: &mut [u8]) {
    let stride = plan.stride as usize;
    let mut lo = plan.first as usize;
    for chunk in src.chunks_exact(N) {
        let run: &[u8; N] = chunk.try_into().expect("run width");
        dst[lo..lo + N].copy_from_slice(run);
        lo += stride;
    }
}

/// The generic segment loop behind [`pack_into`], without the contiguous
/// fast path. Public so tests and benches can compare the two directly.
pub fn pack_into_generic(src: &[u8], layout: &Layout, count: u64, dst: &mut [u8]) {
    assert_eq!(
        dst.len() as u64,
        layout.total_bytes(count),
        "destination size mismatch"
    );
    let segs = layout.segments();
    let offs = layout.packed_offsets();
    for i in 0..count {
        let base = (i * layout.extent()) as usize;
        let out = (i * layout.size()) as usize;
        for (seg, &packed) in segs.iter().zip(offs) {
            let lo = base + seg.offset as usize;
            let hi = lo + seg.len as usize;
            let po = out + packed as usize;
            dst[po..po + seg.len as usize].copy_from_slice(&src[lo..hi]);
        }
    }
}

/// Unpack a contiguous buffer into `count` elements laid out per `layout`
/// starting at `dst\[0\]`. Bytes outside the layout's segments are untouched.
///
/// Like [`pack_into`], fully contiguous layouts reduce to one `memcpy`.
pub fn unpack(src: &[u8], layout: &Layout, count: u64, dst: &mut [u8]) {
    assert_eq!(
        src.len() as u64,
        layout.total_bytes(count),
        "source size mismatch"
    );
    match layout.plan_for(count) {
        CopyPlan::Memcpy { .. } => {
            let n = src.len();
            dst[..n].copy_from_slice(src);
        }
        CopyPlan::BlockUniform(plan) => unpack_block_uniform(src, &plan, dst),
        CopyPlan::FixedRuns(plan) => unpack_uniform(src, &plan, dst),
        CopyPlan::Generic => unpack_generic(src, layout, count, dst),
    }
}

/// Fixed-stride counterpart of [`pack_into_uniform`] on the unpack side:
/// scatter the packed image out at constant destination stride.
pub fn unpack_uniform(src: &[u8], plan: &UniformPlan, dst: &mut [u8]) {
    debug_assert_eq!(src.len() as u64, plan.runs * plan.len);
    match plan.len {
        2 => scatter_fixed::<2>(src, plan, dst),
        4 => scatter_fixed::<4>(src, plan, dst),
        8 => scatter_fixed::<8>(src, plan, dst),
        16 => scatter_fixed::<16>(src, plan, dst),
        32 => scatter_fixed::<32>(src, plan, dst),
        _ => {
            let len = plan.len as usize;
            let stride = plan.stride as usize;
            let mut lo = plan.first as usize;
            for chunk in src.chunks_exact(len) {
                dst[lo..lo + len].copy_from_slice(chunk);
                lo += stride;
            }
        }
    }
}

/// The generic segment loop behind [`unpack`], without the contiguous fast
/// path. Public so tests and benches can compare the two directly.
pub fn unpack_generic(src: &[u8], layout: &Layout, count: u64, dst: &mut [u8]) {
    assert_eq!(
        src.len() as u64,
        layout.total_bytes(count),
        "source size mismatch"
    );
    let segs = layout.segments();
    let offs = layout.packed_offsets();
    for i in 0..count {
        let base = (i * layout.extent()) as usize;
        let inp = (i * layout.size()) as usize;
        for (seg, &packed) in segs.iter().zip(offs) {
            let lo = base + seg.offset as usize;
            let hi = lo + seg.len as usize;
            let po = inp + packed as usize;
            dst[lo..hi].copy_from_slice(&src[po..po + seg.len as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;
    use crate::layout::Layout;
    use proptest::prelude::*;

    #[test]
    fn pack_vector_selects_blocks_in_order() {
        // 2 blocks of 2 bytes, stride 4 bytes.
        let t = TypeBuilder::vector(2, 2, 4, TypeBuilder::byte());
        let l = Layout::of(&t);
        let src: Vec<u8> = (0..8).collect();
        assert_eq!(pack(&src, &l, 1), vec![0, 1, 4, 5]);
    }

    #[test]
    fn pack_multiple_elements_tiles_by_extent() {
        let t = TypeBuilder::vector(2, 1, 2, TypeBuilder::byte()); // segs (0,1),(2,1), extent 3
        let l = Layout::of(&t);
        let src: Vec<u8> = (10..19).collect();
        // elements at 0 and 3: bytes 10,12 then 13,15
        assert_eq!(pack(&src, &l, 2), vec![10, 12, 13, 15]);
    }

    #[test]
    fn unpack_restores_scattered_positions() {
        let t = TypeBuilder::indexed(&[(1, 2), (5, 1)], TypeBuilder::byte());
        let l = Layout::of(&t);
        let packed = vec![7, 8, 9];
        let mut dst = vec![0u8; l.footprint(1) as usize];
        unpack(&packed, &l, 1, &mut dst);
        assert_eq!(dst, vec![0, 7, 8, 0, 0, 9]);
    }

    #[test]
    fn unpack_leaves_gaps_untouched() {
        let t = TypeBuilder::vector(2, 1, 3, TypeBuilder::byte());
        let l = Layout::of(&t);
        let mut dst = vec![0xEE; 6];
        unpack(&[1, 2], &l, 1, &mut dst);
        assert_eq!(dst, vec![1, 0xEE, 0xEE, 2, 0xEE, 0xEE]);
    }

    #[test]
    #[should_panic(expected = "destination size mismatch")]
    fn pack_into_checks_sizes() {
        let t = TypeBuilder::contiguous(4, TypeBuilder::byte());
        let l = Layout::of(&t);
        let mut small = vec![0u8; 2];
        pack_into(&[0u8; 4], &l, 1, &mut small);
    }

    #[test]
    fn contiguous_pack_is_single_memcpy_of_prefix() {
        let t = TypeBuilder::contiguous(4, TypeBuilder::byte());
        let l = Layout::of(&t);
        assert!(l.is_contiguous_for(3));
        let src: Vec<u8> = (0..16).collect();
        // 3 elements: exactly the first 12 bytes, in order.
        assert_eq!(pack(&src, &l, 3), (0..12).collect::<Vec<u8>>());
    }

    #[test]
    fn contiguous_unpack_copies_prefix_and_leaves_tail() {
        let t = TypeBuilder::contiguous(4, TypeBuilder::byte());
        let l = Layout::of(&t);
        let mut dst = vec![0xEE; 10];
        unpack(&[1, 2, 3, 4, 5, 6, 7, 8], &l, 2, &mut dst);
        assert_eq!(dst, vec![1, 2, 3, 4, 5, 6, 7, 8, 0xEE, 0xEE]);
    }

    #[test]
    fn contiguous_single_element_with_padded_extent_uses_fast_path() {
        // Contiguous element, extent > size: fast path legal only for count 1.
        let t = TypeBuilder::subarray(&[3, 3], &[1, 3], &[0, 0], TypeBuilder::int());
        let l = Layout::of(&t);
        assert!(l.is_contiguous_for(1));
        assert!(!l.is_contiguous_for(2));
        let src: Vec<u8> = (0..72).collect();
        assert_eq!(pack(&src, &l, 1), (0..12).collect::<Vec<u8>>());
        // count 2 must tile by extent (element 1 starts at byte 36), not
        // run the memcpy path.
        let mut expect: Vec<u8> = (0..12).collect();
        expect.extend(36..48);
        assert_eq!(pack(&src, &l, 2), expect);
    }

    #[test]
    fn block_uniform_tier_matches_generic() {
        // 6 runs of 72 bytes every 120: BlockUniform (chunk + 8B tail).
        let t = TypeBuilder::vector(6, 9, 15, TypeBuilder::double());
        let l = Layout::of(&t);
        assert!(matches!(
            l.plan_for(1),
            crate::compile::CopyPlan::BlockUniform(_)
        ));
        let src: Vec<u8> = (0..l.footprint(1)).map(|i| (i * 7 % 251) as u8).collect();
        let mut fast = vec![0u8; l.total_bytes(1) as usize];
        let mut generic = fast.clone();
        pack_into(&src, &l, 1, &mut fast);
        pack_into_generic(&src, &l, 1, &mut generic);
        assert_eq!(fast, generic);

        let mut scat_fast = vec![0xEE; l.footprint(1) as usize];
        let mut scat_gen = scat_fast.clone();
        unpack(&fast, &l, 1, &mut scat_fast);
        unpack_generic(&generic, &l, 1, &mut scat_gen);
        assert_eq!(scat_fast, scat_gen);
    }

    /// Strategy: a random (but valid) datatype with modest sizes.
    fn arb_type() -> impl Strategy<Value = std::sync::Arc<crate::typedesc::TypeDesc>> {
        prop_oneof![
            // Fully contiguous (pad = 0 hits the memcpy fast path when the
            // vector degenerates to one segment) and truly strided shapes.
            (1u64..16).prop_map(|n| TypeBuilder::contiguous(n, TypeBuilder::double())),
            (1u64..8, 1u64..4, 0u64..8).prop_map(|(count, blocklen, pad)| {
                TypeBuilder::vector(count, blocklen, blocklen + pad, TypeBuilder::int())
            }),
            // Wide runs (> 32 bytes) at fixed stride: the BlockUniform tier.
            (1u64..8, 5u64..16, 0u64..8).prop_map(|(count, blocklen, pad)| {
                TypeBuilder::vector(count, blocklen, blocklen + pad, TypeBuilder::double())
            }),
            prop::collection::vec((0u64..4, 1u64..4), 1..6).prop_map(|raw| {
                // Convert gaps into sorted disjoint (disp, len) blocks.
                let mut disp = 0;
                let blocks: Vec<(u64, u64)> = raw
                    .into_iter()
                    .map(|(gap, len)| {
                        let d = disp + gap;
                        disp = d + len;
                        (d, len)
                    })
                    .collect();
                TypeBuilder::indexed(&blocks, TypeBuilder::float())
            }),
            (2u64..6, 2u64..6).prop_flat_map(|(rows, cols)| {
                (1..=rows, 1..=cols).prop_map(move |(sr, sc)| {
                    TypeBuilder::subarray(
                        &[rows, cols],
                        &[sr, sc],
                        &[rows - sr, cols - sc],
                        TypeBuilder::double(),
                    )
                })
            }),
        ]
    }

    proptest! {
        /// unpack(pack(x)) restores exactly the bytes the layout touches.
        #[test]
        fn pack_unpack_roundtrip(t in arb_type(), count in 1u64..4, seed in 0u64..1000) {
            let l = Layout::of(&t);
            let fp = l.footprint(count) as usize;
            let mut rng = fusedpack_sim::Pcg32::seeded(seed);
            let mut src = vec![0u8; fp];
            rng.fill_bytes(&mut src);

            let packed = pack(&src, &l, count);
            prop_assert_eq!(packed.len() as u64, l.total_bytes(count));

            let mut dst = vec![0u8; fp];
            unpack(&packed, &l, count, &mut dst);

            // Every byte inside a segment must match the source.
            for (addr, len) in l.absolute_segments(0, count) {
                let (a, b) = (addr as usize, (addr + len) as usize);
                prop_assert_eq!(&dst[a..b], &src[a..b]);
            }
        }

        /// pack(unpack(y)) is the identity on packed buffers.
        #[test]
        fn unpack_pack_roundtrip(t in arb_type(), count in 1u64..4, seed in 0u64..1000) {
            let l = Layout::of(&t);
            let mut rng = fusedpack_sim::Pcg32::seeded(seed);
            let mut packed = vec![0u8; l.total_bytes(count) as usize];
            rng.fill_bytes(&mut packed);

            let mut scattered = vec![0u8; l.footprint(count) as usize];
            unpack(&packed, &l, count, &mut scattered);
            let repacked = pack(&scattered, &l, count);
            prop_assert_eq!(repacked, packed);
        }

        /// Packed size equals type size x count for arbitrary types.
        #[test]
        fn packed_size_is_type_size(t in arb_type(), count in 1u64..5) {
            let l = Layout::of(&t);
            let src = vec![0u8; l.footprint(count) as usize];
            prop_assert_eq!(pack(&src, &l, count).len() as u64, t.size() * count);
        }

        /// The dispatching pack (fast path when eligible) and the generic
        /// segment loop produce identical bytes for arbitrary layouts.
        #[test]
        fn pack_fast_path_matches_generic(t in arb_type(), count in 1u64..4, seed in 0u64..1000) {
            let l = Layout::of(&t);
            let mut rng = fusedpack_sim::Pcg32::seeded(seed);
            let mut src = vec![0u8; l.footprint(count) as usize];
            rng.fill_bytes(&mut src);

            let mut fast = vec![0u8; l.total_bytes(count) as usize];
            let mut generic = fast.clone();
            pack_into(&src, &l, count, &mut fast);
            pack_into_generic(&src, &l, count, &mut generic);
            prop_assert_eq!(fast, generic);
        }

        /// Same guarantee on the unpack side, including untouched gap bytes.
        #[test]
        fn unpack_fast_path_matches_generic(t in arb_type(), count in 1u64..4, seed in 0u64..1000) {
            let l = Layout::of(&t);
            let mut rng = fusedpack_sim::Pcg32::seeded(seed);
            let mut packed = vec![0u8; l.total_bytes(count) as usize];
            rng.fill_bytes(&mut packed);

            let mut fast = vec![0xEE; l.footprint(count) as usize];
            let mut generic = fast.clone();
            unpack(&packed, &l, count, &mut fast);
            unpack_generic(&packed, &l, count, &mut generic);
            prop_assert_eq!(fast, generic);
        }
    }
}
