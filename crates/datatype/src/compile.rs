//! The layout compile pass: lower a normalized [`LayoutIr`] once into a
//! [`CompiledLayout`] — segments, packed-offset prefix sums, a
//! contiguity/uniformity *classification*, and a precomputed copy plan.
//!
//! This is stage 2 of the datatype pipeline (`TypeDesc` → [`LayoutIr`] →
//! `CompiledLayout`). Everything downstream — `gpu::pack/unpack`, the
//! uniform-stride tier, `MemPool` gather/scatter, the scheduler's shape
//! accounting — consumes the compiled form instead of re-deriving
//! structure per call site: resolving the copy tier for a message is one
//! [`CompiledLayout::plan_for`] call (a classification match plus one
//! multiply), not a fresh scan of the segment table.
//!
//! Classification ladder, fastest first:
//!
//! * [`LayoutClass::Contiguous`] — one gapless run at offset 0; `count`
//!   elements are a single `memcpy` when the extent tiles gaplessly.
//! * [`LayoutClass::BlockUniform`] — equal-length runs at a constant
//!   stride with *large* runs (> [`FIXED_RUN_WIDTH_MAX`] bytes): a
//!   fixed-stride loop of chunked inner copies (SIMD-friendly, no
//!   per-run table walk).
//! * [`LayoutClass::FixedRuns`] — equal-length *small* runs at a
//!   constant stride: const-generic fixed-width moves (the PR-7 tier).
//! * [`LayoutClass::Generic`] — irregular; the segment-table walk with
//!   precomputed prefix sums.

use crate::flatten::emit_ir_segments;
use crate::ir::LayoutIr;
use crate::layout::{Segment, UniformPlan};
use crate::typedesc::TypeDesc;

/// Run width (bytes) at or below which a uniform layout uses the
/// const-generic fixed-width tier; above it, the chunked block tier.
pub const FIXED_RUN_WIDTH_MAX: u64 = 32;

/// Commit-time classification of one element's memory shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutClass {
    /// One gapless run starting at offset 0.
    Contiguous,
    /// Equal-length runs at constant stride, runs longer than
    /// [`FIXED_RUN_WIDTH_MAX`] bytes.
    BlockUniform,
    /// Equal-length runs at constant stride, runs at most
    /// [`FIXED_RUN_WIDTH_MAX`] bytes.
    FixedRuns,
    /// Irregular: generic segment walk.
    Generic,
}

impl LayoutClass {
    /// Number of classes in the ladder (sizes per-class counter arrays).
    pub const COUNT: usize = 4;

    /// Stable lowercase name (telemetry / report labels).
    pub fn name(self) -> &'static str {
        match self {
            LayoutClass::Contiguous => "contiguous",
            LayoutClass::BlockUniform => "block_uniform",
            LayoutClass::FixedRuns => "fixed_runs",
            LayoutClass::Generic => "generic",
        }
    }

    /// Dense index in ladder order (for `[u64; LayoutClass::COUNT]`
    /// counter arrays).
    pub fn index(self) -> usize {
        match self {
            LayoutClass::Contiguous => 0,
            LayoutClass::BlockUniform => 1,
            LayoutClass::FixedRuns => 2,
            LayoutClass::Generic => 3,
        }
    }
}

/// The resolved copy plan for `count` elements of a compiled layout —
/// what a pack/unpack engine executes, precomputed so call sites never
/// re-detect structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPlan {
    /// One `memcpy` of `bytes`.
    Memcpy { bytes: u64 },
    /// Fixed-stride loop with chunked inner copies (runs >
    /// [`FIXED_RUN_WIDTH_MAX`] bytes).
    BlockUniform(UniformPlan),
    /// Fixed-stride loop of const-generic fixed-width moves.
    FixedRuns(UniformPlan),
    /// Generic segment-table walk.
    Generic,
}

impl CopyPlan {
    /// The ladder rung this plan executes. Unlike
    /// [`CompiledLayout::class`] (per-element classification), this
    /// reflects the count-resolved plan — e.g. a vector that tiles
    /// gaplessly is `Contiguous` here for any count.
    pub fn class(&self) -> LayoutClass {
        match self {
            CopyPlan::Memcpy { .. } => LayoutClass::Contiguous,
            CopyPlan::BlockUniform(_) => LayoutClass::BlockUniform,
            CopyPlan::FixedRuns(_) => LayoutClass::FixedRuns,
            CopyPlan::Generic => LayoutClass::Generic,
        }
    }
}

/// The compiled, committed form of a datatype: what the layout cache
/// stores and every fusion request references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLayout {
    /// Segments of one element, in pack (traversal) order.
    segments: Vec<Segment>,
    /// Prefix sums of segment lengths: `packed_off[j]` is the byte offset
    /// of segment `j` within the *packed* image of one element. Computed
    /// once at compile time so pack/unpack loops don't re-derive running
    /// cursors (and can jump straight to any segment).
    packed_off: Vec<u64>,
    /// Payload bytes per element.
    size: u64,
    /// Extent (tiling stride) per element.
    extent: u64,
    /// Fixed-stride classification, computed once at compile time: `Some`
    /// when every segment has the same length and consecutive segments sit
    /// a constant stride apart (vectors, subarray rows, regular indexed
    /// types).
    uniform: Option<UniformInfo>,
    /// The class this element's shape falls into.
    class: LayoutClass,
}

/// Compile-time fixed-stride classification of one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UniformInfo {
    /// Offset of the first run within the element.
    first: u64,
    /// Distance between consecutive run starts (≥ `len`, so runs never
    /// overlap).
    stride: u64,
    /// Bytes per run.
    len: u64,
    /// Runs per element.
    per_elem: u64,
    /// Whether the stride arithmetic continues across extent-tiled
    /// elements (`extent == per_elem * stride`); when false the plan is
    /// only valid for a single element.
    tiles: bool,
}

fn classify_uniform(segments: &[Segment], extent: u64) -> Option<UniformInfo> {
    let first = *segments.first()?;
    if first.len == 0 {
        return None;
    }
    let per_elem = segments.len() as u64;
    let stride = if per_elem == 1 {
        extent
    } else {
        segments[1].offset.checked_sub(segments[0].offset)?
    };
    if stride < first.len {
        return None;
    }
    for (j, s) in segments.iter().enumerate() {
        if s.len != first.len || s.offset != first.offset + j as u64 * stride {
            return None;
        }
    }
    Some(UniformInfo {
        first: first.offset,
        stride,
        len: first.len,
        per_elem,
        tiles: extent == per_elem * stride,
    })
}

fn prefix_sums(segments: &[Segment]) -> Vec<u64> {
    let mut off = 0u64;
    segments
        .iter()
        .map(|s| {
            let here = off;
            off += s.len;
            here
        })
        .collect()
}

fn classify(segments: &[Segment], size: u64, uniform: &Option<UniformInfo>) -> LayoutClass {
    let contiguous =
        segments.len() == 1 && segments[0].offset == 0 && segments[0].len == size && size > 0;
    if contiguous {
        LayoutClass::Contiguous
    } else {
        match uniform {
            Some(u) if u.len > FIXED_RUN_WIDTH_MAX => LayoutClass::BlockUniform,
            Some(_) => LayoutClass::FixedRuns,
            None => LayoutClass::Generic,
        }
    }
}

/// Lower a normalized IR into its compiled form.
pub fn compile(ir: &LayoutIr) -> CompiledLayout {
    let segments = emit_ir_segments(ir);
    CompiledLayout::from_parts(segments, ir.extent())
}

impl CompiledLayout {
    /// Normalize, then compile, one element of `desc`.
    pub fn of(desc: &TypeDesc) -> CompiledLayout {
        let layout = compile(&LayoutIr::normalize(desc));
        debug_assert_eq!(layout.size, desc.size(), "lowering lost bytes");
        layout
    }

    /// Build directly from segments (used by tests and synthetic layouts).
    pub fn from_segments(segments: Vec<Segment>, extent: u64) -> CompiledLayout {
        Self::from_parts(segments, extent)
    }

    fn from_parts(segments: Vec<Segment>, extent: u64) -> CompiledLayout {
        let size = segments.iter().map(|s| s.len).sum();
        let uniform = classify_uniform(&segments, extent);
        let class = classify(&segments, size, &uniform);
        CompiledLayout {
            packed_off: prefix_sums(&segments),
            uniform,
            class,
            segments,
            size,
            extent,
        }
    }

    /// Segments of one element.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Packed-image byte offset of each segment within one element
    /// (prefix sums of segment lengths), parallel to [`Self::segments`].
    pub fn packed_offsets(&self) -> &[u64] {
        &self.packed_off
    }

    /// Contiguous blocks per element.
    pub fn num_blocks(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Payload bytes per element.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Extent per element.
    pub fn extent(&self) -> u64 {
        self.extent
    }

    /// The compile-time class of one element's shape.
    pub fn class(&self) -> LayoutClass {
        self.class
    }

    /// Approximate bytes this compiled layout keeps resident (cache
    /// accounting). Deterministic: derived from lengths, not capacities.
    pub fn resident_bytes(&self) -> u64 {
        (std::mem::size_of::<CompiledLayout>()
            + self.segments.len() * std::mem::size_of::<Segment>()
            + self.packed_off.len() * std::mem::size_of::<u64>()) as u64
    }

    /// Resolve the copy plan for `count` elements: the single dispatch
    /// point every pack/unpack site consumes instead of re-probing
    /// contiguity and stride structure per call.
    pub fn plan_for(&self, count: u64) -> CopyPlan {
        if self.is_contiguous_for(count) {
            return CopyPlan::Memcpy {
                bytes: self.total_bytes(count),
            };
        }
        match self.uniform_for(count) {
            Some(p) if p.len > FIXED_RUN_WIDTH_MAX => CopyPlan::BlockUniform(p),
            Some(p) => CopyPlan::FixedRuns(p),
            None => CopyPlan::Generic,
        }
    }

    /// Resolve the fixed-stride copy plan for `count` elements, if this
    /// layout has one: all runs equal-length, constant stride, and (for
    /// `count > 1`) the stride arithmetic continuing seamlessly across
    /// extent-tiled elements. Returns `None` for irregular layouts, which
    /// must take the generic segment walk.
    ///
    /// Classification happens once at compile time; this call is a copy of
    /// four words plus one multiply.
    pub fn uniform_for(&self, count: u64) -> Option<UniformPlan> {
        let u = self.uniform.as_ref()?;
        if count > 1 && !u.tiles {
            return None;
        }
        Some(UniformPlan {
            first: u.first,
            stride: u.stride,
            len: u.len,
            runs: u.per_elem * count,
        })
    }

    /// Is one element a single contiguous run starting at offset 0?
    pub fn is_contiguous(&self) -> bool {
        self.class == LayoutClass::Contiguous
    }

    /// Are `count` elements one single contiguous run? Requires each
    /// element to be contiguous *and* elements to tile without gaps
    /// (extent == size) when there is more than one.
    pub fn is_contiguous_for(&self, count: u64) -> bool {
        self.is_contiguous() && (count <= 1 || self.extent == self.size)
    }

    /// Total payload bytes for `count` elements.
    pub fn total_bytes(&self, count: u64) -> u64 {
        self.size * count
    }

    /// Total contiguous blocks for `count` elements (no cross-element
    /// coalescing — elements are extent-tiled, matching what a real packing
    /// kernel sees).
    pub fn total_blocks(&self, count: u64) -> u64 {
        self.num_blocks() * count
    }

    /// Shape summary `(total_bytes, total_blocks)` for `count` elements, in
    /// the form the GPU kernel cost model consumes.
    pub fn shape(&self, count: u64) -> (u64, u64) {
        (self.total_bytes(count), self.total_blocks(count))
    }

    /// Absolute `(address, len)` segments for `count` elements based at
    /// `base`, in pack order. This is the gather/scatter plan handed to the
    /// memory pools.
    pub fn absolute_segments(&self, base: u64, count: u64) -> Vec<(u64, u64)> {
        self.abs_segments(base, count).collect()
    }

    /// Iterator form of [`Self::absolute_segments`]: yields the same
    /// `(address, len)` plan in the same order without materialising a
    /// `Vec` — the allocation-free path for per-message gather/scatter.
    pub fn abs_segments(&self, base: u64, count: u64) -> AbsSegments<'_> {
        AbsSegments {
            layout: self,
            base,
            count,
            elem: 0,
            seg: 0,
        }
    }

    /// The footprint in bytes that `count` elements occupy in memory
    /// (`(count-1)*extent + last element's reach`).
    pub fn footprint(&self, count: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let reach = self
            .segments
            .iter()
            .map(|s| s.offset + s.len)
            .max()
            .unwrap_or(0);
        (count - 1) * self.extent + reach.max(self.extent)
    }
}

/// Borrowing iterator over the absolute `(address, len)` gather/scatter
/// plan of `count` extent-tiled elements. See [`CompiledLayout::abs_segments`].
#[derive(Debug, Clone)]
pub struct AbsSegments<'a> {
    layout: &'a CompiledLayout,
    base: u64,
    count: u64,
    elem: u64,
    seg: usize,
}

impl Iterator for AbsSegments<'_> {
    type Item = (u64, u64);

    #[inline]
    fn next(&mut self) -> Option<(u64, u64)> {
        if self.elem >= self.count || self.layout.segments.is_empty() {
            return None;
        }
        let s = self.layout.segments[self.seg];
        let addr = self.base + self.elem * self.layout.extent + s.offset;
        self.seg += 1;
        if self.seg == self.layout.segments.len() {
            self.seg = 0;
            self.elem += 1;
        }
        Some((addr, s.len))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let per_elem = self.layout.segments.len();
        let done = self.elem as usize * per_elem + self.seg;
        let total = self.count as usize * per_elem;
        let left = total - done;
        (left, Some(left))
    }
}

impl ExactSizeIterator for AbsSegments<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    #[test]
    fn classes_cover_the_ladder() {
        // Contiguous: one gapless run.
        let c = CompiledLayout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
        assert_eq!(c.class(), LayoutClass::Contiguous);

        // FixedRuns: small runs (8B) at constant stride.
        let f = CompiledLayout::of(&TypeBuilder::vector(4, 1, 3, TypeBuilder::double()));
        assert_eq!(f.class(), LayoutClass::FixedRuns);

        // BlockUniform: large runs (96B) at constant stride.
        let b = CompiledLayout::of(&TypeBuilder::vector(8, 12, 20, TypeBuilder::double()));
        assert_eq!(b.class(), LayoutClass::BlockUniform);

        // Generic: unequal run lengths.
        let g = CompiledLayout::of(&TypeBuilder::indexed(
            &[(0, 1), (4, 2), (9, 1)],
            TypeBuilder::float(),
        ));
        assert_eq!(g.class(), LayoutClass::Generic);
    }

    #[test]
    fn plan_for_follows_the_class() {
        let c = CompiledLayout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
        assert_eq!(c.plan_for(4), CopyPlan::Memcpy { bytes: 512 });

        let col = CompiledLayout::of(&TypeBuilder::subarray(
            &[3, 3],
            &[3, 1],
            &[0, 0],
            TypeBuilder::int(),
        ));
        match col.plan_for(2) {
            CopyPlan::FixedRuns(p) => {
                assert_eq!((p.first, p.stride, p.len, p.runs), (0, 12, 4, 6));
            }
            other => panic!("expected FixedRuns, got {other:?}"),
        }

        let wide = CompiledLayout::of(&TypeBuilder::vector(4, 8, 16, TypeBuilder::double()));
        match wide.plan_for(1) {
            CopyPlan::BlockUniform(p) => {
                assert_eq!((p.first, p.stride, p.len, p.runs), (0, 128, 64, 4));
            }
            other => panic!("expected BlockUniform, got {other:?}"),
        }

        let irr = CompiledLayout::of(&TypeBuilder::indexed(
            &[(0, 1), (4, 2), (9, 1)],
            TypeBuilder::float(),
        ));
        assert_eq!(irr.plan_for(1), CopyPlan::Generic);
    }

    #[test]
    fn vector_that_does_not_tile_degrades_to_generic_for_many() {
        // vector(3,2,4,int): uniform per element but extent breaks tiling.
        let v = CompiledLayout::of(&TypeBuilder::vector(3, 2, 4, TypeBuilder::int()));
        assert_eq!(v.class(), LayoutClass::FixedRuns);
        assert!(matches!(v.plan_for(1), CopyPlan::FixedRuns(_)));
        assert_eq!(v.plan_for(2), CopyPlan::Generic);
    }

    #[test]
    fn block_uniform_boundary_is_fixed_run_width_max() {
        // Runs of exactly 32B stay in the fixed tier; 40B graduate.
        let at = CompiledLayout::of(&TypeBuilder::vector(4, 4, 8, TypeBuilder::double()));
        assert_eq!(at.class(), LayoutClass::FixedRuns);
        let over = CompiledLayout::of(&TypeBuilder::vector(4, 5, 8, TypeBuilder::double()));
        assert_eq!(over.class(), LayoutClass::BlockUniform);
    }

    #[test]
    fn resident_bytes_scales_with_segments() {
        let small = CompiledLayout::of(&TypeBuilder::double());
        let big = CompiledLayout::of(&TypeBuilder::indexed(
            &[(0, 1), (3, 1), (7, 1), (12, 1), (18, 1)],
            TypeBuilder::float(),
        ));
        assert!(big.resident_bytes() > small.resident_bytes());
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(LayoutClass::Contiguous.name(), "contiguous");
        assert_eq!(LayoutClass::BlockUniform.name(), "block_uniform");
        assert_eq!(LayoutClass::FixedRuns.name(), "fixed_runs");
        assert_eq!(LayoutClass::Generic.name(), "generic");
    }
}
