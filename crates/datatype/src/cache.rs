//! The production layout cache: sharded, bounded, LRU-evicting.
//!
//! Following the scheme of Chu et al. \[24\] (the paper's `data layout` field
//! in each fusion request is "the cached data layout entry"), committed
//! types are compiled once ([`CompiledLayout`]) and cached, keyed by the
//! structural hash of the type tree. Subsequent commits of an identical
//! type reuse the entry, and per-message [`LayoutCache::acquire`] calls
//! resolve a [`TypeHandle`] to its compiled plan with a counter bump — the
//! "hits amortize to near zero" regime `reproduce serve` measures.
//!
//! Production shape (TEMPI-style, per ROADMAP):
//!
//! * **Sharded by structural hash** — entries land in `shards` independent
//!   ways, so per-shard scans stay tiny and the stats expose skew.
//! * **Bounded with LRU eviction** — each shard holds at most
//!   `shard_capacity` compiled layouts; inserting beyond that evicts the
//!   least-recently-used *unpinned* entry. An entry whose `Arc` is still
//!   referenced outside the cache (an in-flight request holds its layout)
//!   is pinned and never evicted.
//! * **Handles survive eviction** — the commit→handle binding is
//!   permanent, like an `MPI_Datatype`. Eviction drops only the compiled
//!   artifact; a later `acquire` recompiles from the retained descriptor
//!   and re-inserts (counted as a miss).
//! * **Telemetry** — per-shard hit/miss/eviction counters plus resident
//!   bytes and high-water marks, surfaced as [`LayoutCacheStats`] in
//!   `RunReport` and as `Payload::LayoutCacheHealth` instants.
//!
//! The cache also carries the *cost model* for layout processing: schemes
//! that cache layouts (CPU-GPU-Hybrid, the proposed fusion design) pay the
//! flattening cost once per type; schemes without a cache (GPU-Sync,
//! GPU-Async — "Layout Cache: N" in Table I) re-parse the datatype on every
//! pack/unpack operation. The constants are unchanged from the seed, so
//! virtual-time reports are byte-identical to the pre-refactor cache.

use crate::compile::CompiledLayout;
use crate::typedesc::TypeDesc;
use fusedpack_sim::Duration;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Handle to a committed datatype (the engine's `MPI_Datatype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeHandle(pub u64);

/// Legacy aggregate counters (commit/lookup granularity), kept for the
/// pre-shard API. [`LayoutCacheStats`] is the full per-shard view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub commits: u64,
    pub hits: u64,
    pub misses: u64,
    pub lookups: u64,
}

/// Per-shard cache health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutShardStats {
    /// Resolutions served from the shard (commit hits + handle acquires).
    pub hits: u64,
    /// Compiles: first commits plus post-eviction re-compiles.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Compiled layouts currently resident.
    pub resident_entries: u64,
    /// Bytes of compiled layout data currently resident.
    pub resident_bytes: u64,
    /// Highest `resident_bytes` ever observed.
    pub high_water_bytes: u64,
}

impl LayoutShardStats {
    /// Element-wise merge across disjoint caches: counters and residency
    /// gauges add, and summed high-waters are exact because per-rank
    /// residency is monotone while no eviction fires (the steady state of
    /// every real run).
    pub fn absorb(&mut self, other: &LayoutShardStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.resident_entries += other.resident_entries;
        self.resident_bytes += other.resident_bytes;
        self.high_water_bytes += other.high_water_bytes;
    }
}

/// Cache-wide health: commit/lookup totals plus the per-shard breakdown.
/// Merged across ranks into `RunReport::layout_cache`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutCacheStats {
    /// `commit` calls observed.
    pub commits: u64,
    /// Charged `get` lookups observed.
    pub lookups: u64,
    /// Per-shard counters, index = shard.
    pub per_shard: Vec<LayoutShardStats>,
}

impl LayoutCacheStats {
    pub fn hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.hits).sum()
    }

    pub fn misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.misses).sum()
    }

    pub fn evictions(&self) -> u64 {
        self.per_shard.iter().map(|s| s.evictions).sum()
    }

    pub fn resident_entries(&self) -> u64 {
        self.per_shard.iter().map(|s| s.resident_entries).sum()
    }

    pub fn resident_bytes(&self) -> u64 {
        self.per_shard.iter().map(|s| s.resident_bytes).sum()
    }

    pub fn high_water_bytes(&self) -> u64 {
        self.per_shard.iter().map(|s| s.high_water_bytes).sum()
    }

    /// Fraction of resolutions served without compiling, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            return 1.0;
        }
        h as f64 / (h + m) as f64
    }

    /// Merge another cache's stats into this one (e.g. across ranks).
    /// Shard vectors are padded to the longer length.
    pub fn absorb(&mut self, other: &LayoutCacheStats) {
        self.commits += other.commits;
        self.lookups += other.lookups;
        if self.per_shard.len() < other.per_shard.len() {
            self.per_shard
                .resize(other.per_shard.len(), LayoutShardStats::default());
        }
        for (mine, theirs) in self.per_shard.iter_mut().zip(&other.per_shard) {
            mine.absorb(theirs);
        }
    }
}

/// CPU cost of flattening a type with `blocks` leaf blocks (first commit).
pub fn flatten_cost(blocks: u64) -> Duration {
    Duration::from_nanos(300 + 4 * blocks)
}

/// CPU cost of a cache lookup (hit path).
pub fn lookup_cost() -> Duration {
    Duration::from_nanos(80)
}

/// CPU cost for a cache-less scheme to parse a datatype's layout on every
/// operation (the specialized kernels of \[18\]–\[22\] walk the *tree* on the
/// host and expand blocks on the device, so the host cost grows with block
/// count only up to a cap).
pub fn parse_cost(blocks: u64) -> Duration {
    Duration::from_nanos((200 + blocks / 4).min(3_000))
}

/// Cache geometry. Defaults are generous enough that real runs never
/// evict (the goldens prove byte-identity), while tests can shrink the
/// bound to exercise the LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutCacheConfig {
    /// Shard count; rounded up to a power of two.
    pub shards: usize,
    /// Maximum resident compiled layouts per shard.
    pub shard_capacity: usize,
}

impl Default for LayoutCacheConfig {
    fn default() -> Self {
        LayoutCacheConfig {
            shards: 4,
            shard_capacity: 64,
        }
    }
}

/// One resident compiled layout.
#[derive(Debug)]
struct CachedEntry {
    handle: TypeHandle,
    layout: Arc<CompiledLayout>,
    /// LRU tick of the most recent touch (globally unique, so eviction
    /// order is total and deterministic).
    last_use: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// structural hash → resident entry.
    entries: HashMap<u64, CachedEntry>,
    stats: LayoutShardStats,
}

/// The commit→handle binding, permanent like an `MPI_Datatype`. Keeps the
/// (cheap, `Arc`-shared) descriptor so an evicted layout can be recompiled
/// on demand.
#[derive(Debug, Clone)]
struct HandleInfo {
    shard: usize,
    key: u64,
    desc: TypeDesc,
}

/// The sharded layout cache.
#[derive(Debug)]
pub struct LayoutCache {
    shards: Vec<Shard>,
    shard_mask: u64,
    shard_capacity: usize,
    by_handle: HashMap<u64, HandleInfo>,
    next: u64,
    tick: u64,
    commits: u64,
    commit_hits: u64,
    commit_misses: u64,
    lookups: u64,
}

impl Default for LayoutCache {
    fn default() -> Self {
        Self::with_config(LayoutCacheConfig::default())
    }
}

impl LayoutCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: LayoutCacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        LayoutCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shard_mask: shards as u64 - 1,
            shard_capacity: config.shard_capacity.max(1),
            by_handle: HashMap::new(),
            next: 0,
            tick: 0,
            commits: 0,
            commit_hits: 0,
            commit_misses: 0,
            lookups: 0,
        }
    }

    fn structural_key(desc: &TypeDesc) -> u64 {
        let mut hasher = DefaultHasher::new();
        desc.hash(&mut hasher);
        hasher.finish()
    }

    fn touch_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Commit a type: compile (or find the structurally identical cached
    /// entry) and return its handle plus the CPU cost incurred.
    pub fn commit(&mut self, desc: &TypeDesc) -> (TypeHandle, Duration) {
        self.commits += 1;
        let key = Self::structural_key(desc);
        let shard_idx = (key & self.shard_mask) as usize;
        let tick = self.touch_tick();
        let hit = {
            let shard = &mut self.shards[shard_idx];
            match shard.entries.get_mut(&key) {
                Some(entry) => {
                    entry.last_use = tick;
                    shard.stats.hits += 1;
                    Some(entry.handle)
                }
                None => None,
            }
        };
        if let Some(handle) = hit {
            self.commit_hits += 1;
            return (handle, lookup_cost());
        }
        self.commit_misses += 1;
        let layout = Arc::new(CompiledLayout::of(desc));
        let cost = flatten_cost(layout.num_blocks());
        let handle = TypeHandle(self.next);
        self.next += 1;
        self.by_handle.insert(
            handle.0,
            HandleInfo {
                shard: shard_idx,
                key,
                desc: desc.clone(),
            },
        );
        self.insert(shard_idx, key, handle, layout, tick);
        (handle, cost)
    }

    /// Insert a compiled layout into its shard, counting the miss,
    /// updating residency accounting, and enforcing the LRU bound.
    fn insert(
        &mut self,
        shard_idx: usize,
        key: u64,
        handle: TypeHandle,
        layout: Arc<CompiledLayout>,
        tick: u64,
    ) {
        let capacity = self.shard_capacity;
        let shard = &mut self.shards[shard_idx];
        let bytes = layout.resident_bytes();
        shard.entries.insert(
            key,
            CachedEntry {
                handle,
                layout,
                last_use: tick,
            },
        );
        shard.stats.misses += 1;
        shard.stats.resident_entries += 1;
        shard.stats.resident_bytes += bytes;
        shard.stats.high_water_bytes = shard.stats.high_water_bytes.max(shard.stats.resident_bytes);

        // LRU eviction, skipping pinned entries (an Arc held outside the
        // cache means an in-flight request still uses that layout). Ticks
        // are globally unique, so the victim choice is deterministic.
        while shard.entries.len() > capacity {
            let victim = shard
                .entries
                .iter()
                .filter(|(k, e)| **k != key && Arc::strong_count(&e.layout) == 1)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            match victim {
                Some(vkey) => {
                    let evicted = shard.entries.remove(&vkey).expect("victim present");
                    shard.stats.evictions += 1;
                    shard.stats.resident_entries -= 1;
                    shard.stats.resident_bytes -= evicted.layout.resident_bytes();
                }
                // Everything is pinned: the bound is soft, never drop a
                // layout someone still holds.
                None => break,
            }
        }
    }

    /// Resolve a handle to its compiled layout: the cost-free per-message
    /// path (schemes charge `lookup_cost` separately where the paper's
    /// model says so). Counts a shard hit; if the entry was evicted,
    /// recompiles from the retained descriptor and counts a miss.
    ///
    /// Panics on a handle this cache never issued.
    pub fn acquire(&mut self, handle: TypeHandle) -> Arc<CompiledLayout> {
        // Only the Copy fields here: cloning the retained descriptor on
        // the per-message hit path would deep-copy its block tables.
        let info = self
            .by_handle
            .get(&handle.0)
            .unwrap_or_else(|| panic!("uncommitted datatype {handle:?}"));
        let (shard_idx, key) = (info.shard, info.key);
        let tick = self.touch_tick();
        {
            let shard = &mut self.shards[shard_idx];
            if let Some(entry) = shard.entries.get_mut(&key) {
                entry.last_use = tick;
                shard.stats.hits += 1;
                return Arc::clone(&entry.layout);
            }
        }
        // Evicted: recompile from the retained descriptor and re-insert
        // under the original handle (the only path that pays the clone).
        let desc = self.by_handle[&handle.0].desc.clone();
        let layout = Arc::new(CompiledLayout::of(&desc));
        self.insert(shard_idx, key, handle, Arc::clone(&layout), tick);
        layout
    }

    /// Look up a committed layout. Returns the layout and the lookup cost.
    pub fn get(&mut self, handle: TypeHandle) -> (Arc<CompiledLayout>, Duration) {
        self.lookups += 1;
        (self.acquire(handle), lookup_cost())
    }

    /// Peek without charging a lookup or touching LRU state (for
    /// assertions/tests). `None` for unknown *or evicted* handles.
    pub fn peek(&self, handle: TypeHandle) -> Option<&Arc<CompiledLayout>> {
        let info = self.by_handle.get(&handle.0)?;
        self.shards[info.shard]
            .entries
            .get(&info.key)
            .map(|e| &e.layout)
    }

    /// Legacy commit/lookup-granularity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            commits: self.commits,
            hits: self.commit_hits,
            misses: self.commit_misses,
            lookups: self.lookups,
        }
    }

    /// Full per-shard health snapshot.
    pub fn layout_stats(&self) -> LayoutCacheStats {
        LayoutCacheStats {
            commits: self.commits,
            lookups: self.lookups,
            per_shard: self.shards.iter().map(|s| s.stats).collect(),
        }
    }

    /// Resident compiled layouts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    #[test]
    fn identical_types_share_an_entry() {
        let mut cache = LayoutCache::new();
        let a = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        let b = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        let (ha, cost_a) = cache.commit(&a);
        let (hb, cost_b) = cache.commit(&b);
        assert_eq!(ha, hb);
        assert!(cost_b < cost_a, "second commit is a cache hit");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn different_types_get_distinct_handles() {
        let mut cache = LayoutCache::new();
        let (ha, _) = cache.commit(&TypeBuilder::vector(4, 2, 5, TypeBuilder::double()));
        let (hb, _) = cache.commit(&TypeBuilder::vector(4, 2, 6, TypeBuilder::double()));
        assert_ne!(ha, hb);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn get_returns_committed_layout() {
        let mut cache = LayoutCache::new();
        let t = TypeBuilder::indexed(&[(0, 2), (5, 3)], TypeBuilder::int());
        let (h, _) = cache.commit(&t);
        let (layout, cost) = cache.get(h);
        assert_eq!(layout.num_blocks(), 2);
        assert_eq!(cost, lookup_cost());
        assert_eq!(cache.stats().lookups, 1);
    }

    #[test]
    #[should_panic(expected = "uncommitted datatype")]
    fn get_of_unknown_handle_panics() {
        LayoutCache::new().get(TypeHandle(999));
    }

    #[test]
    fn cost_model_ordering() {
        // Flattening a sparse type is much more expensive than a lookup,
        // and per-op parsing sits in between for big types.
        assert!(flatten_cost(4000) > parse_cost(4000));
        assert!(parse_cost(4000) > lookup_cost());
        assert!(flatten_cost(0) > lookup_cost());
    }

    fn tiny_cache() -> LayoutCache {
        LayoutCache::with_config(LayoutCacheConfig {
            shards: 1,
            shard_capacity: 2,
        })
    }

    fn distinct_type(i: u64) -> std::sync::Arc<TypeDesc> {
        TypeBuilder::vector(2, 1, 3 + i, TypeBuilder::double())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = tiny_cache();
        let (h0, _) = cache.commit(&distinct_type(0));
        let (h1, _) = cache.commit(&distinct_type(1));
        // Touch h0 so h1 becomes the LRU victim.
        cache.acquire(h0);
        let (_h2, _) = cache.commit(&distinct_type(2));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(h0).is_some(), "recently used survives");
        assert!(cache.peek(h1).is_none(), "LRU entry evicted");
        assert_eq!(cache.layout_stats().evictions(), 1);
    }

    #[test]
    fn evicted_handle_recompiles_on_acquire() {
        let mut cache = tiny_cache();
        let (h0, _) = cache.commit(&distinct_type(0));
        let (_h1, _) = cache.commit(&distinct_type(1));
        let (_h2, _) = cache.commit(&distinct_type(2));
        assert!(cache.peek(h0).is_none(), "h0 was evicted");
        let layout = cache.acquire(h0);
        assert_eq!(layout.num_blocks(), 2);
        assert!(cache.peek(h0).is_some(), "recompile re-inserts");
        // The recompile shows up as a second miss for that shard.
        assert_eq!(cache.layout_stats().misses(), 4);
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let mut cache = tiny_cache();
        let (h0, _) = cache.commit(&distinct_type(0));
        let (h1, _) = cache.commit(&distinct_type(1));
        let pin0 = cache.acquire(h0);
        let pin1 = cache.acquire(h1);
        // Both residents are pinned: inserting more may overflow the soft
        // bound but must not drop either pinned layout.
        let (h2, _) = cache.commit(&distinct_type(2));
        let (h3, _) = cache.commit(&distinct_type(3));
        assert!(cache.peek(h0).is_some());
        assert!(cache.peek(h1).is_some());
        assert!(cache.peek(h2).is_some() || cache.peek(h3).is_some());
        drop(pin0);
        drop(pin1);
        // With pins released, the next insert can evict again.
        let (_h4, _) = cache.commit(&distinct_type(4));
        assert!(cache.len() <= 3);
    }

    #[test]
    fn shard_stats_track_residency_and_high_water() {
        let mut cache = LayoutCache::with_config(LayoutCacheConfig {
            shards: 2,
            shard_capacity: 8,
        });
        for i in 0..6 {
            cache.commit(&distinct_type(i));
        }
        let stats = cache.layout_stats();
        assert_eq!(stats.per_shard.len(), 2);
        assert_eq!(stats.misses(), 6);
        assert_eq!(stats.resident_entries(), 6);
        assert!(stats.resident_bytes() > 0);
        assert_eq!(stats.high_water_bytes(), stats.resident_bytes());
        assert_eq!(stats.commits, 6);
    }

    #[test]
    fn acquire_counts_hits_for_hit_rate() {
        let mut cache = LayoutCache::new();
        let (h, _) = cache.commit(&distinct_type(0));
        for _ in 0..99 {
            cache.acquire(h);
        }
        let stats = cache.layout_stats();
        assert_eq!(stats.hits(), 99);
        assert_eq!(stats.misses(), 1);
        assert!((stats.hit_rate() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn stats_absorb_merges_across_caches() {
        let mut a = LayoutCache::new();
        let mut b = LayoutCache::new();
        a.commit(&distinct_type(0));
        b.commit(&distinct_type(0));
        b.commit(&distinct_type(1));
        let mut merged = a.layout_stats();
        merged.absorb(&b.layout_stats());
        assert_eq!(merged.commits, 3);
        assert_eq!(merged.misses(), 3);
        assert_eq!(merged.resident_entries(), 3);
    }
}
