//! The datatype layout cache.
//!
//! Following the scheme of Chu et al. \[24\] (the paper's `data layout` field
//! in each fusion request is "the cached data layout entry"), committed
//! types are flattened once and the resulting [`Layout`] is cached, keyed by
//! the structural hash of the type tree. Subsequent commits of an identical
//! type reuse the entry.
//!
//! The cache also carries the *cost model* for layout processing: schemes
//! that cache layouts (CPU-GPU-Hybrid, the proposed fusion design) pay the
//! flattening cost once per type; schemes without a cache (GPU-Sync,
//! GPU-Async — "Layout Cache: N" in Table I) re-parse the datatype on every
//! pack/unpack operation.

use crate::layout::Layout;
use crate::typedesc::TypeDesc;
use fusedpack_sim::Duration;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Handle to a committed datatype (the engine's `MPI_Datatype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeHandle(pub u64);

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub commits: u64,
    pub hits: u64,
    pub misses: u64,
    pub lookups: u64,
}

/// CPU cost of flattening a type with `blocks` leaf blocks (first commit).
pub fn flatten_cost(blocks: u64) -> Duration {
    Duration::from_nanos(300 + 4 * blocks)
}

/// CPU cost of a cache lookup (hit path).
pub fn lookup_cost() -> Duration {
    Duration::from_nanos(80)
}

/// CPU cost for a cache-less scheme to parse a datatype's layout on every
/// operation (the specialized kernels of \[18\]–\[22\] walk the *tree* on the
/// host and expand blocks on the device, so the host cost grows with block
/// count only up to a cap).
pub fn parse_cost(blocks: u64) -> Duration {
    Duration::from_nanos((200 + blocks / 4).min(3_000))
}

/// The layout cache.
#[derive(Debug, Default)]
pub struct LayoutCache {
    by_handle: HashMap<TypeHandle, Arc<Layout>>,
    by_structure: HashMap<u64, TypeHandle>,
    next: u64,
    stats: CacheStats,
}

impl LayoutCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Commit a type: flatten (or find the structurally identical cached
    /// entry) and return its handle plus the CPU cost incurred.
    pub fn commit(&mut self, desc: &TypeDesc) -> (TypeHandle, Duration) {
        self.stats.commits += 1;
        let mut hasher = DefaultHasher::new();
        desc.hash(&mut hasher);
        let key = hasher.finish();
        if let Some(&handle) = self.by_structure.get(&key) {
            self.stats.hits += 1;
            return (handle, lookup_cost());
        }
        self.stats.misses += 1;
        let layout = Arc::new(Layout::of(desc));
        let cost = flatten_cost(layout.num_blocks());
        let handle = TypeHandle(self.next);
        self.next += 1;
        self.by_structure.insert(key, handle);
        self.by_handle.insert(handle, layout);
        (handle, cost)
    }

    /// Look up a committed layout. Returns the layout and the lookup cost.
    pub fn get(&mut self, handle: TypeHandle) -> (Arc<Layout>, Duration) {
        self.stats.lookups += 1;
        let layout = self
            .by_handle
            .get(&handle)
            .unwrap_or_else(|| panic!("uncommitted datatype {handle:?}"))
            .clone();
        (layout, lookup_cost())
    }

    /// Peek without charging a lookup (for assertions/tests).
    pub fn peek(&self, handle: TypeHandle) -> Option<&Arc<Layout>> {
        self.by_handle.get(&handle)
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.by_handle.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_handle.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TypeBuilder;

    #[test]
    fn identical_types_share_an_entry() {
        let mut cache = LayoutCache::new();
        let a = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        let b = TypeBuilder::vector(4, 2, 5, TypeBuilder::double());
        let (ha, cost_a) = cache.commit(&a);
        let (hb, cost_b) = cache.commit(&b);
        assert_eq!(ha, hb);
        assert!(cost_b < cost_a, "second commit is a cache hit");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn different_types_get_distinct_handles() {
        let mut cache = LayoutCache::new();
        let (ha, _) = cache.commit(&TypeBuilder::vector(4, 2, 5, TypeBuilder::double()));
        let (hb, _) = cache.commit(&TypeBuilder::vector(4, 2, 6, TypeBuilder::double()));
        assert_ne!(ha, hb);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn get_returns_committed_layout() {
        let mut cache = LayoutCache::new();
        let t = TypeBuilder::indexed(&[(0, 2), (5, 3)], TypeBuilder::int());
        let (h, _) = cache.commit(&t);
        let (layout, cost) = cache.get(h);
        assert_eq!(layout.num_blocks(), 2);
        assert_eq!(cost, lookup_cost());
        assert_eq!(cache.stats().lookups, 1);
    }

    #[test]
    #[should_panic(expected = "uncommitted datatype")]
    fn get_of_unknown_handle_panics() {
        LayoutCache::new().get(TypeHandle(999));
    }

    #[test]
    fn cost_model_ordering() {
        // Flattening a sparse type is much more expensive than a lookup,
        // and per-op parsing sits in between for big types.
        assert!(flatten_cost(4000) > parse_cost(4000));
        assert!(parse_cost(4000) > lookup_cost());
        assert!(flatten_cost(0) > lookup_cost());
    }
}
