//! Property tests for the routing invariants the topology subsystem
//! promises (ISSUE: symmetry, determinism, congestion reconciliation).
//!
//! * **Symmetry** — `route(a, b)` is the reverse of `route(b, a)` on every
//!   hierarchical topology, for arbitrary endpoint pairs.
//! * **Determinism** — the same pair resolves to the same hop sequence on
//!   any thread (the `--jobs N` sweep workers each build their own
//!   clusters; routes must not depend on resolution order or thread).
//! * **Reconciliation** — after an arbitrary transfer schedule, per-hop
//!   byte counters equal the sum of `bytes × |route|` over the schedule,
//!   hop by hop.
//! * **Typed errors** — malformed endpoints produce [`NetError`] values,
//!   never panics.
//! * **Fault-domain safety** (PR 9) — with arbitrary hops forced down, a
//!   re-resolved route never traverses a downed hop (pairs with no
//!   surviving path report `Disconnected`); byte and busy counters still
//!   reconcile exactly across fail/reroute cycles; and the keyed fault
//!   draws the fabric sites ride are pure functions of their coordinates,
//!   independent of evaluation order — the foundation of the end-to-end
//!   `--shards N` byte-identity checks in `mpi/tests/chaos.rs` and the
//!   bench chaos-topo grid.

use fusedpack_net::topology::route::{FabricGraph, Router};
use fusedpack_net::{Endpoint, Hierarchy, HopId, HopState, NetError, TopoNet, Topology};
use fusedpack_sim::{Duration, FaultPlan, FaultSite, Time};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const NODES: u32 = 48; // 3 leaves / 3 groups of 16
const GPUS: u32 = 4;

fn presets() -> [Hierarchy; 2] {
    [Hierarchy::lassen_like(NODES), Hierarchy::abci_like(NODES)]
}

/// An arbitrary endpoint pair; pairs where both ends coincide are folded
/// onto a fixed distinct pair (the vendored proptest has no `prop_filter`).
fn distinct_pair() -> impl Strategy<Value = (Endpoint, Endpoint)> {
    (0..NODES, 0..GPUS, 0..NODES, 0..GPUS).prop_map(|(an, ag, bn, bg)| {
        let (a, b) = (Endpoint::new(an, ag), Endpoint::new(bn, bg));
        if a == b {
            (Endpoint::new(an, ag), Endpoint::new((an + 1) % NODES, ag))
        } else {
            (a, b)
        }
    })
}

proptest! {
    /// route(a, b) reversed is exactly route(b, a), on both machines.
    #[test]
    fn routes_are_symmetric((a, b) in distinct_pair()) {
        for t in presets() {
            let fwd = t.route(a, b).expect("valid endpoints route");
            let mut rev = t.route(b, a).expect("valid endpoints route");
            rev.reverse();
            prop_assert_eq!(&fwd, &rev, "{} -> {:?}/{:?}", t.name(), a, b);
        }
    }

    /// Route lengths follow the machine shape: 1 crossbar hop intra-node;
    /// fat-tree 2 (same leaf) or 4 (cross leaf); dragonfly +2 host-bounce
    /// hops on top of 2 (same group) or 3 (cross group).
    #[test]
    fn route_lengths_match_the_fabric_shape((a, b) in distinct_pair()) {
        let [lassen, abci] = presets();
        if a.node == b.node {
            prop_assert_eq!(lassen.route(a, b).unwrap().len(), 1);
            prop_assert_eq!(abci.route(a, b).unwrap().len(), 1);
        } else {
            let same_pod = a.node / 16 == b.node / 16;
            let want_ft = if same_pod { 2 } else { 4 };
            let want_df = if same_pod { 4 } else { 5 };
            prop_assert_eq!(lassen.route(a, b).unwrap().len(), want_ft);
            prop_assert_eq!(abci.route(a, b).unwrap().len(), want_df);
        }
    }

    /// The same pair resolves identically on every thread — the property
    /// the `--jobs N` determinism CI job leans on.
    #[test]
    fn routes_are_deterministic_across_threads(pairs in proptest::collection::vec(distinct_pair(), 1..8)) {
        for t in presets() {
            let t = &t;
            let reference: Vec<Vec<HopId>> = pairs
                .iter()
                .map(|&(a, b)| t.route(a, b).unwrap())
                .collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|worker| {
                        let pairs = &pairs;
                        let reference = &reference;
                        s.spawn(move || {
                            // Each worker resolves in a different order.
                            for i in 0..pairs.len() {
                                let j = (i + worker) % pairs.len();
                                let (a, b) = pairs[j];
                                assert_eq!(t.route(a, b).unwrap(), reference[j]);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("resolver thread");
                }
            });
        }
    }

    /// Per-hop congestion byte totals reconcile exactly with the transfer
    /// schedule: each hop carried the sum of the bytes of every transfer
    /// routed across it, and nothing else.
    #[test]
    fn hop_byte_counters_reconcile_with_the_schedule(
        transfers in proptest::collection::vec((distinct_pair(), 1u64..1_000_000), 1..24)
    ) {
        for build in [Hierarchy::lassen_like as fn(u32) -> Hierarchy, Hierarchy::abci_like] {
            let mut net = TopoNet::new(Arc::new(build(NODES)));
            let mut expected: HashMap<u32, u64> = HashMap::new();
            for &((a, b), bytes) in &transfers {
                let timing = net.transmit(Time(0), (a, b), bytes, None).unwrap();
                prop_assert!(timing.delivered > timing.start);
                for hop in net.resolve((a, b)).unwrap().iter() {
                    *expected.entry(hop.0).or_default() += bytes;
                }
            }
            for (i, stat) in net.hop_stats().iter().enumerate() {
                prop_assert_eq!(
                    stat.bytes,
                    expected.get(&(i as u32)).copied().unwrap_or(0),
                    "hop {} ({})", i, stat.kind
                );
                prop_assert_eq!(stat.wasted, 0u64);
            }
        }
    }

    /// Malformed endpoints produce typed errors; nothing in the resolution
    /// path panics or unwraps.
    #[test]
    fn invalid_endpoints_yield_typed_errors(
        (an, ag, bn, bg) in (0..2 * NODES, 0..2 * GPUS, 0..2 * NODES, 0..2 * GPUS)
    ) {
        let (a, b) = (Endpoint::new(an, ag), Endpoint::new(bn, bg));
        for t in presets() {
            match t.route(a, b) {
                Ok(route) => {
                    prop_assert!(!route.is_empty());
                    prop_assert!(an < NODES && bn < NODES && ag < GPUS && bg < GPUS);
                    prop_assert_ne!(a, b);
                }
                Err(NetError::NodeOutOfRange { node, num_nodes }) => {
                    prop_assert!(node >= num_nodes);
                }
                Err(NetError::GpuOutOfRange { gpu, gpus_per_node }) => {
                    prop_assert!(gpu >= gpus_per_node);
                }
                Err(NetError::SelfRoute { .. }) => prop_assert_eq!(a, b),
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }

    /// ECMP tie-breaking is stable under table rebuilds: two independently
    /// constructed routers over the same graph shape agree on every path.
    #[test]
    fn ecmp_choice_survives_rebuilds(pairs in proptest::collection::vec((0u32..12, 0u32..12), 1..8)) {
        let build = || {
            let mut g = FabricGraph::new(12);
            let mut next = 0u32;
            let mut hop = || {
                next += 1;
                HopId(next - 1)
            };
            let leaves = [g.add_switch(), g.add_switch(), g.add_switch()];
            let spines = [g.add_switch(), g.add_switch()];
            for n in 0..12u32 {
                g.add_edge(n, leaves[(n / 4) as usize], hop());
            }
            for &l in &leaves {
                for &s in &spines {
                    g.add_edge(l, s, hop());
                }
            }
            Router::new(g)
        };
        let (ra, rb) = (build(), build());
        for &(a, b) in &pairs {
            if a == b {
                continue;
            }
            prop_assert_eq!(ra.path(a, b).unwrap(), rb.path(a, b).unwrap());
        }
    }

    /// With arbitrary hops administratively downed, every route the
    /// network still hands out avoids every downed hop; pairs with no
    /// surviving path report `Disconnected`, never a dead route.
    #[test]
    fn rerouted_paths_never_traverse_downed_hops(
        (a, b) in distinct_pair(),
        kills in proptest::collection::vec(0u32..4096, 1..6),
    ) {
        for build in [Hierarchy::lassen_like as fn(u32) -> Hierarchy, Hierarchy::abci_like] {
            let mut net = TopoNet::new(Arc::new(build(NODES)));
            let n_hops = net.topology().hops().len() as u32;
            for k in &kills {
                net.force_hop_down(HopId(k % n_hops), Time(0));
            }
            match net.resolve((a, b)) {
                Ok(route) => {
                    let route: Vec<HopId> = route.to_vec();
                    for hop in route {
                        prop_assert!(
                            net.hop_state(hop) != HopState::Down,
                            "route for {:?}/{:?} crosses downed hop {:?}",
                            a, b, hop
                        );
                    }
                }
                Err(NetError::Disconnected { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }

    /// Byte and busy counters reconcile exactly with the per-transmit hop
    /// spans even as hops die mid-schedule and traffic reroutes: each
    /// surviving hop carried exactly the bytes of the transfers routed
    /// across it *at the time they ran*, and its occupancy equals the sum
    /// of their wire spans. Severed pairs occupy nothing.
    #[test]
    fn hop_counters_reconcile_across_fail_reroute_cycles(
        transfers in proptest::collection::vec((distinct_pair(), 1u64..1_000_000), 4..24),
        kill_every in 2usize..5,
    ) {
        for build in [Hierarchy::lassen_like as fn(u32) -> Hierarchy, Hierarchy::abci_like] {
            let mut net = TopoNet::new(Arc::new(build(NODES)));
            let mut bytes_by_hop: HashMap<u32, u64> = HashMap::new();
            let mut busy_by_hop: HashMap<u32, Duration> = HashMap::new();
            for (i, &((a, b), bytes)) in transfers.iter().enumerate() {
                match net.transmit(Time(0), (a, b), bytes, None) {
                    Ok(timing) => {
                        prop_assert!(timing.delivered > timing.start);
                        // Routes change under us, so the ground truth is
                        // the hop spans of *this* transmit, not a
                        // resolve-once route table.
                        for &(hop, start, wire_done) in net.last_hops() {
                            *bytes_by_hop.entry(hop).or_default() += bytes;
                            *busy_by_hop.entry(hop).or_default() += wire_done - start;
                        }
                        if i % kill_every == kill_every - 1 {
                            // Kill the first hop this transfer crossed;
                            // later transfers must reroute around it.
                            let victim = net.last_hops().first().map(|&(h, _, _)| h);
                            if let Some(h) = victim {
                                net.force_hop_down(HopId(h), Time(0));
                            }
                        }
                    }
                    Err(NetError::Disconnected { .. }) => {}
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            }
            for (i, stat) in net.hop_stats().iter().enumerate() {
                prop_assert_eq!(
                    stat.bytes,
                    bytes_by_hop.get(&(i as u32)).copied().unwrap_or(0),
                    "bytes on hop {} ({})", i, stat.kind
                );
                prop_assert_eq!(
                    stat.busy,
                    busy_by_hop.get(&(i as u32)).copied().unwrap_or(Duration::ZERO),
                    "busy on hop {} ({})", i, stat.kind
                );
                prop_assert_eq!(stat.wasted, 0u64);
            }
        }
    }

    /// Keyed fault draws are pure functions of `(plan seed, site, salt,
    /// key)`: evaluating the same coordinates in any order — forward,
    /// reversed, or interleaved across two plan instances — produces the
    /// identical decision sequence. This is what lets the sharded event
    /// loop replay fabric faults in barrier order without divergence.
    #[test]
    fn keyed_fault_draws_are_order_independent(
        seed in 0u64..u64::MAX,
        coords in proptest::collection::vec((0u64..64, 0u64..1 << 48), 1..32),
    ) {
        let mut fwd = FaultPlan::uniform(seed, 0.3);
        let mut rev = FaultPlan::uniform(seed, 0.3);
        for site in [FaultSite::HopFlap, FaultSite::RailDegrade, FaultSite::HopDown] {
            let forward: Vec<bool> = coords
                .iter()
                .map(|&(salt, key)| fwd.fires_keyed(site, salt, key))
                .collect();
            let mut backward: Vec<bool> = coords
                .iter()
                .rev()
                .map(|&(salt, key)| rev.fires_keyed(site, salt, key))
                .collect();
            backward.reverse();
            prop_assert_eq!(&forward, &backward, "{:?} draws depend on order", site);
            let spikes_fwd: Vec<_> = coords
                .iter()
                .map(|&(salt, key)| fwd.spike_keyed(site, salt, key))
                .collect();
            let mut spikes_rev: Vec<_> = coords
                .iter()
                .rev()
                .map(|&(salt, key)| rev.spike_keyed(site, salt, key))
                .collect();
            spikes_rev.reverse();
            prop_assert_eq!(spikes_fwd, spikes_rev);
        }
    }
}
