//! Host channel adapters (NICs).
//!
//! Each node owns one NIC. A NIC charges a fixed injection overhead per
//! posted work request (doorbell, WQE processing) and then hands the
//! message to the inter-node link. Send and receive directions are
//! independent engines, so full-duplex traffic overlaps.

use crate::error::NetError;
use crate::link::{Link, LinkSpec};
use crate::topology::{RouteKey, RouteTiming, TopoNet};
use fusedpack_sim::{Duration, Time};
use fusedpack_telemetry::{Lane, Payload, Telemetry};
use serde::{Deserialize, Serialize};

/// Identifies a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// One node's host channel adapter.
#[derive(Debug)]
pub struct Nic {
    /// Outbound wire (this node → fabric).
    tx: Link,
    /// Per-work-request injection overhead.
    injection: Duration,
    /// Effective bandwidth cap for GPUDirect transfers (NIC↔GPU path).
    gdr_bw_cap: f64,
    posted: u64,
    telemetry: Telemetry,
}

impl Nic {
    pub fn new(wire: LinkSpec, injection: Duration, gdr_bw_cap: f64) -> Self {
        Nic {
            tx: Link::new(wire),
            injection,
            gdr_bw_cap,
            posted: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder (tagged with the node's representative
    /// rank).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Post a send of host-resident data at `now`.
    /// Returns `(wire_start, delivered_at_peer)`.
    pub fn post_send(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        self.posted += 1;
        let (start, delivered) = self.tx.transmit(now + self.injection, bytes);
        self.telemetry
            .instant(Lane::Nic, now, || Payload::RdmaPost { bytes, gdr: false });
        self.telemetry
            .span(Lane::Nic, start, delivered, || Payload::WireTransfer {
                bytes,
            });
        (start, delivered)
    }

    /// Post a send that sources GPU memory via GPUDirect RDMA: same wire,
    /// but bandwidth capped by the NIC↔GPU path (PCIe peer-to-peer on ABCI).
    pub fn post_send_gdr(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        self.posted += 1;
        let (start, delivered) =
            self.tx
                .transmit_capped(now + self.injection, bytes, self.gdr_bw_cap);
        self.telemetry
            .instant(Lane::Nic, now, || Payload::RdmaPost { bytes, gdr: true });
        self.telemetry
            .span(Lane::Nic, start, delivered, || Payload::WireTransfer {
                bytes,
            });
        (start, delivered)
    }

    /// Post a send whose payload is dropped (or corrupted) on the wire:
    /// charges the injection overhead and full wire occupancy but delivers
    /// nothing. Returns `(wire_start, wire_clear)` — the retry protocol
    /// schedules the retransmission after its loss-detection timeout.
    pub fn post_send_wasted(&mut self, now: Time, bytes: u64, gdr: bool) -> (Time, Time) {
        self.posted += 1;
        let cap = gdr.then_some(self.gdr_bw_cap);
        let (start, wire_clear) = self.tx.transmit_wasted(now + self.injection, bytes, cap);
        self.telemetry
            .instant(Lane::Nic, now, || Payload::RdmaPost { bytes, gdr });
        self.telemetry
            .span(Lane::Nic, start, wire_clear, || Payload::WireTransfer {
                bytes,
            });
        (start, wire_clear)
    }

    /// Post a send that resolves a route through `net` instead of using
    /// this NIC's scalar wire: injection overhead and GPUDirect capping
    /// are charged exactly as in [`Nic::post_send`]/[`Nic::post_send_gdr`],
    /// but occupancy lands on every hop of the route. The work request is
    /// only counted as posted if the route resolves.
    pub fn post_send_routed(
        &mut self,
        net: &mut TopoNet,
        key: RouteKey,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> Result<RouteTiming, NetError> {
        self.post_send_routed_keyed(net, key, now, bytes, gdr, 0)
    }

    /// [`Nic::post_send_routed`] carrying the transfer's canonical event
    /// key through to [`TopoNet::transmit_keyed`], so an armed fabric
    /// fault domain draws its per-hop decisions from coordinates that are
    /// invariant across event-loop shard counts.
    pub fn post_send_routed_keyed(
        &mut self,
        net: &mut TopoNet,
        key: RouteKey,
        now: Time,
        bytes: u64,
        gdr: bool,
        event_key: u64,
    ) -> Result<RouteTiming, NetError> {
        let cap = gdr.then_some(self.gdr_bw_cap);
        let timing = net.transmit_keyed(now + self.injection, key, bytes, cap, event_key)?;
        self.posted += 1;
        self.telemetry
            .instant(Lane::Nic, now, || Payload::RdmaPost { bytes, gdr });
        self.telemetry
            .span(Lane::Nic, timing.start, timing.delivered, || {
                Payload::WireTransfer { bytes }
            });
        Ok(timing)
    }

    /// Routed analogue of [`Nic::post_send_wasted`]: occupies every hop of
    /// the route with a payload that never delivers. Returns
    /// `(wire_start, last_hop_clear)`.
    pub fn post_send_routed_wasted(
        &mut self,
        net: &mut TopoNet,
        key: RouteKey,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> Result<(Time, Time), NetError> {
        let cap = gdr.then_some(self.gdr_bw_cap);
        let (start, wire_clear) = net.transmit_wasted(now + self.injection, key, bytes, cap)?;
        self.posted += 1;
        self.telemetry
            .instant(Lane::Nic, now, || Payload::RdmaPost { bytes, gdr });
        self.telemetry
            .span(Lane::Nic, start, wire_clear, || Payload::WireTransfer {
                bytes,
            });
        Ok((start, wire_clear))
    }

    /// Injection overhead per work request.
    pub fn injection(&self) -> Duration {
        self.injection
    }

    /// Effective GPUDirect bandwidth.
    pub fn gdr_bw(&self) -> f64 {
        self.gdr_bw_cap.min(self.tx.spec().bw)
    }

    pub fn wire(&self) -> &LinkSpec {
        self.tx.spec()
    }

    pub fn posted(&self) -> u64 {
        self.posted
    }

    pub fn bytes_sent(&self) -> u64 {
        self.tx.bytes_carried()
    }

    /// Bytes that occupied the wire but were dropped before delivery.
    pub fn bytes_wasted(&self) -> u64 {
        self.tx.bytes_wasted()
    }

    pub fn reset(&mut self) {
        self.tx.reset();
        self.posted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> Nic {
        Nic::new(LinkSpec::ib_edr_dual(), Duration::from_nanos(400), 21.0e9)
    }

    #[test]
    fn injection_overhead_delays_wire_start() {
        let mut n = nic();
        let (start, _) = n.post_send(Time(0), 1024);
        assert_eq!(start, Time(400));
    }

    #[test]
    fn gdr_send_is_slower_for_large_messages() {
        let mut a = nic();
        let mut b = nic();
        let (_, host) = a.post_send(Time(0), 64 << 20);
        let (_, gdr) = b.post_send_gdr(Time(0), 64 << 20);
        assert!(gdr > host);
    }

    #[test]
    fn sends_serialize_on_the_wire() {
        let mut n = nic();
        let (_, d1) = n.post_send(Time(0), 25_000_000); // 1ms serialization
        let (s2, _) = n.post_send(Time(0), 1024);
        assert!(
            s2 >= d1 - n.wire().latency,
            "second send queues behind first"
        );
        assert_eq!(n.posted(), 2);
        assert_eq!(n.bytes_sent(), 25_001_024);
    }

    #[test]
    fn wasted_post_charges_wire_but_counts_separately() {
        let mut n = nic();
        let (start, clear) = n.post_send_wasted(Time(0), 25_000_000, false);
        assert_eq!(start, Time(400));
        assert!(clear > start);
        // A real send afterwards queues behind the doomed occupancy.
        let (s2, _) = n.post_send(clear, 1024);
        assert!(s2 >= clear);
        assert_eq!(n.posted(), 2);
        assert_eq!(n.bytes_wasted(), 25_000_000);
    }

    #[test]
    fn routed_send_on_flat_topology_matches_scalar_send() {
        use crate::topology::{Endpoint, FlatLink, TopoNet};
        use std::sync::Arc;

        let mut scalar = nic();
        let (s_start, s_delivered) = scalar.post_send_gdr(Time(0), 1 << 20);

        let mut routed = nic();
        let mut net = TopoNet::new(Arc::new(FlatLink::new(
            LinkSpec::nvlink2_75(),
            LinkSpec::ib_edr_dual(),
            2,
            4,
        )));
        let key = (Endpoint::new(0, 0), Endpoint::new(1, 0));
        let t = routed
            .post_send_routed(&mut net, key, Time(0), 1 << 20, true)
            .unwrap();
        assert_eq!((t.start, t.delivered), (s_start, s_delivered));
        assert_eq!(routed.posted(), 1);

        // A failed resolution is a typed error and does not count a post.
        let bad = (Endpoint::new(9, 0), Endpoint::new(0, 0));
        assert!(routed
            .post_send_routed(&mut net, bad, Time(0), 1, false)
            .is_err());
        assert_eq!(routed.posted(), 1);
    }

    #[test]
    fn gdr_bw_reported_as_min_of_paths() {
        let n = nic();
        assert_eq!(n.gdr_bw(), 21.0e9);
        let wide = Nic::new(LinkSpec::ib_edr_dual(), Duration(1), 99.0e9);
        assert_eq!(wide.gdr_bw(), 25.0e9);
    }
}
