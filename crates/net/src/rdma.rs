//! RDMA verbs over the modelled fabric.
//!
//! The rendezvous protocols in `fusedpack-mpi` are built on one-sided
//! operations: **RPUT** uses `RDMA WRITE` from the sender after receiving a
//! CTS, **RGET** uses `RDMA READ` issued by the receiver after an RTS. Both
//! can source/target GPU memory directly (GPUDirect RDMA), in which case
//! the wire bandwidth is capped by the NIC↔GPU path.

use crate::error::NetError;
use crate::nic::Nic;
use crate::topology::{RouteKey, TopoNet};
use fusedpack_sim::Time;
use serde::{Deserialize, Serialize};

/// Size of a control packet (RTS/CTS/FIN) on the wire.
pub const CTRL_BYTES: u64 = 64;

/// Which one-sided verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RdmaVerb {
    Write,
    Read,
}

/// Timing of one RDMA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdmaOp {
    /// When the verb was posted.
    pub posted: Time,
    /// When the payload has fully arrived at its destination memory.
    pub data_delivered: Time,
    /// When the initiator observes completion (CQE). For writes this is the
    /// remote ACK; for reads it coincides with data delivery.
    pub initiator_completion: Time,
}

/// Stateless RDMA engine: computes operation timings against the NICs'
/// FIFO state.
pub struct RdmaEngine;

impl RdmaEngine {
    /// `RDMA WRITE`: push `bytes` from the initiator's memory to the
    /// target's. Data flows over the initiator's NIC.
    pub fn write(initiator: &mut Nic, now: Time, bytes: u64, gdr: bool) -> RdmaOp {
        let (_, delivered) = if gdr {
            initiator.post_send_gdr(now, bytes)
        } else {
            initiator.post_send(now, bytes)
        };
        // Hardware ACK returns after one wire latency.
        let completion = delivered + initiator.wire().latency;
        RdmaOp {
            posted: now,
            data_delivered: delivered,
            initiator_completion: completion,
        }
    }

    /// `RDMA READ`: the initiator pulls `bytes` from the responder's
    /// memory. A request packet crosses the fabric first, then the payload
    /// flows over the *responder's* NIC.
    pub fn read(
        initiator: &mut Nic,
        responder: &mut Nic,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> RdmaOp {
        let (_, request_arrived) = initiator.post_send(now, CTRL_BYTES);
        let (_, delivered) = if gdr {
            responder.post_send_gdr(request_arrived, bytes)
        } else {
            responder.post_send(request_arrived, bytes)
        };
        RdmaOp {
            posted: now,
            data_delivered: delivered,
            initiator_completion: delivered,
        }
    }

    /// `RDMA WRITE` over a routed topology: the payload crosses every hop
    /// of `key`'s route, and the hardware ACK returns after the final
    /// hop's latency.
    pub fn write_routed(
        initiator: &mut Nic,
        net: &mut TopoNet,
        key: RouteKey,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> Result<RdmaOp, NetError> {
        let t = initiator.post_send_routed(net, key, now, bytes, gdr)?;
        Ok(RdmaOp {
            posted: now,
            data_delivered: t.delivered,
            initiator_completion: t.delivered + t.tail_latency,
        })
    }

    /// `RDMA READ` over a routed topology: the request packet crosses the
    /// route forward, the payload flows back over the reverse route
    /// through the responder's NIC.
    pub fn read_routed(
        initiator: &mut Nic,
        responder: &mut Nic,
        net: &mut TopoNet,
        key: RouteKey,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> Result<RdmaOp, NetError> {
        let request = initiator.post_send_routed(net, key, now, CTRL_BYTES, false)?;
        let back = (key.1, key.0);
        let t = responder.post_send_routed(net, back, request.delivered, bytes, gdr)?;
        Ok(RdmaOp {
            posted: now,
            data_delivered: t.delivered,
            initiator_completion: t.delivered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use fusedpack_sim::Duration;

    fn nic() -> Nic {
        Nic::new(LinkSpec::ib_edr_dual(), Duration::from_nanos(400), 21.0e9)
    }

    #[test]
    fn write_completion_trails_delivery_by_ack() {
        let mut n = nic();
        let op = RdmaEngine::write(&mut n, Time(0), 1 << 20, true);
        assert_eq!(
            op.initiator_completion,
            op.data_delivered + n.wire().latency
        );
        assert!(op.data_delivered > op.posted);
    }

    #[test]
    fn read_pays_an_extra_round_trip() {
        let mut req_w = nic();
        let write = RdmaEngine::write(&mut req_w, Time(0), 1 << 20, true);

        let mut req_r = nic();
        let mut resp_r = nic();
        let read = RdmaEngine::read(&mut req_r, &mut resp_r, Time(0), 1 << 20, true);

        assert!(
            read.data_delivered > write.data_delivered,
            "READ {:?} must be slower than WRITE {:?} (request trip)",
            read.data_delivered,
            write.data_delivered
        );
    }

    #[test]
    fn gdr_read_capped_by_gpu_path() {
        let mut a1 = nic();
        let mut b1 = nic();
        let host = RdmaEngine::read(&mut a1, &mut b1, Time(0), 256 << 20, false);
        let mut a2 = nic();
        let mut b2 = nic();
        let gdr = RdmaEngine::read(&mut a2, &mut b2, Time(0), 256 << 20, true);
        assert!(gdr.data_delivered > host.data_delivered);
    }

    #[test]
    fn routed_verbs_mirror_scalar_semantics() {
        use crate::topology::{Endpoint, Hierarchy, TopoNet};
        use std::sync::Arc;

        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        let mut a = nic();
        let mut b = nic();

        let write =
            RdmaEngine::write_routed(&mut a, &mut net, key, Time(0), 1 << 20, true).unwrap();
        assert!(write.initiator_completion > write.data_delivered);

        let read =
            RdmaEngine::read_routed(&mut a, &mut b, &mut net, key, Time(0), 1 << 20, true).unwrap();
        assert!(
            read.data_delivered > write.data_delivered,
            "READ pays the request trip and queues behind the write"
        );
        assert_eq!(read.initiator_completion, read.data_delivered);

        // Self-routes are typed errors, never panics.
        let self_key = (Endpoint::new(0, 0), Endpoint::new(0, 0));
        assert!(RdmaEngine::write_routed(&mut a, &mut net, self_key, Time(0), 1, false).is_err());
    }

    #[test]
    fn back_to_back_writes_share_the_wire() {
        let mut n = nic();
        let first = RdmaEngine::write(&mut n, Time(0), 25_000_000, false);
        let second = RdmaEngine::write(&mut n, Time(0), 25_000_000, false);
        assert!(second.data_delivered >= first.data_delivered);
        let gap = second.data_delivered - first.data_delivered;
        // Serialization of 25 MB at 25 GB/s = 1 ms.
        assert!((gap.as_millis_f64() - 1.0).abs() < 0.1, "gap {gap}");
    }
}
