//! Platform descriptions: the paper's Table II encoded as constructors.
//!
//! | spec | Lassen | ABCI |
//! |---|---|---|
//! | CPU | 2× POWER9, 44c | 2× Xeon Gold 6148, 20c |
//! | GPU | 4× V100 16 GB | 4× V100 16 GB |
//! | CPU↔GPU | NVLink2 75 GB/s | PCIe Gen3 ×16, 32 GB/s |
//! | GPU↔GPU | NVLink2 75 GB/s | NVLink2 50 GB/s |
//! | inter-node | 2× IB EDR 25 GB/s | 2× IB EDR 25 GB/s |
//!
//! Beyond the wire speeds, a platform carries the host-side cost constants
//! of its MPI runtime (call overheads, progress-poll cost) and the
//! effective GPUDirect bandwidth of its NIC↔GPU path — the PCIe
//! peer-to-peer ceiling is what makes ABCI's inter-node GPU transfers
//! slower and thus more overlappable, the effect behind Fig. 13.

use crate::link::LinkSpec;
use crate::nic::Nic;
use fusedpack_gpu::{DataMode, Gpu, GpuArch, HostLink};
use fusedpack_sim::Duration;

/// Everything needed to instantiate a simulated cluster node.
#[derive(Debug, Clone)]
pub struct Platform {
    pub name: &'static str,
    pub arch: GpuArch,
    pub host_link: HostLink,
    /// GPU↔GPU link within a node.
    pub gpu_gpu: LinkSpec,
    /// Inter-node wire.
    pub internode: LinkSpec,
    /// Effective NIC↔GPU bandwidth for GPUDirect RDMA, bytes/s.
    pub gdr_rdma_bw: f64,
    /// NIC per-work-request injection overhead.
    pub nic_injection: Duration,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// CPU cost of a lightweight MPI call (Isend/Irecv bookkeeping).
    pub mpi_call: Duration,
    /// CPU cost of one progress-engine poll iteration.
    pub progress_poll: Duration,
    /// Eager/rendezvous switchover for GPU-resident data.
    pub eager_limit: u64,
}

impl Platform {
    /// LLNL Lassen (Table II, left column).
    pub fn lassen() -> Self {
        Platform {
            name: "Lassen",
            arch: GpuArch::v100(),
            host_link: HostLink::nvlink2_cpu(),
            gpu_gpu: LinkSpec::nvlink2_75(),
            internode: LinkSpec::ib_edr_dual(),
            // POWER9's NVLink-attached NIC path sustains most of the wire.
            gdr_rdma_bw: 21.0e9,
            nic_injection: Duration::from_nanos(400),
            gpus_per_node: 4,
            mpi_call: Duration::from_nanos(250),
            progress_poll: Duration::from_nanos(150),
            eager_limit: 8 * 1024,
        }
    }

    /// AIST ABCI (Table II, right column).
    pub fn abci() -> Self {
        Platform {
            name: "ABCI",
            arch: {
                let mut a = GpuArch::v100();
                // x86 driver stack: costlier launches and synchronization
                // than POWER9 (consistent with the paper's much larger
                // overhead gaps on ABCI, up to 19x vs 8.5x on Lassen).
                a.launch_cpu = Duration::from_nanos(8_300);
                a.stream_sync_call = Duration::from_nanos(5_200);
                a.event_record = Duration::from_nanos(1_700);
                a.event_query = Duration::from_nanos(1_150);
                a
            },
            host_link: HostLink::pcie_gen3(),
            gpu_gpu: LinkSpec::nvlink2_50(),
            internode: LinkSpec::ib_edr_dual(),
            // PCIe Gen3 peer-to-peer through switches caps GPUDirect.
            gdr_rdma_bw: 11.0e9,
            nic_injection: Duration::from_nanos(450),
            gpus_per_node: 4,
            mpi_call: Duration::from_nanos(320),
            progress_poll: Duration::from_nanos(200),
            eager_limit: 8 * 1024,
        }
    }

    /// Build one GPU for this platform.
    pub fn make_gpu(&self, mem_capacity: u64, mode: DataMode) -> Gpu {
        Gpu::new(
            self.arch.clone(),
            mem_capacity,
            mode,
            self.host_link.clone(),
            // One stream per possible concurrent operation class; the
            // GPU-Async baseline [23] multiplexes over several.
            8,
        )
    }

    /// Build one NIC for this platform.
    pub fn make_nic(&self) -> Nic {
        Nic::new(self.internode.clone(), self.nic_injection, self.gdr_rdma_bw)
    }

    /// Effective one-way bandwidth for an inter-node GPU-to-GPU transfer.
    pub fn effective_internode_gpu_bw(&self) -> f64 {
        self.internode.bw.min(self.gdr_rdma_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_and_abci_match_table_ii_contrast() {
        let lassen = Platform::lassen();
        let abci = Platform::abci();
        // Same GPU, same fabric...
        assert_eq!(lassen.arch.name, abci.arch.name);
        assert_eq!(lassen.internode.name, abci.internode.name);
        // ...but ABCI's host link and GPUDirect path are slower.
        assert!(lassen.host_link.bw > abci.host_link.bw);
        assert!(lassen.gdr_rdma_bw > abci.gdr_rdma_bw);
        assert!(lassen.gpu_gpu.bw > abci.gpu_gpu.bw);
        assert!(
            lassen.effective_internode_gpu_bw() > abci.effective_internode_gpu_bw(),
            "ABCI inter-node GPU transfers must be slower (Fig. 13 driver)"
        );
    }

    #[test]
    fn abci_launches_cost_more() {
        assert!(Platform::abci().arch.launch_cpu > Platform::lassen().arch.launch_cpu);
    }

    #[test]
    fn factories_build_consistent_components() {
        let p = Platform::lassen();
        let gpu = p.make_gpu(1 << 20, DataMode::Full);
        assert_eq!(gpu.arch.name, "Tesla V100");
        assert!(gpu.gdr.available);
        let nic = p.make_nic();
        assert_eq!(nic.gdr_bw(), 21.0e9);
    }

    #[test]
    fn lassen_gdr_window_fast_abci_slow() {
        let l = Platform::lassen().make_gpu(1024, DataMode::ModelOnly);
        let a = Platform::abci().make_gpu(1024, DataMode::ModelOnly);
        assert!(l.gdr.read_bw > 10.0 * a.gdr.read_bw);
    }
}
