//! Live congestion state: one FIFO link per hop, cut-through timing,
//! and the fabric fault domain.
//!
//! [`TopoNet`] realises a [`Topology`]'s static hop table as live
//! [`Link`]s and times multi-hop transfers with **cut-through** (wormhole)
//! semantics: the head of the message advances one hop-latency at a time
//! while the body streams at the running minimum of the hop bandwidths
//! seen so far, so a slow first hop throttles everything downstream and a
//! fast hop after a slow one cannot "re-compress" the stream. Each hop is
//! still a FIFO: two transfers crossing a shared rail or spine serialize
//! on it deterministically, which is the whole congestion model — no
//! randomness, no fair-share fluid approximation, just event-ordered
//! occupancy.
//!
//! A single-hop route degenerates to exactly `Link::transmit` /
//! `transmit_capped`, which is what makes [`super::FlatLink`] bit-identical
//! to the legacy scalar-link path.
//!
//! ## Fabric fault domain
//!
//! When a [`FaultPlan`] with fabric sites is armed
//! ([`TopoNet::arm_faults`]), every hop of a keyed transmit
//! ([`TopoNet::transmit_keyed`]) consults three *stateless* per-hop draws
//! (`hash(seed, site, hop, event_key)` — order-independent, so identical
//! at any event-loop shard count):
//!
//! * [`FaultSite::HopFlap`] — a transient error: the head is delayed by a
//!   spike and the hop's health streak deepens. [`FLAP_DOWN_STREAK`]
//!   consecutive flapped traversals mark the hop down.
//! * [`FaultSite::RailDegrade`] — sustained degradation: the hop's
//!   bandwidth is capped at [`DEGRADE_BW_FACTOR`] of nominal until
//!   [`HEAL_STREAK`] consecutive clean traversals heal it.
//! * [`FaultSite::HopDown`] — the hop fails permanently.
//!
//! The health monitor is pure virtual-time state (signed streaks with
//! hysteresis, like the adaptive controller's): no wall clock, no
//! randomness beyond the plan. Down transitions are **deferred to the end
//! of the transmit that caused them** — the triggering transfer still
//! crosses (charged with its spike), then the hop joins the sorted dead
//! set, the route epoch bumps, and the route cache + arena are discarded
//! so every later resolution re-resolves around the failure via
//! [`Topology::route_avoiding`] (ECMP reroute, dual-rail failover).
//! Reroutes and rail failovers are detected at re-resolution by comparing
//! against the unrestricted route, counted in [`FabricHealth`], and
//! surfaced as [`FabricEvent`]s for telemetry. When no surviving route
//! exists the resolution returns [`NetError::Disconnected`] — the caller's
//! last-resort degradation rung (forced delivery) takes over.

use super::{HopId, HopKind, RouteKey, Topology, TopologyHandle};
use crate::error::NetError;
use crate::link::Link;
use fusedpack_sim::{Duration, FaultPlan, FaultSite, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Consecutive flapped traversals that mark a hop down.
pub const FLAP_DOWN_STREAK: i32 = 3;

/// Consecutive clean traversals that heal a degraded hop back to full
/// bandwidth.
pub const HEAL_STREAK: i32 = 8;

/// Fraction of nominal bandwidth a degraded hop retains.
pub const DEGRADE_BW_FACTOR: f64 = 0.25;

/// When a routed transfer started and finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTiming {
    /// First byte left the source (head of message won the first hop).
    pub start: Time,
    /// Last byte arrived at the destination (includes the final hop's
    /// latency tail).
    pub delivered: Time,
    /// The final hop's first-byte latency — the piece a caller subtracts
    /// to recover "wire clear" from `delivered`.
    pub tail_latency: Duration,
}

/// Aggregate per-hop counters for reports and reconciliation tests.
#[derive(Debug, Clone)]
pub struct HopStats {
    /// Hop kind display name (`nvlink-xbar`, `ib-rail`, ...).
    pub kind: &'static str,
    /// Bytes that crossed the hop (including wasted ones).
    pub bytes: u64,
    /// Bytes that occupied the hop but were never delivered.
    pub wasted: u64,
    /// Total occupancy.
    pub busy: Duration,
}

/// Health of one hop as seen by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopState {
    /// Nominal bandwidth, routable.
    Up,
    /// Routable at [`DEGRADE_BW_FACTOR`] of nominal bandwidth.
    Degraded,
    /// Permanently failed; routes avoid it.
    Down,
}

/// Per-hop monitor state: health plus the signed error/heal streak
/// (negative = consecutive flapped traversals, positive = consecutive
/// clean ones).
#[derive(Debug, Clone, Copy)]
struct HopHealth {
    state: HopState,
    streak: i32,
}

impl Default for HopHealth {
    fn default() -> Self {
        HopHealth {
            state: HopState::Up,
            streak: 0,
        }
    }
}

/// Aggregate fabric-health counters for one cluster's run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricHealth {
    /// Transient hop errors injected (head delayed, streak deepened).
    pub flaps: u64,
    /// Up→Degraded transitions (sustained bandwidth loss).
    pub degrades: u64,
    /// Hops marked permanently down (by `HopDown` or a flap streak).
    pub downs: u64,
    /// Hops currently down.
    pub hops_down: u64,
    /// Hops currently degraded.
    pub hops_degraded: u64,
    /// Routes re-resolved around dead hops.
    pub reroutes: u64,
    /// Reroutes that failed over a dead NIC rail to a sibling rail.
    pub rail_failovers: u64,
    /// Resolutions that found no surviving route (forced-delivery rung).
    pub disconnects: u64,
    /// Times the route cache was invalidated by a hop state transition.
    pub route_epoch: u64,
    /// Virtual nanoseconds of spike delay charged by hop flaps.
    pub added_latency_ns: u64,
}

impl FabricHealth {
    /// Total fabric faults injected.
    pub fn injected(&self) -> u64 {
        self.flaps + self.degrades + self.downs
    }

    /// Fold another cluster's counters into this one. Counters sum;
    /// `route_epoch` takes the max (it is a version, not a tally).
    pub fn merge(&mut self, other: &FabricHealth) {
        self.flaps += other.flaps;
        self.degrades += other.degrades;
        self.downs += other.downs;
        self.hops_down += other.hops_down;
        self.hops_degraded += other.hops_degraded;
        self.reroutes += other.reroutes;
        self.rail_failovers += other.rail_failovers;
        self.disconnects += other.disconnects;
        self.route_epoch = self.route_epoch.max(other.route_epoch);
        self.added_latency_ns += other.added_latency_ns;
    }
}

impl std::fmt::Display for FabricHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flaps={} degrades={} downs={} hops_down={} hops_degraded={} \
             reroutes={} rail_failovers={} disconnects={} route_epoch={}",
            self.flaps,
            self.degrades,
            self.downs,
            self.hops_down,
            self.hops_degraded,
            self.reroutes,
            self.rail_failovers,
            self.disconnects,
            self.route_epoch
        )
    }
}

/// A fabric state transition, drained by the cluster layer and emitted as
/// telemetry instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// A hop was marked permanently down at `at`.
    HopDown { hop: u32, at: Time },
    /// A pair's route was re-resolved around dead hops.
    Rerouted { src: u32, dst: u32, at: Time },
    /// A reroute failed over a dead NIC rail to a sibling rail.
    RailFailover { hop: u32, at: Time },
}

/// The armed fault domain of one [`TopoNet`].
#[derive(Debug)]
struct FabricFaults {
    plan: FaultPlan,
    hops: Vec<HopHealth>,
    /// Sorted ids of permanently-down hops (the routing dead set).
    dead: Vec<u32>,
    health: FabricHealth,
    events: Vec<FabricEvent>,
}

impl FabricFaults {
    fn new(plan: FaultPlan, num_hops: usize) -> Self {
        FabricFaults {
            plan,
            hops: vec![HopHealth::default(); num_hops],
            dead: Vec::new(),
            health: FabricHealth::default(),
            events: Vec::new(),
        }
    }

    /// Mark `hop` permanently down (idempotent). Returns whether the
    /// state actually transitioned.
    fn mark_down(&mut self, hop: u32, at: Time) -> bool {
        let h = &mut self.hops[hop as usize];
        if h.state == HopState::Down {
            return false;
        }
        if h.state == HopState::Degraded {
            self.health.hops_degraded -= 1;
        }
        h.state = HopState::Down;
        self.health.downs += 1;
        self.health.hops_down += 1;
        let pos = self.dead.binary_search(&hop).unwrap_err();
        self.dead.insert(pos, hop);
        self.events.push(FabricEvent::HopDown { hop, at });
        true
    }
}

/// A topology's live network state for one simulated cluster.
#[derive(Debug)]
pub struct TopoNet {
    topo: TopologyHandle,
    /// One live link per entry of `topo.hops()`.
    links: Vec<Link>,
    /// Resolved-route cache. Values are `(offset, len)` windows into
    /// `route_arena` — `Copy`, so the steady-state per-send lookup is one
    /// HashMap hit and two integers, with no refcount traffic and no
    /// per-route allocation. Valid for the current route epoch only: a hop
    /// going down clears the cache and the arena wholesale.
    routes: HashMap<RouteKey, (u32, u32)>,
    /// Bump arena holding every cached route's hop sequence back to back.
    /// Entries are referenced by offset, so the arena growing (and
    /// reallocating) never invalidates a cached route.
    route_arena: Vec<HopId>,
    /// Per-hop spans `(hop, start, wire_done)` of the most recent
    /// transmit, for telemetry emission by the caller.
    last_hops: Vec<(u32, Time, Time)>,
    /// Most recent transmit *start* per hop. Hops are FIFO resources, so
    /// starts must be non-decreasing per hop no matter how callers
    /// interleave — the invariant the sharded event loop's window barriers
    /// preserve, checked cheaply here so tests can assert it end to end.
    last_starts: Vec<Time>,
    /// Transmits whose start on some hop preceded the previous start on
    /// that hop. Always zero unless the per-hop FIFO contract is broken.
    order_violations: u64,
    /// Armed fault domain; `None` costs nothing on the hot path.
    faults: Option<Box<FabricFaults>>,
}

impl TopoNet {
    pub fn new(topo: TopologyHandle) -> Self {
        let links: Vec<Link> = topo
            .hops()
            .iter()
            .map(|h| Link::new(h.link_spec()))
            .collect();
        let last_starts = vec![Time::ZERO; links.len()];
        TopoNet {
            topo,
            links,
            routes: HashMap::new(),
            route_arena: Vec::new(),
            last_hops: Vec::new(),
            last_starts,
            order_violations: 0,
            faults: None,
        }
    }

    /// Arm the fabric fault domain with `plan`. The plan's fabric sites
    /// drive per-hop keyed draws; a plan with no fabric site armed still
    /// enables the health monitor (useful with the `force_*` helpers).
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        let n = self.links.len();
        self.faults = Some(Box::new(FabricFaults::new(plan, n)));
    }

    /// Aggregate fabric-health counters (all-zero when unarmed).
    pub fn fabric_health(&self) -> FabricHealth {
        self.faults.as_ref().map(|f| f.health).unwrap_or_default()
    }

    /// Current monitor state of one hop.
    pub fn hop_state(&self, hop: HopId) -> HopState {
        self.faults
            .as_ref()
            .map(|f| f.hops[hop.0 as usize].state)
            .unwrap_or(HopState::Up)
    }

    /// Route-cache epoch: bumps every time a hop transition invalidates
    /// the cache. The sharded cluster loop carries this through its window
    /// barriers so all shards observe transitions at the same virtual
    /// time.
    pub fn route_epoch(&self) -> u64 {
        self.faults
            .as_ref()
            .map(|f| f.health.route_epoch)
            .unwrap_or(0)
    }

    /// Drain fabric state transitions accumulated since the last drain
    /// (for telemetry emission by the cluster layer).
    pub fn drain_fabric_events(&mut self) -> Vec<FabricEvent> {
        self.faults
            .as_mut()
            .map(|f| std::mem::take(&mut f.events))
            .unwrap_or_default()
    }

    /// Administratively mark a hop permanently down at `at` (chaos
    /// scenarios and tests; the probabilistic path is
    /// [`FaultSite::HopDown`]). Arms an empty fault domain if none is
    /// armed yet.
    pub fn force_hop_down(&mut self, hop: HopId, at: Time) {
        if self.faults.is_none() {
            let seed = 0;
            self.arm_faults(FaultPlan::new(seed));
        }
        let f = self.faults.as_mut().expect("just armed");
        if f.mark_down(hop.0, at) {
            f.health.route_epoch += 1;
            self.routes.clear();
            self.route_arena.clear();
        }
    }

    /// Administratively degrade a hop to [`DEGRADE_BW_FACTOR`] of nominal
    /// bandwidth (heals after [`HEAL_STREAK`] clean traversals). Arms an
    /// empty fault domain if none is armed yet.
    pub fn force_hop_degrade(&mut self, hop: HopId) {
        if self.faults.is_none() {
            self.arm_faults(FaultPlan::new(0));
        }
        let f = self.faults.as_mut().expect("just armed");
        let h = &mut f.hops[hop.0 as usize];
        if h.state == HopState::Up {
            h.state = HopState::Degraded;
            h.streak = 0;
            f.health.degrades += 1;
            f.health.hops_degraded += 1;
        }
    }

    /// Smallest first-byte latency of any hop in the fabric — the
    /// conservative lookahead `δ` for time-window sharding: no effect of
    /// an event can reach another rank's state sooner than one hop away.
    /// Fault spikes and degradation only ever *add* delay, so the bound
    /// stays conservative under chaos.
    pub fn min_hop_latency(&self) -> Duration {
        self.topo
            .hops()
            .iter()
            .map(|h| h.latency)
            .min()
            .unwrap_or(Duration(0))
    }

    /// How many transmits started on some hop *earlier* than the previous
    /// transmit on that hop (see `last_starts`). Zero in a correct run.
    pub fn order_violations(&self) -> u64 {
        self.order_violations
    }

    #[inline]
    fn note_start(last_starts: &mut [Time], violations: &mut u64, hop: u32, start: Time) {
        let slot = &mut last_starts[hop as usize];
        if start < *slot {
            *violations += 1;
        } else {
            *slot = start;
        }
    }

    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Resolve (and cache) the route for a pair. The returned slice
    /// borrows the route arena; copy it out if the caller needs to keep it
    /// across further network calls. (Diagnostics path: reroute events
    /// triggered here are stamped at `Time::ZERO`; transmits stamp them at
    /// the transfer time.)
    pub fn resolve(&mut self, key: RouteKey) -> Result<&[HopId], NetError> {
        let (off, len) = self.resolve_ref(key, Time::ZERO)?;
        Ok(&self.route_arena[off as usize..(off + len) as usize])
    }

    /// The per-send resolution fast path: a `Copy` `(offset, len)` window
    /// into the arena, so hop iteration and link mutation can proceed
    /// without holding any borrow of the cache.
    ///
    /// With dead hops present, cache misses re-resolve via
    /// [`Topology::route_avoiding`] and compare against the unrestricted
    /// route to detect (and count) reroutes and rail failovers.
    #[inline]
    fn resolve_ref(&mut self, key: RouteKey, now: Time) -> Result<(u32, u32), NetError> {
        if let Some(&window) = self.routes.get(&key) {
            return Ok(window);
        }
        let dead_empty = self.faults.as_ref().is_none_or(|f| f.dead.is_empty());
        let hops = if dead_empty {
            self.topo.route(key.0, key.1)?
        } else {
            let f = self.faults.as_mut().expect("dead set implies armed");
            let routed = self.topo.route_avoiding(key.0, key.1, &f.dead);
            let hops = match routed {
                Ok(hops) => hops,
                Err(e) => {
                    if matches!(e, NetError::Disconnected { .. }) {
                        f.health.disconnects += 1;
                    }
                    return Err(e);
                }
            };
            // A reroute happened iff the unrestricted route would have
            // crossed a dead hop; a failover iff that dead hop is a NIC
            // rail (the dual-rail machines' sibling-rail path).
            if let Ok(unrestricted) = self.topo.route(key.0, key.1) {
                let crossed: Vec<u32> = unrestricted
                    .iter()
                    .map(|h| h.0)
                    .filter(|h| f.dead.binary_search(h).is_ok())
                    .collect();
                if !crossed.is_empty() {
                    f.health.reroutes += 1;
                    f.events.push(FabricEvent::Rerouted {
                        src: key.0.node,
                        dst: key.1.node,
                        at: now,
                    });
                    for h in crossed {
                        if self.topo.hops()[h as usize].kind == HopKind::Rail {
                            f.health.rail_failovers += 1;
                            f.events.push(FabricEvent::RailFailover { hop: h, at: now });
                        }
                    }
                }
            }
            hops
        };
        let off = u32::try_from(self.route_arena.len()).expect("route arena fits u32 offsets");
        self.route_arena.extend_from_slice(&hops);
        let window = (off, hops.len() as u32);
        self.routes.insert(key, window);
        Ok(window)
    }

    /// Hops currently packed in the route arena (diagnostics, benches).
    pub fn route_arena_len(&self) -> usize {
        self.route_arena.len()
    }

    /// Round-trip control latency along a pair's route (the analogue of
    /// `LinkSpec::rtt` for the retransmission protocol): twice the sum of
    /// per-hop first-byte latencies.
    pub fn route_rtt(&mut self, key: RouteKey) -> Result<Duration, NetError> {
        let (off, len) = self.resolve_ref(key, Time::ZERO)?;
        let one_way = self.route_arena[off as usize..(off + len) as usize]
            .iter()
            .fold(Duration(0), |acc, h| {
                acc + self.links[h.0 as usize].spec().latency
            });
        Ok(one_way * 2)
    }

    /// Transmit `bytes` from `key.0` to `key.1` starting no earlier than
    /// `now`, optionally capped at `bw_cap` (e.g. the GPUDirect ceiling).
    ///
    /// Per-hop spans are left in [`TopoNet::last_hops`] for the caller to
    /// turn into telemetry. Equivalent to [`TopoNet::transmit_keyed`] with
    /// event key 0 — callers with an armed fault domain should use the
    /// keyed variant so per-hop draws decorrelate across transfers.
    pub fn transmit(
        &mut self,
        now: Time,
        key: RouteKey,
        bytes: u64,
        bw_cap: Option<f64>,
    ) -> Result<RouteTiming, NetError> {
        self.transmit_keyed(now, key, bytes, bw_cap, 0)
    }

    /// [`TopoNet::transmit`] with the transfer's canonical event key, the
    /// coordinate fabric fault draws are keyed by. The draws are pure
    /// hashes of `(plan seed, site, hop, event_key)`, so replaying the
    /// same transfers in any order — in particular the sharded loop's
    /// barrier replay — injects the identical fault timeline.
    pub fn transmit_keyed(
        &mut self,
        now: Time,
        key: RouteKey,
        bytes: u64,
        bw_cap: Option<f64>,
        event_key: u64,
    ) -> Result<RouteTiming, NetError> {
        let (off, len) = self.resolve_ref(key, now)?;
        debug_assert!(len > 0, "routes have at least one hop");
        self.last_hops.clear();
        let mut head = now;
        let mut stream_bw = bw_cap.unwrap_or(f64::INFINITY);
        let mut first_start = now;
        let mut delivered = now;
        let mut tail_latency = Duration(0);
        // Down transitions triggered mid-route are applied *after* the hop
        // loop: the triggering transfer still crosses, and the route
        // arena/cache stay valid while the loop's (off, len) window is
        // live.
        let mut pending_down: Vec<(u32, Time)> = Vec::new();
        for i in 0..len {
            let hop = self.route_arena[(off + i) as usize];
            let nominal_bw = self.links[hop.0 as usize].spec().bw;
            let mut hop_bw = nominal_bw;
            if let Some(f) = self.faults.as_deref_mut() {
                let salt = u64::from(hop.0);
                if f.plan.fires_keyed(FaultSite::HopDown, salt, event_key)
                    && f.hops[hop.0 as usize].state != HopState::Down
                    && !pending_down.iter().any(|&(h, _)| h == hop.0)
                {
                    pending_down.push((hop.0, head));
                }
                if f.plan.fires_keyed(FaultSite::RailDegrade, salt, event_key) {
                    let h = &mut f.hops[hop.0 as usize];
                    if h.state == HopState::Up {
                        h.state = HopState::Degraded;
                        h.streak = 0;
                        f.health.degrades += 1;
                        f.health.hops_degraded += 1;
                    }
                }
                if f.plan.fires_keyed(FaultSite::HopFlap, salt, event_key) {
                    let spike = f.plan.spike_keyed(FaultSite::HopFlap, salt, event_key);
                    head += spike;
                    f.health.flaps += 1;
                    f.health.added_latency_ns += spike.as_nanos();
                    let h = &mut f.hops[hop.0 as usize];
                    h.streak = h.streak.min(0) - 1;
                    if h.streak <= -FLAP_DOWN_STREAK
                        && h.state != HopState::Down
                        && !pending_down.iter().any(|&(hid, _)| hid == hop.0)
                    {
                        pending_down.push((hop.0, head));
                    }
                } else {
                    let h = &mut f.hops[hop.0 as usize];
                    h.streak = h.streak.max(0) + 1;
                    if h.streak >= HEAL_STREAK && h.state == HopState::Degraded {
                        h.state = HopState::Up;
                        f.health.hops_degraded -= 1;
                    }
                }
                if f.hops[hop.0 as usize].state == HopState::Degraded {
                    hop_bw = nominal_bw * DEGRADE_BW_FACTOR;
                }
            }
            let link = &mut self.links[hop.0 as usize];
            // The body can never stream faster than the narrowest hop the
            // head has already crossed (cut-through, no re-compression).
            let (start, done) = link.transmit_capped(head, bytes, stream_bw.min(hop_bw));
            let latency = link.spec().latency;
            Self::note_start(
                &mut self.last_starts,
                &mut self.order_violations,
                hop.0,
                start,
            );
            self.last_hops.push((hop.0, start, done - latency));
            if i == 0 {
                first_start = start;
            }
            stream_bw = stream_bw.min(hop_bw);
            // The head reaches the next hop one latency after it left here.
            head = start + latency;
            delivered = done;
            tail_latency = latency;
        }
        if !pending_down.is_empty() {
            let f = self.faults.as_deref_mut().expect("pending implies armed");
            let mut transitioned = false;
            for (hop, at) in pending_down {
                transitioned |= f.mark_down(hop, at);
            }
            if transitioned {
                f.health.route_epoch += 1;
                self.routes.clear();
                self.route_arena.clear();
            }
        }
        Ok(RouteTiming {
            start: first_start,
            delivered,
            tail_latency,
        })
    }

    /// Occupy the route with a transfer that never delivers (dropped
    /// mid-flight under fault injection). Returns `(first_byte_sent,
    /// last_wire_clear)`; later traffic on the same hops queues behind it.
    /// Wasted occupancy rides the surviving route and respects degraded
    /// bandwidth caps, but draws no hop faults of its own (it *is* the
    /// fault path).
    pub fn transmit_wasted(
        &mut self,
        now: Time,
        key: RouteKey,
        bytes: u64,
        bw_cap: Option<f64>,
    ) -> Result<(Time, Time), NetError> {
        let (off, len) = self.resolve_ref(key, now)?;
        self.last_hops.clear();
        let mut head = now;
        let mut stream_bw = bw_cap.unwrap_or(f64::INFINITY);
        let mut first_start = now;
        let mut wire_clear = now;
        for i in 0..len {
            let hop = self.route_arena[(off + i) as usize];
            let mut hop_bw = self.links[hop.0 as usize].spec().bw;
            if let Some(f) = self.faults.as_deref() {
                if f.hops[hop.0 as usize].state == HopState::Degraded {
                    hop_bw *= DEGRADE_BW_FACTOR;
                }
            }
            let link = &mut self.links[hop.0 as usize];
            let (start, clear) = link.transmit_wasted(head, bytes, Some(stream_bw.min(hop_bw)));
            Self::note_start(
                &mut self.last_starts,
                &mut self.order_violations,
                hop.0,
                start,
            );
            self.last_hops.push((hop.0, start, clear));
            if i == 0 {
                first_start = start;
            }
            stream_bw = stream_bw.min(hop_bw);
            head = start + link.spec().latency;
            wire_clear = clear;
        }
        Ok((first_start, wire_clear))
    }

    /// Per-hop spans `(hop index, start, wire_done)` of the most recent
    /// transmit.
    pub fn last_hops(&self) -> &[(u32, Time, Time)] {
        &self.last_hops
    }

    /// Bytes carried by one hop (tests, reconciliation).
    pub fn bytes_on_hop(&self, hop: HopId) -> u64 {
        self.links[hop.0 as usize].bytes_carried()
    }

    /// Aggregate counters per hop, in hop-table order.
    pub fn hop_stats(&self) -> Vec<HopStats> {
        self.topo
            .hops()
            .iter()
            .zip(&self.links)
            .map(|(spec, link)| HopStats {
                kind: spec.kind.name(),
                bytes: link.bytes_carried(),
                wasted: link.bytes_wasted(),
                busy: link.busy_time(),
            })
            .collect()
    }

    /// Reset all occupancy and counters. The route cache survives only if
    /// no hop has ever gone down (routes are static in a healthy fabric);
    /// fault-domain health state survives — a dead hop stays dead.
    pub fn reset(&mut self) {
        for link in &mut self.links {
            link.reset();
        }
        self.last_hops.clear();
        self.last_starts.fill(Time::ZERO);
        self.order_violations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::topology::{Endpoint, FlatLink, Hierarchy};
    use fusedpack_sim::FaultSpec;
    use std::sync::Arc;

    fn flat_net() -> TopoNet {
        TopoNet::new(Arc::new(FlatLink::new(
            LinkSpec::nvlink2_75(),
            LinkSpec::ib_edr_dual(),
            2,
            4,
        )))
    }

    #[test]
    fn single_hop_matches_raw_link_transmit() {
        let mut net = flat_net();
        let mut raw = Link::new(LinkSpec::ib_edr_dual());
        let key = (Endpoint::new(0, 0), Endpoint::new(1, 0));
        let t = net.transmit(Time(0), key, 1 << 20, None).unwrap();
        let (rs, rd) = raw.transmit(Time(0), 1 << 20);
        assert_eq!((t.start, t.delivered), (rs, rd));
        assert_eq!(t.tail_latency, LinkSpec::ib_edr_dual().latency);

        let mut capped_net = flat_net();
        let mut capped_raw = Link::new(LinkSpec::ib_edr_dual());
        let t = capped_net
            .transmit(Time(0), key, 1 << 20, Some(11.0e9))
            .unwrap();
        let (rs, rd) = capped_raw.transmit_capped(Time(0), 1 << 20, 11.0e9);
        assert_eq!((t.start, t.delivered), (rs, rd));
    }

    #[test]
    fn shared_hops_serialize_transfers() {
        let mut net = flat_net();
        let key = (Endpoint::new(0, 0), Endpoint::new(1, 0));
        let other = (Endpoint::new(0, 1), Endpoint::new(1, 1));
        let a = net.transmit(Time(0), key, 1 << 20, None).unwrap();
        // Different GPUs, same node: the flat model shares the node's wire.
        let b = net.transmit(Time(0), other, 1 << 20, None).unwrap();
        assert!(b.start >= a.delivered - a.tail_latency, "FIFO on the wire");
        assert!(b.delivered > a.delivered);
    }

    #[test]
    fn multi_hop_head_advances_by_latency_and_narrowest_hop_rules() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        let bytes = 1u64 << 24;
        let t = net.transmit(Time(0), key, bytes, None).unwrap();
        let hops = net.last_hops().to_vec();
        assert_eq!(hops.len(), 4, "cross-leaf fat-tree route");
        // Head progression: hop i+1 starts one hop-latency after hop i.
        for w in hops.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        // The narrowest hop is the 12.5 GB/s rail; total time must be at
        // least the rail serialization plus all hop latencies.
        let rail_bw = LinkSpec::ib_edr_dual().bw / 2.0;
        let floor = Duration::from_secs_f64(bytes as f64 / rail_bw);
        assert!(t.delivered - t.start >= floor);
        // And within a couple of latencies of it: downstream hops stream
        // at the capped rate, they do not re-serialize the message.
        assert!(t.delivered - t.start <= floor + Duration::from_nanos(10_000));
    }

    #[test]
    fn wasted_routes_occupy_hops_and_count() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::abci_like(8)));
        let key = (Endpoint::new(0, 0), Endpoint::new(7, 1));
        let (start, clear) = net.transmit_wasted(Time(0), key, 4096, None).unwrap();
        assert!(clear > start);
        let wasted: u64 = net.hop_stats().iter().map(|h| h.wasted).sum();
        let route_len = net.resolve(key).unwrap().len() as u64;
        assert_eq!(wasted, 4096 * route_len, "every hop on the route counts");
    }

    #[test]
    fn hop_stats_reconcile_with_transmits() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 2), Endpoint::new(20, 3));
        net.transmit(Time(0), key, 1000, None).unwrap();
        net.transmit(Time(0), key, 500, None).unwrap();
        let route = net.resolve(key).unwrap().to_vec();
        for hop in route.iter() {
            assert_eq!(net.bytes_on_hop(*hop), 1500);
        }
        let total: u64 = net.hop_stats().iter().map(|h| h.bytes).sum();
        assert_eq!(total, 1500 * route.len() as u64);
        net.reset();
        assert_eq!(net.hop_stats().iter().map(|h| h.bytes).sum::<u64>(), 0);
    }

    #[test]
    fn per_hop_starts_are_monotone_even_with_nonmonotone_call_times() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        // Callers' `now` values regress; the FIFO links still serialize,
        // so per-hop starts never go backwards and no violation fires.
        net.transmit(Time(5_000), key, 1 << 16, None).unwrap();
        net.transmit(Time(0), key, 1 << 16, None).unwrap();
        net.transmit(Time(2_000), key, 1 << 16, None).unwrap();
        assert_eq!(net.order_violations(), 0);
        net.reset();
        assert_eq!(net.order_violations(), 0);
    }

    #[test]
    fn route_cache_packs_the_arena_and_hits_never_grow_it() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let k1 = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        let k2 = (Endpoint::new(1, 0), Endpoint::new(2, 0));
        let r1 = net.resolve(k1).unwrap().to_vec();
        let r2 = net.resolve(k2).unwrap().to_vec();
        assert_eq!(net.route_arena_len(), r1.len() + r2.len());
        // Cache hits return the same hops and allocate nothing new.
        assert_eq!(net.resolve(k1).unwrap(), &r1[..]);
        assert_eq!(net.resolve(k2).unwrap(), &r2[..]);
        assert_eq!(net.route_arena_len(), r1.len() + r2.len());
        // The cached windows drive transmits identically to fresh routes.
        let t = net.transmit(Time(0), k1, 4096, None).unwrap();
        assert_eq!(net.last_hops().len(), r1.len());
        assert!(t.delivered > t.start);
    }

    #[test]
    fn min_hop_latency_is_the_fabric_floor() {
        let net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let floor = net.min_hop_latency();
        assert!(floor > Duration(0));
        assert!(net.topology().hops().iter().all(|h| h.latency >= floor));
    }

    #[test]
    fn route_errors_surface_not_panic() {
        let mut net = flat_net();
        let err = net
            .transmit(Time(0), (Endpoint::new(9, 0), Endpoint::new(0, 0)), 1, None)
            .unwrap_err();
        assert!(matches!(err, NetError::NodeOutOfRange { node: 9, .. }));
        let err = net
            .route_rtt((Endpoint::new(0, 0), Endpoint::new(0, 0)))
            .unwrap_err();
        assert!(matches!(err, NetError::SelfRoute { .. }));
    }

    #[test]
    fn route_rtt_sums_hop_latencies() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let same_leaf = net
            .route_rtt((Endpoint::new(0, 0), Endpoint::new(1, 0)))
            .unwrap();
        let cross_leaf = net
            .route_rtt((Endpoint::new(0, 0), Endpoint::new(31, 0)))
            .unwrap();
        assert_eq!(same_leaf, LinkSpec::ib_edr_dual().latency * 4);
        assert!(cross_leaf > same_leaf);
    }

    // ---- fabric fault domain ----

    #[test]
    fn unarmed_keyed_transmit_matches_plain_transmit() {
        let key = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        let mut a = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let mut b = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let ta = a.transmit(Time(0), key, 1 << 20, None).unwrap();
        let tb = b
            .transmit_keyed(Time(0), key, 1 << 20, None, 12345)
            .unwrap();
        assert_eq!(ta, tb, "event keys are inert without an armed domain");
        assert_eq!(a.fabric_health(), FabricHealth::default());
        assert_eq!(a.route_epoch(), 0);
    }

    #[test]
    fn forced_hop_down_reroutes_and_counts_rail_failover() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(8)));
        let key = (Endpoint::new(0, 0), Endpoint::new(7, 0));
        let healthy = net.resolve(key).unwrap().to_vec();
        let rail = healthy
            .iter()
            .copied()
            .find(|h| net.topology().hops()[h.0 as usize].kind == HopKind::Rail)
            .expect("fat-tree route rides a rail");
        net.force_hop_down(rail, Time(100));
        assert_eq!(net.hop_state(rail), HopState::Down);
        assert_eq!(net.route_epoch(), 1);
        assert_eq!(net.route_arena_len(), 0, "arena discarded on transition");
        let t = net.transmit_keyed(Time(200), key, 4096, None, 1).unwrap();
        assert!(t.delivered > t.start);
        let rerouted = net.resolve(key).unwrap().to_vec();
        assert!(rerouted.iter().all(|h| *h != rail), "dead hop avoided");
        let health = net.fabric_health();
        assert_eq!(health.downs, 1);
        assert_eq!(health.hops_down, 1);
        assert!(health.reroutes >= 1);
        assert!(
            health.rail_failovers >= 1,
            "dead rail => dual-rail failover"
        );
        let events = net.drain_fabric_events();
        assert!(events.iter().any(
            |e| matches!(e, FabricEvent::HopDown { hop, at } if *hop == rail.0 && *at == Time(100))
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::Rerouted { src: 0, dst: 7, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::RailFailover { hop, .. } if *hop == rail.0)));
        assert!(net.drain_fabric_events().is_empty(), "drain empties");
    }

    #[test]
    fn degraded_hop_slows_the_stream_and_heals_after_clean_traversals() {
        let key = (Endpoint::new(0, 0), Endpoint::new(7, 0));
        let mut clean = TopoNet::new(Arc::new(Hierarchy::lassen_like(8)));
        let base = clean.transmit(Time(0), key, 1 << 24, None).unwrap();

        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(8)));
        let route = clean.resolve(key).unwrap().to_vec();
        let rail = route
            .iter()
            .copied()
            .find(|h| clean.topology().hops()[h.0 as usize].kind == HopKind::Rail)
            .unwrap();
        net.force_hop_degrade(rail);
        assert_eq!(net.hop_state(rail), HopState::Degraded);
        let slow = net.transmit_keyed(Time(0), key, 1 << 24, None, 0).unwrap();
        assert!(
            slow.delivered - slow.start > base.delivered - base.start,
            "degraded rail must stretch the transfer"
        );
        // Clean traversals heal it back to nominal bandwidth.
        for k in 1..=HEAL_STREAK as u64 {
            net.transmit_keyed(Time(0), key, 4096, None, k).unwrap();
        }
        assert_eq!(net.hop_state(rail), HopState::Up);
        assert_eq!(net.fabric_health().hops_degraded, 0);
        assert_eq!(net.fabric_health().degrades, 1);
    }

    #[test]
    fn sustained_flaps_take_hops_down_until_disconnected() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(8)));
        net.arm_faults(FaultPlan::new(7).with(
            FaultSite::HopFlap,
            FaultSpec::with_probability(1.0).delay_ns(5_000),
        ));
        let key = (Endpoint::new(0, 0), Endpoint::new(7, 0));
        // Every traversal flaps every hop, so streaks hit -FLAP_DOWN_STREAK
        // together and hops die route by route until node 0 is severed.
        let mut disconnected = false;
        for k in 0..32u64 {
            match net.transmit_keyed(Time(0), key, 4096, None, k) {
                Ok(t) => assert!(t.delivered > t.start),
                Err(NetError::Disconnected { .. }) => {
                    disconnected = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(disconnected, "flap streaks must eventually sever the route");
        let health = net.fabric_health();
        assert!(health.flaps > 0);
        assert!(health.downs > 0, "streaks crossed the down threshold");
        assert!(
            health.disconnects > 0,
            "severed pair reported, not panicked"
        );
        assert!(health.added_latency_ns > 0, "spikes charged virtual time");
        assert!(health.route_epoch > 0);
    }

    #[test]
    fn keyed_fault_draws_are_replay_invariant() {
        // Two nets replaying the same (event_key, transfer) set in
        // different orders end with identical health state — the property
        // the sharded barrier replay relies on. Keys come from disjoint
        // pairs so FIFO occupancy cannot couple the timelines.
        let mk = || {
            let mut n = TopoNet::new(Arc::new(Hierarchy::lassen_like(8)));
            n.arm_faults(
                FaultPlan::new(21).with(FaultSite::RailDegrade, FaultSpec::with_probability(0.2)),
            );
            n
        };
        let pairs = [
            ((Endpoint::new(0, 0), Endpoint::new(5, 0)), 10u64),
            ((Endpoint::new(1, 0), Endpoint::new(6, 0)), 11),
            ((Endpoint::new(2, 0), Endpoint::new(7, 0)), 12),
            ((Endpoint::new(3, 0), Endpoint::new(4, 0)), 13),
        ];
        let mut fwd = mk();
        for &(key, k) in &pairs {
            fwd.transmit_keyed(Time(0), key, 1 << 16, None, k).unwrap();
        }
        let mut rev = mk();
        for &(key, k) in pairs.iter().rev() {
            rev.transmit_keyed(Time(0), key, 1 << 16, None, k).unwrap();
        }
        assert_eq!(fwd.fabric_health(), rev.fabric_health());
    }

    #[test]
    fn hop_byte_accounting_reconciles_across_a_reroute() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(8)));
        let key = (Endpoint::new(0, 0), Endpoint::new(7, 0));
        net.transmit(Time(0), key, 1000, None).unwrap();
        let healthy = net.resolve(key).unwrap().to_vec();
        let rail = healthy
            .iter()
            .copied()
            .find(|h| net.topology().hops()[h.0 as usize].kind == HopKind::Rail)
            .unwrap();
        net.force_hop_down(rail, Time(0));
        net.transmit_keyed(Time(0), key, 500, None, 1).unwrap();
        let rerouted = net.resolve(key).unwrap().to_vec();
        // Bytes land on exactly the hops each transfer rode: the shared
        // suffix carries both, the dead rail only the first.
        assert_eq!(net.bytes_on_hop(rail), 1000);
        for h in rerouted.iter().filter(|h| !healthy.contains(h)) {
            assert_eq!(net.bytes_on_hop(*h), 500);
        }
        let total: u64 = net.hop_stats().iter().map(|s| s.bytes).sum();
        assert_eq!(
            total,
            1000 * healthy.len() as u64 + 500 * rerouted.len() as u64
        );
    }
}
