//! Live congestion state: one FIFO link per hop, cut-through timing.
//!
//! [`TopoNet`] realises a [`Topology`]'s static hop table as live
//! [`Link`]s and times multi-hop transfers with **cut-through** (wormhole)
//! semantics: the head of the message advances one hop-latency at a time
//! while the body streams at the running minimum of the hop bandwidths
//! seen so far, so a slow first hop throttles everything downstream and a
//! fast hop after a slow one cannot "re-compress" the stream. Each hop is
//! still a FIFO: two transfers crossing a shared rail or spine serialize
//! on it deterministically, which is the whole congestion model — no
//! randomness, no fair-share fluid approximation, just event-ordered
//! occupancy.
//!
//! A single-hop route degenerates to exactly `Link::transmit` /
//! `transmit_capped`, which is what makes [`super::FlatLink`] bit-identical
//! to the legacy scalar-link path.

use super::{HopId, RouteKey, Topology, TopologyHandle};
use crate::error::NetError;
use crate::link::Link;
use fusedpack_sim::{Duration, Time};
use std::collections::HashMap;

/// When a routed transfer started and finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTiming {
    /// First byte left the source (head of message won the first hop).
    pub start: Time,
    /// Last byte arrived at the destination (includes the final hop's
    /// latency tail).
    pub delivered: Time,
    /// The final hop's first-byte latency — the piece a caller subtracts
    /// to recover "wire clear" from `delivered`.
    pub tail_latency: Duration,
}

/// Aggregate per-hop counters for reports and reconciliation tests.
#[derive(Debug, Clone)]
pub struct HopStats {
    /// Hop kind display name (`nvlink-xbar`, `ib-rail`, ...).
    pub kind: &'static str,
    /// Bytes that crossed the hop (including wasted ones).
    pub bytes: u64,
    /// Bytes that occupied the hop but were never delivered.
    pub wasted: u64,
    /// Total occupancy.
    pub busy: Duration,
}

/// A topology's live network state for one simulated cluster.
#[derive(Debug)]
pub struct TopoNet {
    topo: TopologyHandle,
    /// One live link per entry of `topo.hops()`.
    links: Vec<Link>,
    /// Resolved-route cache: topologies are static, so a pair's hop
    /// sequence never changes. Values are `(offset, len)` windows into
    /// `route_arena` — `Copy`, so the steady-state per-send lookup is one
    /// HashMap hit and two integers, with no refcount traffic and no
    /// per-route allocation.
    routes: HashMap<RouteKey, (u32, u32)>,
    /// Bump arena holding every cached route's hop sequence back to back.
    /// Entries are referenced by offset, so the arena growing (and
    /// reallocating) never invalidates a cached route.
    route_arena: Vec<HopId>,
    /// Per-hop spans `(hop, start, wire_done)` of the most recent
    /// transmit, for telemetry emission by the caller.
    last_hops: Vec<(u32, Time, Time)>,
    /// Most recent transmit *start* per hop. Hops are FIFO resources, so
    /// starts must be non-decreasing per hop no matter how callers
    /// interleave — the invariant the sharded event loop's window barriers
    /// preserve, checked cheaply here so tests can assert it end to end.
    last_starts: Vec<Time>,
    /// Transmits whose start on some hop preceded the previous start on
    /// that hop. Always zero unless the per-hop FIFO contract is broken.
    order_violations: u64,
}

impl TopoNet {
    pub fn new(topo: TopologyHandle) -> Self {
        let links: Vec<Link> = topo
            .hops()
            .iter()
            .map(|h| Link::new(h.link_spec()))
            .collect();
        let last_starts = vec![Time::ZERO; links.len()];
        TopoNet {
            topo,
            links,
            routes: HashMap::new(),
            route_arena: Vec::new(),
            last_hops: Vec::new(),
            last_starts,
            order_violations: 0,
        }
    }

    /// Smallest first-byte latency of any hop in the fabric — the
    /// conservative lookahead `δ` for time-window sharding: no effect of
    /// an event can reach another rank's state sooner than one hop away.
    pub fn min_hop_latency(&self) -> Duration {
        self.topo
            .hops()
            .iter()
            .map(|h| h.latency)
            .min()
            .unwrap_or(Duration(0))
    }

    /// How many transmits started on some hop *earlier* than the previous
    /// transmit on that hop (see `last_starts`). Zero in a correct run.
    pub fn order_violations(&self) -> u64 {
        self.order_violations
    }

    #[inline]
    fn note_start(last_starts: &mut [Time], violations: &mut u64, hop: u32, start: Time) {
        let slot = &mut last_starts[hop as usize];
        if start < *slot {
            *violations += 1;
        } else {
            *slot = start;
        }
    }

    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Resolve (and cache) the route for a pair. The returned slice
    /// borrows the route arena; copy it out if the caller needs to keep it
    /// across further network calls.
    pub fn resolve(&mut self, key: RouteKey) -> Result<&[HopId], NetError> {
        let (off, len) = self.resolve_ref(key)?;
        Ok(&self.route_arena[off as usize..(off + len) as usize])
    }

    /// The per-send resolution fast path: a `Copy` `(offset, len)` window
    /// into the arena, so hop iteration and link mutation can proceed
    /// without holding any borrow of the cache.
    #[inline]
    fn resolve_ref(&mut self, key: RouteKey) -> Result<(u32, u32), NetError> {
        if let Some(&window) = self.routes.get(&key) {
            return Ok(window);
        }
        let hops = self.topo.route(key.0, key.1)?;
        let off = u32::try_from(self.route_arena.len()).expect("route arena fits u32 offsets");
        self.route_arena.extend_from_slice(&hops);
        let window = (off, hops.len() as u32);
        self.routes.insert(key, window);
        Ok(window)
    }

    /// Hops currently packed in the route arena (diagnostics, benches).
    pub fn route_arena_len(&self) -> usize {
        self.route_arena.len()
    }

    /// Round-trip control latency along a pair's route (the analogue of
    /// `LinkSpec::rtt` for the retransmission protocol): twice the sum of
    /// per-hop first-byte latencies.
    pub fn route_rtt(&mut self, key: RouteKey) -> Result<Duration, NetError> {
        let (off, len) = self.resolve_ref(key)?;
        let one_way = self.route_arena[off as usize..(off + len) as usize]
            .iter()
            .fold(Duration(0), |acc, h| {
                acc + self.links[h.0 as usize].spec().latency
            });
        Ok(one_way * 2)
    }

    /// Transmit `bytes` from `key.0` to `key.1` starting no earlier than
    /// `now`, optionally capped at `bw_cap` (e.g. the GPUDirect ceiling).
    ///
    /// Per-hop spans are left in [`TopoNet::last_hops`] for the caller to
    /// turn into telemetry.
    pub fn transmit(
        &mut self,
        now: Time,
        key: RouteKey,
        bytes: u64,
        bw_cap: Option<f64>,
    ) -> Result<RouteTiming, NetError> {
        let (off, len) = self.resolve_ref(key)?;
        debug_assert!(len > 0, "routes have at least one hop");
        self.last_hops.clear();
        let mut head = now;
        let mut stream_bw = bw_cap.unwrap_or(f64::INFINITY);
        let mut first_start = now;
        let mut delivered = now;
        let mut tail_latency = Duration(0);
        for i in 0..len {
            let hop = self.route_arena[(off + i) as usize];
            let link = &mut self.links[hop.0 as usize];
            // The body can never stream faster than the narrowest hop the
            // head has already crossed (cut-through, no re-compression).
            let (start, done) = link.transmit_capped(head, bytes, stream_bw);
            let latency = link.spec().latency;
            Self::note_start(
                &mut self.last_starts,
                &mut self.order_violations,
                hop.0,
                start,
            );
            self.last_hops.push((hop.0, start, done - latency));
            if i == 0 {
                first_start = start;
            }
            stream_bw = stream_bw.min(link.spec().bw);
            // The head reaches the next hop one latency after it left here.
            head = start + latency;
            delivered = done;
            tail_latency = latency;
        }
        Ok(RouteTiming {
            start: first_start,
            delivered,
            tail_latency,
        })
    }

    /// Occupy the route with a transfer that never delivers (dropped
    /// mid-flight under fault injection). Returns `(first_byte_sent,
    /// last_wire_clear)`; later traffic on the same hops queues behind it.
    pub fn transmit_wasted(
        &mut self,
        now: Time,
        key: RouteKey,
        bytes: u64,
        bw_cap: Option<f64>,
    ) -> Result<(Time, Time), NetError> {
        let (off, len) = self.resolve_ref(key)?;
        self.last_hops.clear();
        let mut head = now;
        let mut stream_bw = bw_cap.unwrap_or(f64::INFINITY);
        let mut first_start = now;
        let mut wire_clear = now;
        for i in 0..len {
            let hop = self.route_arena[(off + i) as usize];
            let link = &mut self.links[hop.0 as usize];
            let (start, clear) = link.transmit_wasted(head, bytes, Some(stream_bw));
            Self::note_start(
                &mut self.last_starts,
                &mut self.order_violations,
                hop.0,
                start,
            );
            self.last_hops.push((hop.0, start, clear));
            if i == 0 {
                first_start = start;
            }
            stream_bw = stream_bw.min(link.spec().bw);
            head = start + link.spec().latency;
            wire_clear = clear;
        }
        Ok((first_start, wire_clear))
    }

    /// Per-hop spans `(hop index, start, wire_done)` of the most recent
    /// transmit.
    pub fn last_hops(&self) -> &[(u32, Time, Time)] {
        &self.last_hops
    }

    /// Bytes carried by one hop (tests, reconciliation).
    pub fn bytes_on_hop(&self, hop: HopId) -> u64 {
        self.links[hop.0 as usize].bytes_carried()
    }

    /// Aggregate counters per hop, in hop-table order.
    pub fn hop_stats(&self) -> Vec<HopStats> {
        self.topo
            .hops()
            .iter()
            .zip(&self.links)
            .map(|(spec, link)| HopStats {
                kind: spec.kind.name(),
                bytes: link.bytes_carried(),
                wasted: link.bytes_wasted(),
                busy: link.busy_time(),
            })
            .collect()
    }

    /// Reset all occupancy and counters (route cache survives: routes are
    /// static).
    pub fn reset(&mut self) {
        for link in &mut self.links {
            link.reset();
        }
        self.last_hops.clear();
        self.last_starts.fill(Time::ZERO);
        self.order_violations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::topology::{Endpoint, FlatLink, Hierarchy};
    use std::sync::Arc;

    fn flat_net() -> TopoNet {
        TopoNet::new(Arc::new(FlatLink::new(
            LinkSpec::nvlink2_75(),
            LinkSpec::ib_edr_dual(),
            2,
            4,
        )))
    }

    #[test]
    fn single_hop_matches_raw_link_transmit() {
        let mut net = flat_net();
        let mut raw = Link::new(LinkSpec::ib_edr_dual());
        let key = (Endpoint::new(0, 0), Endpoint::new(1, 0));
        let t = net.transmit(Time(0), key, 1 << 20, None).unwrap();
        let (rs, rd) = raw.transmit(Time(0), 1 << 20);
        assert_eq!((t.start, t.delivered), (rs, rd));
        assert_eq!(t.tail_latency, LinkSpec::ib_edr_dual().latency);

        let mut capped_net = flat_net();
        let mut capped_raw = Link::new(LinkSpec::ib_edr_dual());
        let t = capped_net
            .transmit(Time(0), key, 1 << 20, Some(11.0e9))
            .unwrap();
        let (rs, rd) = capped_raw.transmit_capped(Time(0), 1 << 20, 11.0e9);
        assert_eq!((t.start, t.delivered), (rs, rd));
    }

    #[test]
    fn shared_hops_serialize_transfers() {
        let mut net = flat_net();
        let key = (Endpoint::new(0, 0), Endpoint::new(1, 0));
        let other = (Endpoint::new(0, 1), Endpoint::new(1, 1));
        let a = net.transmit(Time(0), key, 1 << 20, None).unwrap();
        // Different GPUs, same node: the flat model shares the node's wire.
        let b = net.transmit(Time(0), other, 1 << 20, None).unwrap();
        assert!(b.start >= a.delivered - a.tail_latency, "FIFO on the wire");
        assert!(b.delivered > a.delivered);
    }

    #[test]
    fn multi_hop_head_advances_by_latency_and_narrowest_hop_rules() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        let bytes = 1u64 << 24;
        let t = net.transmit(Time(0), key, bytes, None).unwrap();
        let hops = net.last_hops().to_vec();
        assert_eq!(hops.len(), 4, "cross-leaf fat-tree route");
        // Head progression: hop i+1 starts one hop-latency after hop i.
        for w in hops.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        // The narrowest hop is the 12.5 GB/s rail; total time must be at
        // least the rail serialization plus all hop latencies.
        let rail_bw = LinkSpec::ib_edr_dual().bw / 2.0;
        let floor = Duration::from_secs_f64(bytes as f64 / rail_bw);
        assert!(t.delivered - t.start >= floor);
        // And within a couple of latencies of it: downstream hops stream
        // at the capped rate, they do not re-serialize the message.
        assert!(t.delivered - t.start <= floor + Duration::from_nanos(10_000));
    }

    #[test]
    fn wasted_routes_occupy_hops_and_count() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::abci_like(8)));
        let key = (Endpoint::new(0, 0), Endpoint::new(7, 1));
        let (start, clear) = net.transmit_wasted(Time(0), key, 4096, None).unwrap();
        assert!(clear > start);
        let wasted: u64 = net.hop_stats().iter().map(|h| h.wasted).sum();
        let route_len = net.resolve(key).unwrap().len() as u64;
        assert_eq!(wasted, 4096 * route_len, "every hop on the route counts");
    }

    #[test]
    fn hop_stats_reconcile_with_transmits() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 2), Endpoint::new(20, 3));
        net.transmit(Time(0), key, 1000, None).unwrap();
        net.transmit(Time(0), key, 500, None).unwrap();
        let route = net.resolve(key).unwrap().to_vec();
        for hop in route.iter() {
            assert_eq!(net.bytes_on_hop(*hop), 1500);
        }
        let total: u64 = net.hop_stats().iter().map(|h| h.bytes).sum();
        assert_eq!(total, 1500 * route.len() as u64);
        net.reset();
        assert_eq!(net.hop_stats().iter().map(|h| h.bytes).sum::<u64>(), 0);
    }

    #[test]
    fn per_hop_starts_are_monotone_even_with_nonmonotone_call_times() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let key = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        // Callers' `now` values regress; the FIFO links still serialize,
        // so per-hop starts never go backwards and no violation fires.
        net.transmit(Time(5_000), key, 1 << 16, None).unwrap();
        net.transmit(Time(0), key, 1 << 16, None).unwrap();
        net.transmit(Time(2_000), key, 1 << 16, None).unwrap();
        assert_eq!(net.order_violations(), 0);
        net.reset();
        assert_eq!(net.order_violations(), 0);
    }

    #[test]
    fn route_cache_packs_the_arena_and_hits_never_grow_it() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let k1 = (Endpoint::new(0, 0), Endpoint::new(31, 0));
        let k2 = (Endpoint::new(1, 0), Endpoint::new(2, 0));
        let r1 = net.resolve(k1).unwrap().to_vec();
        let r2 = net.resolve(k2).unwrap().to_vec();
        assert_eq!(net.route_arena_len(), r1.len() + r2.len());
        // Cache hits return the same hops and allocate nothing new.
        assert_eq!(net.resolve(k1).unwrap(), &r1[..]);
        assert_eq!(net.resolve(k2).unwrap(), &r2[..]);
        assert_eq!(net.route_arena_len(), r1.len() + r2.len());
        // The cached windows drive transmits identically to fresh routes.
        let t = net.transmit(Time(0), k1, 4096, None).unwrap();
        assert_eq!(net.last_hops().len(), r1.len());
        assert!(t.delivered > t.start);
    }

    #[test]
    fn min_hop_latency_is_the_fabric_floor() {
        let net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let floor = net.min_hop_latency();
        assert!(floor > Duration(0));
        assert!(net
            .topology()
            .hops()
            .iter()
            .all(|h| h.latency >= floor));
    }

    #[test]
    fn route_errors_surface_not_panic() {
        let mut net = flat_net();
        let err = net
            .transmit(Time(0), (Endpoint::new(9, 0), Endpoint::new(0, 0)), 1, None)
            .unwrap_err();
        assert!(matches!(err, NetError::NodeOutOfRange { node: 9, .. }));
        let err = net
            .route_rtt((Endpoint::new(0, 0), Endpoint::new(0, 0)))
            .unwrap_err();
        assert!(matches!(err, NetError::SelfRoute { .. }));
    }

    #[test]
    fn route_rtt_sums_hop_latencies() {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(32)));
        let same_leaf = net
            .route_rtt((Endpoint::new(0, 0), Endpoint::new(1, 0)))
            .unwrap();
        let cross_leaf = net
            .route_rtt((Endpoint::new(0, 0), Endpoint::new(31, 0)))
            .unwrap();
        assert_eq!(same_leaf, LinkSpec::ib_edr_dual().latency * 4);
        assert!(cross_leaf > same_leaf);
    }
}
