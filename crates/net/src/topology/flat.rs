//! The legacy flat model expressed as a topology.
//!
//! One shared GPU↔GPU crossbar hop per node (the lazily created
//! `intra_link` of the pre-topology cluster) and one outbound wire hop per
//! node (the NIC's tx link). Routes are at most one hop long, so the
//! cut-through timing of [`super::TopoNet`] degenerates to exactly the old
//! `Link::transmit` math — a cluster built with an explicit `FlatLink`
//! must be bit-identical to one built with no topology at all (enforced by
//! the golden-guard tests in `fusedpack-bench`).

use super::{Endpoint, HopId, HopKind, HopSpec, Topology};
use crate::error::NetError;
use crate::link::LinkSpec;

/// Today's model: a scalar intra-node link per node and a scalar outbound
/// wire per node. Hop table layout: `[xbar(node 0..n), tx(node 0..n)]`.
#[derive(Debug, Clone)]
pub struct FlatLink {
    num_nodes: u32,
    gpus_per_node: u32,
    hops: Vec<HopSpec>,
}

impl FlatLink {
    pub fn new(gpu_gpu: LinkSpec, internode: LinkSpec, num_nodes: u32, gpus_per_node: u32) -> Self {
        assert!(num_nodes >= 1 && gpus_per_node >= 1);
        let mut hops = Vec::with_capacity(2 * num_nodes as usize);
        for _ in 0..num_nodes {
            hops.push(HopSpec::from_link(HopKind::NvlinkXbar, &gpu_gpu));
        }
        for _ in 0..num_nodes {
            hops.push(HopSpec::from_link(HopKind::TxWire, &internode));
        }
        FlatLink {
            num_nodes,
            gpus_per_node,
            hops,
        }
    }

    /// The flat topology matching a platform's scalar link constants.
    pub fn for_platform(platform: &crate::platform::Platform, num_nodes: u32) -> Self {
        FlatLink::new(
            platform.gpu_gpu.clone(),
            platform.internode.clone(),
            num_nodes,
            platform.gpus_per_node,
        )
    }

    fn xbar(&self, node: u32) -> HopId {
        HopId(node)
    }

    fn tx(&self, node: u32) -> HopId {
        HopId(self.num_nodes + node)
    }
}

impl Topology for FlatLink {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    fn hops(&self) -> &[HopSpec] {
        &self.hops
    }

    fn route(&self, src: Endpoint, dst: Endpoint) -> Result<Vec<HopId>, NetError> {
        super::validate_endpoint(self, src)?;
        super::validate_endpoint(self, dst)?;
        if src == dst {
            return Err(NetError::SelfRoute { node: src.node });
        }
        if src.node == dst.node {
            Ok(vec![self.xbar(src.node)])
        } else {
            // The legacy model charges only the sender's outbound wire.
            Ok(vec![self.tx(src.node)])
        }
    }

    fn is_flat(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn flat() -> FlatLink {
        FlatLink::for_platform(&Platform::lassen(), 4)
    }

    #[test]
    fn intra_node_is_one_shared_xbar_hop() {
        let t = flat();
        let r01 = t.route(Endpoint::new(2, 0), Endpoint::new(2, 1)).unwrap();
        let r23 = t.route(Endpoint::new(2, 2), Endpoint::new(2, 3)).unwrap();
        assert_eq!(r01.len(), 1);
        // Every GPU pair on a node shares the node's single crossbar hop,
        // matching the legacy one-intra-link-per-node model.
        assert_eq!(r01, r23);
        assert_eq!(t.hops()[r01[0].0 as usize].kind, HopKind::NvlinkXbar);
    }

    #[test]
    fn inter_node_is_the_senders_wire() {
        let t = flat();
        let ab = t.route(Endpoint::new(0, 0), Endpoint::new(3, 1)).unwrap();
        let ba = t.route(Endpoint::new(3, 1), Endpoint::new(0, 0)).unwrap();
        assert_eq!(ab.len(), 1);
        assert_eq!(t.hops()[ab[0].0 as usize].kind, HopKind::TxWire);
        // Directed: each node sends on its own wire (the legacy NIC model).
        assert_ne!(ab, ba);
        assert!(t.is_flat());
    }

    #[test]
    fn bad_endpoints_are_typed_errors_not_panics() {
        let t = flat();
        assert!(t.route(Endpoint::new(9, 0), Endpoint::new(0, 0)).is_err());
        assert!(t.route(Endpoint::new(0, 9), Endpoint::new(1, 0)).is_err());
        assert!(matches!(
            t.route(Endpoint::new(1, 1), Endpoint::new(1, 1)),
            Err(NetError::SelfRoute { node: 1 })
        ));
    }
}
