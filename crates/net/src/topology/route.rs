//! Static shortest-path routing over an explicit fabric graph.
//!
//! Fabrics (fat tree, dragonfly) are undirected multigraphs: vertices are
//! nodes and switches, edges carry [`HopId`]s, and parallel edges model
//! multi-rail attachments. [`Router`] builds one BFS distance table per
//! destination node (lazily, cached) and extracts paths by walking
//! downhill, breaking equal-cost ties **deterministically and
//! symmetrically**: at every branching point the candidate edges are
//! sorted by `(neighbor, hop)` and the pick is indexed by the unordered
//! endpoint pair, so `path(a, b)` load-spreads across rails and spines
//! (ECMP) while `path(b, a)` is always its exact reverse.

use super::HopId;
use crate::error::NetError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Index of a vertex in a [`FabricGraph`] (nodes first, then switches).
pub type Vertex = u32;

/// An undirected multigraph of nodes and switches.
#[derive(Debug, Default)]
pub struct FabricGraph {
    /// Number of leading vertices that are compute nodes.
    num_nodes: u32,
    /// Adjacency: per vertex, `(neighbor, hop)` in insertion order.
    adj: Vec<Vec<(Vertex, HopId)>>,
}

impl FabricGraph {
    pub fn new(num_nodes: u32) -> Self {
        FabricGraph {
            num_nodes,
            adj: vec![Vec::new(); num_nodes as usize],
        }
    }

    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Add a switch/router vertex, returning its index.
    pub fn add_switch(&mut self) -> Vertex {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as Vertex
    }

    /// Add an undirected edge carrying `hop`. Parallel edges (multi-rail)
    /// are allowed and kept distinct.
    pub fn add_edge(&mut self, a: Vertex, b: Vertex, hop: HopId) {
        assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        assert_ne!(a, b, "fabric links join distinct vertices");
        self.adj[a as usize].push((b, hop));
        self.adj[b as usize].push((a, hop));
    }

    /// BFS distance-to-`root` table, treating every hop in the sorted
    /// `dead` list as cut. An empty list is the fault-free fabric.
    fn bfs_from(&self, root: Vertex, dead: &[u32]) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[root as usize] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            for &(n, h) in &self.adj[v as usize] {
                if dead.binary_search(&h.0).is_ok() {
                    continue;
                }
                if dist[n as usize] == u32::MAX {
                    dist[n as usize] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }
}

/// Key of one cached BFS table: (destination node, sorted dead-hop set).
/// The fault-free fabric is the empty dead set, so healthy routing costs
/// one small-key lookup.
type TableKey = (Vertex, Vec<u32>);

/// Shortest-path resolver with cached per-destination BFS tables.
#[derive(Debug)]
pub struct Router {
    graph: FabricGraph,
    /// [`TableKey`] → distance-to-destination per vertex. Built lazily;
    /// the mutex only guards table construction, lookups clone the `Arc`.
    tables: Mutex<HashMap<TableKey, Arc<Vec<u32>>>>,
}

impl Router {
    pub fn new(graph: FabricGraph) -> Self {
        Router {
            graph,
            tables: Mutex::new(HashMap::new()),
        }
    }

    pub fn graph(&self) -> &FabricGraph {
        &self.graph
    }

    fn table_for(&self, dst: Vertex, dead: &[u32]) -> Arc<Vec<u32>> {
        let mut tables = self.tables.lock().expect("router table lock");
        if let Some(t) = tables.get(&(dst, Vec::new())).filter(|_| dead.is_empty()) {
            return t.clone();
        }
        tables
            .entry((dst, dead.to_vec()))
            .or_insert_with(|| Arc::new(self.graph.bfs_from(dst, dead)))
            .clone()
    }

    /// Hop sequence of a shortest path from node `a` to node `b`.
    ///
    /// Computed canonically for the unordered pair `(min, max)` and
    /// reversed when `a > b`, which makes symmetry structural rather than
    /// a property to hope for.
    pub fn path(&self, a: Vertex, b: Vertex) -> Result<Vec<HopId>, NetError> {
        self.path_avoiding(a, b, &[])
    }

    /// Like [`path`](Self::path) but never traversing a hop in the sorted
    /// `dead` list. The surviving-shortest-path tables are keyed by the
    /// dead set, so each distinct failure pattern pays one BFS per
    /// destination and is cached after that; paths stay symmetric because
    /// both directions share the canonical `(lo, hi)` walk. Returns
    /// [`NetError::Disconnected`] when the failures partition the fabric.
    pub fn path_avoiding(
        &self,
        a: Vertex,
        b: Vertex,
        dead: &[u32],
    ) -> Result<Vec<HopId>, NetError> {
        debug_assert!(dead.windows(2).all(|w| w[0] < w[1]), "dead set is sorted");
        let nodes = self.graph.num_nodes;
        for v in [a, b] {
            if v >= nodes {
                return Err(NetError::NodeOutOfRange {
                    node: v,
                    num_nodes: nodes,
                });
            }
        }
        if a == b {
            return Err(NetError::SelfRoute { node: a });
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let mut hops = self.canonical_path(lo, hi, dead)?;
        if a > b {
            hops.reverse();
        }
        Ok(hops)
    }

    /// Walk downhill from `lo` toward `hi` using `hi`'s distance table.
    fn canonical_path(&self, lo: Vertex, hi: Vertex, dead: &[u32]) -> Result<Vec<HopId>, NetError> {
        let dist = self.table_for(hi, dead);
        if dist[lo as usize] == u32::MAX {
            return Err(NetError::Disconnected { src: lo, dst: hi });
        }
        // The ECMP selector: one index for the whole unordered pair, so
        // distinct pairs spread over parallel rails/spines while the same
        // pair always takes the same path.
        let spread = (lo as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(hi as u64);
        let mut hops = Vec::with_capacity(dist[lo as usize] as usize);
        let mut at = lo;
        let mut candidates: Vec<(Vertex, HopId)> = Vec::new();
        while at != hi {
            let d = dist[at as usize];
            candidates.clear();
            candidates.extend(
                self.graph.adj[at as usize]
                    .iter()
                    .copied()
                    .filter(|&(n, h)| {
                        dist[n as usize] != u32::MAX
                            && dist[n as usize] + 1 == d
                            && dead.binary_search(&h.0).is_err()
                    }),
            );
            debug_assert!(!candidates.is_empty(), "BFS table admits a next hop");
            if candidates.is_empty() {
                return Err(NetError::Disconnected { src: lo, dst: hi });
            }
            candidates.sort_unstable_by_key(|&(n, h)| (n, h));
            let pick = candidates[(spread % candidates.len() as u64) as usize];
            hops.push(pick.1);
            at = pick.0;
        }
        Ok(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 nodes on 2 leaf switches, 2 spines — a miniature fat tree.
    fn mini_fat_tree() -> Router {
        let mut g = FabricGraph::new(4);
        let l0 = g.add_switch();
        let l1 = g.add_switch();
        let s0 = g.add_switch();
        let s1 = g.add_switch();
        let mut hop = 0u32;
        let mut next = || {
            hop += 1;
            HopId(hop - 1)
        };
        for n in 0..2 {
            g.add_edge(n, l0, next());
        }
        for n in 2..4 {
            g.add_edge(n, l1, next());
        }
        for l in [l0, l1] {
            for s in [s0, s1] {
                g.add_edge(l, s, next());
            }
        }
        Router::new(g)
    }

    #[test]
    fn same_leaf_is_two_hops_cross_leaf_is_four() {
        let r = mini_fat_tree();
        assert_eq!(r.path(0, 1).unwrap().len(), 2);
        assert_eq!(r.path(0, 3).unwrap().len(), 4);
    }

    #[test]
    fn paths_are_symmetric_by_construction() {
        let r = mini_fat_tree();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                let fwd = r.path(a, b).unwrap();
                let mut rev = r.path(b, a).unwrap();
                rev.reverse();
                assert_eq!(fwd, rev, "{a}->{b}");
            }
        }
    }

    #[test]
    fn ecmp_spreads_distinct_pairs_across_spines() {
        let r = mini_fat_tree();
        let spine_hops: std::collections::HashSet<HopId> = (0..2)
            .flat_map(|a| (2..4).map(move |b| (a, b)))
            .map(|(a, b)| r.path(a, b).unwrap()[1])
            .collect();
        assert!(
            spine_hops.len() > 1,
            "4 cross-leaf pairs should not all pick the same spine uplink"
        );
    }

    #[test]
    fn avoiding_reroutes_around_dead_hops_and_stays_symmetric() {
        let r = mini_fat_tree();
        let healthy = r.path(0, 3).unwrap();
        // Kill the spine uplink the healthy path picked: the reroute must
        // avoid it and still connect, symmetrically.
        let dead = vec![healthy[1].0];
        let fwd = r.path_avoiding(0, 3, &dead).unwrap();
        let mut rev = r.path_avoiding(3, 0, &dead).unwrap();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 4, "reroute stays shortest");
        assert!(fwd.iter().all(|h| h.0 != dead[0]), "dead hop is avoided");
    }

    #[test]
    fn avoiding_every_uplink_reports_disconnected() {
        let r = mini_fat_tree();
        // Hops 0..4 are the node->leaf rails; cutting node 0's only rail
        // (hop 0) severs it from everything.
        assert!(matches!(
            r.path_avoiding(0, 3, &[0]),
            Err(NetError::Disconnected { .. })
        ));
        // The fault-free path is unaffected by the cached avoiding table.
        assert_eq!(r.path(0, 3).unwrap().len(), 4);
    }

    #[test]
    fn errors_are_typed() {
        let r = mini_fat_tree();
        assert!(matches!(
            r.path(0, 9),
            Err(NetError::NodeOutOfRange { node: 9, .. })
        ));
        assert!(matches!(r.path(2, 2), Err(NetError::SelfRoute { node: 2 })));

        // A node with no edges is disconnected, not a panic.
        let mut g = FabricGraph::new(2);
        let s = g.add_switch();
        g.add_edge(0, s, HopId(0));
        let r = Router::new(g);
        assert!(matches!(
            r.path(0, 1),
            Err(NetError::Disconnected { src: 0, dst: 1 })
        ));
    }
}
