//! Topology-aware network models.
//!
//! The paper's central cross-machine result (Table II) is a *topology*
//! contrast: NVLink-dense nodes behind a fat fabric (Lassen) vs PCIe nodes
//! behind a flatter one (ABCI) change where kernel fusion pays off. This
//! module replaces the simulator's single scalar link with a pluggable
//! [`Topology`]: every send resolves a **route** — a sequence of hops, each
//! an α–β link with its own FIFO — and concurrent transfers crossing a
//! shared hop serialize on it deterministically.
//!
//! Three models ship:
//!
//! * [`FlatLink`] — today's model expressed as a topology: one shared
//!   intra-node crossbar per node and one outbound wire per node.
//!   Bit-identical to the legacy scalar-link code (enforced by tests), and
//!   the default: a cluster built without an explicit topology never
//!   touches this module.
//! * [`Hierarchy`] with a [`FatTree`] fabric — NVLink islands inside the
//!   node, multi-rail IB up to leaf switches, spines between leaves
//!   (Lassen-like).
//! * [`Hierarchy`] with a [`Dragonfly`] fabric — NVLink islands, one
//!   router per group, all-to-all global links (ABCI-like).
//!
//! Routes come from static shortest-path tables ([`route::Router`], BFS
//! over the fabric graph with deterministic ECMP tie-breaking); congestion
//! state lives in [`TopoNet`], which owns one [`crate::link::Link`] per
//! hop.

mod congestion;
mod flat;
mod hierarchy;
pub mod route;

pub use congestion::{
    FabricEvent, FabricHealth, HopState, HopStats, RouteTiming, TopoNet, DEGRADE_BW_FACTOR,
    FLAP_DOWN_STREAK, HEAL_STREAK,
};
pub use flat::FlatLink;
pub use hierarchy::{Dragonfly, Fabric, FatTree, Hierarchy, NvlinkIsland};

use crate::error::NetError;
use crate::link::LinkSpec;
use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One communication endpoint: a GPU slot on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    pub node: u32,
    /// GPU index within the node's island.
    pub gpu: u32,
}

impl Endpoint {
    pub fn new(node: u32, gpu: u32) -> Self {
        Endpoint { node, gpu }
    }
}

/// Index of one hop in a topology's hop table (and of its live
/// [`crate::link::Link`] inside [`TopoNet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HopId(pub u32);

/// What kind of physical link a hop models. Carries the static display
/// name (link specs want `&'static str`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// Intra-node GPU↔GPU crossbar segment (NVLink).
    NvlinkXbar,
    /// Intra-node host bounce path (PCIe / CPU NVLink).
    HostPath,
    /// The flat model's per-node outbound wire.
    TxWire,
    /// One rail between a node's NIC and its first switch/router.
    Rail,
    /// Fat-tree leaf↔spine link.
    LeafSpine,
    /// Dragonfly global (router↔router) link.
    Global,
}

impl HopKind {
    pub fn name(self) -> &'static str {
        match self {
            HopKind::NvlinkXbar => "nvlink-xbar",
            HopKind::HostPath => "host-path",
            HopKind::TxWire => "tx-wire",
            HopKind::Rail => "ib-rail",
            HopKind::LeafSpine => "leaf-spine",
            HopKind::Global => "global",
        }
    }
}

/// Static description of one hop: its kind plus α–β parameters.
#[derive(Debug, Clone)]
pub struct HopSpec {
    pub kind: HopKind,
    /// One-way bandwidth, bytes/s.
    pub bw: f64,
    /// Per-hop first-byte latency.
    pub latency: Duration,
}

impl HopSpec {
    pub fn from_link(kind: HopKind, spec: &LinkSpec) -> Self {
        HopSpec {
            kind,
            bw: spec.bw,
            latency: spec.latency,
        }
    }

    /// The equivalent link spec (hops are realised as live
    /// [`crate::link::Link`]s inside [`TopoNet`]).
    pub fn link_spec(&self) -> LinkSpec {
        LinkSpec {
            name: self.kind.name(),
            bw: self.bw,
            latency: self.latency,
        }
    }
}

/// A network topology: a hop table plus a route resolver.
///
/// Implementations must be **deterministic** (the same `(src, dst)` pair
/// always yields the same hop sequence, on any thread) and **symmetric**
/// (`route(a, b)` is the reverse of `route(b, a)` over the same undirected
/// hops — except [`FlatLink`], whose legacy per-node outbound wire is
/// inherently directed; see [`Topology::is_flat`]).
pub trait Topology: Send + Sync + std::fmt::Debug {
    /// Display name (report rows, diagnostics).
    fn name(&self) -> &'static str;

    /// Nodes this topology contains.
    fn num_nodes(&self) -> u32;

    /// GPUs per node island.
    fn gpus_per_node(&self) -> u32;

    /// The static hop table. [`HopId`]s returned by
    /// [`Topology::route`] index into it.
    fn hops(&self) -> &[HopSpec];

    /// Resolve the hop sequence from `src` to `dst`.
    fn route(&self, src: Endpoint, dst: Endpoint) -> Result<Vec<HopId>, NetError>;

    /// Resolve a route that never traverses a hop in the sorted `dead`
    /// list (indices into [`Topology::hops`]). The default ignores the
    /// dead set — correct for topologies with no path diversity (the flat
    /// model's single wire has nothing to fail over to); fabrics with ECMP
    /// ([`Hierarchy`]) override this to re-resolve around failures.
    fn route_avoiding(
        &self,
        src: Endpoint,
        dst: Endpoint,
        dead: &[u32],
    ) -> Result<Vec<HopId>, NetError> {
        let route = self.route(src, dst)?;
        if route.iter().any(|h| dead.binary_search(&h.0).is_ok()) {
            return Err(NetError::Disconnected {
                src: src.node,
                dst: dst.node,
            });
        }
        Ok(route)
    }

    /// `true` only for [`FlatLink`], whose inter-node routes replicate the
    /// legacy directed per-node wire instead of shared undirected fabric
    /// hops.
    fn is_flat(&self) -> bool {
        false
    }
}

/// Shared handle to a topology, as threaded through the cluster builder.
pub type TopologyHandle = Arc<dyn Topology>;

/// A directed endpoint pair, the key routes are resolved and cached by.
pub type RouteKey = (Endpoint, Endpoint);

/// Validate that an endpoint exists in `topo`.
pub fn validate_endpoint(topo: &dyn Topology, ep: Endpoint) -> Result<(), NetError> {
    if ep.node >= topo.num_nodes() {
        return Err(NetError::NodeOutOfRange {
            node: ep.node,
            num_nodes: topo.num_nodes(),
        });
    }
    if ep.gpu >= topo.gpus_per_node() {
        return Err(NetError::GpuOutOfRange {
            gpu: ep.gpu,
            gpus_per_node: topo.gpus_per_node(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_kinds_have_static_names() {
        for kind in [
            HopKind::NvlinkXbar,
            HopKind::HostPath,
            HopKind::TxWire,
            HopKind::Rail,
            HopKind::LeafSpine,
            HopKind::Global,
        ] {
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn hop_spec_round_trips_through_link_spec() {
        let spec = HopSpec::from_link(HopKind::Rail, &LinkSpec::ib_edr_dual());
        let link = spec.link_spec();
        assert_eq!(link.name, "ib-rail");
        assert_eq!(link.bw, LinkSpec::ib_edr_dual().bw);
        assert_eq!(link.latency, LinkSpec::ib_edr_dual().latency);
    }

    #[test]
    fn endpoint_validation_catches_both_axes() {
        let topo = FlatLink::new(LinkSpec::nvlink2_75(), LinkSpec::ib_edr_dual(), 2, 4);
        assert!(validate_endpoint(&topo, Endpoint::new(1, 3)).is_ok());
        assert!(matches!(
            validate_endpoint(&topo, Endpoint::new(2, 0)),
            Err(NetError::NodeOutOfRange { node: 2, .. })
        ));
        assert!(matches!(
            validate_endpoint(&topo, Endpoint::new(0, 4)),
            Err(NetError::GpuOutOfRange { gpu: 4, .. })
        ));
    }
}
