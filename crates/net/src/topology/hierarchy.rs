//! Hierarchical topologies: NVLink islands composed with inter-node
//! fabrics.
//!
//! A [`Hierarchy`] is an intra-node model ([`NvlinkIsland`]) stacked on an
//! inter-node fabric ([`FatTree`] or [`Dragonfly`]) reached over
//! multi-rail IB. The hop table is laid out as
//!
//! ```text
//! [ xbar(node 0, pair 0..P) .. xbar(node N-1, pair 0..P)   per-pair NVLink
//! | host(node 0) .. host(node N-1)                         optional PCIe path
//! | fabric hops in graph-construction order ]              rails + switches
//! ```
//!
//! Intra-node routes are a single per-GPU-pair crossbar hop; inter-node
//! routes are the fabric shortest path (deterministic ECMP over rails and
//! spines, see [`super::route`]), bracketed by the host-bounce hop on
//! machines whose NIC sits behind the PCIe complex (ABCI-like).

use super::route::{FabricGraph, Router};
use super::{Endpoint, HopId, HopKind, HopSpec, Topology};
use crate::error::NetError;
use crate::link::LinkSpec;
use fusedpack_sim::Duration;

/// Intra-node model: a GPU↔GPU crossbar segment per pair, plus an
/// optional shared host path (the PCIe complex the NIC hangs off).
#[derive(Debug, Clone)]
pub struct NvlinkIsland {
    /// Per-pair GPU↔GPU link.
    pub gpu_gpu: LinkSpec,
    /// Shared host-bounce path crossed by inter-node traffic when the NIC
    /// is PCIe-attached. `None` models an NVLink-attached NIC (POWER9).
    pub host_path: Option<LinkSpec>,
}

impl NvlinkIsland {
    /// Lassen-like island: NVLink2 crossbar, NVLink-attached NIC (no
    /// host bounce on the inter-node path).
    pub fn nvlink_dense() -> Self {
        NvlinkIsland {
            gpu_gpu: LinkSpec::nvlink2_75(),
            host_path: None,
        }
    }

    /// ABCI-like island: slower NVLink crossbar and a PCIe-switched host
    /// complex that all inter-node traffic from the node's GPUs shares.
    pub fn pcie_switched() -> Self {
        NvlinkIsland {
            gpu_gpu: LinkSpec::nvlink2_50(),
            host_path: Some(LinkSpec {
                name: "host-path",
                // PCIe Gen3 x16 through the switch, effective.
                bw: 16.0e9,
                latency: Duration::from_nanos(900),
            }),
        }
    }
}

/// Fat-tree fabric descriptor: nodes under leaf switches, every leaf
/// wired to every spine.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Nodes attached to one leaf switch.
    pub nodes_per_leaf: u32,
    /// Spine switches (each leaf has one uplink to each).
    pub spines: u32,
    /// Leaf↔spine link parameters.
    pub leaf_spine: LinkSpec,
}

impl FatTree {
    /// A modest non-blocking EDR core.
    pub fn ib_edr(nodes_per_leaf: u32, spines: u32) -> Self {
        FatTree {
            nodes_per_leaf,
            spines,
            leaf_spine: LinkSpec {
                name: "leaf-spine",
                bw: 25.0e9,
                latency: Duration::from_nanos(500),
            },
        }
    }

    fn build(
        &self,
        num_nodes: u32,
        rails: u32,
        rail_spec: &LinkSpec,
        hops: &mut Vec<HopSpec>,
    ) -> FabricGraph {
        assert!(self.nodes_per_leaf >= 1 && self.spines >= 1 && rails >= 1);
        let mut g = FabricGraph::new(num_nodes);
        let leaves: Vec<_> = (0..num_nodes.div_ceil(self.nodes_per_leaf))
            .map(|_| g.add_switch())
            .collect();
        let spines: Vec<_> = (0..self.spines).map(|_| g.add_switch()).collect();
        for n in 0..num_nodes {
            let leaf = leaves[(n / self.nodes_per_leaf) as usize];
            for _ in 0..rails {
                let hop = HopId(hops.len() as u32);
                hops.push(HopSpec::from_link(HopKind::Rail, rail_spec));
                g.add_edge(n, leaf, hop);
            }
        }
        for &leaf in &leaves {
            for &spine in &spines {
                let hop = HopId(hops.len() as u32);
                hops.push(HopSpec::from_link(HopKind::LeafSpine, &self.leaf_spine));
                g.add_edge(leaf, spine, hop);
            }
        }
        g
    }
}

/// Dragonfly fabric descriptor: one router per group, groups joined
/// all-to-all by global links.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    /// Nodes attached to one group router.
    pub nodes_per_group: u32,
    /// Router↔router global link parameters.
    pub global: LinkSpec,
}

impl Dragonfly {
    pub fn ib_edr(nodes_per_group: u32) -> Self {
        Dragonfly {
            nodes_per_group,
            global: LinkSpec {
                name: "global",
                bw: 25.0e9,
                latency: Duration::from_nanos(900),
            },
        }
    }

    fn build(
        &self,
        num_nodes: u32,
        rails: u32,
        rail_spec: &LinkSpec,
        hops: &mut Vec<HopSpec>,
    ) -> FabricGraph {
        assert!(self.nodes_per_group >= 1 && rails >= 1);
        let mut g = FabricGraph::new(num_nodes);
        let routers: Vec<_> = (0..num_nodes.div_ceil(self.nodes_per_group))
            .map(|_| g.add_switch())
            .collect();
        for n in 0..num_nodes {
            let router = routers[(n / self.nodes_per_group) as usize];
            for _ in 0..rails {
                let hop = HopId(hops.len() as u32);
                hops.push(HopSpec::from_link(HopKind::Rail, rail_spec));
                g.add_edge(n, router, hop);
            }
        }
        for (i, &a) in routers.iter().enumerate() {
            for &b in &routers[i + 1..] {
                let hop = HopId(hops.len() as u32);
                hops.push(HopSpec::from_link(HopKind::Global, &self.global));
                g.add_edge(a, b, hop);
            }
        }
        g
    }
}

/// The inter-node fabric of a [`Hierarchy`].
#[derive(Debug, Clone)]
pub enum Fabric {
    FatTree(FatTree),
    Dragonfly(Dragonfly),
}

/// An intra-node island stacked on an inter-node fabric.
#[derive(Debug)]
pub struct Hierarchy {
    name: &'static str,
    num_nodes: u32,
    gpus_per_node: u32,
    hops: Vec<HopSpec>,
    router: Router,
    /// Hop-table offset of the per-node host-path hops, if modelled.
    host_base: Option<u32>,
}

impl Hierarchy {
    /// Compose `island` and `fabric` over `rails` rails per node, each
    /// carrying `1/rails` of `internode`'s aggregate bandwidth.
    pub fn new(
        name: &'static str,
        island: NvlinkIsland,
        fabric: Fabric,
        internode: LinkSpec,
        num_nodes: u32,
        gpus_per_node: u32,
        rails: u32,
    ) -> Self {
        assert!(num_nodes >= 1 && gpus_per_node >= 1 && rails >= 1);
        let pairs = gpu_pairs(gpus_per_node);
        let mut hops = Vec::new();
        for _ in 0..num_nodes {
            for _ in 0..pairs {
                hops.push(HopSpec::from_link(HopKind::NvlinkXbar, &island.gpu_gpu));
            }
        }
        let host_base = island.host_path.as_ref().map(|spec| {
            let base = hops.len() as u32;
            for _ in 0..num_nodes {
                hops.push(HopSpec::from_link(HopKind::HostPath, spec));
            }
            base
        });
        let rail_spec = LinkSpec {
            name: "ib-rail",
            bw: internode.bw / rails as f64,
            latency: internode.latency,
        };
        let graph = match &fabric {
            Fabric::FatTree(ft) => ft.build(num_nodes, rails, &rail_spec, &mut hops),
            Fabric::Dragonfly(df) => df.build(num_nodes, rails, &rail_spec, &mut hops),
        };
        Hierarchy {
            name,
            num_nodes,
            gpus_per_node,
            hops,
            router: Router::new(graph),
            host_base,
        }
    }

    /// Lassen-like machine: dense NVLink islands, NVLink-attached NICs,
    /// dual-rail EDR into a leaf/spine fat tree.
    pub fn lassen_like(num_nodes: u32) -> Self {
        Hierarchy::new(
            "lassen-like",
            NvlinkIsland::nvlink_dense(),
            Fabric::FatTree(FatTree::ib_edr(16, 4)),
            LinkSpec::ib_edr_dual(),
            num_nodes,
            4,
            2,
        )
    }

    /// ABCI-like machine: PCIe-switched islands (inter-node traffic
    /// bounces through the shared host complex), dual-rail EDR into a
    /// one-router-per-group dragonfly.
    pub fn abci_like(num_nodes: u32) -> Self {
        Hierarchy::new(
            "abci-like",
            NvlinkIsland::pcie_switched(),
            Fabric::Dragonfly(Dragonfly::ib_edr(16)),
            LinkSpec::ib_edr_dual(),
            num_nodes,
            4,
            2,
        )
    }

    fn xbar(&self, node: u32, a: u32, b: u32) -> HopId {
        let (lo, hi) = (a.min(b), a.max(b));
        let g = self.gpus_per_node;
        let pair = lo * (2 * g - lo - 1) / 2 + (hi - lo - 1);
        HopId(node * gpu_pairs(g) + pair)
    }

    fn host(&self, node: u32) -> Option<HopId> {
        self.host_base.map(|base| HopId(base + node))
    }
}

/// Unordered GPU pairs in an island of `g`.
fn gpu_pairs(g: u32) -> u32 {
    g * (g - 1) / 2
}

impl Topology for Hierarchy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    fn hops(&self) -> &[HopSpec] {
        &self.hops
    }

    fn route(&self, src: Endpoint, dst: Endpoint) -> Result<Vec<HopId>, NetError> {
        super::validate_endpoint(self, src)?;
        super::validate_endpoint(self, dst)?;
        if src == dst {
            return Err(NetError::SelfRoute { node: src.node });
        }
        if src.node == dst.node {
            return Ok(vec![self.xbar(src.node, src.gpu, dst.gpu)]);
        }
        let fabric = self.router.path(src.node, dst.node)?;
        let mut hops = Vec::with_capacity(fabric.len() + 2);
        // PCIe-attached NICs bounce through the host complex on both ends;
        // the bracket keeps routes symmetric (reverse(A→B) == B→A).
        hops.extend(self.host(src.node));
        hops.extend(fabric);
        hops.extend(self.host(dst.node));
        Ok(hops)
    }

    fn route_avoiding(
        &self,
        src: Endpoint,
        dst: Endpoint,
        dead: &[u32],
    ) -> Result<Vec<HopId>, NetError> {
        super::validate_endpoint(self, src)?;
        super::validate_endpoint(self, dst)?;
        if src == dst {
            return Err(NetError::SelfRoute { node: src.node });
        }
        let disconnected = || NetError::Disconnected {
            src: src.node,
            dst: dst.node,
        };
        if src.node == dst.node {
            // A GPU pair owns exactly one crossbar segment; there is no
            // alternate intra-node path to fail over to.
            let xbar = self.xbar(src.node, src.gpu, dst.gpu);
            if dead.binary_search(&xbar.0).is_ok() {
                return Err(disconnected());
            }
            return Ok(vec![xbar]);
        }
        // The host bracket is likewise unavoidable where modelled: a dead
        // host complex strands the whole island.
        for node in [src.node, dst.node] {
            if let Some(h) = self.host(node) {
                if dead.binary_search(&h.0).is_ok() {
                    return Err(disconnected());
                }
            }
        }
        // Fabric hops carry the path diversity (multi-rail ECMP, multiple
        // spines/routers): re-resolve a surviving shortest path. Non-fabric
        // hop ids in `dead` never match a graph edge, so the full sorted
        // set passes straight through.
        let fabric = self.router.path_avoiding(src.node, dst.node, dead)?;
        let mut hops = Vec::with_capacity(fabric.len() + 2);
        hops.extend(self.host(src.node));
        hops.extend(fabric);
        hops.extend(self.host(dst.node));
        Ok(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_route_lengths() {
        let t = Hierarchy::lassen_like(32); // 2 leaves of 16
        let same_leaf = t.route(Endpoint::new(0, 0), Endpoint::new(1, 0)).unwrap();
        let cross_leaf = t.route(Endpoint::new(0, 0), Endpoint::new(31, 0)).unwrap();
        assert_eq!(same_leaf.len(), 2, "rail up, rail down");
        assert_eq!(cross_leaf.len(), 4, "rail, leaf-spine, leaf-spine, rail");
        for &h in &cross_leaf {
            assert!(matches!(
                t.hops()[h.0 as usize].kind,
                HopKind::Rail | HopKind::LeafSpine
            ));
        }
    }

    #[test]
    fn dragonfly_route_lengths_include_host_bounce() {
        let t = Hierarchy::abci_like(32); // 2 groups of 16
        let intra_group = t.route(Endpoint::new(0, 0), Endpoint::new(1, 0)).unwrap();
        let inter_group = t.route(Endpoint::new(0, 0), Endpoint::new(31, 0)).unwrap();
        // host + rail + rail + host / host + rail + global + rail + host
        assert_eq!(intra_group.len(), 4);
        assert_eq!(inter_group.len(), 5);
        assert_eq!(t.hops()[intra_group[0].0 as usize].kind, HopKind::HostPath);
        assert_eq!(t.hops()[inter_group[2].0 as usize].kind, HopKind::Global);
    }

    #[test]
    fn intra_node_pairs_get_distinct_crossbar_segments() {
        let t = Hierarchy::lassen_like(4);
        let r01 = t.route(Endpoint::new(2, 0), Endpoint::new(2, 1)).unwrap();
        let r23 = t.route(Endpoint::new(2, 2), Endpoint::new(2, 3)).unwrap();
        let r10 = t.route(Endpoint::new(2, 1), Endpoint::new(2, 0)).unwrap();
        assert_eq!(r01.len(), 1);
        assert_ne!(r01, r23, "distinct pairs ride distinct NVLink segments");
        assert_eq!(r01, r10, "a pair's segment is shared both ways");
        assert_eq!(t.hops()[r01[0].0 as usize].kind, HopKind::NvlinkXbar);
    }

    #[test]
    fn routes_are_symmetric_across_both_presets() {
        for t in [Hierarchy::lassen_like(33), Hierarchy::abci_like(33)] {
            for (a, b) in [(0u32, 1u32), (0, 17), (5, 32), (16, 31)] {
                let fwd = t.route(Endpoint::new(a, 1), Endpoint::new(b, 2)).unwrap();
                let mut rev = t.route(Endpoint::new(b, 2), Endpoint::new(a, 1)).unwrap();
                rev.reverse();
                assert_eq!(fwd, rev, "{a}<->{b} on {}", t.name());
            }
        }
    }

    #[test]
    fn dual_rail_failover_survives_one_dead_rail() {
        let t = Hierarchy::lassen_like(8);
        let healthy = t.route(Endpoint::new(0, 0), Endpoint::new(7, 0)).unwrap();
        // Kill the first rail the healthy route rides: the dual-rail NIC
        // must fail over to its sibling rail and still connect.
        let first_rail = healthy
            .iter()
            .find(|h| t.hops()[h.0 as usize].kind == HopKind::Rail)
            .copied()
            .unwrap();
        let dead = vec![first_rail.0];
        let rerouted = t
            .route_avoiding(Endpoint::new(0, 0), Endpoint::new(7, 0), &dead)
            .unwrap();
        assert_eq!(rerouted.len(), healthy.len(), "failover stays shortest");
        assert!(rerouted.iter().all(|h| h.0 != first_rail.0));
        let mut rev = t
            .route_avoiding(Endpoint::new(7, 0), Endpoint::new(0, 0), &dead)
            .unwrap();
        rev.reverse();
        assert_eq!(rerouted, rev, "failover routes stay symmetric");
    }

    #[test]
    fn dead_crossbar_and_severed_node_report_disconnected() {
        let t = Hierarchy::lassen_like(8);
        let xbar = t.route(Endpoint::new(2, 0), Endpoint::new(2, 1)).unwrap()[0];
        assert!(matches!(
            t.route_avoiding(Endpoint::new(2, 0), Endpoint::new(2, 1), &[xbar.0]),
            Err(NetError::Disconnected { .. })
        ));
        // Killing both of node 0's rails severs it from the fabric.
        let mut rails: Vec<u32> = t
            .route(Endpoint::new(0, 0), Endpoint::new(7, 0))
            .unwrap()
            .iter()
            .map(|h| h.0)
            .filter(|&h| t.hops()[h as usize].kind == HopKind::Rail)
            .collect();
        let sibling: Vec<u32> = t
            .route_avoiding(Endpoint::new(0, 0), Endpoint::new(7, 0), &{
                rails.sort_unstable();
                rails.clone()
            })
            .map(|r| {
                r.iter()
                    .map(|h| h.0)
                    .filter(|&h| t.hops()[h as usize].kind == HopKind::Rail)
                    .collect()
            })
            .unwrap_or_default();
        rails.extend(sibling);
        rails.sort_unstable();
        rails.dedup();
        // With every rail touching node 0 or node 7 down, no route exists.
        assert!(matches!(
            t.route_avoiding(Endpoint::new(0, 0), Endpoint::new(7, 0), &rails),
            Err(NetError::Disconnected { .. })
        ));
    }

    #[test]
    fn rails_split_aggregate_bandwidth() {
        let t = Hierarchy::lassen_like(8);
        let rail = t
            .hops()
            .iter()
            .find(|h| h.kind == HopKind::Rail)
            .expect("fat tree has rails");
        assert_eq!(rail.bw, LinkSpec::ib_edr_dual().bw / 2.0);
    }
}
