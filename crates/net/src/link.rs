//! α–β links with FIFO serialization.
//!
//! A transfer of `n` bytes on an idle link completes after
//! `α + n/β` (latency plus serialization time); concurrent transfers on one
//! link queue behind each other, modelling wire occupancy.

use fusedpack_sim::{Duration, FifoResource, Time};
use serde::{Deserialize, Serialize};

/// Static description of a link type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    pub name: &'static str,
    /// One-way bandwidth, bytes/s.
    pub bw: f64,
    /// First-byte latency.
    pub latency: Duration,
}

impl LinkSpec {
    /// NVLink2 between GPUs, 75 GB/s one-way (Lassen, Table II).
    pub fn nvlink2_75() -> Self {
        LinkSpec {
            name: "NVLink2 (75 GB/s)",
            bw: 75.0e9,
            latency: Duration::from_nanos(700),
        }
    }

    /// NVLink2 between GPUs, 50 GB/s one-way (ABCI, Table II).
    pub fn nvlink2_50() -> Self {
        LinkSpec {
            name: "NVLink2 (50 GB/s)",
            bw: 50.0e9,
            latency: Duration::from_nanos(700),
        }
    }

    /// Dual-rail Mellanox InfiniBand EDR, 25 GB/s one-way aggregate
    /// (both platforms, Table II).
    pub fn ib_edr_dual() -> Self {
        LinkSpec {
            name: "2x IB EDR (25 GB/s)",
            bw: 25.0e9,
            latency: Duration::from_nanos(1_300),
        }
    }

    /// One rail of the dual-rail EDR attachment: same first-byte latency,
    /// `1/rails` of the aggregate bandwidth. The topology layer wires one
    /// of these per rail so ECMP can spread concurrent transfers while a
    /// single stream tops out at the per-rail rate.
    pub fn ib_edr_rail(rails: u32) -> Self {
        assert!(rails >= 1);
        LinkSpec {
            name: "ib-rail",
            bw: 25.0e9 / rails as f64,
            latency: Duration::from_nanos(1_300),
        }
    }

    /// Wire time for `bytes` ignoring queueing.
    pub fn wire_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bw)
    }

    /// Round-trip control latency: the cost of a NACK (or ACK) turnaround
    /// in the retransmission protocol.
    pub fn rtt(&self) -> Duration {
        self.latency * 2
    }
}

/// A live link instance: spec + FIFO occupancy state.
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    fifo: FifoResource,
    bytes_carried: u64,
    bytes_wasted: u64,
}

impl Link {
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            fifo: FifoResource::new(),
            bytes_carried: 0,
            bytes_wasted: 0,
        }
    }

    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Submit a transfer at `now`; returns `(first_byte_sent, delivered)`.
    ///
    /// The wire is occupied for the serialization time only; latency is
    /// pipelined (a second message can start serializing while the first's
    /// tail is still in flight).
    pub fn transmit(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        let ser = Duration::from_secs_f64(bytes as f64 / self.spec.bw);
        let (start, wire_done) = self.fifo.acquire(now, ser);
        self.bytes_carried += bytes;
        (start, wire_done + self.spec.latency)
    }

    /// Transmit with an effective bandwidth cap below the link's nominal
    /// rate (e.g. GPUDirect reads limited by the PCIe path to the GPU).
    pub fn transmit_capped(&mut self, now: Time, bytes: u64, bw_cap: f64) -> (Time, Time) {
        let bw = self.spec.bw.min(bw_cap);
        let ser = Duration::from_secs_f64(bytes as f64 / bw);
        let (start, wire_done) = self.fifo.acquire(now, ser);
        self.bytes_carried += bytes;
        (start, wire_done + self.spec.latency)
    }

    /// Occupy the wire with a transmission that never delivers — a payload
    /// dropped (or corrupted) mid-flight in a fault-injection run. Later
    /// traffic still queues behind it; the sender only learns of the loss
    /// via its retransmission timeout (or the receiver's NACK).
    /// Returns `(first_byte_sent, wire_clear)` — there is no delivery.
    pub fn transmit_wasted(&mut self, now: Time, bytes: u64, bw_cap: Option<f64>) -> (Time, Time) {
        let bw = bw_cap.map_or(self.spec.bw, |cap| self.spec.bw.min(cap));
        let ser = Duration::from_secs_f64(bytes as f64 / bw);
        let (start, wire_done) = self.fifo.acquire(now, ser);
        self.bytes_carried += bytes;
        self.bytes_wasted += bytes;
        (start, wire_done)
    }

    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Bytes that occupied the wire but were dropped before delivery.
    pub fn bytes_wasted(&self) -> u64 {
        self.bytes_wasted
    }

    pub fn busy_time(&self) -> Duration {
        self.fifo.busy_time()
    }

    pub fn reset(&mut self) {
        self.fifo.reset();
        self.bytes_carried = 0;
        self.bytes_wasted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_is_alpha_plus_beta() {
        let spec = LinkSpec::ib_edr_dual();
        let t = spec.wire_time(25_000_000_000); // exactly 1 second of payload
        assert_eq!(t, spec.latency + Duration::from_secs_f64(1.0));
    }

    #[test]
    fn transfers_serialize_but_latency_pipelines() {
        let mut link = Link::new(LinkSpec {
            name: "test",
            bw: 1e9, // 1 GB/s -> 1 ns per byte
            latency: Duration(500),
        });
        let (s1, d1) = link.transmit(Time(0), 1000);
        let (s2, d2) = link.transmit(Time(0), 1000);
        assert_eq!((s1, d1), (Time(0), Time(1500)));
        // Second message starts serializing when the first's tail leaves.
        assert_eq!((s2, d2), (Time(1000), Time(2500)));
    }

    #[test]
    fn capped_transmit_is_slower() {
        let mut a = Link::new(LinkSpec::ib_edr_dual());
        let mut b = Link::new(LinkSpec::ib_edr_dual());
        let (_, full) = a.transmit(Time(0), 1 << 20);
        let (_, capped) = b.transmit_capped(Time(0), 1 << 20, 12.0e9);
        assert!(capped > full);
    }

    #[test]
    fn accounting() {
        let mut link = Link::new(LinkSpec::nvlink2_75());
        link.transmit(Time(0), 100);
        link.transmit(Time(0), 200);
        assert_eq!(link.bytes_carried(), 300);
        link.reset();
        assert_eq!(link.bytes_carried(), 0);
    }

    #[test]
    fn wasted_transmit_occupies_wire_without_delivering() {
        let mut link = Link::new(LinkSpec {
            name: "test",
            bw: 1e9,
            latency: Duration(500),
        });
        let (s1, clear) = link.transmit_wasted(Time(0), 1000, None);
        // Full serialization, no latency tail: the payload never arrives.
        assert_eq!((s1, clear), (Time(0), Time(1000)));
        // A follow-up real transmission queues behind the doomed one.
        let (s2, d2) = link.transmit(Time(0), 1000);
        assert_eq!((s2, d2), (Time(1000), Time(2500)));
        assert_eq!(link.bytes_wasted(), 1000);
        assert_eq!(link.bytes_carried(), 2000);
        link.reset();
        assert_eq!(link.bytes_wasted(), 0);
    }

    #[test]
    fn rtt_is_twice_latency() {
        let spec = LinkSpec::ib_edr_dual();
        assert_eq!(spec.rtt(), spec.latency * 2);
    }

    #[test]
    fn nvlink_variants_ordered() {
        assert!(LinkSpec::nvlink2_75().bw > LinkSpec::nvlink2_50().bw);
        assert!(LinkSpec::nvlink2_50().bw > LinkSpec::ib_edr_dual().bw);
    }

    #[test]
    fn rails_divide_the_aggregate() {
        let dual = LinkSpec::ib_edr_dual();
        let rail = LinkSpec::ib_edr_rail(2);
        assert_eq!(rail.bw * 2.0, dual.bw);
        assert_eq!(rail.latency, dual.latency);
    }
}
