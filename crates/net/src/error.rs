//! Typed network errors.
//!
//! Route resolution used to be infallible because there was nothing to
//! resolve: one scalar link per node pair. With hierarchical topologies a
//! lookup can genuinely fail — an endpoint outside the fabric, a GPU index
//! beyond the node's island, a node with no path to its peer — and those
//! states are classified here instead of panicking, mirroring the style of
//! `fusedpack_mpi::TransferError`: reachable bad states get a variant, and
//! callers on the hot path absorb them (falling back to the flat model and
//! counting the event) rather than tearing the simulation down.

use std::fmt;

/// Why a route could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// An endpoint names a node the topology does not contain.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Nodes the topology actually has.
        num_nodes: u32,
    },
    /// An endpoint names a GPU beyond the node's island.
    GpuOutOfRange {
        /// The offending GPU index.
        gpu: u32,
        /// GPUs per node in this topology.
        gpus_per_node: u32,
    },
    /// The fabric graph has no path between two nodes (a misbuilt
    /// topology: every shipped preset is connected by construction).
    Disconnected {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
    /// A route was requested between an endpoint and itself; transfers
    /// need two distinct endpoints.
    SelfRoute {
        /// The endpoint's node.
        node: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} outside topology of {num_nodes} node(s)")
            }
            NetError::GpuOutOfRange { gpu, gpus_per_node } => {
                write!(f, "gpu {gpu} outside island of {gpus_per_node} gpu(s)")
            }
            NetError::Disconnected { src, dst } => {
                write!(f, "no fabric path from node {src} to node {dst}")
            }
            NetError::SelfRoute { node } => {
                write!(f, "route requested from node {node} to itself")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = NetError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'), "{s}");
        let d = NetError::Disconnected { src: 1, dst: 2 };
        assert!(d.to_string().contains("no fabric path"));
    }
}
