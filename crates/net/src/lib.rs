//! # fusedpack-net
//!
//! Interconnect models for the simulated GPU cluster: α–β links with FIFO
//! serialization, NICs with per-message injection overhead, RDMA READ/WRITE
//! verbs (the transport under the rendezvous RGET/RPUT protocols), and the
//! [`platform::Platform`] descriptions of the paper's two evaluation systems
//! (Table II): LLNL **Lassen** (POWER9 + V100, NVLink2 everywhere) and
//! **ABCI** (Xeon + V100, PCIe Gen3 to the host).

pub mod error;
pub mod link;
pub mod nic;
pub mod platform;
pub mod rdma;
pub mod topology;

pub use error::NetError;
pub use link::{Link, LinkSpec};
pub use nic::{Nic, NodeId};
pub use platform::Platform;
pub use rdma::{RdmaEngine, RdmaOp, RdmaVerb};
pub use topology::{
    Dragonfly, Endpoint, FabricEvent, FabricHealth, FatTree, FlatLink, Hierarchy, HopId, HopKind,
    HopSpec, HopState, HopStats, NvlinkIsland, RouteKey, RouteTiming, TopoNet, Topology,
    TopologyHandle,
};
