//! Parallel experiment executor.
//!
//! Every figure of the paper's evaluation is a sweep of *independent,
//! deterministic* simulation cells (scheme × workload × size × buffer
//! count). The figure modules decompose their sweeps into a flat list of
//! tagged [`Cell`] jobs; [`sweep`] runs them on a scoped worker pool and
//! reassembles the results **in cell-index order**, so the emitted tables
//! and CSVs are byte-identical to a sequential run regardless of the
//! worker count or scheduling jitter.
//!
//! The pool size comes from, in priority order: [`set_jobs`] (the
//! `reproduce --jobs N` flag), the `FUSEDPACK_JOBS` environment variable,
//! and finally `std::thread::available_parallelism`. `jobs == 1` runs the
//! cells inline on the calling thread — the reference behaviour the
//! determinism CI job diffs against.
//!
//! Each cell's wall-clock time is recorded in a process-global timings
//! registry (drained by `reproduce --timings`) and, when a telemetry
//! recorder is attached via [`set_telemetry`], emitted as a
//! `Payload::SweepCell` span on the worker's lane.

use fusedpack_sim::Time;
use fusedpack_telemetry::{Lane, Payload, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One unit of sweep work: a label (for timing reports) and a closure
/// producing this cell's measurement.
pub struct Cell<T> {
    label: String,
    job: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Cell<T> {
    pub fn new(label: impl Into<String>, job: impl FnOnce() -> T + Send + 'static) -> Self {
        Cell {
            label: label.into(),
            job: Box::new(job),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Wall-clock timing of one executed cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Experiment name passed to [`sweep`].
    pub experiment: String,
    /// The cell's label.
    pub label: String,
    /// Position in the cell list.
    pub index: usize,
    /// Worker thread that ran the cell (0 when sequential).
    pub worker: usize,
    /// Wall-clock execution time of the cell closure.
    pub wall: Duration,
}

/// 0 = unset (fall back to env / available cores).
static JOBS: AtomicUsize = AtomicUsize::new(0);
static TIMINGS: Mutex<Vec<CellTiming>> = Mutex::new(Vec::new());
static TELEMETRY: Mutex<Option<Telemetry>> = Mutex::new(None);

/// Fix the worker-pool size (0 restores the default resolution order).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The worker-pool size [`sweep`] will use.
pub fn jobs() -> usize {
    let n = JOBS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("FUSEDPACK_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Attach a telemetry recorder: every subsequent cell emits a
/// `SweepCell` span (rank = worker index, wall-clock nanoseconds since
/// the first attached recorder's epoch).
pub fn set_telemetry(t: Telemetry) {
    *TELEMETRY.lock() = Some(t);
}

/// Drain and return all cell timings recorded since the last call.
pub fn take_timings() -> Vec<CellTiming> {
    std::mem::take(&mut *TIMINGS.lock())
}

/// A completed cell awaiting reassembly: (index, value, label, worker,
/// start instant, wall time).
type Finished<T> = (usize, T, String, usize, Instant, Duration);

fn epoch() -> Instant {
    static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
    *EPOCH.lock().get_or_insert_with(Instant::now)
}

fn record_cell(
    experiment: &str,
    label: String,
    index: usize,
    worker: usize,
    t0: Instant,
    wall: Duration,
) {
    if let Some(t) = TELEMETRY.lock().as_ref() {
        let start = t0.duration_since(epoch()).as_nanos() as u64;
        t.for_rank(worker as u32).span(
            Lane::Host,
            Time(start),
            Time(start + wall.as_nanos() as u64),
            || Payload::SweepCell {
                index: index as u64,
                worker: worker as u32,
            },
        );
    }
    TIMINGS.lock().push(CellTiming {
        experiment: experiment.to_string(),
        label,
        index,
        worker,
        wall,
    });
}

/// Run `cells` and return their results in cell-index order.
///
/// With `jobs() == 1` (or a single cell) the cells run inline,
/// sequentially, on the calling thread. Otherwise a crossbeam scope
/// spawns `min(jobs, cells)` workers that claim cells from a shared
/// atomic cursor; results are reassembled by index afterwards, so the
/// output is identical either way.
pub fn sweep<T: Send + 'static>(experiment: &str, cells: Vec<Cell<T>>) -> Vec<T> {
    let n = cells.len();
    let workers = jobs().min(n);
    let _ = epoch(); // pin the telemetry epoch before any cell runs

    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for (index, cell) in cells.into_iter().enumerate() {
            let t0 = Instant::now();
            let value = (cell.job)();
            let wall = t0.elapsed();
            record_cell(experiment, cell.label, index, 0, t0, wall);
            out.push(value);
        }
        return out;
    }

    // Each slot holds one unclaimed cell; workers claim the next index
    // from the cursor, so no two workers ever touch the same slot.
    let slots: Vec<Mutex<Option<Cell<T>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<Finished<T>>> = Mutex::new(Vec::with_capacity(n));

    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let slots = &slots;
                let cursor = &cursor;
                let done = &done;
                s.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let cell = slots[index].lock().take().expect("cell claimed once");
                    let t0 = Instant::now();
                    let value = (cell.job)();
                    let wall = t0.elapsed();
                    done.lock()
                        .push((index, value, cell.label, worker, t0, wall));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    })
    .expect("sweep scope");

    let mut finished = done.into_inner();
    finished.sort_by_key(|&(index, ..)| index);
    debug_assert_eq!(finished.len(), n);
    // Record timings in cell-index order so the --timings report is as
    // deterministic in shape as the tables themselves.
    let mut out = Vec::with_capacity(n);
    for (index, value, label, worker, t0, wall) in finished {
        record_cell(experiment, label, index, worker, t0, wall);
        out.push(value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(n: usize) -> Vec<Cell<usize>> {
        (0..n)
            .map(|i| Cell::new(format!("cell{i}"), move || i * i))
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let want: Vec<usize> = (0..40).map(|i| i * i).collect();
        set_jobs(1);
        assert_eq!(sweep("t", cells(40)), want);
        set_jobs(4);
        assert_eq!(sweep("t", cells(40)), want, "parallel must preserve order");
        set_jobs(0);
        let _ = take_timings();
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        set_jobs(16);
        assert_eq!(sweep("t", cells(3)), vec![0, 1, 4]);
        assert!(sweep::<usize>("t", Vec::new()).is_empty());
        set_jobs(0);
        let _ = take_timings();
    }

    #[test]
    fn timings_are_recorded_in_index_order() {
        set_jobs(4);
        let _ = take_timings();
        let _ = sweep("timed", cells(8));
        let timings: Vec<CellTiming> = take_timings()
            .into_iter()
            .filter(|t| t.experiment == "timed")
            .collect();
        assert_eq!(timings.len(), 8);
        for (i, t) in timings.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.label, format!("cell{i}"));
        }
        set_jobs(0);
    }

    #[test]
    fn telemetry_span_per_cell() {
        let tele = Telemetry::with_capacity(64);
        set_telemetry(tele.clone());
        set_jobs(2);
        let _ = sweep("spans", cells(5));
        set_jobs(0);
        let _ = take_timings();
        let snap = tele.snapshot();
        let spans: Vec<_> = snap
            .events
            .iter()
            .filter(|e| matches!(e.payload, Payload::SweepCell { .. }))
            .collect();
        assert!(spans.len() >= 5, "one span per cell, got {}", spans.len());
        assert!(spans.iter().all(|e| e.is_span()));
    }
}
