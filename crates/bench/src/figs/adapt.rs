//! `reproduce adapt`: online adaptive threshold control on a
//! phase-changing workload (not in the paper — the §IV-C/§VII future-work
//! loop, closed).
//!
//! Scenario: two ranks exchange a *sparse* seismic halo (specfem3D_cm) for
//! the first half of the run, then the datatype shifts to a *dense*
//! stencil face (NAS_MG) for the second half. No single static threshold
//! from the Fig. 8 grid is right for both phases; the adaptive controller
//! re-converges after the shift and should match (or beat) the best static
//! choice end-to-end.

use crate::exec::{self, Cell};
use crate::table::{us, Table};
use fusedpack_core::ThresholdTuner;
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_sim::Duration;
use fusedpack_workloads::nas::nas_mg_y;
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::{run_phase_shift, PhaseShiftOutcome, Workload};

/// Buffers exchanged each way per iteration.
pub const N_MSGS: usize = 16;

/// Iterations per phase (sparse first, then dense).
pub const LAPS_PER_PHASE: usize = 6;

/// The sparse first phase. Sized so over-fusing genuinely hurts (~96 KB
/// packed per message: a too-high threshold defers every flush to the
/// sync point and loses pack/communication overlap), creating real
/// tension with the dense phase, which wants the largest threshold.
pub fn phase_a() -> Workload {
    specfem3d_cm(8192)
}

/// The dense second phase.
pub fn phase_b() -> Workload {
    nas_mg_y(384)
}

/// Run the phase-shift scenario under one scheme.
pub fn measure(scheme: SchemeKind) -> PhaseShiftOutcome {
    run_phase_shift(
        Platform::lassen(),
        scheme,
        &phase_a(),
        &phase_b(),
        N_MSGS,
        LAPS_PER_PHASE,
    )
}

fn phase_totals(out: &PhaseShiftOutcome) -> (Duration, Duration) {
    let p1: Duration = out.lap_latencies[..LAPS_PER_PHASE].iter().copied().sum();
    let p2: Duration = out.lap_latencies[LAPS_PER_PHASE..].iter().copied().sum();
    (p1, p2)
}

pub fn run() -> Table {
    let thresholds = ThresholdTuner::default_grid();
    let mut t = Table::new(
        "Adaptive fusion: sparse->dense phase shift (specfem3D_cm -> NAS_MG, 16 ops, Lassen)",
        &[
            "threshold",
            "total (us)",
            "sparse phase (us)",
            "dense phase (us)",
            "adjustments",
        ],
    )
    .with_note(
        "the adaptive row starts at the 512KB default and retunes online; \
         it should match the best static row without a sweep",
    );

    let mut cells: Vec<Cell<PhaseShiftOutcome>> = Vec::new();
    for &threshold in &thresholds {
        cells.push(Cell::new(
            format!("static/{}KB", threshold / 1024),
            move || measure(SchemeKind::fusion_with_threshold(threshold)),
        ));
    }
    cells.push(Cell::new("adaptive", || {
        measure(SchemeKind::fusion_adaptive())
    }));
    let outcomes = exec::sweep("adapt", cells);

    for (out, &threshold) in outcomes.iter().zip(&thresholds) {
        let (p1, p2) = phase_totals(out);
        t.push_row(vec![
            format!("{}KB", threshold / 1024),
            us(out.total),
            us(p1),
            us(p2),
            "-".into(),
        ]);
    }
    let adaptive = outcomes.last().expect("adaptive row");
    let (p1, p2) = phase_totals(adaptive);
    t.push_row(vec![
        "adaptive".into(),
        us(adaptive.total),
        us(p1),
        us(p2),
        adaptive
            .sched
            .map(|s| s.threshold_adjusts.to_string())
            .unwrap_or_else(|| "-".into()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_telemetry::{Payload, Telemetry};
    use fusedpack_workloads::run_phase_shift_traced;

    #[test]
    fn adaptive_matches_best_static_on_phase_change() {
        let grid = ThresholdTuner::default_grid();
        let statics: Vec<Duration> = grid
            .iter()
            .map(|&b| measure(SchemeKind::fusion_with_threshold(b)).total)
            .collect();
        let adaptive = measure(SchemeKind::fusion_adaptive()).total;

        let best = statics.iter().copied().min().expect("grid");
        assert!(
            adaptive <= best,
            "adaptive {adaptive} must not lose to the best static threshold {best}"
        );
        let first = statics[0];
        let last = *statics.last().expect("grid");
        assert!(
            adaptive < first || adaptive < last,
            "adaptive {adaptive} must strictly beat a grid endpoint \
             (16KB: {first}, 4MB: {last})"
        );
    }

    #[test]
    fn threshold_adjust_instants_reconcile_with_sched_stats() {
        let telemetry = Telemetry::enabled();
        let out = run_phase_shift_traced(
            Platform::lassen(),
            SchemeKind::fusion_adaptive(),
            &phase_a(),
            &phase_b(),
            N_MSGS,
            LAPS_PER_PHASE,
            Some(&telemetry),
        );
        let stats = out.sched.expect("adaptive sched stats");
        let snap = telemetry.snapshot();
        let rank0_adjusts = snap
            .events
            .iter()
            .filter(|e| e.rank == 0 && matches!(e.payload, Payload::ThresholdAdjust { .. }))
            .count() as u64;
        assert_eq!(
            rank0_adjusts, stats.threshold_adjusts,
            "every committed adjustment must appear as exactly one telemetry instant"
        );
        assert!(
            stats.threshold_adjusts > 0,
            "controller moved at least once"
        );
        let flushes = stats.flushes_sync + stats.flushes_threshold + stats.flushes_pressure;
        assert!(
            stats.threshold_adjusts <= flushes,
            "at most one adjustment per flush ({} adjusts, {} flushes)",
            stats.threshold_adjusts,
            flushes
        );
        assert_eq!(flushes, stats.kernels_launched);
    }
}
