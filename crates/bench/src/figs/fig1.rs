//! Fig. 1: time breakdown of GPU-optimized packing kernels across GPU
//! generations — the kernel launch outweighs the packing kernel itself.

use crate::table::{us, Table};
use fusedpack_gpu::{kernel, GpuArch, SegmentStats};
use fusedpack_workloads::{milc::milc_su3_zdown, specfem::specfem3d_cm};

pub fn run() -> Table {
    let mut t = Table::new(
        "Fig. 1: packing kernel vs launch overhead across architectures",
        &[
            "GPU",
            "workload",
            "kernel (us)",
            "launch (us)",
            "launch/kernel",
        ],
    )
    .with_note("paper: launch overhead remains high across generations and dominates the fast packing kernels");

    let specfem = specfem3d_cm(1000);
    let milc = milc_su3_zdown(8);
    for arch in [GpuArch::k80(), GpuArch::p100(), GpuArch::v100()] {
        for w in [&specfem, &milc] {
            let stats = SegmentStats::new(w.packed_bytes(), w.blocks());
            let kernel_t = kernel::single_kernel_time(&arch, stats);
            let launch = arch.launch_cpu;
            t.push_row(vec![
                arch.name.into(),
                w.name.into(),
                us(kernel_t),
                us(launch),
                format!(
                    "{:.1}",
                    launch.as_nanos() as f64 / kernel_t.as_nanos() as f64
                ),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_dominates_kernels_on_modern_architectures() {
        // The paper's motivation: on modern GPUs the launch overhead
        // outweighs the (fast) packing kernels; on Kepler the kernels are
        // slower, but the launch is still a comparable cost.
        let t = run();
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let ratio: f64 = row[4].parse().expect("numeric ratio");
            if row[0] == "Tesla K80" {
                assert!(ratio > 0.3, "{}: launch not even comparable", row[1]);
            } else {
                assert!(
                    ratio >= 1.0,
                    "{} {}: launch should outweigh the kernel (ratio {ratio})",
                    row[0],
                    row[1]
                );
            }
        }
    }

    #[test]
    fn launch_to_kernel_ratio_worsens_on_newer_gpus() {
        // Kernels get faster generation over generation while the launch
        // overhead barely improves — the trend Fig. 1 highlights.
        let t = run();
        let ratio_of = |gpu: &str, wl: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == gpu && r[1] == wl)
                .expect("row")[4]
                .parse()
                .expect("numeric")
        };
        for wl in ["specfem3D_cm", "MILC"] {
            assert!(ratio_of("Tesla V100", wl) >= ratio_of("Tesla K80", wl));
        }
    }
}
