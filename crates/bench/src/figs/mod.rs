//! One module per reproduced table/figure.

pub mod ablation;
pub mod approaches;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig8;
pub mod fig9;
pub mod ipc;
pub mod table2;

use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_sim::Duration;
use fusedpack_workloads::{run_exchange, ExchangeConfig, Workload};

/// The paper's §V-C stress level: 16 buffers each way = 32 non-blocking
/// operations per rank.
pub const HALO_MSGS: usize = 16;

/// One latency measurement with the standard protocol (1 warm-up lap,
/// 1 measured lap, timing-only memory).
pub fn latency(
    platform: &Platform,
    scheme: SchemeKind,
    workload: &Workload,
    n_msgs: usize,
) -> Duration {
    run_exchange(&ExchangeConfig::new(
        platform.clone(),
        scheme,
        workload.clone(),
        n_msgs,
    ))
    .latency
}

/// The GPU-driven comparison set of Figs. 9/10/12/13 in paper legend order.
pub fn gpu_driven_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::fusion_default(),
        SchemeKind::GpuSync,
        SchemeKind::GpuAsync,
        SchemeKind::CpuGpuHybrid,
    ]
}

/// Tune the fusion threshold for one workload on one platform by sweeping
/// the Fig. 8 grid and keeping the argmin — the evaluation's
/// *Proposed-Tuned* configuration.
pub fn tuned_fusion(platform: &Platform, workload: &Workload, n_msgs: usize) -> (SchemeKind, u64) {
    let mut tuner = fusedpack_core::ThresholdTuner::new();
    for threshold in fusedpack_core::ThresholdTuner::default_grid() {
        let lat = latency(
            platform,
            SchemeKind::fusion_with_threshold(threshold),
            workload,
            n_msgs,
        );
        tuner.record(threshold, lat);
    }
    let best = tuner.best().expect("grid is non-empty");
    (SchemeKind::fusion_with_threshold(best), best)
}

/// Standard size sweeps per workload family (the x-axes of Figs. 12/13).
pub mod sizes {
    /// specfem3D boundary point counts (sparse).
    pub const SPECFEM: &[u64] = &[512, 1024, 2048, 4096, 8192, 16384];
    /// MILC local lattice extents (dense, small→medium).
    pub const MILC: &[u64] = &[4, 6, 8, 12, 16, 24];
    /// NAS_MG grid extents (dense, medium→large).
    pub const NAS: &[u64] = &[64, 128, 192, 256, 384, 512];
}
