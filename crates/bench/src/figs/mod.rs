//! One module per reproduced table/figure.

pub mod ablation;
pub mod adapt;
pub mod approaches;
pub mod chaos;
pub mod chaos_topo;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig8;
pub mod fig9;
pub mod ipc;
pub mod serve;
pub mod table2;
pub mod topo;

use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_sim::Duration;
use fusedpack_workloads::{run_exchange, ExchangeConfig, Workload};
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's §V-C stress level: 16 buffers each way = 32 non-blocking
/// operations per rank.
pub const HALO_MSGS: usize = 16;

/// How the *Proposed* scheme's fusion threshold is chosen for the figure
/// harnesses (the `reproduce --threshold` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdMode {
    /// The paper's 512 KB default.
    Default,
    /// Resolve per workload with [`fusedpack_core::predict_threshold`]
    /// from the workload's average contiguous-block size.
    Auto,
    /// A fixed byte count for every workload.
    Fixed(u64),
}

// Encoded in one atomic so sweep worker threads see a consistent value:
// 0 = default, u64::MAX = auto, anything else = fixed bytes.
static THRESHOLD_MODE: AtomicU64 = AtomicU64::new(0);

/// Set the process-wide threshold mode (called once by the `reproduce`
/// binary before any experiment runs).
pub fn set_threshold_mode(mode: ThresholdMode) {
    let enc = match mode {
        ThresholdMode::Default => 0,
        ThresholdMode::Auto => u64::MAX,
        ThresholdMode::Fixed(b) => {
            assert!(b != 0 && b != u64::MAX, "unrepresentable threshold {b}");
            b
        }
    };
    THRESHOLD_MODE.store(enc, Ordering::SeqCst);
}

/// The currently selected threshold mode.
pub fn threshold_mode() -> ThresholdMode {
    match THRESHOLD_MODE.load(Ordering::SeqCst) {
        0 => ThresholdMode::Default,
        u64::MAX => ThresholdMode::Auto,
        b => ThresholdMode::Fixed(b),
    }
}

/// Master seed for the chaos experiment's fault plans (the `reproduce
/// --seed` flag). Per-cell plans are derived deterministically from this
/// and the cell's grid coordinates, so the report is byte-identical across
/// runs and `--jobs` counts for a given seed.
static CHAOS_SEED: AtomicU64 = AtomicU64::new(42);

/// Set the chaos master seed (called once by the `reproduce` binary).
pub fn set_chaos_seed(seed: u64) {
    CHAOS_SEED.store(seed, Ordering::SeqCst);
}

/// The current chaos master seed.
pub fn chaos_seed() -> u64 {
    CHAOS_SEED.load(Ordering::SeqCst)
}

/// Default request count for the serve experiment: enough steady-state
/// laps for a stable p999 without making `reproduce all` crawl.
pub const SERVE_REQUESTS_DEFAULT: u64 = 200_000;

/// Total requests the serve experiment replays per cell (the `reproduce
/// --requests` flag).
static SERVE_REQUESTS: AtomicU64 = AtomicU64::new(SERVE_REQUESTS_DEFAULT);

/// Set the serve request count (called once by the `reproduce` binary).
pub fn set_serve_requests(requests: u64) {
    assert!(requests > 0, "serve needs at least one request");
    SERVE_REQUESTS.store(requests, Ordering::SeqCst);
}

/// The current serve request count.
pub fn serve_requests() -> u64 {
    SERVE_REQUESTS.load(Ordering::SeqCst)
}

/// Event-loop worker shards per simulation for the cluster-scale
/// experiments (the `reproduce --shards` flag). Each cluster clamps the
/// request to what its layout supports; reports are byte-identical at any
/// value — the CI smoke job diffs `--shards 1` vs `--shards 4` CSVs.
static SHARDS: AtomicU64 = AtomicU64::new(1);

/// Set the per-simulation shard count (called once by the `reproduce`
/// binary before any experiment runs).
pub fn set_shards(shards: u32) {
    assert!(shards >= 1, "at least one shard");
    SHARDS.store(shards as u64, Ordering::SeqCst);
}

/// The current per-simulation shard count.
pub fn shards() -> u32 {
    SHARDS.load(Ordering::SeqCst) as u32
}

/// The *Proposed* scheme for one (platform, workload) cell, honouring the
/// CLI threshold mode: the 512 KB default, a fixed `--threshold BYTES`, or
/// `--threshold auto` (model-predicted from the workload's average block
/// size on this platform's GPU).
pub fn proposed(platform: &Platform, workload: &Workload) -> SchemeKind {
    match threshold_mode() {
        ThresholdMode::Default => SchemeKind::fusion_default(),
        ThresholdMode::Fixed(b) => SchemeKind::fusion_with_threshold(b),
        ThresholdMode::Auto => SchemeKind::fusion_with_threshold(
            fusedpack_core::predict_threshold(&platform.arch, workload.avg_block_bytes()),
        ),
    }
}

/// One latency measurement with the standard protocol (1 warm-up lap,
/// 1 measured lap, timing-only memory).
pub fn latency(
    platform: &Platform,
    scheme: SchemeKind,
    workload: &Workload,
    n_msgs: usize,
) -> Duration {
    run_exchange(&ExchangeConfig::new(
        platform.clone(),
        scheme,
        workload.clone(),
        n_msgs,
    ))
    .latency
}

/// The GPU-driven comparison set of Figs. 9/10/12/13 in paper legend order.
pub fn gpu_driven_schemes() -> Vec<SchemeKind> {
    fusedpack_mpi::SchemeRegistry::global().by_names(&[
        "proposed",
        "gpu-sync",
        "gpu-async",
        "cpu-gpu-hybrid",
    ])
}

/// Tune the fusion threshold for one workload on one platform by sweeping
/// the Fig. 8 grid and keeping the argmin — the evaluation's
/// *Proposed-Tuned* configuration.
pub fn tuned_fusion(platform: &Platform, workload: &Workload, n_msgs: usize) -> (SchemeKind, u64) {
    let mut tuner = fusedpack_core::ThresholdTuner::new();
    for threshold in fusedpack_core::ThresholdTuner::default_grid() {
        let lat = latency(
            platform,
            SchemeKind::fusion_with_threshold(threshold),
            workload,
            n_msgs,
        );
        tuner.record(threshold, lat);
    }
    let best = tuner.best().expect("grid is non-empty");
    (SchemeKind::fusion_with_threshold(best), best)
}

/// Standard size sweeps per workload family (the x-axes of Figs. 12/13).
pub mod sizes {
    /// specfem3D boundary point counts (sparse).
    pub const SPECFEM: &[u64] = &[512, 1024, 2048, 4096, 8192, 16384];
    /// MILC local lattice extents (dense, small→medium).
    pub const MILC: &[u64] = &[4, 6, 8, 12, 16, 24];
    /// NAS_MG grid extents (dense, medium→large).
    pub const NAS: &[u64] = &[64, 128, 192, 256, 384, 512];
}
