//! `reproduce chaos-topo`: the fabric fault-domain grid — seeded per-hop
//! fault injection on the 512-rank torus halo.
//!
//! For each scheme ({Proposed, Proposed-Adaptive}), a fault-free baseline
//! on the Lassen-like fat tree establishes the reference latency and the
//! receive-buffer checksum; then one cell per fabric fault profile re-runs
//! the same 8×8×8 halo exchange with that profile armed and reports
//! latency inflation, whether the delivered bytes still match the
//! fault-free run, and the fabric's self-healing counters: hops flapped /
//! degraded / downed, ECMP reroutes, dual-rail failovers, and
//! forced-delivery disconnects (the last rung, where no surviving route
//! exists and the transfer is pushed through the flat wire model).
//!
//! Every plan is derived from the master `--seed` and the cell's grid
//! coordinates (never from execution order), and the per-rank/keyed fault
//! streams shard cleanly, so the table is byte-identical across runs,
//! `--jobs` counts, and `--shards` counts — the CI `chaos-topo` job diffs
//! all three.

use crate::exec::{self, Cell};
use crate::figs::chaos_seed;
use crate::table::{ratio, us, Table};
use fusedpack_mpi::SchemeKind;
use fusedpack_net::{Hierarchy, Platform, TopologyHandle};
use fusedpack_sim::{FaultPlan, FaultSite, FaultSpec};
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::{run_halo_chaos, HaloChaosOutcome, HaloConfig, HaloGrid};
use std::sync::Arc;

/// Torus extent per dimension (matches `reproduce topo`).
pub const GRID: u32 = 8;

/// Buffers per neighbor per iteration.
pub const N_MSGS: usize = 2;

/// specfem3D_cm boundary points per message.
pub const POINTS: u64 = 512;

/// Fabric fault profiles: `(label, site, per-transit probability)`. Rates
/// are per hop crossing; at 512 ranks a lap crosses tens of thousands of
/// hops, so even the hop-down trickle kills rails and forces reroutes.
const PROFILES: &[(&str, FaultSite, f64)] = &[
    ("hop-flap", FaultSite::HopFlap, 0.02),
    ("rail-degrade", FaultSite::RailDegrade, 0.01),
    ("hop-down", FaultSite::HopDown, 0.002),
];

/// The scheme rows of the grid.
pub fn schemes() -> Vec<(&'static str, SchemeKind)> {
    vec![
        ("Proposed", SchemeKind::fusion_default()),
        ("Proposed-Adaptive", SchemeKind::fusion_adaptive()),
    ]
}

/// Derive one cell's plan seed from the master seed and its grid
/// coordinates (splitmix-style mixing; stable across jobs counts).
fn cell_seed(master: u64, scheme: usize, profile: usize) -> u64 {
    let mut x = master
        .wrapping_add((scheme as u64) << 32)
        .wrapping_add(profile as u64 + 1);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One grid cell: the torus halo on the Lassen-like fat tree with an
/// optional fabric fault plan, at `grid`^3 ranks and the CLI shard count.
pub fn measure(grid: u32, scheme: SchemeKind, plan: Option<FaultPlan>) -> HaloChaosOutcome {
    let nodes = grid * grid * grid / 4;
    let topo: TopologyHandle = Arc::new(Hierarchy::lassen_like(nodes));
    let mut cfg = HaloConfig::new(
        Platform::lassen(),
        scheme,
        specfem3d_cm(POINTS),
        HaloGrid::new_3d(grid, grid, grid),
        N_MSGS,
    )
    .with_topology(topo)
    .with_shards(super::shards());
    if let Some(plan) = plan {
        cfg = cfg.with_fault_plan(plan);
    }
    run_halo_chaos(&cfg)
}

pub fn run() -> Table {
    let master = chaos_seed();
    let mut t = Table::new(
        format!(
            "Chaos-topo: per-hop fault profiles on the {GRID}^3 torus halo, \
             Lassen-like fat tree, checksum vs fault-free run (seed {master})"
        ),
        &[
            "scheme",
            "faults",
            "latency (us)",
            "inflation",
            "data",
            "flap",
            "degr",
            "down",
            "reroute",
            "failover",
            "forced",
        ],
    )
    .with_note(
        "data: ok = receive-buffer checksum identical to the fault-free baseline; \
         flap/degr/down: hop fault injections; reroute/failover: ECMP re-resolutions \
         around dead hops and dual-rail NIC failovers; forced: transfers whose every \
         surviving route died, delivered through the flat-wire rung",
    );

    let mut cells: Vec<Cell<HaloChaosOutcome>> = Vec::new();
    for (si, (sname, scheme)) in schemes().into_iter().enumerate() {
        let s = scheme.clone();
        cells.push(Cell::new(format!("{sname}/baseline"), move || {
            measure(GRID, s.clone(), None)
        }));
        for (pi, &(pname, site, rate)) in PROFILES.iter().enumerate() {
            let plan = FaultPlan::new(cell_seed(master, si, pi))
                .with(site, FaultSpec::with_probability(rate));
            let s = scheme.clone();
            cells.push(Cell::new(format!("{sname}/{pname}"), move || {
                measure(GRID, s.clone(), Some(plan.clone()))
            }));
        }
    }
    let outcomes = exec::sweep("chaos-topo", cells);

    let mut it = outcomes.into_iter();
    for (sname, _) in schemes() {
        let base = it.next().expect("baseline outcome");
        assert!(
            base.clamps.count == 0,
            "chaos-topo baseline for {sname} is not clamp-free: {:?} — \
             the fault-free reference cannot be trusted",
            base.clamps
        );
        assert!(
            base.faults.is_clean() && base.fabric.injected() == 0,
            "fault-free baseline recorded fault activity: {:?} / {}",
            base.faults,
            base.fabric
        );
        t.push_row(vec![
            sname.into(),
            "none".into(),
            us(base.latency),
            "1.00x".into(),
            "ref".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            "0".into(),
        ]);
        for &(pname, _, _) in PROFILES {
            let out = it.next().expect("chaos-topo outcome");
            t.push_row(vec![
                sname.into(),
                pname.into(),
                us(out.latency),
                ratio(out.latency, base.latency),
                if out.checksum == base.checksum {
                    "ok".into()
                } else {
                    "DIFF".into()
                },
                out.fabric.flaps.to_string(),
                out.fabric.degrades.to_string(),
                out.fabric.downs.to_string(),
                out.fabric.reroutes.to_string(),
                out.fabric.rail_failovers.to_string(),
                out.faults.degraded.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One representative cell end to end, on a 4^3 torus to keep the
    /// suite fast: a seeded hop-down profile must kill hops, reroute
    /// around them, and reproduce the fault-free checksum.
    #[test]
    fn hop_down_cell_reroutes_and_preserves_bytes() {
        let base = measure(4, SchemeKind::fusion_default(), None);
        assert_eq!(base.clamps.count, 0, "{:?}", base.clamps);
        assert!(base.faults.is_clean() && base.fabric.injected() == 0);
        let plan = FaultPlan::new(cell_seed(42, 0, 2))
            .with(FaultSite::HopDown, FaultSpec::with_probability(0.02));
        let out = measure(4, SchemeKind::fusion_default(), Some(plan));
        assert!(out.fabric.downs > 0, "{}", out.fabric);
        assert!(out.fabric.reroutes > 0, "{}", out.fabric);
        assert_eq!(out.checksum, base.checksum, "reroute corrupted data");
        assert!(out.latency >= base.latency, "faults cannot speed a run up");
    }

    /// The same cell is byte-identical single-queue vs 4-way sharded —
    /// the in-process version of the CI `chaos-topo` `--shards` diff.
    #[test]
    fn faulted_cell_is_identical_across_shards() {
        let plan = || {
            FaultPlan::new(cell_seed(42, 0, 0))
                .with(FaultSite::HopFlap, FaultSpec::with_probability(0.05))
                .with(FaultSite::HopDown, FaultSpec::with_probability(0.02))
        };
        super::super::set_shards(1);
        let single = measure(4, SchemeKind::fusion_default(), Some(plan()));
        super::super::set_shards(4);
        let sharded = measure(4, SchemeKind::fusion_default(), Some(plan()));
        super::super::set_shards(1);
        assert!(sharded.shard_barriers > 0, "sharding engaged");
        assert_eq!(single.latency, sharded.latency);
        assert_eq!(single.faults, sharded.faults);
        assert_eq!(single.fabric, sharded.fabric);
        assert_eq!(single.checksum, sharded.checksum);
    }
}
