//! Table II: experimental environment.

use crate::table::Table;
use fusedpack_net::Platform;

pub fn run() -> Table {
    let mut t = Table::new(
        "Table II: experimental environment (model constants)",
        &["spec", "Lassen", "ABCI"],
    )
    .with_note("wire speeds from the paper's Table II; host costs are calibrated model inputs");
    let lassen = Platform::lassen();
    let abci = Platform::abci();

    let gbps = |bw: f64| format!("{:.0} GB/s", bw / 1e9);
    let rows: Vec<(&str, String, String)> = vec![
        ("GPU", lassen.arch.name.into(), abci.arch.name.into()),
        (
            "CPU-GPU link",
            format!("{} ({})", lassen.host_link.name, gbps(lassen.host_link.bw)),
            format!("{} ({})", abci.host_link.name, gbps(abci.host_link.bw)),
        ),
        (
            "GPU-GPU link",
            lassen.gpu_gpu.name.into(),
            abci.gpu_gpu.name.into(),
        ),
        (
            "inter-node",
            lassen.internode.name.into(),
            abci.internode.name.into(),
        ),
        (
            "GPUDirect RDMA bw",
            gbps(lassen.gdr_rdma_bw),
            gbps(abci.gdr_rdma_bw),
        ),
        (
            "kernel launch (CPU)",
            format!("{}", lassen.arch.launch_cpu),
            format!("{}", abci.arch.launch_cpu),
        ),
        (
            "stream sync call",
            format!("{}", lassen.arch.stream_sync_call),
            format!("{}", abci.arch.stream_sync_call),
        ),
        (
            "eager limit",
            format!("{} KB", lassen.eager_limit / 1024),
            format!("{} KB", abci.eager_limit / 1024),
        ),
        (
            "GPUs/node",
            lassen.gpus_per_node.to_string(),
            abci.gpus_per_node.to_string(),
        ),
    ];
    for (name, l, a) in rows {
        t.push_row(vec![name.into(), l, a]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_renders() {
        let t = super::run();
        assert!(t.rows.len() >= 8);
        assert!(t.render().contains("NVLink2"));
    }
}
