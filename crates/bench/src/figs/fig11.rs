//! Fig. 11: cost breakdown of the GPU-driven designs (MILC, 16 transfers,
//! two nodes, ABCI): (Un)Pack / Launching / Scheduling / Sync. / Comm.

use crate::exec::{self, Cell};
use crate::table::{us, Table};
use fusedpack_gpu::DataMode;
use fusedpack_mpi::{Breakdown, SchemeKind};
use fusedpack_net::Platform;
use fusedpack_telemetry::Telemetry;
use fusedpack_workloads::{
    milc::milc_su3_zdown, run_exchange, run_exchange_traced, ExchangeConfig,
};

/// Medium MILC lattice: enough work that every bucket is visible.
pub const LATTICE: u64 = 8;
pub const N_MSGS: usize = 16;

/// The GPU-driven designs the paper breaks down.
pub fn schemes() -> Vec<SchemeKind> {
    fusedpack_mpi::SchemeRegistry::global().by_names(&["gpu-sync", "gpu-async", "proposed"])
}

/// The configuration of one Fig. 11 cell.
pub fn config(scheme: SchemeKind) -> ExchangeConfig {
    ExchangeConfig {
        platform: Platform::abci(),
        scheme,
        workload: milc_su3_zdown(LATTICE),
        n_msgs: N_MSGS,
        warmup_laps: 1,
        measured_laps: 1,
        mode: DataMode::ModelOnly,
    }
}

/// Measure the per-iteration breakdown for one scheme.
pub fn breakdown_for(scheme: SchemeKind) -> Breakdown {
    run_exchange(&config(scheme)).breakdown
}

/// Run the fusion-scheme Fig. 11 cell with a live typed-event recorder.
///
/// Returns the recorder, whose timeline covers the whole run, together
/// with each rank's whole-run [`Breakdown`] — the independent ledger the
/// timeline can be reconciled against with [`fusedpack_telemetry::reconcile`].
pub fn traced_run() -> (Telemetry, Vec<Breakdown>) {
    let telemetry = Telemetry::enabled();
    let (_, breakdowns) = run_exchange_traced(&config(SchemeKind::fusion_default()), &telemetry);
    (telemetry, breakdowns)
}

pub fn run() -> Table {
    let mut t = Table::new(
        "Fig. 11: cost breakdown of GPU-driven designs (MILC x16, ABCI; us per iteration, both ranks)",
        &[
            "scheme",
            "(Un)Pack",
            "Launching",
            "Scheduling",
            "Sync.",
            "Comm.",
            "total",
        ],
    )
    .with_note("paper: Proposed has the lowest launch+sync; GPU-Sync the highest sync; scheduling ~2us/msg");

    // One cell per scheme: each runs its own two-rank simulation.
    let cells: Vec<Cell<Breakdown>> = schemes()
        .into_iter()
        .map(|scheme| {
            let label = scheme.label();
            Cell::new(label, move || breakdown_for(scheme))
        })
        .collect();
    let breakdowns = exec::sweep("fig11", cells);

    for (scheme, b) in schemes().into_iter().zip(breakdowns) {
        t.push_row(vec![
            scheme.label().into(),
            us(b.pack),
            us(b.launch),
            us(b.scheduling),
            us(b.sync),
            us(b.comm),
            us(b.total()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_minimizes_launch_and_sync() {
        let sync = breakdown_for(SchemeKind::GpuSync);
        let asyn = breakdown_for(SchemeKind::GpuAsync);
        let fused = breakdown_for(SchemeKind::fusion_default());

        assert!(fused.launch < sync.launch, "{fused:?} vs {sync:?}");
        assert!(fused.launch < asyn.launch);
        assert!(fused.sync < sync.sync);
        assert!(fused.sync < asyn.sync);
        // GPU-Sync always has the highest synchronization cost.
        assert!(sync.sync > asyn.sync);
    }

    #[test]
    fn scheduling_is_roughly_two_us_per_message() {
        let fused = breakdown_for(SchemeKind::fusion_default());
        // 16 packs + 16 unpacks per rank, both ranks: 64 scheduled requests.
        let per_msg = fused.scheduling.as_micros_f64() / 64.0;
        assert!(
            (0.5..=3.0).contains(&per_msg),
            "scheduling {per_msg:.2}us/msg should be ~2us as the paper reports"
        );
    }

    #[test]
    fn every_bucket_is_populated_for_fusion() {
        let fused = breakdown_for(SchemeKind::fusion_default());
        assert!(fused.pack.as_nanos() > 0);
        assert!(fused.launch.as_nanos() > 0);
        assert!(fused.scheduling.as_nanos() > 0);
        assert!(fused.sync.as_nanos() > 0);
    }
}
