//! Fig. 10: bulk non-contiguous inter-node transfer, dense layout (MILC)
//! on Lassen, sweeping the number of exchanged buffers.
//!
//! The paper's twist: for small dense messages the CPU-GPU-Hybrid GDRCopy
//! path wins outright (no kernel launch at all), while the proposed design
//! still beats both kernel-driven baselines.

use crate::exec::{self, Cell};
use crate::figs::{gpu_driven_schemes, latency, proposed};
use crate::table::{us, Table};
use fusedpack_net::Platform;
use fusedpack_workloads::milc::milc_su3_zdown;

pub const BUFFER_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

/// Small local lattice: dense layout, small messages (the hybrid sweet
/// spot).
pub const LATTICE: u64 = 4;

pub fn run() -> Table {
    let mut schemes = gpu_driven_schemes();
    // Honour `reproduce --threshold` for the Proposed column.
    schemes[0] = proposed(&Platform::lassen(), &milc_su3_zdown(LATTICE));

    let mut headers: Vec<String> = vec!["#buffers".into()];
    headers.extend(schemes.iter().map(|s| format!("{} (us)", s.label())));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut t = Table::new(
        "Fig. 10: bulk dense exchange (MILC, Lassen; lower is better)",
        &headers_ref,
    )
    .with_note(
        "paper: CPU-GPU-Hybrid wins small dense on Lassen; Proposed still beats GPU-Sync/GPU-Async",
    );

    // One cell per (buffer count, scheme), row-major by buffer count.
    let mut cells = Vec::new();
    for &n in BUFFER_COUNTS {
        for s in &schemes {
            let scheme = s.clone();
            cells.push(Cell::new(format!("n{}/{}", n, s.label()), move || {
                let platform = Platform::lassen();
                let w = milc_su3_zdown(LATTICE);
                latency(&platform, scheme, &w, n)
            }));
        }
    }
    let all = exec::sweep("fig10", cells);

    for (lats, &n) in all.chunks(schemes.len()).zip(BUFFER_COUNTS) {
        let mut row = vec![n.to_string()];
        row.extend(lats.iter().map(|&l| us(l)));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_mpi::SchemeKind;

    #[test]
    fn hybrid_wins_and_proposed_beats_kernel_baselines() {
        let platform = Platform::lassen();
        let w = milc_su3_zdown(LATTICE);
        for &n in &[4usize, 16] {
            let fusion = latency(&platform, SchemeKind::fusion_default(), &w, n);
            let sync = latency(&platform, SchemeKind::GpuSync, &w, n);
            let asyn = latency(&platform, SchemeKind::GpuAsync, &w, n);
            let hybrid = latency(&platform, SchemeKind::CpuGpuHybrid, &w, n);
            assert!(
                hybrid < fusion,
                "n={n}: hybrid {hybrid} < proposed {fusion}"
            );
            assert!(fusion < sync, "n={n}: proposed {fusion} < sync {sync}");
            assert!(fusion < asyn, "n={n}: proposed {fusion} < async {asyn}");
        }
    }

    #[test]
    fn gpu_async_not_better_than_sync_on_lassen() {
        // Fig. 10's secondary observation: the extra event overheads make
        // GPU-Async lose to GPU-Sync on Lassen's fast interconnect.
        let platform = Platform::lassen();
        let w = milc_su3_zdown(LATTICE);
        let sync = latency(&platform, SchemeKind::GpuSync, &w, 16);
        let asyn = latency(&platform, SchemeKind::GpuAsync, &w, 16);
        assert!(
            asyn.as_nanos() as f64 >= 0.95 * sync.as_nanos() as f64,
            "async {asyn} should not meaningfully beat sync {sync} on Lassen"
        );
    }
}
