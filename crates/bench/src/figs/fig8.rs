//! Fig. 8: performance effects of the fused-kernel threshold
//! (specfem3D_cm, 32 back-to-back Isend/Irecv pairs) — the under-fused /
//! over-fused U-shape of §IV-C.

use crate::figs::latency;
use crate::table::{us, Table};
use fusedpack_core::ThresholdTuner;
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_workloads::specfem::specfem3d_cm;

/// Boundary point counts giving small / medium / large input sizes.
pub const INPUT_SIZES: &[u64] = &[1024, 4096, 16384];

/// 32 continuous Isend/Irecv operations per rank, as in the paper's Fig. 8.
pub const N_MSGS: usize = 32;

pub fn run() -> Table {
    let platform = Platform::lassen();
    let thresholds = ThresholdTuner::default_grid();

    let mut headers: Vec<String> = vec!["threshold".into()];
    for &pts in INPUT_SIZES {
        headers.push(format!("{}pt (us)", pts));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 8: fused-kernel threshold sweep (specfem3D_cm, 32 ops, Lassen)",
        &headers_ref,
    )
    .with_note("too-low thresholds under-fuse (frequent launches); too-high over-fuse (delayed communication)");

    for &threshold in &thresholds {
        let mut row = vec![format!("{}KB", threshold / 1024)];
        for &pts in INPUT_SIZES {
            let w = specfem3d_cm(pts);
            let lat = latency(
                &platform,
                SchemeKind::fusion_with_threshold(threshold),
                &w,
                N_MSGS,
            );
            row.push(us(lat));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_under_and_over_fused_regimes() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(4096);
        let tiny = latency(
            &platform,
            SchemeKind::fusion_with_threshold(16 * 1024),
            &w,
            N_MSGS,
        );
        let mid = latency(
            &platform,
            SchemeKind::fusion_with_threshold(512 * 1024),
            &w,
            N_MSGS,
        );
        assert!(
            mid < tiny,
            "mid threshold {mid} should beat under-fused {tiny}"
        );
    }

    #[test]
    fn table_has_full_grid() {
        let t = run();
        assert_eq!(t.rows.len(), ThresholdTuner::default_grid().len());
        assert_eq!(t.headers.len(), 1 + INPUT_SIZES.len());
    }
}
