//! Fig. 8: performance effects of the fused-kernel threshold
//! (specfem3D_cm, 32 back-to-back Isend/Irecv pairs) — the under-fused /
//! over-fused U-shape of §IV-C.

use crate::exec::{self, Cell};
use crate::figs::latency;
use crate::table::{us, Table};
use fusedpack_core::ThresholdTuner;
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_workloads::specfem::specfem3d_cm;

/// Boundary point counts giving small / medium / large input sizes.
pub const INPUT_SIZES: &[u64] = &[1024, 4096, 16384];

/// 32 continuous Isend/Irecv operations per rank, as in the paper's Fig. 8.
pub const N_MSGS: usize = 32;

pub fn run() -> Table {
    let thresholds = ThresholdTuner::default_grid();

    let mut headers: Vec<String> = vec!["threshold".into()];
    for &pts in INPUT_SIZES {
        headers.push(format!("{}pt (us)", pts));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 8: fused-kernel threshold sweep (specfem3D_cm, 32 ops, Lassen)",
        &headers_ref,
    )
    .with_note("too-low thresholds under-fuse (frequent launches); too-high over-fuse (delayed communication)");

    // One cell per (threshold, input size); row-major so chunking the flat
    // result list by INPUT_SIZES.len() reassembles the rows.
    let mut cells = Vec::new();
    for &threshold in &thresholds {
        for &pts in INPUT_SIZES {
            cells.push(Cell::new(
                format!("{}KB/{}pt", threshold / 1024, pts),
                move || {
                    let platform = Platform::lassen();
                    let w = specfem3d_cm(pts);
                    latency(
                        &platform,
                        SchemeKind::fusion_with_threshold(threshold),
                        &w,
                        N_MSGS,
                    )
                },
            ));
        }
    }
    // One extra row: the online adaptive controller, which should land at
    // or near the best static threshold without being told it.
    for &pts in INPUT_SIZES {
        cells.push(Cell::new(format!("adaptive/{}pt", pts), move || {
            let platform = Platform::lassen();
            let w = specfem3d_cm(pts);
            latency(&platform, SchemeKind::fusion_adaptive(), &w, N_MSGS)
        }));
    }
    let lats = exec::sweep("fig8", cells);

    for (row_lats, &threshold) in lats.chunks(INPUT_SIZES.len()).zip(&thresholds) {
        let mut row = vec![format!("{}KB", threshold / 1024)];
        row.extend(row_lats.iter().map(|&l| us(l)));
        t.push_row(row);
    }
    let adaptive_lats = &lats[thresholds.len() * INPUT_SIZES.len()..];
    let mut row = vec!["adaptive".to_string()];
    row.extend(adaptive_lats.iter().map(|&l| us(l)));
    t.push_row(row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_under_and_over_fused_regimes() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(4096);
        let tiny = latency(
            &platform,
            SchemeKind::fusion_with_threshold(16 * 1024),
            &w,
            N_MSGS,
        );
        let mid = latency(
            &platform,
            SchemeKind::fusion_with_threshold(512 * 1024),
            &w,
            N_MSGS,
        );
        assert!(
            mid < tiny,
            "mid threshold {mid} should beat under-fused {tiny}"
        );
    }

    #[test]
    fn table_has_full_grid_plus_adaptive() {
        let t = run();
        assert_eq!(t.rows.len(), ThresholdTuner::default_grid().len() + 1);
        assert_eq!(t.headers.len(), 1 + INPUT_SIZES.len());
        assert_eq!(t.rows.last().expect("rows")[0], "adaptive");
    }
}
