//! Chaos experiment: seeded fault-injection grid over the paper's
//! workloads.
//!
//! For each (workload × scheme) pair, a fault-free baseline establishes
//! the reference latency and the receive-buffer checksum, then every
//! (fault-site profile × injection rate) cell re-runs the same exchange
//! under a deterministic [`FaultPlan`] and reports latency inflation and
//! whether the delivered bytes still match the fault-free run — the
//! end-to-end evidence that the retry protocol and degradation ladders
//! recover without corrupting data. The adaptive scheme's
//! `threshold_adjusts` column shows the online controller reacting to the
//! fault-induced bandwidth collapse.
//!
//! Every plan is derived from the master `--seed` and the cell's grid
//! coordinates (never from execution order), so the table is
//! byte-identical across runs and `--jobs` counts.

use crate::exec::{self, Cell};
use crate::figs::chaos_seed;
use crate::table::{ratio, us, Table};
use fusedpack_gpu::DataMode;
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_sim::{FaultPlan, FaultSite, FaultSpec};
use fusedpack_workloads::{
    nas::nas_mg_y, run_exchange_chaos, specfem::specfem3d_oc, ChaosOutcome, ExchangeConfig,
};

/// Fault-site groups, one table row per (profile, rate).
const PROFILES: &[(&str, &[FaultSite])] = &[
    (
        "wire",
        &[
            FaultSite::LinkDrop,
            FaultSite::LinkCorrupt,
            FaultSite::LinkDelay,
        ],
    ),
    ("nic", &[FaultSite::NicTimeout, FaultSite::NicDupCompletion]),
    (
        "gpu",
        &[FaultSite::FusedLaunchFail, FaultSite::FusedFlagLost],
    ),
    (
        "pressure",
        &[FaultSite::RingExhausted, FaultSite::IpcMapFail],
    ),
];

/// Per-decision injection probabilities swept per profile.
const RATES: &[f64] = &[0.02, 0.10];

/// Messages each way per iteration (the paper's §V-C stress level).
const N_MSGS: usize = 16;

/// Derive one cell's plan seed from the master seed and its grid
/// coordinates (splitmix-style mixing; stable across jobs counts).
fn cell_seed(master: u64, w: usize, s: usize, p: usize, r: usize) -> u64 {
    let mut x = master
        .wrapping_add((w as u64) << 48)
        .wrapping_add((s as u64) << 32)
        .wrapping_add((p as u64) << 16)
        .wrapping_add(r as u64 + 1);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn config(scheme: SchemeKind, workload: fusedpack_workloads::Workload) -> ExchangeConfig {
    let mut cfg = ExchangeConfig::new(Platform::lassen(), scheme, workload, N_MSGS);
    // Real bytes: the checksum is the point of this experiment.
    cfg.mode = DataMode::Full;
    cfg
}

pub fn run() -> Table {
    let master = chaos_seed();
    let mut t = Table::new(
        format!(
            "Chaos: fault-site x drop-rate grid, checksum vs fault-free run (Lassen, x{N_MSGS}, seed {master})"
        ),
        &[
            "workload",
            "scheme",
            "faults",
            "rate",
            "latency (us)",
            "inflation",
            "data",
            "inj",
            "retry",
            "degr",
            "adjusts",
        ],
    )
    .with_note(
        "data: ok = receive-buffer checksum identical to the fault-free baseline; \
         inj/retry/degr: injected faults, retransmissions, degradations survived",
    );

    let workloads = [
        ("specfem3D_oc", specfem3d_oc(2400)),
        ("NAS_MG_y", nas_mg_y(64)),
    ];
    let registry = fusedpack_mpi::SchemeRegistry::global();
    let schemes: Vec<(&str, SchemeKind)> = ["proposed", "proposed-adaptive"]
        .iter()
        .map(|name| {
            let d = registry.get(name).expect("registered scheme");
            (d.label, d.make())
        })
        .collect();

    // Flat cell list: for each (workload, scheme) a fault-free baseline,
    // then every (profile, rate) cell. The sweep executor reassembles in
    // this order regardless of --jobs.
    let mut cells: Vec<Cell<ChaosOutcome>> = Vec::new();
    for (wname, w) in &workloads {
        for (sname, scheme) in &schemes {
            let cfg = config(scheme.clone(), w.clone());
            cells.push(Cell::new(format!("{wname}/{sname}/baseline"), move || {
                run_exchange_chaos(&cfg, None)
            }));
            for (pi, (pname, sites)) in PROFILES.iter().enumerate() {
                for (ri, &rate) in RATES.iter().enumerate() {
                    let wi = workloads
                        .iter()
                        .position(|(n, _)| n == wname)
                        .expect("workload in grid");
                    let si = schemes
                        .iter()
                        .position(|(n, _)| n == sname)
                        .expect("scheme in grid");
                    let seed = cell_seed(master, wi, si, pi, ri);
                    let mut plan = FaultPlan::new(seed);
                    for &site in *sites {
                        plan = plan.with(site, FaultSpec::with_probability(rate));
                    }
                    let cfg = config(scheme.clone(), w.clone());
                    cells.push(Cell::new(
                        format!("{wname}/{sname}/{pname}@{rate}"),
                        move || run_exchange_chaos(&cfg, Some(plan.clone())),
                    ));
                }
            }
        }
    }

    let outcomes = exec::sweep("chaos", cells);

    // Walk the outcomes in the same construction order.
    let mut it = outcomes.into_iter();
    for (wname, _) in &workloads {
        for (sname, _) in &schemes {
            let base = it.next().expect("baseline outcome");
            assert!(
                base.clamps.count == 0,
                "chaos baseline for {wname}/{sname} is not clamp-free: {:?} — \
                 the fault-free reference cannot be trusted",
                base.clamps
            );
            assert!(
                base.faults.is_clean(),
                "fault-free baseline recorded fault activity: {:?}",
                base.faults
            );
            t.push_row(vec![
                (*wname).into(),
                (*sname).into(),
                "none".into(),
                "0".into(),
                us(base.latency),
                "1.00x".into(),
                "ref".into(),
                "0".into(),
                "0".into(),
                "0".into(),
                base.sched
                    .map_or_else(|| "-".into(), |s| s.threshold_adjusts.to_string()),
            ]);
            for (pname, _) in PROFILES {
                for &rate in RATES {
                    let out = it.next().expect("chaos outcome");
                    t.push_row(vec![
                        (*wname).into(),
                        (*sname).into(),
                        (*pname).into(),
                        format!("{rate}"),
                        us(out.latency),
                        ratio(out.latency, base.latency),
                        if out.checksum == base.checksum {
                            "ok".into()
                        } else {
                            "DIFF".into()
                        },
                        out.faults.injected.to_string(),
                        out.faults.retried.to_string(),
                        out.faults.degraded.to_string(),
                        out.sched
                            .map_or_else(|| "-".into(), |s| s.threshold_adjusts.to_string()),
                    ]);
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seeds_depend_on_every_coordinate() {
        let base = cell_seed(42, 0, 0, 0, 0);
        assert_ne!(base, cell_seed(43, 0, 0, 0, 0));
        assert_ne!(base, cell_seed(42, 1, 0, 0, 0));
        assert_ne!(base, cell_seed(42, 0, 1, 0, 0));
        assert_ne!(base, cell_seed(42, 0, 0, 1, 0));
        assert_ne!(base, cell_seed(42, 0, 0, 0, 1));
    }

    #[test]
    fn wire_faults_recover_with_identical_bytes() {
        // One representative cell end to end: a seeded wire profile must
        // inject, recover, and reproduce the fault-free checksum.
        let base = run_exchange_chaos(
            &config(SchemeKind::fusion_default(), specfem3d_oc(800)),
            None,
        );
        assert_eq!(base.clamps.count, 0, "{:?}", base.clamps);
        let mut plan = FaultPlan::new(cell_seed(42, 0, 0, 0, 1));
        for site in [
            FaultSite::LinkDrop,
            FaultSite::LinkCorrupt,
            FaultSite::LinkDelay,
        ] {
            plan = plan.with(site, FaultSpec::with_probability(0.1));
        }
        let out = run_exchange_chaos(
            &config(SchemeKind::fusion_default(), specfem3d_oc(800)),
            Some(plan),
        );
        assert!(out.faults.injected > 0, "{:?}", out.faults);
        assert_eq!(out.checksum, base.checksum, "recovery corrupted data");
        assert!(out.latency >= base.latency, "faults cannot speed a run up");
    }

    #[test]
    fn adaptive_controller_reacts_to_fault_induced_collapse() {
        // Degraded serial-kernel flushes feed the controller measured
        // bandwidth it would never see fault-free; it must move.
        let w = specfem3d_oc(1200);
        let mut plan = FaultPlan::new(cell_seed(42, 0, 1, 2, 1));
        // Launch-fail draws happen once per flush — far fewer than flag
        // draws (once per request) — so they need a high rate for the
        // degraded path to fire reliably on the per-(site, rank) streams.
        plan = plan.with(FaultSite::FusedLaunchFail, FaultSpec::with_probability(0.6));
        plan = plan.with(FaultSite::FusedFlagLost, FaultSpec::with_probability(0.3));
        let out = run_exchange_chaos(
            &config(SchemeKind::fusion_adaptive(), w.clone()),
            Some(plan),
        );
        assert!(out.faults.degraded > 0, "{:?}", out.faults);
        let base = run_exchange_chaos(&config(SchemeKind::fusion_adaptive(), w), None);
        let faulty = out.sched.expect("adaptive stats").threshold_adjusts;
        let clean = base.sched.expect("adaptive stats").threshold_adjusts;
        assert!(
            faulty >= clean,
            "fault-induced collapse should move the controller at least as much: {faulty} vs {clean}"
        );
        assert_eq!(out.checksum, base.checksum, "degradation corrupted data");
    }
}
