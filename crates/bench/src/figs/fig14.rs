//! Fig. 14: comparison with production communication libraries on Lassen,
//! normalized to SpectrumMPI (higher is better).

use crate::exec::{self, Cell};
use crate::figs::{latency, HALO_MSGS};
use crate::table::Table;
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_workloads::{nas::nas_mg_y, specfem::specfem3d_cm, Workload};

/// The production-library lineup of Fig. 14.
pub fn libraries() -> Vec<SchemeKind> {
    fusedpack_mpi::SchemeRegistry::global().by_names(&[
        "spectrum-mpi",
        "open-mpi",
        "mvapich2-gdr",
        "proposed",
    ])
}

/// The two representative layouts the figure covers.
pub fn workloads() -> Vec<Workload> {
    vec![specfem3d_cm(2048), nas_mg_y(128)]
}

pub fn run() -> Table {
    let libs = libraries();

    let mut headers: Vec<String> = vec!["workload".into(), "size".into()];
    headers.extend(libs.iter().map(|s| s.label().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 14: production libraries on Lassen (normalized to SpectrumMPI; higher is better)",
        &headers_ref,
    )
    .with_note("paper: Proposed is orders of magnitude faster than SpectrumMPI/OpenMPI and several-x faster than MVAPICH2-GDR");

    // One cell per (workload, library), row-major by workload. The
    // SpectrumMPI baseline is each row's first cell, so normalization
    // happens after reassembly with no cross-cell coupling.
    let mut cells = Vec::new();
    for w in workloads() {
        for s in &libs {
            let scheme = s.clone();
            let w = w.clone();
            cells.push(Cell::new(format!("{}/{}", w.name, s.label()), move || {
                let platform = Platform::lassen();
                latency(&platform, scheme, &w, HALO_MSGS)
            }));
        }
    }
    let all = exec::sweep("fig14", cells);

    for (lats, w) in all.chunks(libs.len()).zip(workloads()) {
        let base = lats[0];
        let mut row = vec![w.name.to_string(), format!("{}KB", w.packed_bytes() / 1024)];
        for &l in lats {
            row.push(format!(
                "{:.1}",
                base.as_nanos() as f64 / l.as_nanos() as f64
            ));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_mpi::NaiveFlavor;

    #[test]
    fn proposed_is_orders_of_magnitude_faster_than_naive_on_sparse() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(2048);
        let spectrum = latency(
            &platform,
            SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi),
            &w,
            HALO_MSGS,
        );
        let proposed = latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS);
        let speedup = spectrum.as_nanos() as f64 / proposed.as_nanos() as f64;
        assert!(
            speedup > 50.0,
            "sparse: expected a huge gap vs SpectrumMPI, got {speedup:.0}x"
        );
    }

    #[test]
    fn proposed_beats_mvapich_gdr() {
        let platform = Platform::lassen();
        for w in workloads() {
            let mvapich = latency(&platform, SchemeKind::Adaptive, &w, HALO_MSGS);
            let proposed = latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS);
            assert!(
                proposed < mvapich,
                "{}: proposed {proposed} should beat MVAPICH2-GDR {mvapich}",
                w.name
            );
        }
    }

    #[test]
    fn openmpi_and_spectrum_are_comparable() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(2048);
        let spectrum = latency(
            &platform,
            SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi),
            &w,
            HALO_MSGS,
        );
        let openmpi = latency(
            &platform,
            SchemeKind::NaiveCopy(NaiveFlavor::OpenMpi),
            &w,
            HALO_MSGS,
        );
        let ratio = spectrum.as_nanos() as f64 / openmpi.as_nanos() as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "the two naive libraries should be the same order: {ratio:.2}"
        );
    }
}
