//! Fig. 12: 3-D halo exchange (32 non-blocking ops per rank) across the
//! four application workloads on Lassen, sweeping the input size.

use crate::exec::{self, Cell};
use crate::figs::{gpu_driven_schemes, latency, tuned_fusion, HALO_MSGS};
use crate::table::{us, Table};
#[cfg(test)]
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_workloads::{
    milc::milc_su3_zdown,
    nas::nas_mg_y,
    specfem::{specfem3d_cm, specfem3d_oc},
    Workload,
};

/// The four panels of Figs. 12/13 with their size sweeps.
pub fn panels() -> Vec<(&'static str, Vec<(String, Workload)>)> {
    use crate::figs::sizes;
    let spec = |f: fn(u64) -> Workload| {
        sizes::SPECFEM
            .iter()
            .map(move |&p| (format!("{p}pt"), f(p)))
            .collect::<Vec<_>>()
    };
    vec![
        ("(a) specfem3D_oc (sparse)", spec(specfem3d_oc)),
        ("(b) specfem3D_cm (sparse)", spec(specfem3d_cm)),
        (
            "(c) MILC (dense, small)",
            sizes::MILC
                .iter()
                .map(|&l| (format!("L{l}"), milc_su3_zdown(l)))
                .collect(),
        ),
        (
            "(d) NAS_MG (dense, large)",
            sizes::NAS
                .iter()
                .map(|&n| (format!("{n}^2"), nas_mg_y(n)))
                .collect(),
        ),
    ]
}

/// Run the full figure on `platform`, labelled `fig_name`.
///
/// Every (panel, size) row is one sweep cell; the tuned-threshold grid
/// search stays sequential *inside* its row's cell, so the executor sees a
/// flat list of 24 equally-shaped jobs.
pub fn run_on(platform: &Platform, fig_name: &str) -> Vec<Table> {
    let schemes = gpu_driven_schemes();
    let experiment = if fig_name.contains("13") {
        "fig13"
    } else {
        "fig12"
    };

    let all_panels = panels();
    let mut cells: Vec<Cell<Vec<String>>> = Vec::new();
    for (panel, workloads) in &all_panels {
        for (label, w) in workloads {
            let platform = platform.clone();
            let schemes = schemes.clone();
            let label = label.clone();
            let w = w.clone();
            cells.push(Cell::new(format!("{panel}/{label}"), move || {
                let mut row = vec![label, format!("{}KB", w.packed_bytes() / 1024)];
                let (tuned, _threshold) = tuned_fusion(&platform, &w, HALO_MSGS);
                row.push(us(latency(&platform, tuned, &w, HALO_MSGS)));
                // Honour `reproduce --threshold` for the Proposed column.
                let mut schemes = schemes;
                schemes[0] = crate::figs::proposed(&platform, &w);
                for s in &schemes {
                    row.push(us(latency(&platform, s.clone(), &w, HALO_MSGS)));
                }
                row
            }));
        }
    }
    let mut rows = exec::sweep(experiment, cells).into_iter();

    let mut tables = Vec::new();
    for (panel, workloads) in &all_panels {
        let mut headers: Vec<String> = vec!["size".into(), "packed".into()];
        headers.push("Proposed-Tuned (us)".into());
        headers.extend(schemes.iter().map(|s| format!("{} (us)", s.label())));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            format!("{fig_name} {panel} on {} (lower is better)", platform.name),
            &headers_ref,
        );
        for _ in workloads {
            t.push_row(rows.next().expect("one row per workload cell"));
        }
        tables.push(t);
    }
    tables
}

pub fn run() -> Vec<Table> {
    run_on(&Platform::lassen(), "Fig. 12")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_panels_proposed_wins_on_lassen() {
        let platform = Platform::lassen();
        for w in [specfem3d_oc(4096), specfem3d_cm(4096)] {
            let fusion = latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS);
            let sync = latency(&platform, SchemeKind::GpuSync, &w, HALO_MSGS);
            let asyn = latency(&platform, SchemeKind::GpuAsync, &w, HALO_MSGS);
            let hybrid = latency(&platform, SchemeKind::CpuGpuHybrid, &w, HALO_MSGS);
            assert!(
                fusion < sync && fusion < asyn && fusion < hybrid,
                "{}",
                w.name
            );
            // The paper reports multi-x improvements on sparse layouts.
            assert!(
                sync.as_nanos() as f64 / fusion.as_nanos() as f64 > 3.0,
                "{}: expected >3x vs GPU-Sync",
                w.name
            );
        }
    }

    #[test]
    fn nas_large_proposed_beats_hybrid() {
        // Fig. 12(d): dense but large — the hybrid CPU path no longer
        // applies and the fused kernels win.
        let platform = Platform::lassen();
        let w = nas_mg_y(384);
        let fusion = latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS);
        let hybrid = latency(&platform, SchemeKind::CpuGpuHybrid, &w, HALO_MSGS);
        let sync = latency(&platform, SchemeKind::GpuSync, &w, HALO_MSGS);
        assert!(fusion < hybrid);
        assert!(fusion < sync);
    }

    #[test]
    fn tuned_is_no_worse_than_default() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(2048);
        let (tuned, _) = tuned_fusion(&platform, &w, HALO_MSGS);
        let t = latency(&platform, tuned, &w, HALO_MSGS);
        let d = latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS);
        assert!(t <= d, "tuned {t} must be <= default {d}");
    }
}
