//! `reproduce topo`: the Table II machine contrast at scale, on real
//! topologies.
//!
//! A 3-D halo exchange over an 8×8×8 torus (512 ranks, 128 nodes × 4
//! GPUs) runs on two machine models: a Lassen-like fat tree (dense NVLink
//! islands, NVLink-attached NICs, dual-rail EDR into leaf/spine) and an
//! ABCI-like dragonfly (PCIe-switched islands whose inter-node traffic
//! bounces through the shared host complex). The schemes are the paper's
//! proposed fused design, its adaptive variant, and the GPU-based
//! baseline. The qualitative Table II claim this recovers: fusion wins on
//! *both* machines, but its relative win is larger on the ABCI-like one,
//! whose costlier launches and host-bounce hops punish the per-block
//! baseline harder.

use crate::exec::{self, Cell};
use crate::table::{us, Table};
use fusedpack_mpi::SchemeKind;
use fusedpack_net::{Hierarchy, Platform, TopologyHandle};
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::{run_halo, HaloConfig, HaloGrid, HaloOutcome};
use std::sync::Arc;

/// Torus extent per dimension: 8×8×8 = 512 ranks.
pub const GRID: u32 = 8;

/// Buffers per neighbor per iteration (6 neighbors → 12 non-blocking
/// operations each way per rank per lap).
pub const N_MSGS: usize = 2;

/// specfem3D_cm boundary points per message. Sparse and small: tiny
/// scattered blocks keep per-block launch overhead (what fusion removes)
/// in front of wire time, which congested shared hops would otherwise
/// dominate at this scale.
pub const POINTS: u64 = 512;

/// One machine model: a platform's node/GPU parameters plus the fabric
/// those nodes hang off.
pub struct Machine {
    pub label: &'static str,
    pub platform: Platform,
    pub topology: TopologyHandle,
}

/// The two Table II machines, sized for the 512-rank torus.
pub fn machines() -> Vec<Machine> {
    let nodes = GRID * GRID * GRID / 4; // 4 GPUs per node on both
    vec![
        Machine {
            label: "Lassen-like",
            platform: Platform::lassen(),
            topology: Arc::new(Hierarchy::lassen_like(nodes)),
        },
        Machine {
            label: "ABCI-like",
            platform: Platform::abci(),
            topology: Arc::new(Hierarchy::abci_like(nodes)),
        },
    ]
}

/// The scheme column set: `(label, scheme)`.
pub fn schemes() -> Vec<(&'static str, SchemeKind)> {
    vec![
        ("Proposed", SchemeKind::fusion_default()),
        ("Proposed-Adaptive", SchemeKind::fusion_adaptive()),
        ("GPU-based", SchemeKind::GpuSync),
    ]
}

/// Run the 512-rank halo for one machine × scheme cell, on the
/// CLI-selected shard count.
pub fn measure(machine: &Machine, scheme: SchemeKind) -> HaloOutcome {
    run_halo(
        &HaloConfig::new(
            machine.platform.clone(),
            scheme,
            specfem3d_cm(POINTS),
            HaloGrid::new_3d(GRID, GRID, GRID),
            N_MSGS,
        )
        .with_topology(machine.topology.clone())
        .with_shards(super::shards()),
    )
}

pub fn run() -> Table {
    let mut t = Table::new(
        format!(
            "Topo: 3-D halo exchange, {}^3 torus ({} ranks), Lassen-like fat tree vs ABCI-like dragonfly",
            GRID,
            GRID * GRID * GRID
        ),
        &[
            "machine",
            "scheme",
            "latency (us)",
            "speedup",
            "busiest hop busy (us)",
            "hop bytes (MB)",
        ],
    )
    .with_note(
        "speedup is vs the GPU-based baseline on the same machine; the paper's Table II \
         contrast is the larger fused-design win on the ABCI-like machine",
    );

    let mut cells: Vec<Cell<HaloOutcome>> = Vec::new();
    for machine in machines() {
        let machine = Arc::new(machine);
        for (label, scheme) in schemes() {
            let machine = machine.clone();
            cells.push(Cell::new(format!("{}/{label}", machine.label), move || {
                measure(&machine, scheme)
            }));
        }
    }
    let outcomes = exec::sweep("topo", cells);

    let per_machine = schemes().len();
    for (mi, machine) in machines().iter().enumerate() {
        let rows = &outcomes[mi * per_machine..(mi + 1) * per_machine];
        let baseline = rows.last().expect("GPU-based row").latency;
        for ((label, _), out) in schemes().iter().zip(rows) {
            t.push_row(vec![
                machine.label.into(),
                (*label).into(),
                us(out.latency),
                format!(
                    "{:.1}x",
                    baseline.as_nanos() as f64 / out.latency.as_nanos().max(1) as f64
                ),
                us(out.busiest_hop_busy),
                format!("{:.1}", out.hop_bytes as f64 / 1.0e6),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table II qualitative contrast, end to end on the full 512-rank
    /// torus: fusion wins on both machines, and its relative win is
    /// larger on the ABCI-like machine.
    #[test]
    fn fusion_wins_on_both_machines_and_wins_bigger_on_abci() {
        let mut speedups = Vec::new();
        for machine in machines() {
            let fused = measure(&machine, SchemeKind::fusion_default());
            let gpu = measure(&machine, SchemeKind::GpuSync);
            assert!(
                fused.latency < gpu.latency,
                "{}: Proposed {} should beat GPU-based {}",
                machine.label,
                fused.latency,
                gpu.latency
            );
            assert_eq!(fused.ranks, 512);
            assert!(fused.hop_bytes > 0, "topology traffic accounted");
            speedups.push(gpu.latency.as_nanos() as f64 / fused.latency.as_nanos() as f64);
        }
        assert!(
            speedups[1] > speedups[0],
            "ABCI-like speedup {:.2}x should exceed Lassen-like {:.2}x",
            speedups[1],
            speedups[0]
        );
    }

    /// The report itself is deterministic across worker counts — the CI
    /// determinism job diffs `--jobs 1` vs `--jobs 4` output; this is the
    /// in-process version of that check.
    #[test]
    fn report_is_identical_across_jobs() {
        exec::set_jobs(1);
        let sequential = run();
        exec::set_jobs(4);
        let parallel = run();
        exec::set_jobs(0);
        let _ = exec::take_timings();
        assert_eq!(sequential.render(), parallel.render());
    }

    /// Sharding the event loop must not perturb a single digit of the
    /// report — the in-process version of the CI `--shards 1` vs
    /// `--shards 4` CSV diff.
    #[test]
    fn report_is_identical_across_shards() {
        super::super::set_shards(1);
        let single = run();
        super::super::set_shards(4);
        let sharded = run();
        super::super::set_shards(1);
        let _ = exec::take_timings();
        assert_eq!(single.render(), sharded.render());
        assert_eq!(single.to_csv(), sharded.to_csv());
    }
}
