//! Fig. 9: bulk non-contiguous inter-node transfer, sparse layout
//! (specfem3D_cm) on Lassen, sweeping the number of exchanged buffers.

use crate::exec::{self, Cell};
use crate::figs::{gpu_driven_schemes, latency, proposed};
use crate::table::{ratio, us, Table};
use fusedpack_net::Platform;
use fusedpack_workloads::specfem::specfem3d_cm;

/// Buffer counts of the paper's sweep.
pub const BUFFER_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

/// Boundary points per message (sparse, thousands of blocks).
pub const POINTS: u64 = 2000;

pub fn run() -> Table {
    let mut schemes = gpu_driven_schemes();
    // Honour `reproduce --threshold` for the Proposed column.
    schemes[0] = proposed(&Platform::lassen(), &specfem3d_cm(POINTS));

    let mut headers: Vec<String> = vec!["#buffers".into()];
    headers.extend(schemes.iter().map(|s| format!("{} (us)", s.label())));
    headers.push("best-base/Proposed".into());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut t = Table::new(
        "Fig. 9: bulk sparse exchange (specfem3D_cm, Lassen; lower is better)",
        &headers_ref,
    )
    .with_note("paper: Proposed beats every baseline at every buffer count, up to ~5.9x");

    // One cell per (buffer count, scheme), row-major by buffer count.
    let mut cells = Vec::new();
    for &n in BUFFER_COUNTS {
        for s in &schemes {
            let scheme = s.clone();
            cells.push(Cell::new(format!("n{}/{}", n, s.label()), move || {
                let platform = Platform::lassen();
                let w = specfem3d_cm(POINTS);
                latency(&platform, scheme, &w, n)
            }));
        }
    }
    let all = exec::sweep("fig9", cells);

    for (lats, &n) in all.chunks(schemes.len()).zip(BUFFER_COUNTS) {
        let mut row = vec![n.to_string()];
        row.extend(lats.iter().map(|&l| us(l)));
        let best_baseline = lats[1..].iter().copied().min().expect("baselines");
        row.push(ratio(best_baseline, lats[0]));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_wins_at_every_buffer_count() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(POINTS);
        for &n in BUFFER_COUNTS {
            let schemes = gpu_driven_schemes();
            let lats: Vec<_> = schemes
                .iter()
                .map(|s| latency(&platform, s.clone(), &w, n))
                .collect();
            let proposed = lats[0];
            for (s, &l) in schemes.iter().zip(&lats).skip(1) {
                assert!(
                    proposed < l,
                    "n={n}: Proposed {proposed} should beat {} {l}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn speedup_grows_with_bulk() {
        // More buffers -> more launches amortized -> bigger win.
        let platform = Platform::lassen();
        let w = specfem3d_cm(POINTS);
        let schemes = gpu_driven_schemes();
        let speedup = |n: usize| {
            let f = latency(&platform, schemes[0].clone(), &w, n);
            let s = latency(&platform, schemes[1].clone(), &w, n);
            s.as_nanos() as f64 / f.as_nanos() as f64
        };
        assert!(speedup(16) > speedup(1));
        assert!(speedup(16) > 2.0, "bulk speedup should be substantial");
    }
}
