//! `reproduce serve`: sustained-load serving through a long-lived cluster.
//!
//! Unlike the figure harnesses (a handful of laps each), this experiment
//! replays hundreds of thousands of exchange requests through one
//! long-lived two-rank cluster per cell and reports what only steady
//! state reveals: sustained throughput, the p50/p99/p999 tail of the
//! per-batch service latency, and allocator churn (the wire-message and
//! event-slab occupancy high-water marks, which must not scale with run
//! length). The grid crosses the proposed fused scheme against the
//! GPU-based baseline at three deterministic arrival rates; every cell is
//! virtual-time deterministic, so the table is byte-identical across
//! `--jobs` counts — the CI smoke job diffs `--jobs 1` vs `--jobs 4`.

use crate::exec::{self, Cell};
use crate::table::{us, Table};
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_workloads::specfem::specfem3d_oc;
use fusedpack_workloads::{run_serve, ServeConfig, ServeOutcome};

/// specfem3D_oc boundary points per request — sparse, the regime where
/// fusion's launch-overhead savings dominate.
pub const POINTS: u64 = 512;

/// Requests per rank per batch (paper's §V-C stress width).
pub const BATCH: usize = 16;

/// Deterministic request-size mix, cycled batch by batch: element-count
/// multipliers over the nominal message (mostly 1x with 2x and 4x
/// excursions), so the latency distribution has a real tail and the
/// staging pool sees varied capacities.
pub const SIZE_MIX: [u64; 8] = [1, 1, 2, 1, 1, 4, 1, 2];

/// The scheme rows: `(label, scheme)`.
pub fn schemes() -> Vec<(&'static str, SchemeKind)> {
    vec![
        ("Proposed", SchemeKind::fusion_default()),
        ("GPU-based", SchemeKind::GpuSync),
    ]
}

/// The arrival-rate columns: `(label, think-time ns before each batch)`.
/// 0 = saturating back-to-back load; the others pace request arrivals.
pub fn gaps() -> Vec<(&'static str, u64)> {
    vec![("saturating", 0), ("2us", 2_000), ("20us", 20_000)]
}

/// Run one (scheme, gap) cell with the CLI-selected request count and
/// shard count.
pub fn measure(scheme: SchemeKind, gap_ns: u64, requests: u64) -> ServeOutcome {
    run_serve(
        &ServeConfig::new(Platform::lassen(), scheme, specfem3d_oc(POINTS), requests)
            .with_gap_ns(gap_ns)
            .with_size_mix(SIZE_MIX.to_vec())
            .with_shards(super::shards()),
    )
}

/// The main service table plus the queue-health companion. The main table
/// reports only virtual-time results, so it is byte-identical across
/// `--jobs` *and* `--shards`; the queue-health peaks describe the process
/// that ran the simulation (per-shard slabs sum/max differently than one
/// global queue), so they live in their own non-diffed table.
pub fn run() -> Vec<Table> {
    let requests = super::serve_requests();
    let mut t = Table::new(
        format!(
            "Serve: sustained load, {requests} requests through a long-lived cluster \
             (specfem3D_oc x{POINTS}, {BATCH}/batch each way, Lassen)"
        ),
        &[
            "scheme",
            "arrival gap",
            "throughput (req/s)",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "max (us)",
        ],
    )
    .with_note(
        "latency percentiles are per-batch service time (think time excluded); \
         byte-identical across --jobs and --shards",
    );
    let mut health = Table::new(
        format!("Serve queue health: in-flight high-water marks ({requests} requests)"),
        &[
            "scheme",
            "arrival gap",
            "wire peak",
            "event-slab peak",
            "overflow hits",
        ],
    )
    .with_note(
        "host-process diagnostics: peaks must not scale with request count, but their \
         exact values depend on the --shards decomposition (excluded from the CI diff)",
    );

    let mut cache = Table::new(
        format!("Serve layout cache: compile-once amortization ({requests} requests)"),
        &[
            "scheme",
            "arrival gap",
            "hits",
            "misses",
            "evictions",
            "hit rate (%)",
            "resident (B)",
        ],
    )
    .with_note(
        "acquire counters of the sharded layout cache, merged over ranks; \
         cost-free in virtual time and byte-identical across --jobs and --shards",
    );

    let mut cells: Vec<Cell<ServeOutcome>> = Vec::new();
    for (slabel, scheme) in schemes() {
        for (glabel, gap) in gaps() {
            let scheme = scheme.clone();
            cells.push(Cell::new(format!("{slabel}/{glabel}"), move || {
                measure(scheme, gap, requests)
            }));
        }
    }
    let outcomes = exec::sweep("serve", cells);

    let per_scheme = gaps().len();
    for (si, (slabel, _)) in schemes().iter().enumerate() {
        for ((glabel, _), out) in gaps().iter().zip(&outcomes[si * per_scheme..]) {
            t.push_row(vec![
                (*slabel).into(),
                (*glabel).into(),
                format!("{:.0}", out.throughput_rps),
                us(out.p50),
                us(out.p99),
                us(out.p999),
                us(out.max),
            ]);
            health.push_row(vec![
                (*slabel).into(),
                (*glabel).into(),
                out.wire_high_water.to_string(),
                out.wheel.slab_high_water.to_string(),
                out.wheel.overflow_hits.to_string(),
            ]);
            let lc = &out.layout_cache;
            cache.push_row(vec![
                (*slabel).into(),
                (*glabel).into(),
                lc.hits().to_string(),
                lc.misses().to_string(),
                lc.evictions().to_string(),
                format!("{:.3}", lc.hit_rate() * 100.0),
                lc.resident_bytes().to_string(),
            ]);
        }
    }
    vec![t, health, cache]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-request in-process version of the CI smoke job: the rendered
    /// report (both tables) is identical across worker counts.
    #[test]
    fn report_is_identical_across_jobs() {
        super::super::set_serve_requests(2_000);
        exec::set_jobs(1);
        let sequential = run();
        exec::set_jobs(4);
        let parallel = run();
        exec::set_jobs(0);
        let _ = exec::take_timings();
        super::super::set_serve_requests(super::super::SERVE_REQUESTS_DEFAULT);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.render(), b.render());
        }
    }

    /// The main service table is byte-identical across shard counts —
    /// the in-process version of the CI `--shards 1` vs `--shards 4`
    /// CSV diff (the queue-health companion is deliberately excluded:
    /// its peaks describe the host process, not the simulation).
    #[test]
    fn report_is_identical_across_shards() {
        super::super::set_serve_requests(2_000);
        super::super::set_shards(1);
        let single = run();
        super::super::set_shards(4);
        let sharded = run();
        super::super::set_shards(1);
        let _ = exec::take_timings();
        super::super::set_serve_requests(super::super::SERVE_REQUESTS_DEFAULT);
        assert_eq!(single[0].render(), sharded[0].render());
        assert_eq!(single[0].to_csv(), sharded[0].to_csv());
        // The layout-cache table is pure merged-counter bookkeeping, so it
        // too must be byte-identical at any shard decomposition.
        assert_eq!(single[2].render(), sharded[2].render());
        assert_eq!(single[2].to_csv(), sharded[2].to_csv());
    }

    /// Steady state amortizes layout compilation: the cache table's hit
    /// rate is ≥ 99% once warmup's single compile per rank is behind it.
    #[test]
    fn layout_cache_hit_rate_exceeds_99_percent() {
        let out = measure(SchemeKind::fusion_default(), 0, 2_000);
        assert!(
            out.layout_cache.hit_rate() >= 0.99,
            "hit rate {}",
            out.layout_cache.hit_rate()
        );
        assert_eq!(out.layout_cache.evictions(), 0);
    }

    /// Fusion's throughput advantage survives sustained load.
    #[test]
    fn fusion_sustains_higher_throughput_when_saturated() {
        let fused = measure(SchemeKind::fusion_default(), 0, 2_000);
        let gpu = measure(SchemeKind::GpuSync, 0, 2_000);
        assert!(
            fused.throughput_rps > gpu.throughput_rps,
            "fused {:.0} req/s should beat GPU-based {:.0} req/s",
            fused.throughput_rps,
            gpu.throughput_rps
        );
        assert!(fused.p99 < gpu.p99);
    }

    /// The size mix gives the latency distribution a real spread: the big
    /// 2048-point batches must show up above the median.
    #[test]
    fn mixed_sizes_produce_a_latency_tail() {
        let out = measure(SchemeKind::fusion_default(), 0, 4_000);
        assert!(
            out.p999 > out.p50,
            "mixed sizes should spread the tail: p50 {} vs p999 {}",
            out.p50,
            out.p999
        );
        assert!(out.max >= out.p999);
    }
}
