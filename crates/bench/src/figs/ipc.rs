//! Extension experiment: fused DirectIPC for intra-node transfers.
//!
//! The paper lists *DirectIPC* as the third operation kind its fused
//! kernels support (§IV-A1, following the zero-copy scheme of \[24\]) but
//! evaluates only inter-node transfers. This experiment measures what the
//! fused zero-copy path buys inside a node: two ranks on one Lassen node
//! exchanging bulk non-contiguous buffers over NVLink, with DirectIPC
//! fusion on vs. off (staged pack→NVLink→unpack) vs. the baselines.

use crate::exec::{self, Cell};
use crate::table::{ratio, us, Table};
use fusedpack_core::FusionConfig;
use fusedpack_gpu::DataMode;
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{AppOp, ClusterBuilder, Program, RankId, SchemeKind, TypeSlot};
use fusedpack_net::Platform;
use fusedpack_sim::Duration;
use fusedpack_workloads::{specfem::specfem3d_cm, Workload};

/// Latency of an intra-node bulk exchange under `scheme`.
pub fn intra_node_latency(scheme: SchemeKind, workload: &Workload, n_msgs: usize) -> Duration {
    let len = workload.footprint().max(1);
    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let sbufs: Vec<_> = (0..n_msgs)
            .map(|i| p.buffer(len, BufInit::Random(seed + i as u64)))
            .collect();
        let rbufs: Vec<_> = (0..n_msgs).map(|_| p.buffer(len, BufInit::Zero)).collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: workload.desc.clone(),
        });
        for lap in 0..2 {
            let _ = lap;
            p.push(AppOp::ResetTimer);
            for (i, &b) in rbufs.iter().enumerate() {
                p.push(AppOp::Irecv {
                    buf: b,
                    ty: TypeSlot(0),
                    count: workload.count,
                    src: peer,
                    tag: i as u32,
                });
            }
            for (i, &b) in sbufs.iter().enumerate() {
                p.push(AppOp::Isend {
                    buf: b,
                    ty: TypeSlot(0),
                    count: workload.count,
                    dst: peer,
                    tag: i as u32,
                });
            }
            p.push(AppOp::Waitall);
            p.push(AppOp::RecordLap);
        }
        p
    };
    let mut cluster = ClusterBuilder::new(Platform::lassen(), scheme)
        .data_mode(DataMode::ModelOnly)
        .add_rank(0, build(11, RankId(1)))
        .add_rank(0, build(22, RankId(0))) // same node!
        .build();
    let report = cluster.run();
    report.lap_makespan(1)
}

pub fn run() -> Table {
    let mut t = Table::new(
        "Extension: fused DirectIPC for intra-node transfers (specfem3D_cm x16, one Lassen node)",
        &["scheme", "latency (us)", "vs DirectIPC"],
    )
    .with_note("DirectIPC fuses zero-copy NVLink loads — no pack, no staging, no unpack");

    let w = specfem3d_cm(2000);
    let registry = fusedpack_mpi::SchemeRegistry::global();
    let staged_fusion = SchemeKind::Fusion(FusionConfig {
        enable_direct_ipc: false,
        ..FusionConfig::default()
    });
    let schemes: Vec<(&str, SchemeKind)> = vec![
        ("Proposed (DirectIPC)", registry.create("proposed")),
        ("Proposed (staged)", staged_fusion),
        ("GPU-Sync", registry.create("gpu-sync")),
        ("CPU-GPU-Hybrid", registry.create("cpu-gpu-hybrid")),
    ];
    // One cell per scheme; the first row *is* the DirectIPC baseline, so
    // normalization uses the reassembled list's first entry.
    let cells: Vec<_> = schemes
        .iter()
        .map(|(label, scheme)| {
            let scheme = scheme.clone();
            let w = w.clone();
            Cell::new(*label, move || intra_node_latency(scheme, &w, 16))
        })
        .collect();
    let lats = exec::sweep("ipc", cells);
    let base = lats[0];
    for ((label, _), &lat) in schemes.iter().zip(&lats) {
        t.push_row(vec![(*label).into(), us(lat), ratio(lat, base)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_ipc_is_the_fastest_intra_node_path() {
        let w = specfem3d_cm(1500);
        let ipc = intra_node_latency(SchemeKind::fusion_default(), &w, 8);
        let staged = intra_node_latency(
            SchemeKind::Fusion(FusionConfig {
                enable_direct_ipc: false,
                ..FusionConfig::default()
            }),
            &w,
            8,
        );
        let sync = intra_node_latency(SchemeKind::GpuSync, &w, 8);
        assert!(ipc < staged, "ipc {ipc} vs staged {staged}");
        assert!(staged < sync, "staged {staged} vs sync {sync}");
    }
}
