//! Fig. 13: the Fig. 12 experiment on ABCI (PCIe host link, slower
//! GPUDirect path).
//!
//! The platform change flips two results: the hybrid CPU path loses its
//! dense-small advantage (PCIe BAR reads), so the proposed design wins
//! *every* workload; and GPU-Async edges out GPU-Sync on dense layouts
//! because the slower wire leaves more room for overlap.

#[cfg(test)]
use crate::figs::{latency, HALO_MSGS};
use crate::table::Table;
#[cfg(test)]
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;

pub fn run() -> Vec<Table> {
    super::fig12::run_on(&Platform::abci(), "Fig. 13")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_workloads::{milc::milc_su3_zdown, nas::nas_mg_y, specfem::specfem3d_cm};

    #[test]
    fn proposed_wins_every_workload_on_abci() {
        // Including dense-small MILC, where hybrid won on Lassen: PCIe BAR
        // reads kill the CPU path.
        let platform = Platform::abci();
        for w in [
            specfem3d_cm(4096),
            milc_su3_zdown(4),
            milc_su3_zdown(8),
            nas_mg_y(256),
        ] {
            let fusion = latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS);
            for s in [
                SchemeKind::GpuSync,
                SchemeKind::GpuAsync,
                SchemeKind::CpuGpuHybrid,
            ] {
                let l = latency(&platform, s.clone(), &w, HALO_MSGS);
                assert!(
                    fusion < l,
                    "{} on ABCI: Proposed {fusion} should beat {} {l}",
                    w.name,
                    s.label()
                );
            }
        }
    }

    #[test]
    fn abci_speedups_exceed_lassen_speedups_on_sparse() {
        // The paper reports *up to* 19x on ABCI vs 8.5x on Lassen: the
        // costlier x86 launches/syncs widen the gap. Compare the maxima
        // over the size sweep, as the paper's "up to" claims do.
        let max_speedup = |p: &Platform| {
            [512u64, 1024, 2048, 4096]
                .iter()
                .map(|&pts| {
                    let w = specfem3d_cm(pts);
                    let f = latency(p, SchemeKind::fusion_default(), &w, HALO_MSGS);
                    let s = latency(p, SchemeKind::GpuSync, &w, HALO_MSGS);
                    s.as_nanos() as f64 / f.as_nanos() as f64
                })
                .fold(0.0f64, f64::max)
        };
        let lassen = max_speedup(&Platform::lassen());
        let abci = max_speedup(&Platform::abci());
        assert!(
            abci > lassen,
            "max ABCI speedup {abci:.1}x should exceed Lassen {lassen:.1}x"
        );
    }

    #[test]
    fn gpu_async_beats_sync_on_abci_dense() {
        // Figs. 13(c)/(d): the slower PCIe-bound wire gives the async
        // kernels something to overlap with.
        let platform = Platform::abci();
        let w = nas_mg_y(384);
        let sync = latency(&platform, SchemeKind::GpuSync, &w, HALO_MSGS);
        let asyn = latency(&platform, SchemeKind::GpuAsync, &w, HALO_MSGS);
        assert!(
            asyn < sync,
            "async {asyn} should slightly beat sync {sync} on ABCI dense"
        );
    }
}
