//! §III / Fig. 4: the three ways to move non-contiguous GPU data.
//!
//! Reproduces the paper's analysis of existing solutions as a measured
//! table: MPI-level explicit pack/unpack (Algorithm 1, one blocking sync
//! per call), application-level packing (Algorithm 2, one sync per
//! direction), and MPI-level implicit datatypes (Algorithm 3) under both a
//! GPU-Sync runtime and the proposed fusion runtime.

use crate::exec::{self, Cell};
use crate::table::{us, Table};
use fusedpack_gpu::DataMode;
use fusedpack_mpi::{ClusterBuilder, Program, SchemeKind};
use fusedpack_net::Platform;
use fusedpack_sim::Duration;
use fusedpack_workloads::approaches::{algorithm1_programs, algorithm2_programs};
use fusedpack_workloads::{bulk::bulk_exchange_programs, specfem::specfem3d_cm, Workload};

pub const N_MSGS: usize = 16;

fn run_pair(p0: Program, p1: Program, scheme: SchemeKind) -> Duration {
    let mut cluster = ClusterBuilder::new(Platform::lassen(), scheme)
        .data_mode(DataMode::ModelOnly)
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    cluster.run().lap_makespan(0)
}

/// Measure all four rows for one workload, one sweep cell per algorithm.
pub fn measure(workload: &Workload) -> Vec<(&'static str, Duration)> {
    let (a1p0, a1p1, _) = algorithm1_programs(workload, N_MSGS, 3);
    let (a2p0, a2p1, _) = algorithm2_programs(workload, N_MSGS, 3);
    let ((i0, _), (i1, _)) = bulk_exchange_programs(workload, N_MSGS, 1, 3);
    let ((f0, _), (f1, _)) = bulk_exchange_programs(workload, N_MSGS, 1, 3);
    let rows: Vec<(&'static str, Program, Program, SchemeKind)> = vec![
        ("Alg.1 MPI explicit pack", a1p0, a1p1, SchemeKind::GpuSync),
        ("Alg.2 application kernels", a2p0, a2p1, SchemeKind::GpuSync),
        ("Alg.3 implicit (GPU-Sync)", i0, i1, SchemeKind::GpuSync),
        (
            "Alg.3 implicit (Proposed)",
            f0,
            f1,
            SchemeKind::fusion_default(),
        ),
    ];
    let labels: Vec<&'static str> = rows.iter().map(|(l, ..)| *l).collect();
    let cells: Vec<_> = rows
        .into_iter()
        .map(|(label, p0, p1, scheme)| Cell::new(label, move || run_pair(p0, p1, scheme)))
        .collect();
    labels
        .into_iter()
        .zip(exec::sweep("approaches", cells))
        .collect()
}

pub fn run() -> Table {
    let mut t = Table::new(
        "SIII / Fig. 4: three approaches to non-contiguous transfer (specfem3D_cm x16, Lassen)",
        &["approach", "latency (us)", "syncs per iteration"],
    )
    .with_note("Alg.1 syncs per MPI_Pack/Unpack; Alg.2 syncs once per direction; Alg.3 lets the runtime schedule");

    let w = specfem3d_cm(2000);
    let syncs = [
        "32 (one per call)",
        "2",
        "32 (runtime)",
        "0 (fused polling)",
    ];
    for ((name, lat), s) in measure(&w).into_iter().zip(syncs) {
        t.push_row(vec![name.into(), us(lat), s.into()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_papers_analysis() {
        let rows = measure(&specfem3d_cm(2000));
        let (a1, a2, a3_sync, a3_fused) = (rows[0].1, rows[1].1, rows[2].1, rows[3].1);
        assert!(a2 < a1, "one sync ({a2}) beats per-call syncs ({a1})");
        assert!(
            a3_fused < a2,
            "fusion ({a3_fused}) beats application-level packing ({a2})"
        );
        assert!(
            a3_fused.as_nanos() * 2 < a3_sync.as_nanos(),
            "fusion ({a3_fused}) transforms the implicit path ({a3_sync})"
        );
    }
}
