//! Ablations of the design choices DESIGN.md §5 calls out.
//!
//! 1. **Launch-cost sensitivity** — rerun the Fig. 9 headline with the
//!    kernel-launch overhead forced to zero: fusion's advantage should
//!    collapse, confirming that launch amortization (not some other
//!    artifact) is what the scheme buys.
//! 2. **Flush-rule extremes** — threshold → 0 (launch per request,
//!    degenerate to GPU-Async-like behaviour) and → ∞ (flush only at the
//!    sync point): both ends lose to the tuned middle, the Fig. 8 U-shape
//!    stated as an A/B.
//! 3. **Layout cache** — compare the per-operation datatype cost models.
//! 4. **Fused-kernel block partitioning** — uniform vs. work-proportional
//!    vs. cost-guided splits of the thread-block budget across a batch,
//!    on shapes from balanced to pathologically skewed.

use crate::exec::{self, Cell};
use crate::figs::{latency, HALO_MSGS};
use crate::table::{ratio, us, Table};
use fusedpack_gpu::{FusedWork, PartitionPolicy, SegmentStats};
use fusedpack_mpi::SchemeKind;
use fusedpack_net::Platform;
use fusedpack_sim::Duration;
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::{run_exchange, ExchangeConfig};

/// A Lassen variant with free kernel launches.
pub fn lassen_zero_launch() -> Platform {
    let mut p = Platform::lassen();
    p.arch.launch_cpu = Duration::ZERO;
    p.arch.launch_gpu_delay = Duration::ZERO;
    p
}

pub fn run() -> Vec<Table> {
    let w = specfem3d_cm(2000);

    // Ablation 1: launch cost.
    let mut t1 = Table::new(
        "Ablation: kernel-launch overhead sensitivity (specfem3D_cm x16)",
        &["platform", "Proposed (us)", "GPU-Sync (us)", "speedup"],
    )
    .with_note("with free launches, fusing kernels buys almost nothing");
    // One cell per (platform, scheme): 4 independent simulations.
    let mut t1_cells = Vec::new();
    let t1_platforms = [
        ("Lassen", Platform::lassen()),
        ("Lassen (zero launch cost)", lassen_zero_launch()),
    ];
    for (name, platform) in &t1_platforms {
        for scheme in [SchemeKind::fusion_default(), SchemeKind::GpuSync] {
            let platform = platform.clone();
            let w = w.clone();
            t1_cells.push(Cell::new(format!("{name}/{}", scheme.label()), move || {
                latency(&platform, scheme, &w, HALO_MSGS)
            }));
        }
    }
    let t1_lats = exec::sweep("ablation", t1_cells);
    for (pair, (name, _)) in t1_lats.chunks(2).zip(&t1_platforms) {
        let (f, s) = (pair[0], pair[1]);
        t1.push_row(vec![(*name).into(), us(f), us(s), ratio(s, f)]);
    }

    // Ablation 2: flush-rule extremes, with the scheduler's fused-batch
    // size statistics alongside the latency they produce.
    let mut t2 = Table::new(
        "Ablation: flush-rule extremes (specfem3D_cm x16, Lassen)",
        &[
            "threshold",
            "latency (us)",
            "batch min",
            "batch mean",
            "batch max",
        ],
    )
    .with_note("threshold 0 = launch per request; 'inf' = flush only at Waitall");
    // One cell per flush-rule extreme.
    let t2_points = [
        ("0 (per-request)", 1u64),
        ("512KB (default)", 512 * 1024),
        ("inf (sync-point only)", u64::MAX),
    ];
    let t2_cells: Vec<_> = t2_points
        .iter()
        .map(|&(label, threshold)| {
            let w = w.clone();
            Cell::new(format!("flush/{label}"), move || {
                run_exchange(&ExchangeConfig::new(
                    Platform::lassen(),
                    SchemeKind::fusion_with_threshold(threshold),
                    w,
                    HALO_MSGS,
                ))
            })
        })
        .collect();
    for (out, (label, _)) in exec::sweep("ablation", t2_cells).iter().zip(&t2_points) {
        let stats = out
            .sched
            .as_ref()
            .expect("fusion scheme always has sched stats");
        t2.push_row(vec![
            (*label).into(),
            us(out.latency),
            format!("{}", stats.batch_min),
            format!("{:.2}", stats.batch_mean()),
            format!("{}", stats.batch_max),
        ]);
    }

    // Ablation 3: datatype-processing cost models.
    let mut t3 = Table::new(
        "Ablation: layout handling cost per operation (4000-block type)",
        &["path", "CPU cost"],
    );
    use fusedpack_datatype::cache::{flatten_cost, lookup_cost, parse_cost};
    t3.push_row(vec![
        "first commit (flatten)".into(),
        format!("{}", flatten_cost(4000)),
    ]);
    t3.push_row(vec![
        "cached lookup (hybrid/proposed)".into(),
        format!("{}", lookup_cost()),
    ]);
    t3.push_row(vec![
        "per-op parse (GPU-Sync/Async)".into(),
        format!("{}", parse_cost(4000)),
    ]);

    // Ablation 4: fused-kernel block-partitioning policies (pure cost
    // model, no cluster in the loop).
    let mut t4 = Table::new(
        "Ablation: fused-kernel block partitioning (V100 cost model)",
        &[
            "batch shape",
            "uniform (us)",
            "weighted (us)",
            "cost-guided (us)",
            "guided/uniform",
        ],
    )
    .with_note(
        "uniform starves skewed batches; work-proportional over-serves sparse requests; \
         cost-guided evaluates both plus a time-demand split and keeps the fastest",
    );
    let arch = fusedpack_gpu::GpuArch::v100();
    for (label, works) in partition_shapes() {
        let time = |policy| fusedpack_gpu::fused::fused_timing_policy(&arch, &works, policy).total;
        let uniform = time(PartitionPolicy::Uniform);
        let weighted = time(PartitionPolicy::WeightedByWork);
        let guided = time(PartitionPolicy::CostGuided);
        t4.push_row(vec![
            label.into(),
            us(uniform),
            us(weighted),
            us(guided),
            ratio(uniform, guided),
        ]);
    }

    vec![t1, t2, t3, t4]
}

/// Batch shapes for the partitioning ablation, from balanced to skewed.
pub fn partition_shapes() -> Vec<(&'static str, Vec<FusedWork>)> {
    let work = |bytes: u64, blocks: u64| FusedWork {
        stats: SegmentStats::new(bytes, blocks),
        bw_cap: None,
    };
    vec![
        (
            "8x balanced small (64KB/128blk)",
            (0..8).map(|_| work(64 * 1024, 128)).collect(),
        ),
        (
            "1MB dense + 3x sparse (4KB/170blk)",
            std::iter::once(work(1024 * 1024, 4))
                .chain((0..3).map(|_| work(4096, 170)))
                .collect(),
        ),
        (
            "2x 8MB dense + 6x 32KB",
            (0..2)
                .map(|_| work(8 * 1024 * 1024, 1024))
                .chain((0..6).map(|_| work(32 * 1024, 64)))
                .collect(),
        ),
        (
            "64MB hog + 24x tiny (1KB/8blk)",
            std::iter::once(work(64 * 1024 * 1024, 16384))
                .chain((0..24).map(|_| work(1024, 8)))
                .collect(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_advantage_collapses_without_launch_cost() {
        let w = specfem3d_cm(2000);
        let speedup = |p: &Platform| {
            let f = latency(p, SchemeKind::fusion_default(), &w, HALO_MSGS);
            let s = latency(p, SchemeKind::GpuSync, &w, HALO_MSGS);
            s.as_nanos() as f64 / f.as_nanos() as f64
        };
        let with_launch = speedup(&Platform::lassen());
        let without = speedup(&lassen_zero_launch());
        assert!(
            without < with_launch * 0.75,
            "zero-launch speedup {without:.2}x should be well below {with_launch:.2}x"
        );
    }

    #[test]
    fn cost_guided_never_slower_on_ablation_shapes() {
        // The tentpole guarantee: on every ablation shape the cost-guided
        // partition is at least as fast as BOTH the uniform split and the
        // legacy work-proportional split.
        let arch = fusedpack_gpu::GpuArch::v100();
        for (label, works) in partition_shapes() {
            let time =
                |policy| fusedpack_gpu::fused::fused_timing_policy(&arch, &works, policy).total;
            let uniform = time(PartitionPolicy::Uniform);
            let weighted = time(PartitionPolicy::WeightedByWork);
            let guided = time(PartitionPolicy::CostGuided);
            assert!(
                guided <= uniform,
                "{label}: guided {guided} vs uniform {uniform}"
            );
            assert!(
                guided <= weighted,
                "{label}: guided {guided} vs weighted {weighted}"
            );
        }
    }

    #[test]
    fn default_threshold_beats_both_extremes() {
        let platform = Platform::lassen();
        let w = specfem3d_cm(2000);
        let run = |t: u64| {
            latency(
                &platform,
                SchemeKind::fusion_with_threshold(t),
                &w,
                HALO_MSGS,
            )
        };
        let per_request = run(1);
        let default = run(512 * 1024);
        assert!(
            default <= per_request,
            "{default} vs per-request {per_request}"
        );
    }
}
