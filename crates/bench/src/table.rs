//! Plain-text and CSV table rendering for the reproduction harness.

use std::fmt::Write as _;

/// A rendered experiment result: a titled grid of cells.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub note: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            note: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as an aligned monospace table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        if !self.note.is_empty() {
            let _ = writeln!(out, "   {}", self.note);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// File-system-friendly name derived from the title.
    pub fn slug(&self) -> String {
        self.title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }
}

/// Format a duration in microseconds with sensible precision.
pub fn us(d: fusedpack_sim::Duration) -> String {
    let v = d.as_micros_f64();
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio like "5.9x".
pub fn ratio(a: fusedpack_sim::Duration, b: fusedpack_sim::Duration) -> String {
    if b.is_zero() {
        return "-".into();
    }
    format!("{:.1}x", a.as_nanos() as f64 / b.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_sim::Duration;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows (+title)
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["x"]);
        t.push_row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn slug_is_filesystem_friendly() {
        let t = Table::new("Fig. 9: bulk (sparse)", &["x"]);
        assert_eq!(t.slug(), "fig_9_bulk_sparse");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(us(Duration::from_nanos(12_340)), "12.34");
        assert_eq!(us(Duration::from_micros(250)), "250.0");
        assert_eq!(us(Duration::from_millis(3)), "3000");
        assert_eq!(
            ratio(Duration::from_micros(59), Duration::from_micros(10)),
            "5.9x"
        );
    }
}
