//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [EXPERIMENT...] [--csv DIR] [--trace-out FILE]
//!
//! EXPERIMENT:       table2 fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!                   ablation ipc approaches (default: all)
//! --csv DIR:        additionally write one CSV per table into DIR
//! --trace-out FILE: run the Fig. 11 fusion cell with the typed-event
//!                   recorder, write a Chrome Trace Event JSON (load in
//!                   Perfetto / chrome://tracing), print the metrics
//!                   summary, and reconcile the timeline against the
//!                   mpi::breakdown ledger. With no EXPERIMENT given,
//!                   only the trace runs.
//! ```

use fusedpack_bench::{run_experiment, EXPERIMENTS};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                }));
            }
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a file path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: reproduce [EXPERIMENT...] [--csv DIR] [--trace-out FILE]");
                println!("experiments: {}", EXPERIMENTS.join(" "));
                return;
            }
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name => {
                if !EXPERIMENTS.contains(&name) {
                    eprintln!(
                        "unknown experiment {name:?}; known: {}",
                        EXPERIMENTS.join(" ")
                    );
                    std::process::exit(2);
                }
                selected.push(name.to_string());
            }
        }
    }

    if let Some(path) = &trace_out {
        write_trace(path);
        if selected.is_empty() {
            return;
        }
    }
    if selected.is_empty() {
        selected.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for name in &selected {
        let start = std::time::Instant::now();
        let tables = run_experiment(name);
        for table in &tables {
            let _ = writeln!(out, "{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", table.slug());
                std::fs::write(&path, table.to_csv()).expect("write csv");
                let _ = writeln!(out, "   [csv: {path}]");
            }
        }
        let _ = writeln!(
            out,
            "   ({name} regenerated in {:.2}s)\n",
            start.elapsed().as_secs_f64()
        );
    }
}

/// Run the Fig. 11 fusion cell traced, export the Chrome trace, and
/// cross-check the timeline's bucket totals against `mpi::breakdown`.
fn write_trace(path: &str) {
    use fusedpack_bench::figs::fig11;
    use fusedpack_sim::Duration;
    use fusedpack_telemetry::{chrome, reconcile, MetricsSummary};

    let start = std::time::Instant::now();
    let (telemetry, breakdowns) = fig11::traced_run();
    let snap = telemetry.snapshot();

    if let Err(e) = std::fs::write(path, chrome::export(&snap)) {
        eprintln!("cannot write trace to {path:?}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path}: {} events ({} dropped) from the Fig. 11 fusion cell \
         (MILC su3_zdown x{}, ABCI) in {:.2}s",
        snap.events.len(),
        snap.dropped,
        fig11::N_MSGS,
        start.elapsed().as_secs_f64()
    );
    println!("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing\n");

    println!("{}", MetricsSummary::from_snapshot(&snap).render());

    let external: Vec<(u32, [Duration; 5])> = breakdowns
        .iter()
        .enumerate()
        .map(|(r, b)| (r as u32, b.values()))
        .collect();
    let report = reconcile(&snap, &external, Duration::ZERO);
    println!("{}", report.render());
    if !report.is_ok() {
        eprintln!("trace does not reconcile with mpi::breakdown");
        std::process::exit(1);
    }
}
