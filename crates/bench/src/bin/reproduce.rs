//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [EXPERIMENT...] [--csv DIR]
//!
//! EXPERIMENT: table2 fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation
//!             (default: all)
//! --csv DIR:  additionally write one CSV per table into DIR
//! ```

use fusedpack_bench::{run_experiment, EXPERIMENTS};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: reproduce [EXPERIMENT...] [--csv DIR]");
                println!("experiments: {}", EXPERIMENTS.join(" "));
                return;
            }
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name => {
                if !EXPERIMENTS.contains(&name) {
                    eprintln!("unknown experiment {name:?}; known: {}", EXPERIMENTS.join(" "));
                    std::process::exit(2);
                }
                selected.push(name.to_string());
            }
        }
    }
    if selected.is_empty() {
        selected.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for name in &selected {
        let start = std::time::Instant::now();
        let tables = run_experiment(name);
        for table in &tables {
            let _ = writeln!(out, "{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", table.slug());
                std::fs::write(&path, table.to_csv()).expect("write csv");
                let _ = writeln!(out, "   [csv: {path}]");
            }
        }
        let _ = writeln!(
            out,
            "   ({name} regenerated in {:.2}s)\n",
            start.elapsed().as_secs_f64()
        );
    }
}
