//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [EXPERIMENT...] [--csv DIR] [--trace-out FILE] [--jobs N]
//!           [--threshold auto|BYTES] [--seed N] [--requests N[k|m]]
//!           [--shards N] [--timings]
//!
//! EXPERIMENT:       table2 fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!                   ablation adapt ipc approaches chaos chaos-topo topo
//!                   serve (default: all)
//! --csv DIR:        additionally write one CSV per table into DIR
//! --threshold X:    fusion threshold for the Proposed columns of the
//!                   scheme-comparison figures (9/10/12/13): a byte count,
//!                   or "auto" to resolve the model-predicted threshold
//!                   from each workload's average contiguous-block size
//!                   (fusedpack_core::predict_threshold). The explicit
//!                   fig8 sweep and the adapt experiment are unaffected.
//! --requests N:     total requests the serve experiment replays per cell
//!                   (default 200k; "50k" and "1m" style suffixes accepted)
//! --seed N:         master seed for the chaos/chaos-topo fault plans
//!                   (default 42). Per-cell plans derive from this and the
//!                   cell's grid coordinates, and fault decisions ride
//!                   per-rank/keyed streams, so the chaos reports are
//!                   byte-identical across runs, --jobs, and --shards.
//! --jobs N:         run sweep cells on N worker threads (default: the
//!                   FUSEDPACK_JOBS env var, then all available cores).
//!                   Tables and CSVs are byte-identical for every N.
//! --shards N:       split each simulation's event loop over N worker
//!                   shards (time-window synchronized; clamped per
//!                   cluster). Simulation results are byte-identical for
//!                   every N; only host-process diagnostics (queue-health
//!                   peaks) may differ.
//! --timings:        after each experiment, print the per-cell wall-clock
//!                   timing report from the sweep executor
//! --trace-out FILE: run the Fig. 11 fusion cell with the typed-event
//!                   recorder, write a Chrome Trace Event JSON (load in
//!                   Perfetto / chrome://tracing), print the metrics
//!                   summary, and reconcile the timeline against the
//!                   mpi::breakdown ledger. With no EXPERIMENT given,
//!                   only the trace runs.
//! ```

use fusedpack_bench::{exec, figs, run_experiment, EXPERIMENTS};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut timings = false;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                }));
            }
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a file path");
                    std::process::exit(2);
                }));
            }
            "--jobs" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    });
                exec::set_jobs(n);
            }
            "--threshold" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--threshold requires \"auto\" or a byte count");
                    std::process::exit(2);
                });
                let mode = if v == "auto" {
                    figs::ThresholdMode::Auto
                } else {
                    match v.parse::<u64>() {
                        Ok(b) if b > 0 => figs::ThresholdMode::Fixed(b),
                        _ => {
                            eprintln!("--threshold requires \"auto\" or a positive byte count");
                            std::process::exit(2);
                        }
                    }
                };
                figs::set_threshold_mode(mode);
            }
            "--seed" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed requires a non-negative integer");
                        std::process::exit(2);
                    });
                figs::set_chaos_seed(n);
            }
            "--requests" => {
                let n = it
                    .next()
                    .and_then(|v| parse_requests(&v))
                    .unwrap_or_else(|| {
                        eprintln!("--requests requires a positive count (k/m suffixes ok)");
                        std::process::exit(2);
                    });
                figs::set_serve_requests(n);
            }
            "--shards" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--shards requires a positive integer");
                        std::process::exit(2);
                    });
                figs::set_shards(n);
            }
            "--timings" => timings = true,
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [EXPERIMENT...] [--csv DIR] [--trace-out FILE] \
                     [--jobs N] [--threshold auto|BYTES] [--seed N] [--requests N[k|m]] \
                     [--shards N] [--timings]"
                );
                println!("experiments: {}", EXPERIMENTS.join(" "));
                return;
            }
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name => {
                if !EXPERIMENTS.contains(&name) {
                    eprintln!(
                        "unknown experiment {name:?}; known: {}",
                        EXPERIMENTS.join(" ")
                    );
                    std::process::exit(2);
                }
                selected.push(name.to_string());
            }
        }
    }

    if let Some(path) = &trace_out {
        write_trace(path);
        if selected.is_empty() {
            return;
        }
    }
    if selected.is_empty() {
        selected.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for name in &selected {
        let start = std::time::Instant::now();
        let tables = run_experiment(name);
        for table in &tables {
            let _ = writeln!(out, "{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", table.slug());
                std::fs::write(&path, table.to_csv()).expect("write csv");
                let _ = writeln!(out, "   [csv: {path}]");
            }
        }
        let _ = writeln!(
            out,
            "   ({name} regenerated in {:.2}s)\n",
            start.elapsed().as_secs_f64()
        );
        if timings {
            print_timings(&mut out, name, &exec::take_timings());
        } else {
            let _ = exec::take_timings(); // keep the registry bounded
        }
    }
}

/// Parse a request count with an optional `k`/`m` suffix ("50k", "1m").
fn parse_requests(v: &str) -> Option<u64> {
    let (digits, mult) = match v.strip_suffix(['k', 'K']) {
        Some(d) => (d, 1_000),
        None => match v.strip_suffix(['m', 'M']) {
            Some(d) => (d, 1_000_000),
            None => (v, 1),
        },
    };
    digits
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .map(|n| n * mult)
}

/// Render the executor's per-cell wall-clock report for one experiment.
fn print_timings(out: &mut impl Write, name: &str, timings: &[exec::CellTiming]) {
    if timings.is_empty() {
        let _ = writeln!(out, "   [timings: {name} ran no sweep cells]\n");
        return;
    }
    let total: std::time::Duration = timings.iter().map(|t| t.wall).sum();
    let _ = writeln!(
        out,
        "   [timings: {name}, {} cells on {} worker(s), cell-time total {:.2}s]",
        timings.len(),
        exec::jobs(),
        total.as_secs_f64()
    );
    for t in timings {
        let _ = writeln!(
            out,
            "     #{:<3} {:<40} worker {}  {:>9.2}ms",
            t.index,
            t.label,
            t.worker,
            t.wall.as_secs_f64() * 1e3
        );
    }
    let _ = writeln!(out);
}

/// Run the Fig. 11 fusion cell traced, export the Chrome trace, and
/// cross-check the timeline's bucket totals against `mpi::breakdown`.
fn write_trace(path: &str) {
    use fusedpack_bench::figs::fig11;
    use fusedpack_sim::Duration;
    use fusedpack_telemetry::{chrome, reconcile, MetricsSummary};

    let start = std::time::Instant::now();
    let (telemetry, breakdowns) = fig11::traced_run();
    let snap = telemetry.snapshot();

    if let Err(e) = std::fs::write(path, chrome::export(&snap)) {
        eprintln!("cannot write trace to {path:?}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path}: {} events ({} dropped) from the Fig. 11 fusion cell \
         (MILC su3_zdown x{}, ABCI) in {:.2}s",
        snap.events.len(),
        snap.dropped,
        fig11::N_MSGS,
        start.elapsed().as_secs_f64()
    );
    println!("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing\n");

    println!("{}", MetricsSummary::from_snapshot(&snap).render());

    let external: Vec<(u32, [Duration; 5])> = breakdowns
        .iter()
        .enumerate()
        .map(|(r, b)| (r as u32, b.values()))
        .collect();
    let report = reconcile(&snap, &external, Duration::ZERO);
    println!("{}", report.render());
    if !report.is_ok() {
        eprintln!("trace does not reconcile with mpi::breakdown");
        std::process::exit(1);
    }
}
