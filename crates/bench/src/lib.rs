//! # fusedpack-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (§V). Each module exposes a `run()` returning a renderable
//! [`table::Table`]; the `reproduce` binary prints them and writes CSVs,
//! and the Criterion benches exercise representative cells so `cargo
//! bench` covers every figure.
//!
//! | experiment | module | paper content |
//! |---|---|---|
//! | Fig. 1 | [`figs::fig1`] | kernel time vs launch overhead across GPU generations |
//! | Fig. 8 | [`figs::fig8`] | fusion-threshold sweep (under-/over-fused) |
//! | Fig. 9 | [`figs::fig9`] | bulk sparse exchange vs #buffers, Lassen |
//! | Fig. 10 | [`figs::fig10`] | bulk dense exchange vs #buffers, Lassen |
//! | Fig. 11 | [`figs::fig11`] | cost breakdown of GPU-driven designs, ABCI |
//! | Fig. 12 | [`figs::fig12`] | four workloads × sizes, Lassen |
//! | Fig. 13 | [`figs::fig13`] | four workloads × sizes, ABCI |
//! | Fig. 14 | [`figs::fig14`] | production libraries, normalized |
//! | Table II | [`figs::table2`] | platform configurations |
//! | Ablations | [`figs::ablation`] | design-choice ablations (DESIGN.md §5) |
//! | Adaptive | [`figs::adapt`] | extension: online threshold control on a phase-changing workload |
//! | DirectIPC | [`figs::ipc`] | extension: fused zero-copy intra-node transfers |
//! | Chaos | [`figs::chaos`] | robustness: seeded fault-injection grid, checksum + latency inflation |
//! | Chaos-topo | [`figs::chaos_topo`] | robustness: per-hop fabric faults on the 512-rank torus, reroute/failover counts |
//! | Topo | [`figs::topo`] | topology contrast: 512-rank 3-D halo on fat-tree vs dragonfly machines |
//! | Serve | [`figs::serve`] | sustained load: 200k-request replay, throughput + p50/p99/p999 tails, allocator churn |
//! | §III / Fig. 4 | [`figs::approaches`] | the three transfer approaches (Algorithms 1-3) |

pub mod exec;
pub mod figs;
pub mod table;

pub use table::Table;

/// All experiment names accepted by the `reproduce` binary.
pub const EXPERIMENTS: &[&str] = &[
    "table2",
    "fig1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablation",
    "adapt",
    "ipc",
    "approaches",
    "chaos",
    "chaos-topo",
    "topo",
    "serve",
];

/// Run one experiment by name.
pub fn run_experiment(name: &str) -> Vec<Table> {
    match name {
        "table2" => vec![figs::table2::run()],
        "fig1" => vec![figs::fig1::run()],
        "fig8" => vec![figs::fig8::run()],
        "fig9" => vec![figs::fig9::run()],
        "fig10" => vec![figs::fig10::run()],
        "fig11" => vec![figs::fig11::run()],
        "fig12" => figs::fig12::run(),
        "fig13" => figs::fig13::run(),
        "fig14" => vec![figs::fig14::run()],
        "ablation" => figs::ablation::run(),
        "adapt" => vec![figs::adapt::run()],
        "ipc" => vec![figs::ipc::run()],
        "approaches" => vec![figs::approaches::run()],
        "chaos" => vec![figs::chaos::run()],
        "chaos-topo" => vec![figs::chaos_topo::run()],
        "topo" => vec![figs::topo::run()],
        "serve" => figs::serve::run(),
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}
