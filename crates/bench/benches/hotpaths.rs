//! Microbenches of the data-plane fast paths introduced for the parallel
//! sweep executor: host pack/unpack across layout shapes (sparse indexed,
//! strided dense, fully contiguous — the last hitting the single-memcpy
//! fast path, benchmarked against the generic gather loop), raw event-queue
//! churn, and the staging [`BufferPool`] against fresh allocation.
//!
//! Baseline numbers live in `BENCH_hotpaths.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fusedpack_core::{FlushReason, FusionConfig, FusionOp, Scheduler, Uid};
use fusedpack_datatype::{pack, Layout, TypeBuilder};
use fusedpack_gpu::{
    BufferPool, DataMode, DevPtr, FixedRuns, Gpu, GpuArch, HostLink, MemPool, StreamId,
};
use fusedpack_sim::{EventQueue, FaultPlan, FaultSite, Time};
use fusedpack_workloads::{run_exchange_chaos, specfem::specfem3d_oc, ExchangeConfig};
use std::hint::black_box;
use std::sync::Arc;

/// (label, layout, element count) for the three pack/unpack shapes.
fn shapes() -> Vec<(&'static str, Layout, u64)> {
    // Sparse: 512 single-float blocks scattered with gaps.
    let sparse_blocks: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 5, 1)).collect();
    let sparse = Layout::of(&TypeBuilder::indexed(&sparse_blocks, TypeBuilder::float()));
    // Dense: strided vector, 64-double blocks at a 96-double stride.
    let dense = Layout::of(&TypeBuilder::vector(64, 64, 96, TypeBuilder::double()));
    // Contiguous: small unbroken elements, many of them — the shape where
    // the whole-buffer memcpy fast path replaces 1024 tiny copies.
    let contig = Layout::of(&TypeBuilder::contiguous(16, TypeBuilder::double()));
    vec![
        ("sparse", sparse, 4),
        ("dense", dense, 4),
        ("contiguous", contig, 1024),
    ]
}

fn bench_pack_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/pack");
    for (label, layout, count) in shapes() {
        let src = vec![7u8; layout.footprint(count) as usize];
        let mut dst = vec![0u8; layout.total_bytes(count) as usize];
        g.throughput(Throughput::Bytes(layout.total_bytes(count)));
        g.bench_function(label, |b| {
            b.iter(|| pack::pack_into(black_box(&src), &layout, count, &mut dst))
        });
    }
    // The same contiguous shape forced through the generic per-segment
    // loop — the delta against hotpaths/pack/contiguous is the fast path.
    let (_, layout, count) = shapes().pop().expect("contiguous shape");
    let src = vec![7u8; layout.footprint(count) as usize];
    let mut dst = vec![0u8; layout.total_bytes(count) as usize];
    g.throughput(Throughput::Bytes(layout.total_bytes(count)));
    g.bench_function("contiguous_generic_loop", |b| {
        b.iter(|| pack::pack_into_generic(black_box(&src), &layout, count, &mut dst))
    });
    g.finish();
}

fn bench_unpack_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/unpack");
    for (label, layout, count) in shapes() {
        let src = vec![9u8; layout.total_bytes(count) as usize];
        let mut dst = vec![0u8; layout.footprint(count) as usize];
        g.throughput(Throughput::Bytes(layout.total_bytes(count)));
        g.bench_function(label, |b| {
            b.iter(|| pack::unpack(black_box(&src), &layout, count, &mut dst))
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("hotpaths/event_queue_push_pop_4k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..4096u64 {
                q.push_at(Time(i * 6151 % 65_536), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

fn bench_staging_pool(c: &mut Criterion) {
    // Rendezvous-sized staging buffer, fully written each acquisition —
    // past the allocator's mmap threshold, so a fresh allocation pays the
    // page faults the pool's warm buffers avoid.
    const LEN: usize = 2 * 1024 * 1024;
    let payload = vec![0x5Au8; LEN];
    let mut g = c.benchmark_group("hotpaths/staging");
    g.throughput(Throughput::Bytes(LEN as u64));
    g.bench_function("pool_acquire_release", |b| {
        let pool = BufferPool::new();
        // Warm the freelist so the steady state is all hits.
        pool.put(Vec::with_capacity(LEN));
        b.iter(|| {
            let mut buf = pool.take(LEN);
            buf.extend_from_slice(black_box(&payload));
            pool.put(buf);
        })
    });
    g.bench_function("fresh_alloc_baseline", |b| {
        b.iter(|| {
            let mut buf: Vec<u8> = Vec::with_capacity(LEN);
            buf.extend_from_slice(black_box(&payload));
            black_box(&buf);
        })
    });
    g.finish();
}

/// The staging pool under a *mixed* message-size stream — the shape the
/// uniform-size `hotpaths/staging` group cannot see. Cycling eager- and
/// rendezvous-sized buffers makes a fresh-alloc strategy bounce between
/// allocator size classes (and across the mmap threshold) every call,
/// while the pool's largest-first freelist keeps serving warm buffers.
fn bench_staging_pool_mixed(c: &mut Criterion) {
    // 64KB..4MB, deliberately unordered so consecutive requests never
    // match the previous buffer's size.
    const SIZES: [usize; 8] = [
        64 << 10,
        2 << 20,
        256 << 10,
        4 << 20,
        128 << 10,
        1 << 20,
        512 << 10,
        192 << 10,
    ];
    let total: usize = SIZES.iter().sum();
    let payload = vec![0xA5u8; 4 << 20];
    let mut g = c.benchmark_group("hotpaths/staging_mixed");
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("pool_mixed_sizes", |b| {
        let pool = BufferPool::new();
        // Warm one max-size buffer; steady state recycles it across sizes.
        pool.put(Vec::with_capacity(4 << 20));
        b.iter(|| {
            for &len in &SIZES {
                let mut buf = pool.take(len);
                buf.extend_from_slice(black_box(&payload[..len]));
                pool.put(buf);
            }
        })
    });
    g.bench_function("fresh_alloc_mixed_sizes", |b| {
        b.iter(|| {
            for &len in &SIZES {
                let mut buf: Vec<u8> = Vec::with_capacity(len);
                buf.extend_from_slice(black_box(&payload[..len]));
                black_box(&buf);
            }
        })
    });
    g.finish();
}

/// The fixed-stride gather tier against the generic per-segment loop on
/// the same uniform layout: 4096 16-byte runs at a 24-byte stride (a
/// blocklen-2 double vector). `uniform` dispatches to the const-width
/// `[u8; 16]` inner loop; `generic_loop` walks the same plan through the
/// segment-iterator path.
fn bench_gather_tier(c: &mut Criterion) {
    let layout = Layout::of(&TypeBuilder::vector(4096, 2, 3, TypeBuilder::double()));
    let count = 1u64;
    let plan = layout.uniform_for(count).expect("vector is uniform");
    let src = vec![7u8; layout.footprint(count) as usize];
    let mut dst = vec![0u8; layout.total_bytes(count) as usize];
    let mut g = c.benchmark_group("hotpaths/gather_tier");
    g.throughput(Throughput::Bytes(layout.total_bytes(count)));
    g.bench_function("pack_uniform", |b| {
        b.iter(|| pack::pack_into_uniform(black_box(&src), &plan, &mut dst))
    });
    g.bench_function("pack_generic_loop", |b| {
        b.iter(|| pack::pack_into_generic(black_box(&src), &layout, count, &mut dst))
    });
    g.bench_function("unpack_uniform", |b| {
        let packed = vec![9u8; layout.total_bytes(count) as usize];
        let mut out = vec![0u8; layout.footprint(count) as usize];
        b.iter(|| pack::unpack_uniform(black_box(&packed), &plan, &mut out))
    });

    // The same tier inside the device pools (what the cluster's staged
    // copies hit): gather 4096 runs into a contiguous region of one pool.
    let span = layout.footprint(count).max(1);
    let total = layout.total_bytes(count);
    let mut pool = MemPool::new(span + total + 64, DataMode::Full);
    let region = pool.alloc(span, 64);
    let packed = pool.alloc(total, 64);
    let runs = FixedRuns {
        first: region.addr + plan.first,
        stride: plan.stride,
        len: plan.len,
        runs: plan.runs,
    };
    g.bench_function("mempool_gather_uniform", |b| {
        b.iter(|| black_box(pool.gather_uniform(black_box(runs), packed.addr)))
    });
    g.bench_function("mempool_gather_iter", |b| {
        b.iter(|| {
            black_box(pool.gather_iter(
                layout.abs_segments(black_box(region.addr), count),
                packed.addr,
            ))
        })
    });
    g.finish();
}

/// The block-uniform tier against the generic segment walk on the same
/// wide-run layout: 2048 72-byte runs at a 120-byte stride (a blocklen-9
/// double vector — runs past `FIXED_RUN_WIDTH_MAX`, so the layout
/// compiler classifies it BlockUniform and the copy moves each run as
/// fixed 64-byte chunks plus a tail instead of walking the per-segment
/// offset table). Runs this size keep per-run bookkeeping visible; much
/// wider runs converge to memory bandwidth on every path.
fn bench_block_uniform_tier(c: &mut Criterion) {
    use fusedpack_datatype::CopyPlan;
    let layout = Layout::of(&TypeBuilder::vector(2048, 9, 15, TypeBuilder::double()));
    let count = 1u64;
    let plan = match layout.plan_for(count) {
        CopyPlan::BlockUniform(p) => p,
        other => panic!("wide-run vector must classify BlockUniform, got {other:?}"),
    };
    let src = vec![7u8; layout.footprint(count) as usize];
    let mut dst = vec![0u8; layout.total_bytes(count) as usize];
    let mut g = c.benchmark_group("hotpaths/block_uniform");
    g.throughput(Throughput::Bytes(layout.total_bytes(count)));
    g.bench_function("pack_block_uniform", |b| {
        b.iter(|| pack::pack_into_block_uniform(black_box(&src), &plan, &mut dst))
    });
    g.bench_function("pack_generic_loop", |b| {
        b.iter(|| pack::pack_into_generic(black_box(&src), &layout, count, &mut dst))
    });
    g.bench_function("unpack_block_uniform", |b| {
        let packed = vec![9u8; layout.total_bytes(count) as usize];
        let mut out = vec![0u8; layout.footprint(count) as usize];
        b.iter(|| pack::unpack_block_uniform(black_box(&packed), &plan, &mut out))
    });

    // The same tier inside the device pools: the >32-byte dispatch arm of
    // the strided gather (what the cluster's staged copies hit for
    // BlockUniform plans) against the segment-iterator walk.
    let span = layout.footprint(count).max(1);
    let total = layout.total_bytes(count);
    let mut pool = MemPool::new(span + total + 64, DataMode::Full);
    let region = pool.alloc(span, 64);
    let packed = pool.alloc(total, 64);
    let runs = FixedRuns {
        first: region.addr + plan.first,
        stride: plan.stride,
        len: plan.len,
        runs: plan.runs,
    };
    g.bench_function("mempool_gather_block", |b| {
        b.iter(|| black_box(pool.gather_uniform(black_box(runs), packed.addr)))
    });
    g.bench_function("mempool_gather_iter", |b| {
        b.iter(|| {
            black_box(pool.gather_iter(
                layout.abs_segments(black_box(region.addr), count),
                packed.addr,
            ))
        })
    });
    g.finish();
}

/// One scheduler service cycle: 64 enqueues with a threshold check after
/// each (flushing whenever it fires), a final sync-point flush, then
/// completion signalling and retirement for every request — the per-epoch
/// hot path the fusion scheme adds on top of the progress engine.
fn scheduler_cycle(sched: &mut Scheduler, gpu: &mut Gpu, layout: &Arc<Layout>) -> u64 {
    let mut launches = 0u64;
    let mut t = Time(0);
    let mut uids: Vec<Uid> = Vec::with_capacity(64);
    for _ in 0..64 {
        let (res, cost) = sched.enqueue(
            t,
            FusionOp::Pack,
            DevPtr {
                addr: 0,
                len: 65536,
            },
            DevPtr {
                addr: 65536,
                len: 65536,
            },
            layout.clone(),
            1,
            None,
        );
        uids.push(res.expect("ring has room"));
        t += cost;
        if sched.threshold_reached() {
            if let Some(batch) = sched.flush(t, gpu, StreamId(0), FlushReason::ThresholdReached) {
                launches += 1;
                for &u in &batch.uids {
                    sched.signal_completion(u);
                }
            }
        }
    }
    if let Some(batch) = sched.flush(t, gpu, StreamId(0), FlushReason::SyncPoint) {
        launches += 1;
        for &u in &batch.uids {
            sched.signal_completion(u);
        }
    }
    for u in uids {
        let cost = sched.retire(t, u);
        t += cost;
    }
    launches
}

fn bench_scheduler(c: &mut Criterion) {
    // 16 KB packed per request across 2 blocks: 64 requests cross the
    // 512 KB default threshold twice per cycle.
    let layout = Arc::new(Layout::of(&TypeBuilder::vector(
        2,
        8 * 1024,
        8 * 1024 + 64,
        TypeBuilder::byte(),
    )));
    let mk_gpu = || {
        Gpu::new(
            GpuArch::v100(),
            1 << 22,
            DataMode::ModelOnly,
            HostLink::nvlink2_cpu(),
            2,
        )
    };
    let mut g = c.benchmark_group("hotpaths/scheduler");
    g.bench_function("enqueue_flush_cycle_static", |b| {
        let mut sched = Scheduler::new(FusionConfig::default());
        let mut gpu = mk_gpu();
        b.iter(|| scheduler_cycle(&mut sched, &mut gpu, black_box(&layout)))
    });
    g.bench_function("enqueue_flush_cycle_adaptive", |b| {
        // Same cycle with the online controller observing every flush
        // (it converges to a fixed point, so the steady state measures
        // pure controller overhead, not behavioural drift).
        let mut sched = Scheduler::new(FusionConfig::default());
        sched.enable_adaptive(&GpuArch::v100());
        let mut gpu = mk_gpu();
        b.iter(|| scheduler_cycle(&mut sched, &mut gpu, black_box(&layout)))
    });
    g.finish();
}

/// Overhead of the fault-injection hooks on the simulation's per-request
/// hot path. `no_plan` is the production configuration (one untaken
/// `Option` branch per decision site); `zero_probability_plan` is an armed
/// plan whose every spec is `probability: 0` (an early-out before any RNG
/// draw); `armed_plan` actually draws. The first two must be
/// indistinguishable — that is the zero-cost contract the bit-identity
/// tests enforce semantically and this group quantifies. The stateful
/// (`fires`, per-(site, rank) streams) and keyed (`fires_keyed`, stateless
/// splitmix over the event key — the per-hop decision of the routed
/// transmit path) families are benchmarked side by side.
fn bench_fault_hooks(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/fault_hooks");

    // The raw decision loop: 4096 fires checks round-robining the fault
    // sites and 8 ranks, the shape the cluster's hooks execute per event.
    let decisions = |plan: &mut Option<FaultPlan>| {
        let mut fired = 0u64;
        for i in 0..4096u64 {
            let site = FaultSite::ALL[(i % FaultSite::ALL.len() as u64) as usize];
            if let Some(p) = plan.as_mut() {
                if p.fires(site, (i % 8) as u32) {
                    fired += 1;
                }
            }
        }
        fired
    };
    g.bench_function("decisions_4k_no_plan", |b| {
        let mut plan: Option<FaultPlan> = None;
        b.iter(|| decisions(black_box(&mut plan)))
    });
    g.bench_function("decisions_4k_zero_probability_plan", |b| {
        // `FaultPlan::new` arms the plan with every site at probability 0.
        let mut plan = Some(FaultPlan::new(0));
        b.iter(|| decisions(black_box(&mut plan)))
    });
    g.bench_function("decisions_4k_armed_plan", |b| {
        let mut plan = Some(FaultPlan::uniform(0, 0.1));
        b.iter(|| decisions(black_box(&mut plan)))
    });

    // The stateless keyed family: one hash per decision, no stream state —
    // what every hop crossing of a routed transmit pays under an armed
    // fabric plan (zero-probability must stay an ≈ns-scale early-out).
    let keyed = |plan: &mut Option<FaultPlan>| {
        let mut fired = 0u64;
        for i in 0..4096u64 {
            let site = FaultSite::ALL[(i % FaultSite::ALL.len() as u64) as usize];
            if let Some(p) = plan.as_mut() {
                if p.fires_keyed(site, i % 64, i) {
                    fired += 1;
                }
            }
        }
        fired
    };
    g.bench_function("keyed_decisions_4k_zero_probability_plan", |b| {
        let mut plan = Some(FaultPlan::new(0));
        b.iter(|| keyed(black_box(&mut plan)))
    });
    g.bench_function("keyed_decisions_4k_armed_plan", |b| {
        let mut plan = Some(FaultPlan::uniform(0, 0.1));
        b.iter(|| keyed(black_box(&mut plan)))
    });

    // End to end: a small fused exchange simulated with no plan vs an
    // armed all-zero plan — the whole-pipeline cost of threading the
    // hooks through the pack/transfer/unpack fast paths.
    let cfg = || {
        ExchangeConfig::new(
            fusedpack_net::Platform::lassen(),
            fusedpack_mpi::SchemeKind::fusion_default(),
            specfem3d_oc(500),
            4,
        )
    };
    g.bench_function("exchange_no_plan", |b| {
        b.iter(|| run_exchange_chaos(black_box(&cfg()), None))
    });
    g.bench_function("exchange_zero_probability_plan", |b| {
        b.iter(|| run_exchange_chaos(black_box(&cfg()), Some(FaultPlan::new(0))))
    });
    g.finish();
}

/// Topology hot paths: route resolution and contended multi-hop
/// transmits at cluster scale. `route_extract` walks the warm BFS tables
/// per call (what an uncached pair pays after table build);
/// `route_cached` is [`TopoNet`]'s per-send lookup (a HashMap hit
/// returning an `(offset, len)` window into the contiguous route arena —
/// the steady-state cost every routed transfer adds over the flat path),
/// and `route_cached_arc_baseline` replays the pre-arena design it
/// replaced (per-send `Arc<[HopId]>` refcount clone out of the cache).
/// The contended-transmit series times 64 cross-leaf transfers whose
/// routes pile onto shared rails and spines, at 256/1k/4k ranks — the
/// per-event cost the 512-rank halo report pays on its hot path.
fn bench_topology(c: &mut Criterion) {
    use fusedpack_net::{Endpoint, Hierarchy, TopoNet, Topology};

    let mut g = c.benchmark_group("hotpaths/topo");

    // Deterministic cross-leaf pair list: ranks i and (i + ranks/2) sit
    // 16+ nodes apart, so every route crosses the spine layer.
    let pairs = |ranks: u32| -> Vec<(Endpoint, Endpoint)> {
        (0..64u32)
            .map(|i| {
                let (a, b) = (i % (ranks / 2), ranks / 2 + i % (ranks / 2));
                (Endpoint::new(a / 4, a % 4), Endpoint::new(b / 4, b % 4))
            })
            .collect()
    };

    let big = Hierarchy::lassen_like(1024); // 4096 ranks
    let big_pairs = pairs(4096);
    g.bench_function("route_extract_4k_ranks", |b| {
        // Warm every destination table once so the loop measures path
        // extraction, not BFS.
        for &(a, bb) in &big_pairs {
            let _ = big.route(a, bb);
        }
        let mut i = 0usize;
        b.iter(|| {
            let (a, bb) = big_pairs[i % big_pairs.len()];
            i += 1;
            black_box(big.route(black_box(a), bb).expect("routable"))
        })
    });
    g.bench_function("route_cached_4k_ranks", |b| {
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(1024)));
        for &key in &big_pairs {
            let _ = net.resolve(key);
        }
        let mut i = 0usize;
        b.iter(|| {
            let key = big_pairs[i % big_pairs.len()];
            i += 1;
            let route = net.resolve(black_box(key)).expect("cached");
            black_box(route.last().copied())
        })
    });
    g.bench_function("route_cached_arc_baseline_4k_ranks", |b| {
        // The design the arena replaced: every send clones an
        // `Arc<[HopId]>` out of the cache (two atomic refcount ops and a
        // pointer chase per transfer).
        use fusedpack_net::HopId;
        use std::collections::HashMap;
        let topo = Hierarchy::lassen_like(1024);
        let mut cache: HashMap<(Endpoint, Endpoint), std::sync::Arc<[HopId]>> = HashMap::new();
        for &(a, bb) in &big_pairs {
            cache.insert((a, bb), topo.route(a, bb).expect("routable").into());
        }
        let mut i = 0usize;
        b.iter(|| {
            let key = big_pairs[i % big_pairs.len()];
            i += 1;
            let route = cache.get(&black_box(key)).expect("cached").clone();
            black_box(route.last().copied())
        })
    });

    for ranks in [256u32, 1024, 4096] {
        let keys = pairs(ranks);
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(ranks / 4)));
        for &key in &keys {
            let _ = net.resolve(key); // routes cached; iters measure transmits
        }
        g.bench_function(format!("contended_transmit_64x_{ranks}_ranks"), |b| {
            b.iter(|| {
                net.reset();
                let mut last = Time(0);
                for &key in &keys {
                    let t = net.transmit(Time(0), key, 65_536, None).expect("routable");
                    last = t.delivered;
                }
                black_box(last)
            })
        });
    }

    // The same contended series with a zero-probability fabric plan armed:
    // the per-hop fault hook's cost when it never fires. The delta against
    // contended_transmit_64x_256_ranks is the hook — it must stay ≈ns per
    // hop (an early-out before any hash).
    {
        let keys = pairs(256);
        let mut net = TopoNet::new(Arc::new(Hierarchy::lassen_like(64)));
        net.arm_faults(FaultPlan::new(0));
        for &key in &keys {
            let _ = net.resolve(key);
        }
        g.bench_function("contended_transmit_64x_256_ranks_zero_prob_fabric", |b| {
            b.iter(|| {
                net.reset();
                let mut last = Time(0);
                for &key in &keys {
                    let t = net.transmit(Time(0), key, 65_536, None).expect("routable");
                    last = t.delivered;
                }
                black_box(last)
            })
        });
    }

    // The reroute slow path: dead-set-avoiding shortest-path resolution
    // (what one ECMP re-resolution costs after a hop dies) against the
    // unrestricted resolution on the same pair.
    {
        use fusedpack_net::HopKind;
        let topo = Hierarchy::lassen_like(64);
        let (a, b_) = (Endpoint::new(0, 0), Endpoint::new(63, 0));
        let healthy = topo.route(a, b_).expect("routable");
        let dead: Vec<u32> = healthy
            .iter()
            .filter(|h| topo.hops()[h.0 as usize].kind == HopKind::Rail)
            .map(|h| h.0)
            .take(1)
            .collect();
        g.bench_function("reroute_resolve_avoiding_dead_rail", |b| {
            b.iter(|| {
                black_box(
                    topo.route_avoiding(black_box(a), b_, black_box(&dead))
                        .expect("sibling rail survives"),
                )
            })
        });
        g.bench_function("reroute_resolve_unrestricted_baseline", |b| {
            b.iter(|| black_box(topo.route(black_box(a), b_).expect("routable")))
        });
    }
    g.finish();
}

/// The sharded event loop's per-window coordination primitives, isolated
/// from any simulation: computing the next window (min `peek_time` over
/// every shard queue) and round-tripping cross-shard messages through the
/// bounded mailboxes. One iteration is one barrier cycle over 4 shards
/// with 64 in-flight cross-shard sends — the fixed cost a window barrier
/// adds on top of the workers' useful event processing.
fn bench_shard_barrier(c: &mut Criterion) {
    use fusedpack_sim::Mailbox;

    const SHARDS: usize = 4;
    const MSGS: usize = 64;
    let mut g = c.benchmark_group("hotpaths/shard");
    g.bench_function("shard_barrier_overhead_4x64", |b| {
        let mut queues: Vec<EventQueue<u64>> = (0..SHARDS).map(|_| EventQueue::new()).collect();
        for (s, q) in queues.iter_mut().enumerate() {
            for i in 0..256u64 {
                q.push_at(Time(s as u64 * 977 + i * 6151 % 65_536), i);
            }
        }
        let mut boxes: Vec<Mailbox<(Time, u64, u64)>> =
            (0..SHARDS * SHARDS).map(|_| Mailbox::default()).collect();
        let mut scratch: Vec<(Time, u64, u64)> = Vec::new();
        b.iter(|| {
            // Window computation: min next-event time across all shards.
            let window = queues
                .iter_mut()
                .filter_map(|q| q.peek_time())
                .min()
                .unwrap_or(Time(u64::MAX));
            // Outbox fill: every shard sends to every other shard.
            for src in 0..SHARDS {
                for dst in 0..SHARDS {
                    if src == dst {
                        continue;
                    }
                    for i in 0..(MSGS / (SHARDS - 1)) as u64 {
                        boxes[src * SHARDS + dst].push((window, i, i * 31));
                    }
                }
            }
            // Barrier drain: admit everything into the destination queues.
            let mut admitted = 0u64;
            for src in 0..SHARDS {
                for dst in 0..SHARDS {
                    if src == dst {
                        continue;
                    }
                    scratch.clear();
                    scratch.extend(boxes[src * SHARDS + dst].drain());
                    admitted += scratch.len() as u64;
                    for &(at, key, payload) in &scratch {
                        queues[dst].push_at_key(at, key, payload);
                    }
                }
            }
            // Keep the queues bounded: drain what the fill added.
            for q in &mut queues {
                for _ in 0..MSGS / (SHARDS - 1) * (SHARDS - 1) {
                    let _ = q.pop();
                }
            }
            black_box(admitted)
        })
    });
    g.finish();
}

criterion_group!(
    bench_hotpaths,
    bench_pack_shapes,
    bench_unpack_shapes,
    bench_event_queue,
    bench_staging_pool,
    bench_staging_pool_mixed,
    bench_gather_tier,
    bench_block_uniform_tier,
    bench_scheduler,
    bench_fault_hooks,
    bench_topology,
    bench_shard_barrier
);
criterion_main!(bench_hotpaths);
