//! Criterion benches, one group per reproduced figure: each measures the
//! wall time of regenerating a representative cell of that figure, so
//! `cargo bench` exercises every experiment path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedpack_bench::figs::{self, latency, HALO_MSGS};
use fusedpack_gpu::{kernel, GpuArch, SegmentStats};
use fusedpack_mpi::{NaiveFlavor, SchemeKind};
use fusedpack_net::Platform;
use fusedpack_workloads::{milc::milc_su3_zdown, nas::nas_mg_y, specfem::specfem3d_cm};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let arch = GpuArch::v100();
    let w = specfem3d_cm(2000);
    let stats = SegmentStats::new(w.packed_bytes(), w.blocks());
    c.bench_function("fig1/kernel_cost_model", |b| {
        b.iter(|| kernel::single_kernel_time(black_box(&arch), black_box(stats)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let platform = Platform::lassen();
    let w = specfem3d_cm(4096);
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for threshold in [16 * 1024u64, 512 * 1024, 4 * 1024 * 1024] {
        g.bench_function(format!("threshold_{}KB", threshold / 1024), |b| {
            b.iter(|| {
                latency(
                    &platform,
                    SchemeKind::fusion_with_threshold(threshold),
                    &w,
                    32,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig9_10(c: &mut Criterion) {
    let platform = Platform::lassen();
    let sparse = specfem3d_cm(2000);
    let dense = milc_su3_zdown(4);
    let mut g = c.benchmark_group("fig9_10");
    g.sample_size(10);
    for scheme in figs::gpu_driven_schemes() {
        g.bench_function(format!("sparse_16buf/{}", scheme.label()), |b| {
            b.iter(|| latency(&platform, scheme.clone(), &sparse, 16))
        });
        g.bench_function(format!("dense_16buf/{}", scheme.label()), |b| {
            b.iter(|| latency(&platform, scheme.clone(), &dense, 16))
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for scheme in figs::fig11::schemes() {
        g.bench_function(format!("breakdown/{}", scheme.label()), |b| {
            b.iter(|| figs::fig11::breakdown_for(scheme.clone()))
        });
    }
    g.finish();
}

fn bench_fig12_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_13");
    g.sample_size(10);
    for (name, platform) in [("lassen", Platform::lassen()), ("abci", Platform::abci())] {
        let w = nas_mg_y(256);
        g.bench_function(format!("halo_nas/{name}"), |b| {
            b.iter(|| latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS))
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let platform = Platform::lassen();
    let w = specfem3d_cm(2048);
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("spectrum_mpi", |b| {
        b.iter(|| {
            latency(
                &platform,
                SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi),
                &w,
                HALO_MSGS,
            )
        })
    });
    g.bench_function("proposed", |b| {
        b.iter(|| latency(&platform, SchemeKind::fusion_default(), &w, HALO_MSGS))
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    let w = specfem3d_cm(2000);
    g.bench_function("ipc/direct_ipc_intra_node", |b| {
        b.iter(|| figs::ipc::intra_node_latency(SchemeKind::fusion_default(), &w, 16))
    });
    g.bench_function("approaches/all_four", |b| {
        b.iter(|| figs::approaches::measure(&w))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig8,
    bench_fig9_10,
    bench_fig11,
    bench_fig12_13,
    bench_fig14,
    bench_extensions
);
criterion_main!(figures);
