//! Criterion microbenches of the library's own hot paths: datatype
//! flattening, host pack/unpack, the fused-kernel timing model, the fusion
//! scheduler, and the event queue.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fusedpack_core::{FusionConfig, FusionOp, Scheduler};
use fusedpack_datatype::{pack, Layout, TypeBuilder};
use fusedpack_gpu::{fused, DataMode, DevPtr, GpuArch, HostLink, SegmentStats};
use fusedpack_sim::{EventQueue, Time};
use std::hint::black_box;
use std::sync::Arc;

fn bench_flatten(c: &mut Criterion) {
    let blocks: Vec<(u64, u64)> = (0..4000u64).map(|i| (i * 3, 1)).collect();
    let ty = TypeBuilder::indexed(&blocks, TypeBuilder::float());
    c.bench_function("datatype/flatten_4000_blocks", |b| {
        b.iter(|| Layout::of(black_box(&ty)))
    });
}

fn bench_host_pack(c: &mut Criterion) {
    let ty = TypeBuilder::vector(256, 64, 96, TypeBuilder::double());
    let layout = Layout::of(&ty);
    let src = vec![7u8; layout.footprint(1) as usize];
    let mut dst = vec![0u8; layout.total_bytes(1) as usize];
    let mut g = c.benchmark_group("datatype/host_pack");
    g.throughput(Throughput::Bytes(layout.total_bytes(1)));
    g.bench_function("vector_128KB", |b| {
        b.iter(|| pack::pack_into(black_box(&src), &layout, 1, &mut dst))
    });
    g.finish();
}

fn bench_fused_timing(c: &mut Criterion) {
    let arch = GpuArch::v100();
    let works: Vec<SegmentStats> = (0..64)
        .map(|i| SegmentStats::new(4096 + i * 128, 64))
        .collect();
    c.bench_function("gpu/fused_timing_64_requests", |b| {
        b.iter(|| fused::fused_timing(black_box(&arch), black_box(&works)))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let layout = Arc::new(Layout::of(&TypeBuilder::vector(
        16,
        8,
        12,
        TypeBuilder::double(),
    )));
    c.bench_function("core/scheduler_enqueue_flush_retire_32", |b| {
        let mut gpu = fusedpack_gpu::Gpu::new(
            GpuArch::v100(),
            1 << 20,
            DataMode::ModelOnly,
            HostLink::nvlink2_cpu(),
            2,
        );
        b.iter(|| {
            let mut sched = Scheduler::new(FusionConfig::default());
            for _ in 0..32 {
                let (res, _) = sched.enqueue(
                    Time(0),
                    FusionOp::Pack,
                    DevPtr { addr: 0, len: 4096 },
                    DevPtr {
                        addr: 8192,
                        len: 2048,
                    },
                    layout.clone(),
                    1,
                    None,
                );
                res.expect("room");
            }
            let batch = sched
                .flush(
                    Time(0),
                    &mut gpu,
                    fusedpack_gpu::StreamId(0),
                    fusedpack_core::FlushReason::SyncPoint,
                )
                .expect("pending");
            for &uid in &batch.uids {
                sched.signal_completion(uid);
                sched.retire(Time(0), uid);
            }
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push_at(Time(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

criterion_group!(
    components,
    bench_flatten,
    bench_host_pack,
    bench_fused_timing,
    bench_scheduler,
    bench_event_queue
);
criterion_main!(components);
