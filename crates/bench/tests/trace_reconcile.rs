//! End-to-end acceptance check for the telemetry subsystem: a traced
//! Fig. 11 fusion run must (a) emit valid Chrome Trace Event JSON and
//! (b) reconcile exactly — zero-nanosecond tolerance — with the
//! independent `mpi::breakdown` ledger.

use fusedpack_bench::figs::fig11;
use fusedpack_sim::Duration;
use fusedpack_telemetry::{chrome, json, reconcile, MetricsSummary};

fn external(breakdowns: &[fusedpack_mpi::Breakdown]) -> Vec<(u32, [Duration; 5])> {
    breakdowns
        .iter()
        .enumerate()
        .map(|(r, b)| (r as u32, b.values()))
        .collect()
}

#[test]
fn traced_fig11_reconciles_exactly_with_breakdown() {
    let (telemetry, breakdowns) = fig11::traced_run();
    let snap = telemetry.snapshot();
    assert_eq!(snap.dropped, 0, "unbounded recorder must not drop");
    assert_eq!(snap.unclosed_spans, 0, "every opened span must be closed");
    assert_eq!(breakdowns.len(), 2);

    let report = reconcile(&snap, &external(&breakdowns), Duration::ZERO);
    assert!(
        report.is_ok(),
        "telemetry bucket totals must equal mpi::breakdown at 0 ns:\n{}",
        report.render()
    );
    // Both ranks present, all five buckets checked.
    assert_eq!(report.ranks.len(), 2);
}

#[test]
fn traced_fig11_chrome_export_is_valid_and_complete() {
    let (telemetry, _) = fig11::traced_run();
    let snap = telemetry.snapshot();
    let text = chrome::export(&snap);

    let doc = json::parse(&text).expect("chrome export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // Metadata names each rank as a process.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("name").and_then(|v| v.as_str()) == Some("process_name")
        })
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(process_names.contains(&"rank 0"), "{process_names:?}");
    assert!(process_names.contains(&"rank 1"), "{process_names:?}");

    // Every recorded event appears (plus metadata and counter samples).
    let payload_events = events
        .iter()
        .filter(|e| matches!(e.get("ph").and_then(|v| v.as_str()), Some("X") | Some("i")))
        .count();
    assert_eq!(payload_events, snap.events.len());

    // Complete spans carry non-negative durations in microseconds.
    for e in events {
        if e.get("ph").and_then(|v| v.as_str()) == Some("X") {
            let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
            assert!(dur >= 0.0);
        }
    }
}

#[test]
fn traced_fig11_metrics_match_the_workload_shape() {
    let (telemetry, _) = fig11::traced_run();
    let m = MetricsSummary::from_snapshot(&telemetry.snapshot());

    // 16 packs + 16 unpacks per rank, two ranks, two laps = 128 requests,
    // all through the fusion scheduler.
    assert_eq!(m.enqueues, 128);
    assert_eq!(m.requests_fused, 128);
    assert!(m.fused_launches > 0 && m.fused_launches <= 128);
    assert_eq!(m.kernels, 0, "fusion scheme launches no singleton kernels");
    assert!(m.bytes_fused > 0);
}
