//! Golden-report snapshot tests: the refactor-proof harness.
//!
//! `results/golden/` holds the committed CSV output of `reproduce fig8`
//! and `reproduce approaches`. These tests regenerate both tables
//! in-process and compare the CSV rendering **byte for byte** against the
//! snapshots — any behavioural drift in the scheme engines, the request
//! lifecycle, or the sweep executor shows up as a diff here, not as a
//! silently shifted number in a figure.
//!
//! To refresh after an intentional model change:
//!
//! ```text
//! cargo run --release --bin reproduce -- fig8 approaches --csv results/golden
//! ```

use fusedpack_bench::run_experiment;
use fusedpack_mpi::SchemeKind;
use fusedpack_net::{FlatLink, Platform};
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::{run_halo, HaloConfig, HaloGrid};
use std::sync::Arc;

/// Path of a committed golden CSV.
fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden")
        .join(file)
}

/// Regenerate `experiment` and require its single table to match the
/// committed snapshot byte for byte (same slug, same CSV bytes).
fn assert_matches_golden(experiment: &str, golden_file: &str) {
    let tables = run_experiment(experiment);
    assert_eq!(tables.len(), 1, "{experiment} renders one table");
    let table = &tables[0];

    let expected_slug = golden_file.strip_suffix(".csv").expect("csv file");
    assert_eq!(
        table.slug(),
        expected_slug,
        "{experiment}: table title changed — rename the golden file too"
    );

    let path = golden_path(golden_file);
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden snapshot {path:?}: {e}"));
    let fresh = table.to_csv();
    if fresh != golden {
        // A plain assert_eq! on multi-KB CSVs is unreadable; report the
        // first differing line instead.
        for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
            assert_eq!(f, g, "{experiment}: line {} diverges from {path:?}", i + 1);
        }
        assert_eq!(
            fresh.lines().count(),
            golden.lines().count(),
            "{experiment}: row count diverges from {path:?}"
        );
        panic!("{experiment}: output differs from {path:?} (whitespace or ordering)");
    }
}

#[test]
fn fig8_matches_golden_snapshot() {
    assert_matches_golden(
        "fig8",
        "fig_8_fused_kernel_threshold_sweep_specfem3d_cm_32_ops_lassen.csv",
    );
}

#[test]
fn approaches_matches_golden_snapshot() {
    assert_matches_golden(
        "approaches",
        "siii_fig_4_three_approaches_to_non_contiguous_transfer_specfem3d_cm_x16_lassen.csv",
    );
}

/// The topology subsystem's backwards-compatibility promise: a cluster
/// with an **explicit** [`FlatLink`] topology times every transfer
/// bit-identically to the default (no-topology) legacy path the golden
/// snapshots above pin down. If this holds, attaching FlatLink can never
/// move a golden number.
#[test]
fn explicit_flat_topology_is_bit_identical_to_default() {
    let cfg = |topo: bool| {
        let platform = Platform::lassen();
        let grid = HaloGrid::new_3d(2, 2, 2);
        let mut c = HaloConfig::new(
            platform.clone(),
            SchemeKind::fusion_default(),
            specfem3d_cm(1024),
            grid,
            4,
        );
        if topo {
            let nodes = grid.ranks().div_ceil(platform.gpus_per_node);
            c = c.with_topology(Arc::new(FlatLink::for_platform(&platform, nodes)));
        }
        c
    };
    let default = run_halo(&cfg(false));
    let flat = run_halo(&cfg(true));
    assert_eq!(
        default.latency, flat.latency,
        "FlatLink must not move timing"
    );
    assert_eq!(default.lap_latencies, flat.lap_latencies);
    assert_eq!(default.events, flat.events);
    assert_eq!(default.hop_bytes, 0, "legacy path has no hop accounting");
    assert!(flat.hop_bytes > 0, "FlatLink accounts the same traffic");
}
