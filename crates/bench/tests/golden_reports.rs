//! Golden-report snapshot tests: the refactor-proof harness.
//!
//! `results/golden/` holds the committed CSV output of `reproduce fig8`
//! and `reproduce approaches`. These tests regenerate both tables
//! in-process and compare the CSV rendering **byte for byte** against the
//! snapshots — any behavioural drift in the scheme engines, the request
//! lifecycle, or the sweep executor shows up as a diff here, not as a
//! silently shifted number in a figure.
//!
//! To refresh after an intentional model change:
//!
//! ```text
//! cargo run --release --bin reproduce -- fig8 approaches --csv results/golden
//! ```

use fusedpack_bench::run_experiment;

/// Path of a committed golden CSV.
fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden")
        .join(file)
}

/// Regenerate `experiment` and require its single table to match the
/// committed snapshot byte for byte (same slug, same CSV bytes).
fn assert_matches_golden(experiment: &str, golden_file: &str) {
    let tables = run_experiment(experiment);
    assert_eq!(tables.len(), 1, "{experiment} renders one table");
    let table = &tables[0];

    let expected_slug = golden_file.strip_suffix(".csv").expect("csv file");
    assert_eq!(
        table.slug(),
        expected_slug,
        "{experiment}: table title changed — rename the golden file too"
    );

    let path = golden_path(golden_file);
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden snapshot {path:?}: {e}"));
    let fresh = table.to_csv();
    if fresh != golden {
        // A plain assert_eq! on multi-KB CSVs is unreadable; report the
        // first differing line instead.
        for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
            assert_eq!(f, g, "{experiment}: line {} diverges from {path:?}", i + 1);
        }
        assert_eq!(
            fresh.lines().count(),
            golden.lines().count(),
            "{experiment}: row count diverges from {path:?}"
        );
        panic!("{experiment}: output differs from {path:?} (whitespace or ordering)");
    }
}

#[test]
fn fig8_matches_golden_snapshot() {
    assert_matches_golden(
        "fig8",
        "fig_8_fused_kernel_threshold_sweep_specfem3d_cm_32_ops_lassen.csv",
    );
}

#[test]
fn approaches_matches_golden_snapshot() {
    assert_matches_golden(
        "approaches",
        "siii_fig_4_three_approaches_to_non_contiguous_transfer_specfem3d_cm_x16_lassen.csv",
    );
}
