//! Online adaptive control of the fusion threshold.
//!
//! §IV-C of the paper tunes `threshold_bytes` *offline* (the Fig. 8 sweep,
//! our [`crate::tuner::ThresholdTuner`]) and sketches model-based online
//! adaptation as future work. This module closes that loop:
//! [`AdaptiveThreshold`] observes every flush the scheduler performs and
//! nudges the threshold between flushes so that the paper's design rule —
//! *the fused kernel's running time should exceed one kernel-launch
//! overhead* — holds for the batches the workload actually produces.
//!
//! Feedback signals, per flush ([`FlushFeedback`]):
//!
//! * batch shape (bytes, contiguous blocks) — maintains a running average
//!   block size, the input of [`crate::tuner::predict_threshold`];
//! * fused-kernel **body time vs. launch overhead** — the measured
//!   amortization ratio, folded into an EWMA of effective pack bandwidth
//!   (the model's `mem_bw · eff_stride` term, corrected by observation);
//! * the **flush reason** — ring-pressure flushes force the vote downward
//!   (pending work is outgrowing the ring before the threshold fires).
//!
//! The controller is deliberately conservative about *when* it moves and
//! decisive about *where*: the target is clamped to the tuner grid
//! (16 KB … 4 MB) and rounded to a power of two, and an adjustment only
//! commits after `hysteresis` consecutive same-direction votes — but a
//! committed adjustment jumps straight to the target, so a phase change
//! re-converges within a couple of flushes. A steady workload reaches a
//! fixed point (the smallest grid threshold whose batches amortize the
//! launch) and stays there.

use crate::scheduler::FlushReason;
use crate::tuner::ThresholdTuner;
use fusedpack_gpu::{kernel, GpuArch};
use fusedpack_sim::Duration;
use std::cmp::Ordering;

/// What one flush looked like, as reported by the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct FlushFeedback {
    /// Why the scheduler flushed (§IV-C scenario mix).
    pub reason: FlushReason,
    /// Requests fused into the launched kernel.
    pub requests: u64,
    /// Payload bytes the batch moved.
    pub bytes: u64,
    /// Contiguous blocks across the batch.
    pub blocks: u64,
    /// Device time of the fused kernel (start → retire).
    pub body: Duration,
    /// CPU launch overhead the batch paid (one `cuLaunchKernel`).
    pub launch: Duration,
}

/// EWMA weight given to the newest observation.
const GAMMA: f64 = 0.35;

/// Feedback-driven threshold controller. One per [`crate::Scheduler`] when
/// the *Proposed-Adaptive* scheme is active.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    arch: GpuArch,
    /// Inclusive clamp range for the threshold (the tuner grid by default).
    min_bytes: u64,
    max_bytes: u64,
    /// Consecutive same-direction votes required before a step commits.
    hysteresis: u32,
    /// Running average contiguous block size of flushed batches.
    avg_block: Option<f64>,
    /// Running effective pack bandwidth (bytes/s). Seeded from the cost
    /// model on the first flush, corrected by measured body times after.
    bw_eff: Option<f64>,
    /// Signed streak of same-direction votes (+up / −down).
    streak: i64,
    adjustments: u64,
}

impl AdaptiveThreshold {
    /// Controller bounded by the Fig. 8 tuner grid, hysteresis of 2.
    pub fn new(arch: GpuArch) -> Self {
        let grid = ThresholdTuner::default_grid();
        let min = *grid.first().expect("grid is non-empty");
        let max = *grid.last().expect("grid is non-empty");
        Self::with_bounds(arch, min, max, 2)
    }

    /// Controller with explicit power-of-two bounds.
    pub fn with_bounds(arch: GpuArch, min_bytes: u64, max_bytes: u64, hysteresis: u32) -> Self {
        assert!(min_bytes.is_power_of_two() && max_bytes.is_power_of_two());
        assert!(min_bytes <= max_bytes && hysteresis >= 1);
        AdaptiveThreshold {
            arch,
            min_bytes,
            max_bytes,
            hysteresis,
            avg_block: None,
            bw_eff: None,
            streak: 0,
            adjustments: 0,
        }
    }

    /// Committed threshold adjustments so far (each one is also emitted as
    /// a telemetry instant by the scheduler).
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Running average block size the controller has converged on.
    pub fn avg_block(&self) -> Option<f64> {
        self.avg_block
    }

    /// The threshold the controller is currently steering toward.
    pub fn target(&self) -> Option<u64> {
        self.bw_eff
            .map(|bw| self.clamp_pow2(self.arch.launch_cpu.as_secs_f64() * bw))
    }

    /// Fold one flush observation in. Returns `Some(new_threshold)` when the
    /// controller commits a step (at most one per flush), `None` otherwise.
    pub fn observe(&mut self, current: u64, fb: &FlushFeedback) -> Option<u64> {
        if fb.bytes == 0 || fb.requests == 0 {
            return None;
        }
        let batch_avg = fb.bytes as f64 / fb.blocks.max(1) as f64;
        let avg_block = match self.avg_block {
            Some(a) => a * (1.0 - GAMMA) + batch_avg * GAMMA,
            None => batch_avg,
        };
        self.avg_block = Some(avg_block);

        // Effective bandwidth: seeded from the model (this first target is
        // exactly `predict_threshold(arch, avg_block)` up to clamping),
        // then corrected by the measured body time of every later flush.
        let bw_inst = match self.bw_eff {
            None => self.arch.mem_bw * kernel::stride_efficiency(&self.arch, avg_block),
            Some(_) => fb.bytes as f64 / fb.body.as_secs_f64().max(1e-12),
        };
        self.bw_eff = Some(match self.bw_eff {
            Some(prev) => prev * (1.0 - GAMMA) + bw_inst * GAMMA,
            None => bw_inst,
        });

        // The smallest pending-byte level whose fused kernel outlives one
        // launch overhead at the observed bandwidth. The vote below uses
        // the instantaneous value — smoothing comes from the hysteresis
        // streak — while the EWMA feeds [`AdaptiveThreshold::target`].
        let target = self.clamp_pow2(self.arch.launch_cpu.as_secs_f64() * bw_inst);

        let direction = if fb.reason == FlushReason::RingPressure {
            // The ring filled before the threshold fired: whatever the
            // model says, the threshold is too high for this ring.
            Ordering::Less
        } else {
            target.cmp(&current)
        };
        match direction {
            Ordering::Greater => self.streak = self.streak.max(0) + 1,
            Ordering::Less => self.streak = self.streak.min(0) - 1,
            Ordering::Equal => self.streak = 0,
        }
        if self.streak.unsigned_abs() < u64::from(self.hysteresis) {
            return None;
        }
        self.streak = 0;
        // Commit: jump to the (grid-clamped, power-of-two) target — the
        // hysteresis streak has already established the direction is real,
        // and landing in one move keeps the phase-change transient to a
        // couple of flushes. A ring-pressure override whose model target
        // still sits at/above the current threshold instead backs off one
        // power-of-two step.
        let stepped = if target < current || direction == Ordering::Greater {
            target
        } else {
            (current.next_power_of_two() / 2).max(1)
        };
        let next = stepped.clamp(self.min_bytes, self.max_bytes);
        if next == current {
            return None;
        }
        self.adjustments += 1;
        Some(next)
    }

    fn clamp_pow2(&self, bytes: f64) -> u64 {
        let clamped = bytes.clamp(self.min_bytes as f64, self.max_bytes as f64) as u64;
        clamped.next_power_of_two().min(self.max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> GpuArch {
        GpuArch::v100()
    }

    fn feedback(bytes: u64, blocks: u64, body_ns: u64, reason: FlushReason) -> FlushFeedback {
        FlushFeedback {
            reason,
            requests: 8,
            bytes,
            blocks,
            body: Duration::from_nanos(body_ns),
            launch: arch().launch_cpu,
        }
    }

    #[test]
    fn sparse_batches_pull_the_threshold_down() {
        // Sparse 24-byte blocks: effective bandwidth is a few percent of
        // peak, so small batches already amortize the launch.
        let mut a = AdaptiveThreshold::new(arch());
        let mut current = 512 * 1024;
        for _ in 0..32 {
            // 64 KB batches of 24 B blocks whose kernel runs ~9 us.
            if let Some(next) = a.observe(
                current,
                &feedback(64 * 1024, 2730, 9_000, FlushReason::ThresholdReached),
            ) {
                assert!(next < current, "expected downward step");
                current = next;
            }
        }
        assert!(
            current < 512 * 1024,
            "sparse feedback should shrink the threshold, got {current}"
        );
        assert!(current >= 16 * 1024, "clamped to the grid");
        assert!(a.adjustments() >= 1);
    }

    #[test]
    fn dense_batches_push_the_threshold_up() {
        // Dense 8 KB blocks near peak bandwidth: a 64 KB batch's body is
        // far below the launch overhead, so the threshold must grow.
        let mut a = AdaptiveThreshold::new(arch());
        let mut current = 64 * 1024;
        for _ in 0..32 {
            if let Some(next) = a.observe(
                current,
                &feedback(64 * 1024, 8, 2_400, FlushReason::ThresholdReached),
            ) {
                assert!(next > current, "expected upward step");
                current = next;
            }
        }
        assert!(
            current > 64 * 1024,
            "dense feedback should grow the threshold, got {current}"
        );
        assert!(current <= 4 * 1024 * 1024, "clamped to the grid");
    }

    #[test]
    fn steady_workload_reaches_a_fixed_point() {
        let mut a = AdaptiveThreshold::new(arch());
        let mut current = 512 * 1024u64;
        let mut last_change = 0usize;
        for i in 0..64 {
            // Batches sized at the current threshold whose measured
            // bandwidth is self-consistent: body = bytes / (bw model).
            let blocks = (current / 512).max(1);
            let body = 6_000 + current / 300; // ~launch-scale, grows with S
            if let Some(next) = a.observe(
                current,
                &feedback(current, blocks, body, FlushReason::SyncPoint),
            ) {
                current = next;
                last_change = i;
            }
        }
        assert!(
            last_change < 50,
            "controller kept oscillating through the whole run"
        );
        assert!(current.is_power_of_two());
    }

    #[test]
    fn hysteresis_blocks_single_vote_noise() {
        let mut a = AdaptiveThreshold::with_bounds(arch(), 16 * 1024, 4 * 1024 * 1024, 3);
        let current = 512 * 1024;
        // Alternating up/down votes never accumulate a streak of 3.
        for i in 0..12 {
            let fb = if i % 2 == 0 {
                feedback(512 * 1024, 64, 1_000, FlushReason::ThresholdReached) // dense: up
            } else {
                feedback(64 * 1024, 2730, 60_000, FlushReason::ThresholdReached)
                // sparse: down
            };
            assert_eq!(a.observe(current, &fb), None, "vote {i} must not commit");
        }
        assert_eq!(a.adjustments(), 0);
    }

    #[test]
    fn ring_pressure_votes_down_regardless_of_model() {
        let mut a = AdaptiveThreshold::with_bounds(arch(), 16 * 1024, 4 * 1024 * 1024, 1);
        // Dense feedback would vote up, but ring pressure overrides.
        let next = a.observe(
            4 * 1024 * 1024,
            &feedback(256 * 1024, 16, 1_000, FlushReason::RingPressure),
        );
        assert_eq!(next, Some(2 * 1024 * 1024));
    }

    #[test]
    fn empty_feedback_is_ignored() {
        let mut a = AdaptiveThreshold::new(arch());
        let fb = feedback(0, 0, 0, FlushReason::SyncPoint);
        assert_eq!(a.observe(512 * 1024, &fb), None);
        assert_eq!(a.adjustments(), 0);
        assert!(a.target().is_none());
    }

    #[test]
    fn bounds_are_never_escaped() {
        let mut a = AdaptiveThreshold::with_bounds(arch(), 64 * 1024, 1024 * 1024, 1);
        let mut current = 64 * 1024u64;
        for _ in 0..20 {
            if let Some(next) = a.observe(
                current,
                &feedback(current, 4, 500, FlushReason::ThresholdReached),
            ) {
                current = next;
            }
        }
        assert!(current <= 1024 * 1024, "upper bound respected: {current}");
        let mut current = 1024 * 1024u64;
        for _ in 0..20 {
            if let Some(next) = a.observe(
                current,
                &feedback(16 * 1024, 4096, 500_000, FlushReason::ThresholdReached),
            ) {
                current = next;
            }
        }
        assert!(current >= 64 * 1024, "lower bound respected: {current}");
    }

    #[test]
    fn first_target_matches_the_model_prediction() {
        // The first observation seeds the bandwidth EWMA from the cost
        // model, so the initial target equals predict_threshold for the
        // batch's average block size (up to the tighter grid clamp).
        let mut a = AdaptiveThreshold::new(arch());
        let fb = feedback(256 * 1024, 1024, 10_000, FlushReason::SyncPoint);
        let _ = a.observe(512 * 1024, &fb);
        let predicted = crate::tuner::predict_threshold(&arch(), 256.0);
        let target = a.target().expect("seeded");
        assert_eq!(
            target,
            predicted.clamp(16 * 1024, 4 * 1024 * 1024),
            "seed target {target} vs predict_threshold {predicted}"
        );
    }
}
