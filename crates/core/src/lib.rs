//! # fusedpack-core
//!
//! The paper's primary contribution: **dynamic kernel fusion** for bulk
//! non-contiguous GPU data transfer (Chu et al., CLUSTER 2020, §IV).
//!
//! Three pieces, mirroring the paper's framework (Fig. 5):
//!
//! 1. [`request::FusionRequest`] — one entry of the request list: UID,
//!    requested operation (*Packing*, *Unpacking* or *DirectIPC*), origin
//!    and target buffers, the cached data layout, and separate
//!    *request status* / *response status* fields (the response side is
//!    only ever advanced by kernel completions, standing in for the
//!    GPU-written device flags of the CUDA implementation).
//! 2. [`ring::RequestRing`] — the circular buffer with Head/Tail indexes.
//!    Enqueueing into a full ring is *rejected* (the paper returns a
//!    negative UID) so the progress engine can fall back to a non-fused
//!    path.
//! 3. [`scheduler::Scheduler`] — enqueues requests from the progress
//!    engine, decides when to launch a fused kernel (the two scenarios of
//!    §IV-C: a synchronization point was reached, or enough bytes have
//!    accumulated), hands batches to the GPU, completes requests as their
//!    cooperative groups signal, and answers status queries.
//!
//! [`tuner`] adds the threshold machinery: the paper's heuristic sweep
//! (Fig. 8) and the closed-form model-based predictor of §IV-C/§VII.
//! [`adapt`] takes the predictor online: an [`adapt::AdaptiveThreshold`]
//! controller observes per-flush feedback and retunes
//! [`config::FusionConfig::threshold_bytes`] between flushes, so phase-
//! changing workloads track the best static threshold without a sweep.

pub mod adapt;
pub mod config;
pub mod request;
pub mod ring;
pub mod scheduler;
pub mod tuner;

pub use adapt::{AdaptiveThreshold, FlushFeedback};
pub use config::FusionConfig;
pub use request::{FusionOp, FusionRequest, Status, Uid};
pub use ring::{EnqueueError, RequestRing};
pub use scheduler::{FlushReason, FlushedBatch, SchedStats, Scheduler};
pub use tuner::{predict_threshold, ThresholdTuner};
