//! The fusion scheduler (§IV-A2, Fig. 5).
//!
//! Four primary functions, mirroring the paper's ①–④:
//!
//! * **① enqueue** — take a pack/unpack/DirectIPC request from the progress
//!   engine, fill a request-list entry, move the Tail, return the UID (or a
//!   rejection, the paper's negative UID, when the ring is full).
//! * **② launch** — when either flush condition of §IV-C holds (the
//!   progress engine reached a synchronization point, or enough bytes are
//!   pending), launch one fused kernel over the oldest pending requests
//!   with the request array as input.
//! * **③ complete** — as each cooperative group finishes, its request's
//!   *response status* flips to `Completed`. In this simulation the cluster
//!   event loop calls [`Scheduler::signal_completion`] at the per-request
//!   completion instant computed by the GPU model.
//! * **④ query** — the progress engine checks a UID by comparing request
//!   status to response status; no kernel-boundary synchronization ever
//!   happens.

use crate::adapt::{AdaptiveThreshold, FlushFeedback};
use crate::config::FusionConfig;
use crate::request::{FusionOp, FusionRequest, Status, Uid};
use crate::ring::{EnqueueError, RequestRing};
use fusedpack_datatype::{Layout, LayoutClass};
use fusedpack_gpu::{DevPtr, FusedLaunch, FusedWork, Gpu, GpuArch, StreamId};
use fusedpack_sim::{Duration, Time};
use fusedpack_telemetry::{FlushReasonTag, Lane, Payload, Telemetry};
use std::sync::Arc;

/// Why a fused kernel was launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// The progress engine reached a synchronization point (`MPI_Waitall`)
    /// — §IV-C scenario 1.
    SyncPoint,
    /// Pending bytes crossed the fusion threshold — §IV-C scenario 2.
    ThresholdReached,
    /// The ring was full and had to be drained to accept new work.
    RingPressure,
}

impl FlushReason {
    fn tag(self) -> FlushReasonTag {
        match self {
            FlushReason::SyncPoint => FlushReasonTag::SyncPoint,
            FlushReason::ThresholdReached => FlushReasonTag::ThresholdReached,
            FlushReason::RingPressure => FlushReasonTag::RingPressure,
        }
    }
}

/// A launched batch: the fused requests and the launch timing.
#[derive(Debug, Clone)]
pub struct FlushedBatch {
    pub reason: FlushReason,
    /// UIDs in the batch, aligned with `launch.request_done`.
    pub uids: Vec<Uid>,
    pub launch: FusedLaunch,
}

/// Scheduler counters (feeding the Fig. 11 "Scheduling" bucket and the
/// fusion diagnostics in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    pub enqueued: u64,
    pub rejected: u64,
    pub kernels_launched: u64,
    pub requests_fused: u64,
    pub bytes_fused: u64,
    pub flushes_sync: u64,
    pub flushes_threshold: u64,
    pub flushes_pressure: u64,
    pub queries: u64,
    /// Smallest fused-batch size so far (0 until the first flush).
    pub batch_min: u64,
    /// Largest fused-batch size so far.
    pub batch_max: u64,
    /// Threshold adjustments committed by the adaptive controller (0 when
    /// the controller is disabled). Always ≤ `kernels_launched`, since the
    /// controller commits at most one step per flush.
    pub threshold_adjusts: u64,
    /// Flushes that degraded to per-request (non-fused) kernels because the
    /// cooperative launch failed. Zero on fault-free runs.
    pub degraded_flushes: u64,
    /// Accepted enqueues per copy-plan class, indexed by
    /// [`LayoutClass::index`] in ladder order (contiguous, block-uniform,
    /// fixed-runs, generic). Sums to `enqueued`.
    pub class_counts: [u64; LayoutClass::COUNT],
}

impl SchedStats {
    /// Average requests per fused kernel.
    pub fn fusion_degree(&self) -> f64 {
        if self.kernels_launched == 0 {
            0.0
        } else {
            self.requests_fused as f64 / self.kernels_launched as f64
        }
    }

    /// Mean fused-batch size (alias of [`SchedStats::fusion_degree`], named
    /// for the ablation tables).
    pub fn batch_mean(&self) -> f64 {
        self.fusion_degree()
    }

    /// Accepted enqueues whose plan resolved to `class`.
    pub fn class_count(&self, class: LayoutClass) -> u64 {
        self.class_counts[class.index()]
    }
}

/// The fusion scheduler. One instance runs per rank, on the same thread as
/// the communication progress engine (the common deployment the paper
/// evaluates).
#[derive(Debug)]
pub struct Scheduler {
    config: FusionConfig,
    ring: RequestRing,
    stats: SchedStats,
    tele: Telemetry,
    adapt: Option<AdaptiveThreshold>,
}

impl Scheduler {
    pub fn new(config: FusionConfig) -> Self {
        let ring = RequestRing::new(config.ring_capacity);
        Scheduler {
            config,
            ring,
            stats: SchedStats::default(),
            tele: Telemetry::disabled(),
            adapt: None,
        }
    }

    /// Attach a telemetry recorder (already tagged with the owning rank).
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// One-call construction for a middleware hook surface: build the
    /// scheduler, attach telemetry, and (for the adaptive scheme) enable
    /// the online threshold controller for `adaptive_arch`.
    pub fn configured(
        config: FusionConfig,
        adaptive_arch: Option<&GpuArch>,
        tele: Telemetry,
    ) -> Self {
        let mut sched = Scheduler::new(config);
        sched.set_telemetry(tele);
        if let Some(arch) = adaptive_arch {
            sched.enable_adaptive(arch);
        }
        sched
    }

    /// Turn on online threshold adaptation (the *Proposed-Adaptive*
    /// scheme): every flush feeds an [`AdaptiveThreshold`] controller that
    /// may retune `threshold_bytes` before the next enqueue.
    pub fn enable_adaptive(&mut self, arch: &GpuArch) {
        self.adapt = Some(AdaptiveThreshold::new(arch.clone()));
    }

    /// The adaptive controller, when enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveThreshold> {
        self.adapt.as_ref()
    }

    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// ① Enqueue a request at `now`. Returns the UID (or rejection) and the
    /// CPU cost of the scheduling work, which the caller charges to its rank
    /// clock.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &mut self,
        now: Time,
        op: FusionOp,
        origin: DevPtr,
        target: DevPtr,
        layout: Arc<Layout>,
        count: u64,
        bw_cap: Option<f64>,
    ) -> (Result<Uid, EnqueueError>, Duration) {
        let bytes = layout.total_bytes(count);
        let class = layout.plan_for(count).class();
        let res = self.ring.enqueue(op, origin, target, layout, count, bw_cap);
        match res {
            Ok(uid) => {
                self.stats.enqueued += 1;
                self.stats.class_counts[class.index()] += 1;
                let occupancy = self.ring.occupied() as u32;
                self.tele.instant(Lane::Host, now, || Payload::Enqueue {
                    uid: uid.0,
                    bytes,
                    ring_occupancy: occupancy,
                });
                self.tele
                    .counter(now, "ring_occupancy", self.ring.occupied() as f64);
            }
            Err(_) => {
                self.stats.rejected += 1;
                self.tele
                    .instant(Lane::Host, now, || Payload::EnqueueRejected { bytes });
            }
        }
        (res, self.config.enqueue_cost)
    }

    /// Are there pending (not yet fused) requests?
    pub fn has_pending(&self) -> bool {
        self.ring.pending_bytes() > 0 || !self.ring.pending().is_empty()
    }

    /// §IV-C scenario 2: pending bytes reached the fusion threshold.
    pub fn threshold_reached(&self) -> bool {
        self.ring.pending_bytes() >= self.config.threshold_bytes
    }

    /// Whether the ring is (nearly) full and should be drained.
    pub fn under_pressure(&self) -> bool {
        self.ring.occupied() + 1 >= self.ring.capacity()
    }

    /// Occupied ring slots (pending, busy, or completed-but-unretired).
    ///
    /// The backpressure ladder uses this as its liveness guard: a requeue
    /// after `RingFull` is only safe when at least one occupant will retire
    /// later and drain the queue.
    pub fn ring_occupied(&self) -> usize {
        self.ring.occupied()
    }

    /// ② Launch one fused kernel over the oldest pending requests (up to
    /// `max_fused`). Returns `None` when nothing is pending.
    ///
    /// The caller is responsible for applying the batch's data movement to
    /// its memory pools (it owns them) and for scheduling
    /// [`Scheduler::signal_completion`] at each `launch.request_done[i]`.
    pub fn flush(
        &mut self,
        now: Time,
        gpu: &mut Gpu,
        stream: StreamId,
        reason: FlushReason,
    ) -> Option<FlushedBatch> {
        let pending = self.ring.pending();
        if pending.is_empty() {
            return None;
        }
        let batch: Vec<Uid> = pending.into_iter().take(self.config.max_fused).collect();
        let mut works: Vec<FusedWork> = Vec::with_capacity(batch.len());
        let mut unpacks: Vec<bool> = Vec::with_capacity(batch.len());
        for &uid in &batch {
            let req = self.ring.get_mut(uid).expect("pending request is live");
            req.request_status = Status::Busy;
            unpacks.push(req.op == FusionOp::Unpack);
            works.push(req.work());
        }
        let launch = gpu.launch_fused_policy(now, stream, &works, self.config.partition);
        let mut batch_bytes = 0u64;
        let mut batch_blocks = 0u64;
        for w in &works {
            self.stats.bytes_fused += w.stats.total_bytes;
            batch_bytes += w.stats.total_bytes;
            batch_blocks += w.stats.num_blocks;
        }
        self.stats.kernels_launched += 1;
        self.stats.requests_fused += batch.len() as u64;
        let n = batch.len() as u64;
        self.stats.batch_min = if self.stats.batch_min == 0 {
            n
        } else {
            self.stats.batch_min.min(n)
        };
        self.stats.batch_max = self.stats.batch_max.max(n);
        match reason {
            FlushReason::SyncPoint => self.stats.flushes_sync += 1,
            FlushReason::ThresholdReached => self.stats.flushes_threshold += 1,
            FlushReason::RingPressure => self.stats.flushes_pressure += 1,
        }
        if self.tele.is_enabled() {
            let requests = batch.len() as u32;
            self.tele
                .instant(Lane::Host, now, || Payload::FlushDecision {
                    reason: reason.tag(),
                    requests,
                    bytes: batch_bytes,
                });
            self.tele
                .span(Lane::Stream(stream.0), launch.start, launch.done, || {
                    Payload::FusedExec {
                        requests,
                        bytes: batch_bytes,
                        reason: reason.tag(),
                    }
                });
            for ((&uid, w), (&done, &unpack)) in batch
                .iter()
                .zip(&works)
                .zip(launch.request_done.iter().zip(&unpacks))
            {
                self.tele
                    .span(Lane::Stream(stream.0), launch.start, done, || {
                        Payload::PackSpan {
                            uid: uid.0,
                            bytes: w.stats.total_bytes,
                            unpack,
                        }
                    });
            }
        }
        if let Some(adapt) = self.adapt.as_mut() {
            let feedback = FlushFeedback {
                reason,
                requests: batch.len() as u64,
                bytes: batch_bytes,
                blocks: batch_blocks,
                body: launch.done - launch.start,
                launch: gpu.arch.launch_cpu,
            };
            if let Some(next) = adapt.observe(self.config.threshold_bytes, &feedback) {
                let old = self.config.threshold_bytes;
                self.config.threshold_bytes = next;
                self.stats.threshold_adjusts += 1;
                self.tele
                    .instant(Lane::Host, now, || Payload::ThresholdAdjust {
                        old_bytes: old,
                        new_bytes: next,
                    });
                self.tele
                    .counter(now, "fusion_threshold_bytes", next as f64);
            }
        }
        Some(FlushedBatch {
            reason,
            uids: batch,
            launch,
        })
    }

    /// ② (degraded) Drain the oldest pending requests with one *non-fused*
    /// kernel launch per request — the recovery ladder taken when the
    /// cooperative launch fails under fault injection. Serial launches on
    /// one stream: the CPU pays a driver call per request and the kernels
    /// run FIFO, exactly the pre-fusion baseline the paper improves on.
    ///
    /// The returned batch is shaped like a fused one (`uids` aligned with
    /// `launch.request_done`), so completion signalling, retirement, and
    /// data-movement handling are unchanged downstream.
    pub fn flush_degraded(
        &mut self,
        now: Time,
        gpu: &mut Gpu,
        stream: StreamId,
        reason: FlushReason,
    ) -> Option<FlushedBatch> {
        let pending = self.ring.pending();
        if pending.is_empty() {
            return None;
        }
        let batch: Vec<Uid> = pending.into_iter().take(self.config.max_fused).collect();
        let mut batch_bytes = 0u64;
        let mut batch_blocks = 0u64;
        let mut cpu = now;
        let mut first_start = None;
        let mut request_done = Vec::with_capacity(batch.len());
        let mut done = now;
        for &uid in &batch {
            let req = self.ring.get_mut(uid).expect("pending request is live");
            req.request_status = Status::Busy;
            let work = req.work();
            batch_bytes += work.stats.total_bytes;
            batch_blocks += work.stats.num_blocks;
            let k = gpu.launch_kernel(cpu, stream, work.stats);
            cpu = k.cpu_release;
            first_start.get_or_insert(k.start);
            request_done.push(k.done);
            done = done.max(k.done);
        }
        let launch = FusedLaunch {
            cpu_release: cpu,
            start: first_start.unwrap_or(now),
            request_done,
            done,
        };
        self.stats.kernels_launched += batch.len() as u64;
        self.stats.degraded_flushes += 1;
        match reason {
            FlushReason::SyncPoint => self.stats.flushes_sync += 1,
            FlushReason::ThresholdReached => self.stats.flushes_threshold += 1,
            FlushReason::RingPressure => self.stats.flushes_pressure += 1,
        }
        if self.tele.is_enabled() {
            let requests = batch.len() as u32;
            self.tele
                .instant(Lane::Host, now, || Payload::FlushDecision {
                    reason: reason.tag(),
                    requests,
                    bytes: batch_bytes,
                });
        }
        // The controller still observes the flush: serial per-request
        // kernels collapse the measured pack bandwidth, which is exactly
        // the signal that should push the threshold around under faults.
        if let Some(adapt) = self.adapt.as_mut() {
            let feedback = FlushFeedback {
                reason,
                requests: batch.len() as u64,
                bytes: batch_bytes,
                blocks: batch_blocks,
                body: launch.done - launch.start,
                launch: gpu.arch.launch_cpu * batch.len() as u64,
            };
            if let Some(next) = adapt.observe(self.config.threshold_bytes, &feedback) {
                let old = self.config.threshold_bytes;
                self.config.threshold_bytes = next;
                self.stats.threshold_adjusts += 1;
                self.tele
                    .instant(Lane::Host, now, || Payload::ThresholdAdjust {
                        old_bytes: old,
                        new_bytes: next,
                    });
                self.tele
                    .counter(now, "fusion_threshold_bytes", next as f64);
            }
        }
        Some(FlushedBatch {
            reason,
            uids: batch,
            launch,
        })
    }

    /// ③ The device signals completion of `uid` (called by the event loop
    /// at the instant the request's cooperative group finishes).
    ///
    /// Returns `false` for an unknown UID — a duplicate or stale completion
    /// (possible under fault injection) is dropped rather than fatal.
    pub fn signal_completion(&mut self, uid: Uid) -> bool {
        let Some(req) = self.ring.get_mut(uid) else {
            return false;
        };
        debug_assert_eq!(
            req.request_status,
            Status::Busy,
            "completion for a request that was never launched"
        );
        req.response_status = Status::Completed;
        true
    }

    /// ④ Progress-engine query at `now`: is `uid` complete? Returns the
    /// answer and the CPU cost of the check.
    pub fn query(&mut self, now: Time, uid: Uid) -> (bool, Duration) {
        self.stats.queries += 1;
        let complete = self.ring.get(uid).is_some_and(|r| r.is_complete());
        self.tele.instant(Lane::Host, now, || Payload::Query {
            uid: uid.0,
            ready: complete,
        });
        (complete, self.config.query_cost)
    }

    /// Read a live request (for the caller to apply data movement).
    pub fn request(&self, uid: Uid) -> &FusionRequest {
        self.ring
            .get(uid)
            .unwrap_or_else(|| panic!("unknown request {uid:?}"))
    }

    /// Consume a completed request at `now`, freeing its ring slot. Returns
    /// the CPU cost of the completion handling, or zero for an unknown UID
    /// (a stale retirement is ignored, not fatal).
    pub fn retire(&mut self, now: Time, uid: Uid) -> Duration {
        if !self.ring.retire(uid) {
            return Duration::ZERO;
        }
        let occupancy = self.ring.occupied() as u32;
        self.tele.instant(Lane::Host, now, || Payload::Retire {
            uid: uid.0,
            ring_occupancy: occupancy,
        });
        self.tele.counter(now, "ring_occupancy", occupancy as f64);
        self.config.complete_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_datatype::TypeBuilder;
    use fusedpack_gpu::{DataMode, GpuArch, HostLink, SegmentStats};

    fn gpu() -> Gpu {
        Gpu::new(
            GpuArch::v100(),
            1 << 22,
            DataMode::ModelOnly,
            HostLink::nvlink2_cpu(),
            2,
        )
    }

    fn layout(bytes_per_elem: u64) -> Arc<Layout> {
        // bytes_per_elem across 2 blocks.
        let half = bytes_per_elem / 2;
        Arc::new(Layout::of(&TypeBuilder::vector(
            2,
            half,
            half + 8,
            TypeBuilder::byte(),
        )))
    }

    fn sched(threshold: u64) -> Scheduler {
        Scheduler::new(FusionConfig::with_threshold(threshold))
    }

    fn enqueue(s: &mut Scheduler, bytes: u64) -> Uid {
        let (res, _cost) = s.enqueue(
            Time(0),
            FusionOp::Pack,
            DevPtr { addr: 0, len: 4096 },
            DevPtr {
                addr: 8192,
                len: 4096,
            },
            layout(bytes),
            1,
            None,
        );
        res.expect("ring has room")
    }

    #[test]
    fn threshold_triggers_scenario_two() {
        let mut s = sched(1024);
        enqueue(&mut s, 512);
        assert!(!s.threshold_reached());
        enqueue(&mut s, 512);
        assert!(s.threshold_reached(), "1024 pending bytes >= threshold");
    }

    #[test]
    fn flush_fuses_all_pending_into_one_kernel() {
        let mut s = sched(u64::MAX);
        let mut g = gpu();
        let uids: Vec<Uid> = (0..6).map(|_| enqueue(&mut s, 256)).collect();
        let batch = s
            .flush(Time(0), &mut g, StreamId(0), FlushReason::SyncPoint)
            .expect("pending work");
        assert_eq!(batch.uids, uids);
        assert_eq!(batch.launch.request_done.len(), 6);
        assert_eq!(g.kernels_launched(), 1, "one fused kernel for 6 requests");
        assert!(!s.has_pending(), "everything went busy");
        assert_eq!(s.stats().fusion_degree(), 6.0);
    }

    #[test]
    fn flush_respects_max_fused() {
        let cfg = FusionConfig {
            max_fused: 4,
            ..FusionConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        let mut g = gpu();
        for _ in 0..10 {
            enqueue(&mut s, 128);
        }
        let batch = s
            .flush(Time(0), &mut g, StreamId(0), FlushReason::ThresholdReached)
            .expect("pending");
        assert_eq!(batch.uids.len(), 4);
        assert!(s.has_pending(), "6 requests remain pending");
    }

    #[test]
    fn completion_protocol_round_trip() {
        let mut s = sched(u64::MAX);
        let mut g = gpu();
        let uid = enqueue(&mut s, 256);
        let (done, _) = s.query(Time(0), uid);
        assert!(!done, "not complete before launch");
        let batch = s
            .flush(Time(0), &mut g, StreamId(0), FlushReason::SyncPoint)
            .expect("pending");
        let (done, _) = s.query(Time(0), uid);
        assert!(!done, "busy, response not signalled yet");
        s.signal_completion(uid);
        let (done, _) = s.query(Time(0), uid);
        assert!(done, "response status flipped");
        let _ = s.retire(Time(0), uid);
        let _ = batch;
    }

    #[test]
    fn flush_on_empty_ring_is_none() {
        let mut s = sched(1024);
        let mut g = gpu();
        assert!(s
            .flush(Time(0), &mut g, StreamId(0), FlushReason::SyncPoint)
            .is_none());
    }

    #[test]
    fn rejection_counts_and_pressure() {
        let cfg = FusionConfig {
            ring_capacity: 2,
            ..FusionConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        enqueue(&mut s, 128);
        assert!(s.under_pressure(), "one free slot left");
        enqueue(&mut s, 128);
        let (res, _) = s.enqueue(
            Time(0),
            FusionOp::Pack,
            DevPtr { addr: 0, len: 64 },
            DevPtr { addr: 64, len: 64 },
            layout(128),
            1,
            None,
        );
        assert!(res.is_err());
        assert_eq!(s.stats().rejected, 1);
    }

    #[test]
    fn mixed_op_batch_records_bytes() {
        let mut s = sched(u64::MAX);
        let mut g = gpu();
        let (pack, _) = s.enqueue(
            Time(0),
            FusionOp::Pack,
            DevPtr { addr: 0, len: 512 },
            DevPtr {
                addr: 512,
                len: 512,
            },
            layout(256),
            1,
            None,
        );
        let (ipc, _) = s.enqueue(
            Time(0),
            FusionOp::DirectIpc,
            DevPtr {
                addr: 1024,
                len: 512,
            },
            DevPtr {
                addr: 2048,
                len: 512,
            },
            layout(256),
            1,
            Some(75.0e9),
        );
        pack.expect("ok");
        ipc.expect("ok");
        let batch = s
            .flush(Time(0), &mut g, StreamId(0), FlushReason::SyncPoint)
            .expect("pending");
        assert_eq!(batch.uids.len(), 2);
        assert_eq!(s.stats().bytes_fused, 512);
    }

    #[test]
    fn degraded_flush_preserves_batch_shape_and_protocol() {
        let mut s = sched(u64::MAX);
        let mut g = gpu();
        let uids: Vec<Uid> = (0..4).map(|_| enqueue(&mut s, 4096)).collect();
        let batch = s
            .flush_degraded(Time(0), &mut g, StreamId(0), FlushReason::SyncPoint)
            .expect("pending work");
        assert_eq!(batch.uids, uids);
        assert_eq!(batch.launch.request_done.len(), 4);
        assert!(batch
            .launch
            .request_done
            .iter()
            .all(|&t| t <= batch.launch.done));
        assert_eq!(g.kernels_launched(), 4, "one plain kernel per request");
        assert_eq!(g.fusion_counters().0, 0, "nothing fused");
        assert_eq!(s.stats().degraded_flushes, 1);
        assert!(!s.has_pending());
        // Completion/retire protocol unchanged downstream.
        for &uid in &batch.uids {
            assert!(s.signal_completion(uid));
            let (ready, _) = s.query(Time(0), uid);
            assert!(ready);
            let _ = s.retire(Time(0), uid);
        }
    }

    #[test]
    fn degraded_flush_slower_than_fused() {
        let mut fused = sched(u64::MAX);
        let mut degraded = sched(u64::MAX);
        let mut g1 = gpu();
        let mut g2 = gpu();
        for _ in 0..8 {
            enqueue(&mut fused, 16 * 1024);
            enqueue(&mut degraded, 16 * 1024);
        }
        let a = fused
            .flush(Time(0), &mut g1, StreamId(0), FlushReason::SyncPoint)
            .expect("pending");
        let b = degraded
            .flush_degraded(Time(0), &mut g2, StreamId(0), FlushReason::SyncPoint)
            .expect("pending");
        assert!(
            a.launch.done < b.launch.done,
            "fused {:?} must beat serial degraded {:?}",
            a.launch.done,
            b.launch.done
        );
    }

    #[test]
    fn unknown_completion_and_retire_are_tolerated() {
        let mut s = sched(1024);
        assert!(!s.signal_completion(Uid(404)), "unknown uid dropped");
        assert_eq!(
            s.retire(Time(0), Uid(404)),
            Duration::ZERO,
            "stale retire costs nothing"
        );
    }

    #[test]
    fn fused_path_cheaper_than_unfused_for_bulk() {
        // End-to-end scheduler comparison: 16 requests through the fusion
        // scheduler vs 16 standalone launches, measuring makespan.
        let stats = SegmentStats::new(16 * 1024, 128);
        let mut unfused = gpu();
        let mut t = Time(0);
        let mut last = Time(0);
        for _ in 0..16 {
            let k = unfused.launch_kernel(t, StreamId(0), stats);
            t = k.cpu_release;
            last = last.max(k.done);
        }

        let mut s = sched(u64::MAX);
        let mut g = gpu();
        let mut cpu = Time(0);
        for _ in 0..16 {
            let uid = enqueue(&mut s, 16 * 1024);
            let (_, cost) = s.query(cpu, uid); // a poll per enqueue, pessimistic
            cpu = cpu + s.config().enqueue_cost + cost;
        }
        let batch = s
            .flush(cpu, &mut g, StreamId(0), FlushReason::SyncPoint)
            .expect("pending");
        assert!(
            batch.launch.done < last,
            "fused makespan {:?} must beat serial {:?}",
            batch.launch.done,
            last
        );
    }
}
