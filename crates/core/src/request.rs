//! Fusion request objects — the entries of the request list (§IV-A1).

use fusedpack_datatype::Layout;
use fusedpack_gpu::{DevPtr, FusedWork, SegmentStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Unique request identifier handed back to the progress engine. The paper
/// uses a negative UID to signal rejection; this engine uses
/// `Result<Uid, EnqueueError>` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Uid(pub u64);

/// The operation a request asks the fused kernel to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionOp {
    /// Gather a non-contiguous origin buffer into a contiguous target.
    Pack,
    /// Scatter a contiguous origin buffer into a non-contiguous target.
    Unpack,
    /// Direct non-contiguous load/store between peer GPUs over NVLink/PCIe
    /// (the zero-copy scheme of \[24\], fused as a third operation kind).
    DirectIpc,
}

/// Lifecycle states shared by the request- and response-status fields.
///
/// `request_status` is written by the scheduler (host side); in the CUDA
/// implementation `response_status` is written by a GPU thread as soon as a
/// cooperative group finishes its request — here it is advanced by the
/// kernel-completion events of the simulation, which stand in for those
/// device-visible flag writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Slot is free.
    Idle,
    /// Enqueued, waiting to be fused.
    Pending,
    /// Handed to a fused kernel currently in flight.
    Busy,
    /// Operation finished.
    Completed,
}

/// One entry of the request list.
#[derive(Debug, Clone)]
pub struct FusionRequest {
    pub uid: Uid,
    pub op: FusionOp,
    /// Buffer read by the kernel (non-contiguous for Pack, contiguous for
    /// Unpack).
    pub origin: DevPtr,
    /// Buffer written by the kernel.
    pub target: DevPtr,
    /// Cached data layout entry (scheme of \[24\]).
    pub layout: Arc<Layout>,
    /// Number of datatype elements.
    pub count: u64,
    /// External bandwidth ceiling for this request's kernel (set for
    /// DirectIPC requests to the peer-link bandwidth; `None` for local
    /// pack/unpack).
    pub bw_cap: Option<f64>,
    /// Host-side view of the request lifecycle.
    pub request_status: Status,
    /// Device-side completion signal.
    pub response_status: Status,
}

impl FusionRequest {
    /// Payload bytes this request moves.
    pub fn bytes(&self) -> u64 {
        self.layout.total_bytes(self.count)
    }

    /// Shape summary for the GPU kernel cost model.
    pub fn stats(&self) -> SegmentStats {
        let (bytes, blocks) = self.layout.shape(self.count);
        SegmentStats::new(bytes, blocks)
    }

    /// The fused-kernel work descriptor for this request.
    pub fn work(&self) -> FusedWork {
        FusedWork {
            stats: self.stats(),
            bw_cap: self.bw_cap,
        }
    }

    /// The progress engine's completion check (§IV-A2 ④): compare request
    /// status to response status.
    pub fn is_complete(&self) -> bool {
        self.response_status == Status::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_datatype::TypeBuilder;

    fn req() -> FusionRequest {
        let layout = Arc::new(Layout::of(&TypeBuilder::vector(
            4,
            2,
            5,
            TypeBuilder::double(),
        )));
        FusionRequest {
            uid: Uid(7),
            op: FusionOp::Pack,
            origin: DevPtr { addr: 0, len: 1024 },
            target: DevPtr {
                addr: 2048,
                len: 256,
            },
            layout,
            count: 3,
            bw_cap: None,
            request_status: Status::Pending,
            response_status: Status::Idle,
        }
    }

    #[test]
    fn bytes_and_stats_follow_layout() {
        let r = req();
        assert_eq!(r.bytes(), 4 * 2 * 8 * 3);
        let s = r.stats();
        assert_eq!(s.total_bytes, 192);
        assert_eq!(s.num_blocks, 12);
    }

    #[test]
    fn completion_is_response_driven() {
        let mut r = req();
        assert!(!r.is_complete());
        r.request_status = Status::Completed; // host alone cannot complete it
        assert!(!r.is_complete());
        r.response_status = Status::Completed;
        assert!(r.is_complete());
    }
}
