//! Fusion request objects — the entries of the request list (§IV-A1).

use fusedpack_datatype::{Layout, LayoutClass};
use fusedpack_gpu::{DevPtr, FusedWork, SegmentStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Unique request identifier handed back to the progress engine. The paper
/// uses a negative UID to signal rejection; this engine uses
/// `Result<Uid, EnqueueError>` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Uid(pub u64);

/// The operation a request asks the fused kernel to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionOp {
    /// Gather a non-contiguous origin buffer into a contiguous target.
    Pack,
    /// Scatter a contiguous origin buffer into a non-contiguous target.
    Unpack,
    /// Direct non-contiguous load/store between peer GPUs over NVLink/PCIe
    /// (the zero-copy scheme of \[24\], fused as a third operation kind).
    DirectIpc,
}

/// Lifecycle states shared by the request- and response-status fields.
///
/// `request_status` is written by the scheduler (host side); in the CUDA
/// implementation `response_status` is written by a GPU thread as soon as a
/// cooperative group finishes its request — here it is advanced by the
/// kernel-completion events of the simulation, which stand in for those
/// device-visible flag writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Slot is free.
    Idle,
    /// Enqueued, waiting to be fused.
    Pending,
    /// Handed to a fused kernel currently in flight.
    Busy,
    /// Operation finished.
    Completed,
}

/// One entry of the request list.
#[derive(Debug, Clone)]
pub struct FusionRequest {
    pub uid: Uid,
    pub op: FusionOp,
    /// Buffer read by the kernel (non-contiguous for Pack, contiguous for
    /// Unpack).
    pub origin: DevPtr,
    /// Buffer written by the kernel.
    pub target: DevPtr,
    /// Cached data layout entry (scheme of \[24\]).
    pub layout: Arc<Layout>,
    /// Number of datatype elements.
    pub count: u64,
    /// Shape summary, resolved once at enqueue from the compiled layout
    /// (the cost model and work descriptor read it on every query/flush).
    pub stats: SegmentStats,
    /// Count-resolved copy-plan class, memoized at enqueue.
    pub class: LayoutClass,
    /// External bandwidth ceiling for this request's kernel (set for
    /// DirectIPC requests to the peer-link bandwidth; `None` for local
    /// pack/unpack).
    pub bw_cap: Option<f64>,
    /// Host-side view of the request lifecycle.
    pub request_status: Status,
    /// Device-side completion signal.
    pub response_status: Status,
}

impl FusionRequest {
    /// Resolve the memoized shape and class for `(layout, count)` — the
    /// single construction-time classification every later read reuses.
    pub fn classify(layout: &Layout, count: u64) -> (SegmentStats, LayoutClass) {
        let (bytes, blocks) = layout.shape(count);
        (
            SegmentStats::new(bytes, blocks),
            layout.plan_for(count).class(),
        )
    }

    /// Payload bytes this request moves.
    pub fn bytes(&self) -> u64 {
        self.stats.total_bytes
    }

    /// Shape summary for the GPU kernel cost model (memoized at enqueue).
    pub fn stats(&self) -> SegmentStats {
        self.stats
    }

    /// The copy-plan class the layout compiler resolved for this request
    /// (memoized at enqueue).
    pub fn class(&self) -> LayoutClass {
        self.class
    }

    /// The fused-kernel work descriptor for this request.
    pub fn work(&self) -> FusedWork {
        FusedWork {
            stats: self.stats(),
            bw_cap: self.bw_cap,
        }
    }

    /// The progress engine's completion check (§IV-A2 ④): compare request
    /// status to response status.
    pub fn is_complete(&self) -> bool {
        self.response_status == Status::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_datatype::TypeBuilder;

    fn req() -> FusionRequest {
        let layout = Arc::new(Layout::of(&TypeBuilder::vector(
            4,
            2,
            5,
            TypeBuilder::double(),
        )));
        let (stats, class) = FusionRequest::classify(&layout, 3);
        FusionRequest {
            uid: Uid(7),
            op: FusionOp::Pack,
            origin: DevPtr { addr: 0, len: 1024 },
            target: DevPtr {
                addr: 2048,
                len: 256,
            },
            layout,
            count: 3,
            stats,
            class,
            bw_cap: None,
            request_status: Status::Pending,
            response_status: Status::Idle,
        }
    }

    #[test]
    fn bytes_and_stats_follow_layout() {
        let r = req();
        assert_eq!(r.bytes(), 4 * 2 * 8 * 3);
        let s = r.stats();
        assert_eq!(s.total_bytes, 192);
        assert_eq!(s.num_blocks, 12);
        // Uniform within one element, but extent (136) ≠ runs × stride
        // (160): the pattern breaks across the 3 elements, so the
        // count-resolved plan degrades to the generic walk.
        assert_eq!(r.class(), LayoutClass::Generic);
        let (stats, class) = FusionRequest::classify(&r.layout, 1);
        assert_eq!(stats.num_blocks, 4);
        assert_eq!(class, LayoutClass::FixedRuns, "single element is uniform");
    }

    #[test]
    fn completion_is_response_driven() {
        let mut r = req();
        assert!(!r.is_complete());
        r.request_status = Status::Completed; // host alone cannot complete it
        assert!(!r.is_complete());
        r.response_status = Status::Completed;
        assert!(r.is_complete());
    }
}
