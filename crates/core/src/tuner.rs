//! Fusion-threshold tuning.
//!
//! Two mechanisms:
//!
//! * [`ThresholdTuner`] — the paper's §IV-C heuristic: sweep candidate
//!   thresholds on the target workload/system (Fig. 8) and keep the argmin.
//!   This is what the evaluation's *Proposed-Tuned* configuration uses.
//! * [`predict_threshold`] — the model-based prediction the paper leaves as
//!   future work (§IV-C, §VII): choose the smallest pending-byte threshold
//!   such that the fused kernel's *body* time is at least the kernel launch
//!   overhead, so launches are always amortized. Closed-form from the cost
//!   model: `S ≥ launch_cpu · mem_bw · eff_stride(avg_block)` (clamped to a
//!   sane range).
//!
//! The predictor also seeds the *online* controller,
//! [`crate::adapt::AdaptiveThreshold`], which replays the same closed form
//! against measured per-flush bandwidth and retunes the threshold while the
//! application runs; its bounds are this tuner's grid endpoints.

use fusedpack_gpu::{kernel, GpuArch};
use fusedpack_sim::Duration;

/// Records `(threshold, latency)` observations and reports the best.
#[derive(Debug, Clone, Default)]
pub struct ThresholdTuner {
    samples: Vec<(u64, Duration)>,
}

impl ThresholdTuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Standard sweep grid used by the Fig. 8 experiment: 16 KB … 4 MB.
    pub fn default_grid() -> Vec<u64> {
        (0..9).map(|i| (16 * 1024) << i).collect()
    }

    /// Record one measurement.
    pub fn record(&mut self, threshold_bytes: u64, latency: Duration) {
        self.samples.push((threshold_bytes, latency));
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The threshold with the lowest observed latency (ties → smaller
    /// threshold, which delays communication less).
    pub fn best(&self) -> Option<u64> {
        self.samples
            .iter()
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|&(t, _)| t)
    }

    /// All samples, for reporting.
    pub fn samples(&self) -> &[(u64, Duration)] {
        &self.samples
    }
}

/// Model-based threshold prediction (the paper's future-work extension).
///
/// Principle from §IV-C: "make sure the running time of the fused kernel is
/// longer than the kernel launch overhead". Given the workload's average
/// contiguous block length, invert the kernel cost model to find the byte
/// count whose body time equals `launch_cpu`, then round up to the next
/// power of two for stability. The result is clamped to `[64 KB, 4 MB]` —
/// below that launches dominate anyway, above it delayed communication
/// stops overlapping (the "over-fused" regime of Fig. 8).
pub fn predict_threshold(arch: &GpuArch, avg_block_bytes: f64) -> u64 {
    let eff = kernel::stride_efficiency(arch, avg_block_bytes);
    let bytes = arch.launch_cpu.as_secs_f64() * arch.mem_bw * eff;
    let clamped = bytes.clamp(64.0 * 1024.0, 4.0 * 1024.0 * 1024.0);
    (clamped as u64).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_picks_minimum() {
        let mut t = ThresholdTuner::new();
        t.record(16 * 1024, Duration::from_micros(900)); // under-fused
        t.record(128 * 1024, Duration::from_micros(400));
        t.record(512 * 1024, Duration::from_micros(250)); // sweet spot
        t.record(4 * 1024 * 1024, Duration::from_micros(700)); // over-fused
        assert_eq!(t.best(), Some(512 * 1024));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ties_prefer_smaller_threshold() {
        // Whichever order the tie arrives in, the smaller threshold wins
        // (it delays communication less for the same latency).
        let mut t = ThresholdTuner::new();
        t.record(1024 * 1024, Duration::from_micros(100));
        t.record(64 * 1024, Duration::from_micros(100));
        assert_eq!(t.best(), Some(64 * 1024));

        let mut t = ThresholdTuner::new();
        t.record(64 * 1024, Duration::from_micros(100));
        t.record(1024 * 1024, Duration::from_micros(100));
        t.record(256 * 1024, Duration::from_micros(100));
        assert_eq!(t.best(), Some(64 * 1024));
    }

    #[test]
    fn empty_tuner_has_no_best() {
        assert_eq!(ThresholdTuner::new().best(), None);
        assert!(ThresholdTuner::new().is_empty());
    }

    #[test]
    fn default_grid_spans_fig8_range() {
        let grid = ThresholdTuner::default_grid();
        assert_eq!(grid.first(), Some(&(16 * 1024)));
        assert_eq!(grid.last(), Some(&(4 * 1024 * 1024)));
        assert!(grid.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn default_grid_is_pinned() {
        // The adaptive controller's clamp range (`AdaptiveThreshold::new`)
        // and the Fig. 8 sweep both derive from this grid's endpoints, so
        // its exact contents are a contract: changing it is a deliberate
        // decision, not a drive-by.
        assert_eq!(
            ThresholdTuner::default_grid(),
            vec![
                16 * 1024,
                32 * 1024,
                64 * 1024,
                128 * 1024,
                256 * 1024,
                512 * 1024,
                1024 * 1024,
                2 * 1024 * 1024,
                4 * 1024 * 1024,
            ]
        );
    }

    #[test]
    fn prediction_lands_near_paper_optimum() {
        // The paper observes ~512 KB works well across its workloads; for a
        // mid-range block size the prediction should land in the same
        // decade.
        let arch = GpuArch::v100();
        let t = predict_threshold(&arch, 256.0);
        assert!(
            (128 * 1024..=4 * 1024 * 1024).contains(&t),
            "predicted {t} bytes"
        );
    }

    #[test]
    fn sparse_layouts_predict_smaller_thresholds() {
        // Tiny blocks -> low effective bandwidth -> fewer bytes needed to
        // out-run the launch overhead.
        let arch = GpuArch::v100();
        let sparse = predict_threshold(&arch, 16.0);
        let dense = predict_threshold(&arch, 64.0 * 1024.0);
        assert!(sparse < dense);
    }

    #[test]
    fn prediction_is_clamped_and_pow2() {
        let arch = GpuArch::v100();
        for avg in [1.0, 64.0, 4096.0, 1e9] {
            let t = predict_threshold(&arch, avg);
            assert!(t.is_power_of_two());
            assert!((64 * 1024..=8 * 1024 * 1024).contains(&t));
        }
    }
}
