//! The circular request list (paper Fig. 5, top).
//!
//! A fixed-capacity ring of request slots. The scheduler maintains `head`
//! (oldest pending entry) and `tail` (next insertion point, "moved to the
//! next IDLE entry" after each enqueue). Requests complete — and are
//! retired — out of order, because cooperative groups signal per-request;
//! the ring therefore tolerates holes and the tail search skips occupied
//! slots.

use crate::request::{FusionOp, FusionRequest, Status, Uid};
use fusedpack_datatype::Layout;
use fusedpack_gpu::DevPtr;
use std::collections::HashMap;
use std::sync::Arc;

/// Why an enqueue was refused (the paper's "negative UID" fallback signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// Every slot is occupied; the progress engine should fall back to a
    /// non-fused path.
    RingFull,
}

/// The circular request buffer.
#[derive(Debug)]
pub struct RequestRing {
    slots: Vec<Option<FusionRequest>>,
    by_uid: HashMap<Uid, usize>,
    tail: usize,
    next_uid: u64,
    occupied: usize,
}

impl RequestRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        RequestRing {
            slots: (0..capacity).map(|_| None).collect(),
            by_uid: HashMap::with_capacity(capacity),
            tail: 0,
            next_uid: 0,
            occupied: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn occupied(&self) -> usize {
        self.occupied
    }

    pub fn is_full(&self) -> bool {
        self.occupied == self.slots.len()
    }

    /// Insert a new `Pending` request at the tail. Returns its UID, or
    /// [`EnqueueError::RingFull`].
    pub fn enqueue(
        &mut self,
        op: FusionOp,
        origin: DevPtr,
        target: DevPtr,
        layout: Arc<Layout>,
        count: u64,
        bw_cap: Option<f64>,
    ) -> Result<Uid, EnqueueError> {
        if self.is_full() {
            return Err(EnqueueError::RingFull);
        }
        // Find the next IDLE entry from the tail.
        let cap = self.slots.len();
        let mut idx = self.tail;
        while self.slots[idx].is_some() {
            idx = (idx + 1) % cap;
        }
        let uid = Uid(self.next_uid);
        self.next_uid += 1;
        let (stats, class) = FusionRequest::classify(&layout, count);
        self.slots[idx] = Some(FusionRequest {
            uid,
            op,
            origin,
            target,
            layout,
            count,
            stats,
            class,
            bw_cap,
            request_status: Status::Pending,
            response_status: Status::Idle,
        });
        self.by_uid.insert(uid, idx);
        self.tail = (idx + 1) % cap;
        self.occupied += 1;
        Ok(uid)
    }

    pub fn get(&self, uid: Uid) -> Option<&FusionRequest> {
        self.by_uid
            .get(&uid)
            .and_then(|&idx| self.slots[idx].as_ref())
    }

    pub fn get_mut(&mut self, uid: Uid) -> Option<&mut FusionRequest> {
        let idx = *self.by_uid.get(&uid)?;
        self.slots[idx].as_mut()
    }

    /// All `Pending` requests in FIFO (UID) order.
    pub fn pending(&self) -> Vec<Uid> {
        let mut uids: Vec<Uid> = self
            .slots
            .iter()
            .flatten()
            .filter(|r| r.request_status == Status::Pending)
            .map(|r| r.uid)
            .collect();
        uids.sort_unstable();
        uids
    }

    /// Sum of payload bytes over pending requests.
    pub fn pending_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .filter(|r| r.request_status == Status::Pending)
            .map(|r| r.bytes())
            .sum()
    }

    /// Free a slot once the progress engine has consumed the completion.
    ///
    /// Returns `false` if `uid` is not in the ring — a stale or duplicate
    /// retirement (possible under fault injection) is ignored rather than
    /// tearing the ring down.
    pub fn retire(&mut self, uid: Uid) -> bool {
        let Some(idx) = self.by_uid.remove(&uid) else {
            return false;
        };
        let slot = self.slots[idx].take().expect("slot occupied");
        debug_assert_eq!(slot.response_status, Status::Completed);
        self.occupied -= 1;
        true
    }

    /// Iterate over every live request (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &FusionRequest> {
        self.slots.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_datatype::TypeBuilder;

    fn layout() -> Arc<Layout> {
        Arc::new(Layout::of(&TypeBuilder::vector(
            2,
            1,
            2,
            TypeBuilder::int(),
        )))
    }

    fn ptr() -> DevPtr {
        DevPtr { addr: 0, len: 64 }
    }

    fn enqueue_one(ring: &mut RequestRing) -> Uid {
        ring.enqueue(FusionOp::Pack, ptr(), ptr(), layout(), 1, None)
            .expect("ring has space")
    }

    #[test]
    fn uids_are_monotonic_and_fifo() {
        let mut ring = RequestRing::new(8);
        let a = enqueue_one(&mut ring);
        let b = enqueue_one(&mut ring);
        let c = enqueue_one(&mut ring);
        assert!(a < b && b < c);
        assert_eq!(ring.pending(), vec![a, b, c]);
        assert_eq!(ring.occupied(), 3);
    }

    #[test]
    fn full_ring_rejects() {
        let mut ring = RequestRing::new(2);
        enqueue_one(&mut ring);
        enqueue_one(&mut ring);
        assert!(ring.is_full());
        let err = ring
            .enqueue(FusionOp::Pack, ptr(), ptr(), layout(), 1, None)
            .unwrap_err();
        assert_eq!(err, EnqueueError::RingFull);
    }

    #[test]
    fn retire_frees_slot_for_reuse() {
        let mut ring = RequestRing::new(2);
        let a = enqueue_one(&mut ring);
        let b = enqueue_one(&mut ring);
        for uid in [a, b] {
            let r = ring.get_mut(uid).expect("live");
            r.request_status = Status::Busy;
            r.response_status = Status::Completed;
        }
        ring.retire(a);
        assert!(!ring.is_full());
        let c = enqueue_one(&mut ring);
        assert!(c > b);
        assert_eq!(ring.occupied(), 2);
        assert!(ring.get(a).is_none(), "retired entries are gone");
    }

    #[test]
    fn out_of_order_retirement_tolerates_holes() {
        let mut ring = RequestRing::new(4);
        let uids: Vec<Uid> = (0..4).map(|_| enqueue_one(&mut ring)).collect();
        // Complete and retire the *middle* two.
        for &uid in &uids[1..3] {
            let r = ring.get_mut(uid).expect("live");
            r.request_status = Status::Busy;
            r.response_status = Status::Completed;
            ring.retire(uid);
        }
        assert_eq!(ring.occupied(), 2);
        // New enqueues find the holes.
        let e = enqueue_one(&mut ring);
        let f = enqueue_one(&mut ring);
        assert!(ring.is_full());
        assert_eq!(ring.pending(), vec![uids[0], uids[3], e, f]);
    }

    #[test]
    fn pending_bytes_sums_payload() {
        let mut ring = RequestRing::new(4);
        enqueue_one(&mut ring); // vector(2,1,2) of int, count 1 = 8 bytes
        enqueue_one(&mut ring);
        assert_eq!(ring.pending_bytes(), 16);
        // Busy requests no longer count as pending.
        let uid = ring.pending()[0];
        ring.get_mut(uid).expect("live").request_status = Status::Busy;
        assert_eq!(ring.pending_bytes(), 8);
    }

    #[test]
    fn retiring_unknown_uid_is_rejected() {
        let mut ring = RequestRing::new(2);
        assert!(!ring.retire(Uid(99)), "unknown uid is refused, not fatal");
        let a = enqueue_one(&mut ring);
        let r = ring.get_mut(a).expect("live");
        r.request_status = Status::Busy;
        r.response_status = Status::Completed;
        assert!(ring.retire(a));
        assert!(!ring.retire(a), "double retire is refused");
        assert_eq!(ring.occupied(), 0);
    }
}
