//! Fusion framework configuration.

use fusedpack_gpu::PartitionPolicy;
use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};

/// Tunables of the fusion scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Launch a fused kernel once this many payload bytes are pending —
    /// the heuristic threshold of §IV-C. The paper observes ~512 KB to be
    /// near-optimal across its workloads and systems (Fig. 8).
    pub threshold_bytes: u64,
    /// Capacity of the circular request list.
    pub ring_capacity: usize,
    /// Maximum requests fused into a single kernel (bounds the kernel's
    /// argument array).
    pub max_fused: usize,
    /// CPU cost of enqueueing one request (create the request object, fill
    /// the entry, bump Tail). Together with completion handling this is the
    /// "scheduling" bucket of Fig. 11 — ~2 µs per message in the paper.
    pub enqueue_cost: Duration,
    /// CPU cost of completing/retiring one request on the host side.
    pub complete_cost: Duration,
    /// CPU cost of one status query (compare request vs response status).
    pub query_cost: Duration,
    /// Use fused DirectIPC requests (zero-copy load/store over NVLink/PCIe,
    /// the scheme of \[24\]) for intra-node peers instead of
    /// pack-transfer-unpack.
    pub enable_direct_ipc: bool,
    /// How the fused kernel partitions its thread-block budget across the
    /// batched requests (see [`fusedpack_gpu::PartitionPolicy`]). The
    /// default reproduces the paper's work-proportional split; the
    /// adaptive scheme uses the cost-guided variant.
    #[serde(default)]
    pub partition: PartitionPolicy,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            threshold_bytes: 512 * 1024,
            ring_capacity: 256,
            max_fused: 64,
            enqueue_cost: Duration::from_nanos(1_200),
            complete_cost: Duration::from_nanos(700),
            query_cost: Duration::from_nanos(120),
            enable_direct_ipc: true,
            partition: PartitionPolicy::default(),
        }
    }
}

impl FusionConfig {
    /// A config with a specific byte threshold (Fig. 8 sweeps this).
    pub fn with_threshold(threshold_bytes: u64) -> Self {
        FusionConfig {
            threshold_bytes,
            ..Self::default()
        }
    }

    /// A config whose threshold comes from the model-based prediction the
    /// paper sketches as future work (§IV-C): invert the kernel cost model
    /// so the fused kernel always outlives one launch overhead. See
    /// [`crate::tuner::predict_threshold`].
    pub fn predicted(arch: &fusedpack_gpu::GpuArch, avg_block_bytes: f64) -> Self {
        Self::with_threshold(crate::tuner::predict_threshold(arch, avg_block_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_optimum() {
        let c = FusionConfig::default();
        assert_eq!(c.threshold_bytes, 512 * 1024);
        // Scheduling cost per message (enqueue + complete) ~ 2us (Fig. 11).
        let per_msg = c.enqueue_cost + c.complete_cost;
        assert!((1.5..=2.5).contains(&per_msg.as_micros_f64()));
    }

    #[test]
    fn with_threshold_overrides_only_threshold() {
        let c = FusionConfig::with_threshold(16 * 1024);
        assert_eq!(c.threshold_bytes, 16 * 1024);
        assert_eq!(c.ring_capacity, FusionConfig::default().ring_capacity);
    }

    #[test]
    fn predicted_config_uses_the_cost_model() {
        let arch = fusedpack_gpu::GpuArch::v100();
        let sparse = FusionConfig::predicted(&arch, 4.0);
        let dense = FusionConfig::predicted(&arch, 64.0 * 1024.0);
        assert!(sparse.threshold_bytes < dense.threshold_bytes);
        assert!(sparse.threshold_bytes.is_power_of_two());
    }
}
