//! Property-based tests of the [`RequestRing`]: invariants that must hold
//! for any interleaving of enqueues and out-of-order retirements — the
//! access pattern the progress engine produces, including the
//! backpressure-requeue ladder the fault-injection paths exercise.

use fusedpack_core::{EnqueueError, FusionOp, RequestRing, Status, Uid};
use fusedpack_datatype::{Layout, TypeBuilder};
use fusedpack_gpu::DevPtr;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

fn layout() -> Arc<Layout> {
    Arc::new(Layout::of(&TypeBuilder::vector(
        2,
        1,
        2,
        TypeBuilder::int(),
    )))
}

fn ptr() -> DevPtr {
    DevPtr { addr: 0, len: 64 }
}

fn try_enqueue(ring: &mut RequestRing) -> Result<Uid, EnqueueError> {
    ring.enqueue(FusionOp::Pack, ptr(), ptr(), layout(), 1, None)
}

/// Mark a live request completed so `retire` passes its status invariant
/// (the progress engine only retires consumed completions).
fn complete(ring: &mut RequestRing, uid: Uid) {
    let r = ring.get_mut(uid).expect("live request");
    r.request_status = Status::Busy;
    r.response_status = Status::Completed;
}

/// One step of the driver: try to insert, or complete-and-retire the live
/// request at `victim % live.len()` (a no-op when none are live).
#[derive(Debug, Clone)]
enum Op {
    Enqueue,
    Retire { victim: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Enqueue),
        Just(Op::Enqueue),
        any::<usize>().prop_map(|victim| Op::Retire { victim }),
    ]
}

proptest! {
    /// Under arbitrary enqueue/retire interleavings with out-of-order
    /// retirement: no request is ever lost or duplicated (every issued UID
    /// is live in exactly one slot until its one successful retirement),
    /// UIDs are unique and monotonic, `occupied` reconciles with the
    /// model, and enqueue fails with `RingFull` exactly when the model
    /// says the ring is at capacity — never earlier, never later.
    #[test]
    fn no_request_lost_or_duplicated(
        cap in 1usize..9,
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let mut ring = RequestRing::new(cap);
        let mut live: Vec<Uid> = Vec::new();
        let mut last_uid: Option<Uid> = None;

        for op in ops {
            match op {
                Op::Enqueue => {
                    let res = try_enqueue(&mut ring);
                    if live.len() == cap {
                        prop_assert_eq!(
                            res, Err(EnqueueError::RingFull),
                            "full ring must refuse (live={})", live.len()
                        );
                    } else {
                        let uid = match res {
                            Ok(uid) => uid,
                            Err(e) => {
                                return Err(TestCaseError::fail(format!(
                                    "ring refused with {} free slots: {e:?}",
                                    cap - live.len()
                                )))
                            }
                        };
                        // Monotonic and unique: strictly above every
                        // UID ever issued.
                        if let Some(prev) = last_uid {
                            prop_assert!(uid > prev, "{uid:?} <= {prev:?}");
                        }
                        last_uid = Some(uid);
                        live.push(uid);
                    }
                }
                Op::Retire { victim } => {
                    if live.is_empty() {
                        // Nothing live: any retirement is stale and must
                        // be refused, not fatal.
                        prop_assert!(!ring.retire(Uid(u64::MAX)));
                        continue;
                    }
                    let uid = live.remove(victim % live.len());
                    complete(&mut ring, uid);
                    prop_assert!(ring.retire(uid), "live {uid:?} must retire");
                    prop_assert!(!ring.retire(uid), "double retire of {uid:?}");
                    prop_assert!(ring.get(uid).is_none(), "{uid:?} still visible");
                }
            }
            // Reconcile against the model after every step.
            prop_assert_eq!(ring.occupied(), live.len());
            prop_assert_eq!(ring.is_full(), live.len() == cap);
            for &uid in &live {
                prop_assert!(ring.get(uid).is_some(), "lost live {uid:?}");
            }
            let mut want: Vec<Uid> = live.clone();
            want.sort_unstable();
            prop_assert_eq!(ring.pending(), want, "pending() diverged from model");
        }
    }

    /// The backpressure-requeue ladder: operations refused by a full ring
    /// park in a FIFO queue and re-enqueue as retirements free slots. For
    /// any schedule of arrivals and retirements, parked operations must
    /// acquire UIDs in exactly their park order — per-lane FIFO is
    /// preserved end to end, and nothing parked is dropped.
    #[test]
    fn requeue_preserves_fifo_order(
        cap in 1usize..5,
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let mut ring = RequestRing::new(cap);
        // (lane tag in arrival order, uid once admitted)
        let mut parked: VecDeque<u64> = VecDeque::new();
        let mut admitted: Vec<(u64, Uid)> = Vec::new();
        let mut live: Vec<Uid> = Vec::new();
        let mut next_tag = 0u64;

        for op in ops {
            match op {
                Op::Enqueue => {
                    let tag = next_tag;
                    next_tag += 1;
                    // Arrivals behind a non-empty park queue must queue
                    // behind it — jumping ahead would reorder the lane.
                    if parked.is_empty() {
                        match try_enqueue(&mut ring) {
                            Ok(uid) => {
                                admitted.push((tag, uid));
                                live.push(uid);
                            }
                            Err(EnqueueError::RingFull) => parked.push_back(tag),
                        }
                    } else {
                        parked.push_back(tag);
                    }
                }
                Op::Retire { victim } => {
                    if live.is_empty() {
                        continue;
                    }
                    let uid = live.remove(victim % live.len());
                    complete(&mut ring, uid);
                    prop_assert!(ring.retire(uid));
                    // Drain the park queue front-first into freed slots,
                    // exactly as `drain_fusion_requeue` does.
                    while let Some(&tag) = parked.front() {
                        match try_enqueue(&mut ring) {
                            Ok(uid) => {
                                parked.pop_front();
                                admitted.push((tag, uid));
                                live.push(uid);
                            }
                            Err(EnqueueError::RingFull) => break,
                        }
                    }
                }
            }
        }
        // Lane order == admission order == UID order: any FIFO violation
        // shows up as an inversion in one of the two sequences.
        for pair in admitted.windows(2) {
            prop_assert!(
                pair[0].0 < pair[1].0,
                "lane reordered: tag {} admitted before tag {}",
                pair[1].0, pair[0].0
            );
            prop_assert!(
                pair[0].1 < pair[1].1,
                "uid inversion: {:?} then {:?}", pair[0].1, pair[1].1
            );
        }
        prop_assert_eq!(
            admitted.len() + parked.len(),
            next_tag as usize,
            "an arrival was dropped"
        );
    }
}
