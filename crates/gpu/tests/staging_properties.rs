//! Property-based tests of the staging [`BufferPool`]: invariants that
//! must hold for any interleaving of `take`/`put` — the access pattern
//! the adaptive flush path produces, where batch sizes (and therefore
//! staging-buffer lifetimes) shift as the threshold retunes online.

use fusedpack_gpu::BufferPool;
use proptest::prelude::*;

/// Mirrors `staging::MAX_FREE` (the freelist bound is part of the
/// observable contract: `free_len()` may never exceed it).
const MAX_FREE: usize = 64;

/// One step of the driver: acquire a buffer of `len` bytes, or release
/// the live buffer at `victim % live.len()` (a no-op when none are live).
#[derive(Debug, Clone)]
enum Op {
    Take { len: usize },
    Put { victim: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..16 * 1024).prop_map(|len| Op::Take { len }),
        any::<usize>().prop_map(|victim| Op::Put { victim }),
    ]
}

/// Fill `buf` with a pattern unique to acquisition number `tag`.
fn fill(buf: &mut Vec<u8>, len: usize, tag: u64) {
    buf.extend((0..len).map(|i| (tag as usize).wrapping_mul(31).wrapping_add(i) as u8));
}

/// Check that a live buffer still carries exactly the pattern written at
/// acquisition time — any aliasing with a recycled buffer would tear it.
fn check(buf: &[u8], len: usize, tag: u64) -> Result<(), TestCaseError> {
    prop_assert_eq!(buf.len(), len);
    for (i, &b) in buf.iter().enumerate() {
        let want = (tag as usize).wrapping_mul(31).wrapping_add(i) as u8;
        prop_assert_eq!(b, want, "live buffer (tag {}) corrupted at byte {}", tag, i);
    }
    Ok(())
}

proptest! {
    /// Across arbitrary take/put sequences: buffers come back empty with
    /// sufficient capacity, a recycled buffer never aliases a payload that
    /// is still live (every live buffer keeps its unique fill pattern for
    /// its whole lifetime), and the counters reconcile — hits + misses is
    /// exactly the number of `take` calls, released is exactly the number
    /// of returned buffers, and the freelist stays within its bound.
    #[test]
    fn recycling_never_aliases_live_payloads(ops in prop::collection::vec(arb_op(), 1..128)) {
        let pool = BufferPool::new();
        let mut live: Vec<(u64, usize, Vec<u8>)> = Vec::new(); // (tag, len, buf)
        let mut takes = 0u64;
        let mut puts = 0u64;
        let mut next_tag = 0u64;

        for op in ops {
            match op {
                Op::Take { len } => {
                    let mut buf = pool.take(len);
                    takes += 1;
                    prop_assert!(buf.is_empty(), "take() must hand out an empty buffer");
                    prop_assert!(buf.capacity() >= len, "capacity {} < requested {}", buf.capacity(), len);
                    let tag = next_tag;
                    next_tag += 1;
                    fill(&mut buf, len, tag);
                    live.push((tag, len, buf));
                }
                Op::Put { victim } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (tag, len, buf) = live.swap_remove(victim % live.len());
                    // The payload must be intact right up to release.
                    check(&buf, len, tag)?;
                    pool.put(buf);
                    puts += 1;
                }
            }
            // After every step, every live payload is still intact and the
            // freelist respects its bound.
            for (tag, len, buf) in &live {
                check(buf, *len, *tag)?;
            }
            prop_assert!(pool.free_len() <= MAX_FREE);

            let s = pool.stats();
            prop_assert_eq!(s.hits + s.misses, takes, "hits+misses must equal total take() calls");
            prop_assert_eq!(s.released, puts, "released must equal total put() calls");
            prop_assert!(s.dropped <= s.released);
            prop_assert!(s.hits <= puts, "a hit requires a previously returned buffer");
        }
    }

    /// Steady-state reuse: once every buffer has been returned, a second
    /// pass of identical requests in descending-size order is all hits and
    /// allocates nothing new (the freelist hands out largest-first).
    #[test]
    fn warm_pool_serves_repeat_traffic_from_the_freelist(
        mut lens in prop::collection::vec(1usize..64 * 1024, 1..MAX_FREE),
    ) {
        let pool = BufferPool::new();
        let taken: Vec<Vec<u8>> = lens.iter().map(|&len| pool.take(len)).collect();
        for buf in taken {
            pool.put(buf);
        }
        prop_assert_eq!(pool.stats().misses, lens.len() as u64);

        lens.sort_unstable_by(|a, b| b.cmp(a));
        for &len in &lens {
            let buf = pool.take(len);
            prop_assert!(buf.capacity() >= len);
            pool.put(buf);
        }
        let s = pool.stats();
        prop_assert_eq!(s.misses, lens.len() as u64, "warm pass must not allocate");
        prop_assert_eq!(s.hits, lens.len() as u64);
    }
}
