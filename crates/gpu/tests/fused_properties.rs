//! Property-based tests of the fused-kernel timing model: invariants that
//! must hold for any mix of requests.

use fusedpack_gpu::{fused, kernel, FusedWork, GpuArch, SegmentStats};
use proptest::prelude::*;

fn arb_stats() -> impl Strategy<Value = SegmentStats> {
    (1u64..1_000_000, 1u64..5_000)
        .prop_map(|(bytes, blocks)| SegmentStats::new(bytes, blocks.min(bytes)))
}

fn arb_arch() -> impl Strategy<Value = GpuArch> {
    prop_oneof![
        Just(GpuArch::k80()),
        Just(GpuArch::p100()),
        Just(GpuArch::v100()),
    ]
}

proptest! {
    /// The kernel retires exactly when its slowest request does, and no
    /// request finishes before the fixed startup.
    #[test]
    fn total_is_max_of_requests(arch in arb_arch(), works in prop::collection::vec(arb_stats(), 1..32)) {
        let t = fused::fused_timing(&arch, &works);
        let max = *t.per_request.iter().max().expect("non-empty");
        prop_assert_eq!(t.total, max);
        let fixed = arch.kernel_fixed + arch.fused_partition;
        for &d in &t.per_request {
            prop_assert!(d >= fixed);
        }
    }

    /// Fusing never beats the physics: each request in a fused kernel takes
    /// at least its standalone body time (it can only get fewer blocks).
    #[test]
    fn fusion_never_accelerates_a_request(
        arch in arb_arch(),
        works in prop::collection::vec(arb_stats(), 1..24),
    ) {
        let t = fused::fused_timing(&arch, &works);
        let fixed = arch.kernel_fixed + arch.fused_partition;
        for (w, &d) in works.iter().zip(&t.per_request) {
            let body = kernel::body_time(&arch, *w);
            prop_assert!(
                d + fusedpack_sim::Duration(1) >= fixed + body,
                "request {:?} finished in {} < fixed {} + body {}",
                w, d, fixed, body
            );
        }
    }

    /// Adding a request never makes existing requests finish sooner.
    #[test]
    fn adding_work_is_monotone(
        arch in arb_arch(),
        mut works in prop::collection::vec(arb_stats(), 1..16),
        extra in arb_stats(),
    ) {
        let before = fused::fused_timing(&arch, &works);
        works.push(extra);
        let after = fused::fused_timing(&arch, &works);
        for (b, a) in before.per_request.iter().zip(&after.per_request) {
            prop_assert!(a >= b, "existing request sped up: {} -> {}", b, a);
        }
    }

    /// In the paper's target regime — every request under-occupies the GPU
    /// and they all fit the machine together — one fused launch always
    /// beats launching the same requests back-to-back (launch amortization
    /// plus idle-gap removal).
    ///
    /// This is deliberately NOT asserted for arbitrary mixes: with static
    /// cooperative-group partitioning, co-fusing a tiny request with a
    /// machine-saturating one slows the big one proportionally, and the
    /// single saved launch may not pay for that — the "over-fused" regime
    /// the scheduler threshold exists to avoid (paper SIV-C).
    #[test]
    fn fused_beats_serial_singles_when_underoccupied(
        arch in arb_arch(),
        works in prop::collection::vec(
            (1u64..8_192, 1u64..6).prop_map(|(bytes, blocks)| {
                SegmentStats::new(bytes, blocks.min(bytes))
            }),
            2..4,
        ),
    ) {
        // All requests together fit even K80's 26-block capacity.
        let total_units: u64 = works.iter().map(|w| kernel::work_units(&arch, *w)).sum();
        prop_assume!(total_units <= arch.capacity_blocks());

        let fused_total = arch.launch_cpu + fused::fused_timing(&arch, &works).total;
        // Serial: each kernel pays CPU launch then runs alone.
        let serial: u64 = works
            .iter()
            .map(|w| (arch.launch_cpu + kernel::single_kernel_time(&arch, *w)).as_nanos())
            .sum();
        prop_assert!(
            fused_total.as_nanos() <= serial,
            "fused {} vs serial {}",
            fused_total,
            serial
        );
    }

    /// Bandwidth caps only ever slow things down.
    #[test]
    fn caps_are_monotone(arch in arb_arch(), stats in arb_stats(), cap in 1.0e9..100.0e9) {
        let free = fused::fused_timing(&arch, &[stats]);
        let capped = fused::fused_timing_capped(
            &arch,
            &[FusedWork { stats, bw_cap: Some(cap) }],
        );
        prop_assert!(capped.per_request[0] >= free.per_request[0]);
    }
}
