//! The fused kernel model.
//!
//! The paper's fused kernel takes an *array of requests* as input and uses
//! CUDA cooperative groups to partition its thread blocks across requests
//! (paper Fig. 6): each group of blocks independently executes the device
//! function for its request (pack, unpack, or DirectIPC) and then signals
//! per-request completion by writing the request's *response status* — there
//! is no synchronization at the kernel boundary.
//!
//! Timing model. Request `i` has work-unit demand `u_i` (see
//! [`crate::kernel::work_units`]). The GPU can keep `C = capacity_blocks()`
//! blocks resident:
//!
//! * if `Σu ≤ C` every request gets all the blocks it can use and runs at
//!   its standalone body rate — this is the paper's key observation that a
//!   fused kernel takes about as long as one typical kernel, because the
//!   individual kernels badly under-occupy the machine;
//! * if `Σu > C` blocks are assigned proportionally (`b_i = C·u_i/Σu`, at
//!   least one) and every request slows accordingly.
//!
//! Each request completes individually at `start + fixed + t_i`; the kernel
//! itself retires when the slowest group finishes.

use crate::arch::GpuArch;
use crate::kernel::{self, SegmentStats};
use fusedpack_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// How a fused kernel's thread blocks are divided among its requests.
///
/// The CUDA implementation's cooperative-group partitioning step is free to
/// pick any split; the choice decides which request gates the kernel when
/// the batch oversubscribes the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Equal split regardless of per-request work: `C / n` blocks each
    /// (at least one). The naive baseline — skewed batches starve their
    /// large request.
    Uniform,
    /// Proportional to each request's [`kernel::work_units`] — the split
    /// the static fusion scheme uses (default).
    #[default]
    WeightedByWork,
    /// Evaluate candidate splits (uniform, unit-weighted, and weighted by
    /// each request's modelled *time* demand `bytes / eff_stride`) with the
    /// kernel cost model and keep the one with the smallest makespan. By
    /// construction never slower than the other two policies.
    CostGuided,
}

impl PartitionPolicy {
    pub fn label(self) -> &'static str {
        match self {
            PartitionPolicy::Uniform => "uniform",
            PartitionPolicy::WeightedByWork => "weighted",
            PartitionPolicy::CostGuided => "cost-guided",
        }
    }
}

/// Per-request and whole-kernel durations of one fused launch (relative to
/// kernel start on the device).
#[derive(Debug, Clone)]
pub struct FusedTiming {
    /// Completion offset of each request, in input order.
    pub per_request: Vec<Duration>,
    /// When the whole kernel retires (max of the above plus fixed costs).
    pub total: Duration,
    /// Thread blocks assigned to each request (diagnostics / tests).
    pub blocks_assigned: Vec<u64>,
}

/// Absolute-time view of a fused launch as returned by
/// [`crate::device::Gpu::launch_fused`].
#[derive(Debug, Clone)]
pub struct FusedLaunch {
    /// When the launching CPU becomes free again.
    pub cpu_release: Time,
    /// When the kernel starts executing on the device.
    pub start: Time,
    /// Absolute completion instant of each request, in input order.
    pub request_done: Vec<Time>,
    /// When the whole kernel retires.
    pub done: Time,
}

/// One request inside a fused launch: its layout shape plus an optional
/// external bandwidth cap (a DirectIPC request touching a peer GPU's memory
/// is limited by the NVLink/PCIe path, not local HBM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedWork {
    pub stats: SegmentStats,
    pub bw_cap: Option<f64>,
}

impl From<SegmentStats> for FusedWork {
    fn from(stats: SegmentStats) -> Self {
        FusedWork {
            stats,
            bw_cap: None,
        }
    }
}

/// Compute the timing of a fused kernel over `works` on `arch`.
pub fn fused_timing(arch: &GpuArch, works: &[SegmentStats]) -> FusedTiming {
    let works: Vec<FusedWork> = works.iter().map(|&w| w.into()).collect();
    fused_timing_capped(arch, &works)
}

/// [`fused_timing`] with per-request bandwidth caps.
pub fn fused_timing_capped(arch: &GpuArch, works: &[FusedWork]) -> FusedTiming {
    fused_timing_policy(arch, works, PartitionPolicy::WeightedByWork)
}

/// [`fused_timing_capped`] under an explicit block-partitioning policy.
pub fn fused_timing_policy(
    arch: &GpuArch,
    works: &[FusedWork],
    policy: PartitionPolicy,
) -> FusedTiming {
    let fixed = arch.kernel_fixed + arch.fused_partition;
    if works.is_empty() {
        return FusedTiming {
            per_request: Vec::new(),
            total: fixed,
            blocks_assigned: Vec::new(),
        };
    }
    let capacity = arch.capacity_blocks();
    let units: Vec<u64> = works
        .iter()
        .map(|w| kernel::work_units(arch, w.stats))
        .collect();

    let blocks_assigned = match policy {
        PartitionPolicy::Uniform => assign_uniform(&units, capacity),
        PartitionPolicy::WeightedByWork => assign_weighted(&units, &units, capacity),
        PartitionPolicy::CostGuided => {
            // Time demand of each request if run alone at full efficiency:
            // bytes scaled by the inverse stride efficiency. Weighting by
            // this equalizes *completion times*, not unit counts — the two
            // differ by up to ~100x between sparse and dense requests.
            let demand: Vec<u64> = works
                .iter()
                .map(|w| {
                    if w.stats.is_empty() {
                        0
                    } else {
                        let eff = kernel::stride_efficiency(arch, w.stats.avg_block());
                        (w.stats.total_bytes as f64 / eff).ceil() as u64
                    }
                })
                .collect();
            let candidates = [
                assign_weighted(&units, &units, capacity),
                assign_uniform(&units, capacity),
                assign_weighted(&demand, &units, capacity),
            ];
            candidates
                .into_iter()
                .min_by_key(|blocks| timing_for(arch, works, &units, blocks, fixed).total)
                .expect("candidate list is non-empty")
        }
    };

    timing_for(arch, works, &units, &blocks_assigned, fixed)
}

/// Equal split: every non-empty request gets `capacity / n` blocks (at
/// least one).
fn assign_uniform(units: &[u64], capacity: u64) -> Vec<u64> {
    let nonempty = units.iter().filter(|&&u| u > 0).count().max(1) as u64;
    let share = (capacity / nonempty).max(1);
    units
        .iter()
        .map(|&u| if u == 0 { 0 } else { share })
        .collect()
}

/// Split proportionally to `weights`. When the batch fits (`Σunits ≤ C`)
/// every request simply gets all the blocks it can use; otherwise the
/// capacity is divided by weight (at least one block per live request).
fn assign_weighted(weights: &[u64], units: &[u64], capacity: u64) -> Vec<u64> {
    let total_units: u64 = units.iter().sum();
    if total_units <= capacity {
        return units.to_vec();
    }
    let total_weight: u64 = weights.iter().sum::<u64>().max(1);
    weights
        .iter()
        .zip(units)
        .map(|(&w, &u)| {
            if u == 0 {
                0
            } else {
                ((w as u128 * capacity as u128) / total_weight as u128).max(1) as u64
            }
        })
        .collect()
}

/// Evaluate the cost model for one concrete block assignment. A request
/// cannot run faster than its own parallelism allows, so its effective
/// occupancy is capped at `units` blocks even when the split hands it more.
fn timing_for(
    arch: &GpuArch,
    works: &[FusedWork],
    units: &[u64],
    blocks_assigned: &[u64],
    fixed: Duration,
) -> FusedTiming {
    let capacity = arch.capacity_blocks();
    let mut per_request = Vec::with_capacity(works.len());
    let mut slowest = Duration::ZERO;
    for ((w, &blocks), &u) in works.iter().zip(blocks_assigned).zip(units) {
        let t = if w.stats.is_empty() || blocks == 0 {
            Duration::ZERO
        } else {
            let eff = kernel::stride_efficiency(arch, w.stats.avg_block());
            let occ = (blocks.min(u) as f64 / capacity as f64).min(1.0);
            let mut bw = arch.mem_bw * eff * occ;
            if let Some(cap) = w.bw_cap {
                // External-link ceiling still suffers (attenuated) stride
                // penalties on the remote side.
                bw = bw.min(cap * eff.max(0.25));
            }
            Duration::from_secs_f64(w.stats.total_bytes as f64 / bw)
        };
        let done = fixed + t;
        slowest = slowest.max(done);
        per_request.push(done);
    }

    FusedTiming {
        per_request,
        total: slowest,
        blocks_assigned: blocks_assigned.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuArch {
        GpuArch::v100()
    }

    #[test]
    fn empty_fusion_costs_fixed_overhead_only() {
        let arch = v100();
        let t = fused_timing(&arch, &[]);
        assert_eq!(t.total, arch.kernel_fixed + arch.fused_partition);
        assert!(t.per_request.is_empty());
    }

    #[test]
    fn underutilized_requests_fuse_for_free() {
        // The paper's headline GPU-side claim: fusing N small kernels takes
        // about as long as one, because each under-occupies the machine.
        let arch = v100();
        let one = SegmentStats::new(4096, 16); // 16 units << 160 capacity
        let solo = fused_timing(&arch, &[one]);
        let eight = fused_timing(&arch, &[one; 8]); // 128 units, still < 160
        assert_eq!(
            solo.total, eight.total,
            "8 under-occupying requests should finish together with 1"
        );
        // And all eight complete at the same offset.
        assert!(eight.per_request.iter().all(|&d| d == eight.per_request[0]));
    }

    #[test]
    fn oversubscription_slows_requests_proportionally() {
        let arch = v100();
        let big = SegmentStats::new(8 << 20, 2048); // 2048 units >> capacity
        let solo = fused_timing(&arch, &[big]);
        let duo = fused_timing(&arch, &[big, big]);
        // Two saturating requests each get half the machine: roughly 2x.
        let ratio = duo.total.as_nanos() as f64 / solo.total.as_nanos() as f64;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "expected ~2x slowdown, got {ratio}"
        );
    }

    #[test]
    fn every_nonempty_request_gets_at_least_one_block() {
        let arch = v100();
        let mut works = vec![SegmentStats::new(64 << 20, 16384)]; // hog
        for _ in 0..20 {
            works.push(SegmentStats::new(64, 1)); // tiny
        }
        let t = fused_timing(&arch, &works);
        assert!(t.blocks_assigned.iter().skip(1).all(|&b| b >= 1));
    }

    #[test]
    fn per_request_completions_bounded_by_total() {
        let arch = v100();
        let works = [
            SegmentStats::new(1 << 20, 256),
            SegmentStats::new(4096, 64),
            SegmentStats::new(128, 8),
        ];
        let t = fused_timing(&arch, &works);
        for &d in &t.per_request {
            assert!(d <= t.total);
        }
        assert_eq!(t.total, *t.per_request.iter().max().expect("non-empty"));
    }

    #[test]
    fn small_requests_in_mixed_fusion_finish_early() {
        // Per-request completion signalling lets the progress engine send a
        // small message before a huge co-fused request finishes.
        let arch = v100();
        let works = [
            SegmentStats::new(64 << 20, 16384), // huge
            SegmentStats::new(1024, 16),        // small
        ];
        let t = fused_timing(&arch, &works);
        assert!(
            t.per_request[1] < t.per_request[0] / 10,
            "small request {:?} should finish long before huge {:?}",
            t.per_request[1],
            t.per_request[0]
        );
    }

    #[test]
    fn bw_capped_request_slows_only_itself() {
        let arch = v100();
        let stats = SegmentStats::new(4 << 20, 512);
        let free = fused_timing(&arch, &[stats, stats]);
        let capped = fused_timing_capped(
            &arch,
            &[
                FusedWork {
                    stats,
                    bw_cap: Some(50.0e9), // DirectIPC over NVLink2 (ABCI)
                },
                FusedWork {
                    stats,
                    bw_cap: None,
                },
            ],
        );
        assert!(capped.per_request[0] > free.per_request[0]);
        assert_eq!(capped.per_request[1], free.per_request[1]);
    }

    /// Batch shapes the partition-policy ablation sweeps: balanced small,
    /// skewed sparse+dense, oversubscribed dense, and a long sparse tail
    /// behind one hog.
    fn ablation_batches() -> Vec<Vec<FusedWork>> {
        let mk = |bytes, blocks| FusedWork::from(SegmentStats::new(bytes, blocks));
        vec![
            vec![mk(4096, 16); 8],
            vec![mk(1 << 20, 4), mk(4096, 256), mk(4096, 256), mk(4096, 256)],
            vec![mk(8 << 20, 2048), mk(8 << 20, 2048), mk(64 << 10, 8)],
            {
                let mut v = vec![mk(64 << 20, 16384)];
                v.extend(std::iter::repeat_n(mk(96, 3), 24));
                v
            },
        ]
    }

    #[test]
    fn default_policy_matches_legacy_timing() {
        // fused_timing_capped must stay bit-identical to the pre-policy
        // behaviour (WeightedByWork): every figure baseline depends on it.
        let arch = v100();
        for works in ablation_batches() {
            let legacy = fused_timing_capped(&arch, &works);
            let weighted = fused_timing_policy(&arch, &works, PartitionPolicy::WeightedByWork);
            assert_eq!(legacy.per_request, weighted.per_request);
            assert_eq!(legacy.blocks_assigned, weighted.blocks_assigned);
        }
    }

    #[test]
    fn cost_guided_never_slower_than_uniform_or_weighted() {
        let arch = v100();
        for works in ablation_batches() {
            let uniform = fused_timing_policy(&arch, &works, PartitionPolicy::Uniform);
            let weighted = fused_timing_policy(&arch, &works, PartitionPolicy::WeightedByWork);
            let guided = fused_timing_policy(&arch, &works, PartitionPolicy::CostGuided);
            assert!(
                guided.total <= uniform.total,
                "cost-guided {:?} beat by uniform {:?}",
                guided.total,
                uniform.total
            );
            assert!(
                guided.total <= weighted.total,
                "cost-guided {:?} beat by weighted {:?}",
                guided.total,
                weighted.total
            );
        }
    }

    #[test]
    fn uniform_split_starves_the_skewed_request() {
        // One dense 1 MB request co-fused with many sparse requests: the
        // equal split gates the kernel on the starved dense request, which
        // the work-aware policies fix.
        let arch = v100();
        let mut works = vec![FusedWork::from(SegmentStats::new(1 << 20, 4))];
        works.extend(std::iter::repeat_n(
            FusedWork::from(SegmentStats::new(4096, 170)),
            3,
        ));
        let uniform = fused_timing_policy(&arch, &works, PartitionPolicy::Uniform);
        let guided = fused_timing_policy(&arch, &works, PartitionPolicy::CostGuided);
        assert!(
            guided.total < uniform.total,
            "cost-guided {:?} should beat uniform {:?} on the skewed batch",
            guided.total,
            uniform.total
        );
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(PartitionPolicy::Uniform.label(), "uniform");
        assert_eq!(PartitionPolicy::WeightedByWork.label(), "weighted");
        assert_eq!(PartitionPolicy::CostGuided.label(), "cost-guided");
        assert_eq!(PartitionPolicy::default(), PartitionPolicy::WeightedByWork);
    }

    #[test]
    fn fused_beats_sequential_singles_on_device_time() {
        // Even ignoring launch overhead, running N under-occupying kernels
        // back-to-back takes ~N * t while the fused kernel takes ~t.
        let arch = v100();
        let w = SegmentStats::new(16384, 64);
        let single = kernel::single_kernel_time(&arch, w);
        let sequential = Duration(single.as_nanos() * 2);
        let fused = fused_timing(&arch, &[w, w]).total;
        assert!(fused < sequential);
    }
}
