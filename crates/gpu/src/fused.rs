//! The fused kernel model.
//!
//! The paper's fused kernel takes an *array of requests* as input and uses
//! CUDA cooperative groups to partition its thread blocks across requests
//! (paper Fig. 6): each group of blocks independently executes the device
//! function for its request (pack, unpack, or DirectIPC) and then signals
//! per-request completion by writing the request's *response status* — there
//! is no synchronization at the kernel boundary.
//!
//! Timing model. Request `i` has work-unit demand `u_i` (see
//! [`crate::kernel::work_units`]). The GPU can keep `C = capacity_blocks()`
//! blocks resident:
//!
//! * if `Σu ≤ C` every request gets all the blocks it can use and runs at
//!   its standalone body rate — this is the paper's key observation that a
//!   fused kernel takes about as long as one typical kernel, because the
//!   individual kernels badly under-occupy the machine;
//! * if `Σu > C` blocks are assigned proportionally (`b_i = C·u_i/Σu`, at
//!   least one) and every request slows accordingly.
//!
//! Each request completes individually at `start + fixed + t_i`; the kernel
//! itself retires when the slowest group finishes.

use crate::arch::GpuArch;
use crate::kernel::{self, SegmentStats};
use fusedpack_sim::{Duration, Time};

/// Per-request and whole-kernel durations of one fused launch (relative to
/// kernel start on the device).
#[derive(Debug, Clone)]
pub struct FusedTiming {
    /// Completion offset of each request, in input order.
    pub per_request: Vec<Duration>,
    /// When the whole kernel retires (max of the above plus fixed costs).
    pub total: Duration,
    /// Thread blocks assigned to each request (diagnostics / tests).
    pub blocks_assigned: Vec<u64>,
}

/// Absolute-time view of a fused launch as returned by
/// [`crate::device::Gpu::launch_fused`].
#[derive(Debug, Clone)]
pub struct FusedLaunch {
    /// When the launching CPU becomes free again.
    pub cpu_release: Time,
    /// When the kernel starts executing on the device.
    pub start: Time,
    /// Absolute completion instant of each request, in input order.
    pub request_done: Vec<Time>,
    /// When the whole kernel retires.
    pub done: Time,
}

/// One request inside a fused launch: its layout shape plus an optional
/// external bandwidth cap (a DirectIPC request touching a peer GPU's memory
/// is limited by the NVLink/PCIe path, not local HBM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedWork {
    pub stats: SegmentStats,
    pub bw_cap: Option<f64>,
}

impl From<SegmentStats> for FusedWork {
    fn from(stats: SegmentStats) -> Self {
        FusedWork {
            stats,
            bw_cap: None,
        }
    }
}

/// Compute the timing of a fused kernel over `works` on `arch`.
pub fn fused_timing(arch: &GpuArch, works: &[SegmentStats]) -> FusedTiming {
    let works: Vec<FusedWork> = works.iter().map(|&w| w.into()).collect();
    fused_timing_capped(arch, &works)
}

/// [`fused_timing`] with per-request bandwidth caps.
pub fn fused_timing_capped(arch: &GpuArch, works: &[FusedWork]) -> FusedTiming {
    let fixed = arch.kernel_fixed + arch.fused_partition;
    if works.is_empty() {
        return FusedTiming {
            per_request: Vec::new(),
            total: fixed,
            blocks_assigned: Vec::new(),
        };
    }
    let capacity = arch.capacity_blocks();
    let units: Vec<u64> = works
        .iter()
        .map(|w| kernel::work_units(arch, w.stats))
        .collect();
    let total_units: u64 = units.iter().sum();

    let blocks_assigned: Vec<u64> = if total_units <= capacity {
        units.clone()
    } else {
        units
            .iter()
            .map(|&u| {
                if u == 0 {
                    0
                } else {
                    ((u as u128 * capacity as u128) / total_units as u128).max(1) as u64
                }
            })
            .collect()
    };

    let mut per_request = Vec::with_capacity(works.len());
    let mut slowest = Duration::ZERO;
    for (w, &blocks) in works.iter().zip(&blocks_assigned) {
        let t = if w.stats.is_empty() || blocks == 0 {
            Duration::ZERO
        } else {
            let eff = kernel::stride_efficiency(arch, w.stats.avg_block());
            let occ = (blocks as f64 / capacity as f64).min(1.0);
            let mut bw = arch.mem_bw * eff * occ;
            if let Some(cap) = w.bw_cap {
                // External-link ceiling still suffers (attenuated) stride
                // penalties on the remote side.
                bw = bw.min(cap * eff.max(0.25));
            }
            Duration::from_secs_f64(w.stats.total_bytes as f64 / bw)
        };
        let done = fixed + t;
        slowest = slowest.max(done);
        per_request.push(done);
    }

    FusedTiming {
        per_request,
        total: slowest,
        blocks_assigned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuArch {
        GpuArch::v100()
    }

    #[test]
    fn empty_fusion_costs_fixed_overhead_only() {
        let arch = v100();
        let t = fused_timing(&arch, &[]);
        assert_eq!(t.total, arch.kernel_fixed + arch.fused_partition);
        assert!(t.per_request.is_empty());
    }

    #[test]
    fn underutilized_requests_fuse_for_free() {
        // The paper's headline GPU-side claim: fusing N small kernels takes
        // about as long as one, because each under-occupies the machine.
        let arch = v100();
        let one = SegmentStats::new(4096, 16); // 16 units << 160 capacity
        let solo = fused_timing(&arch, &[one]);
        let eight = fused_timing(&arch, &[one; 8]); // 128 units, still < 160
        assert_eq!(
            solo.total, eight.total,
            "8 under-occupying requests should finish together with 1"
        );
        // And all eight complete at the same offset.
        assert!(eight.per_request.iter().all(|&d| d == eight.per_request[0]));
    }

    #[test]
    fn oversubscription_slows_requests_proportionally() {
        let arch = v100();
        let big = SegmentStats::new(8 << 20, 2048); // 2048 units >> capacity
        let solo = fused_timing(&arch, &[big]);
        let duo = fused_timing(&arch, &[big, big]);
        // Two saturating requests each get half the machine: roughly 2x.
        let ratio = duo.total.as_nanos() as f64 / solo.total.as_nanos() as f64;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "expected ~2x slowdown, got {ratio}"
        );
    }

    #[test]
    fn every_nonempty_request_gets_at_least_one_block() {
        let arch = v100();
        let mut works = vec![SegmentStats::new(64 << 20, 16384)]; // hog
        for _ in 0..20 {
            works.push(SegmentStats::new(64, 1)); // tiny
        }
        let t = fused_timing(&arch, &works);
        assert!(t.blocks_assigned.iter().skip(1).all(|&b| b >= 1));
    }

    #[test]
    fn per_request_completions_bounded_by_total() {
        let arch = v100();
        let works = [
            SegmentStats::new(1 << 20, 256),
            SegmentStats::new(4096, 64),
            SegmentStats::new(128, 8),
        ];
        let t = fused_timing(&arch, &works);
        for &d in &t.per_request {
            assert!(d <= t.total);
        }
        assert_eq!(t.total, *t.per_request.iter().max().expect("non-empty"));
    }

    #[test]
    fn small_requests_in_mixed_fusion_finish_early() {
        // Per-request completion signalling lets the progress engine send a
        // small message before a huge co-fused request finishes.
        let arch = v100();
        let works = [
            SegmentStats::new(64 << 20, 16384), // huge
            SegmentStats::new(1024, 16),        // small
        ];
        let t = fused_timing(&arch, &works);
        assert!(
            t.per_request[1] < t.per_request[0] / 10,
            "small request {:?} should finish long before huge {:?}",
            t.per_request[1],
            t.per_request[0]
        );
    }

    #[test]
    fn bw_capped_request_slows_only_itself() {
        let arch = v100();
        let stats = SegmentStats::new(4 << 20, 512);
        let free = fused_timing(&arch, &[stats, stats]);
        let capped = fused_timing_capped(
            &arch,
            &[
                FusedWork {
                    stats,
                    bw_cap: Some(50.0e9), // DirectIPC over NVLink2 (ABCI)
                },
                FusedWork {
                    stats,
                    bw_cap: None,
                },
            ],
        );
        assert!(capped.per_request[0] > free.per_request[0]);
        assert_eq!(capped.per_request[1], free.per_request[1]);
    }

    #[test]
    fn fused_beats_sequential_singles_on_device_time() {
        // Even ignoring launch overhead, running N under-occupying kernels
        // back-to-back takes ~N * t while the fused kernel takes ~t.
        let arch = v100();
        let w = SegmentStats::new(16384, 64);
        let single = kernel::single_kernel_time(&arch, w);
        let sequential = Duration(single.as_nanos() * 2);
        let fused = fused_timing(&arch, &[w, w]).total;
        assert!(fused < sequential);
    }
}
