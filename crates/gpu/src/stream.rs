//! CUDA-like streams and events.
//!
//! A stream is a FIFO of device work: kernels and copies submitted to the
//! same stream execute back-to-back in submission order. Events mark a point
//! in a stream; querying an event answers "has the stream reached this
//! point?" — the mechanism the GPU-Async baseline \[23\] uses in place of
//! blocking synchronization.

use fusedpack_sim::{Duration, FifoResource, Time};

/// Identifies a stream within one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// One stream: a FIFO pipeline of device work.
#[derive(Debug, Clone, Default)]
pub struct Stream {
    fifo: FifoResource,
}

impl Stream {
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit work that becomes *eligible* at `ready` and takes `dur` on the
    /// device. Returns `(start, end)` honoring FIFO order.
    pub fn submit(&mut self, ready: Time, dur: Duration) -> (Time, Time) {
        self.fifo.acquire(ready, dur)
    }

    /// When all currently submitted work completes.
    pub fn drained_at(&self) -> Time {
        self.fifo.busy_until()
    }

    /// Is the stream idle at `now`?
    pub fn is_idle_at(&self, now: Time) -> bool {
        self.fifo.is_idle_at(now)
    }

    /// Record an event at the current tail of the stream: the event
    /// "completes" when all previously submitted work has drained.
    pub fn record_event(&self) -> EventRecord {
        EventRecord {
            completes_at: self.fifo.busy_until(),
        }
    }

    /// Total device time consumed by work on this stream.
    pub fn busy_time(&self) -> Duration {
        self.fifo.busy_time()
    }

    pub fn reset(&mut self) {
        self.fifo.reset();
    }
}

/// A recorded event: a point in a stream's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    completes_at: Time,
}

impl EventRecord {
    /// `cudaEventQuery`: has the stream passed the recorded point by `now`?
    pub fn is_complete_at(&self, now: Time) -> bool {
        now >= self.completes_at
    }

    /// The instant the event completes.
    pub fn completes_at(&self) -> Time {
        self.completes_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_serializes_kernels() {
        let mut s = Stream::new();
        let (a0, a1) = s.submit(Time(0), Duration(100));
        let (b0, b1) = s.submit(Time(10), Duration(50));
        assert_eq!((a0, a1), (Time(0), Time(100)));
        assert_eq!((b0, b1), (Time(100), Time(150)));
        assert_eq!(s.drained_at(), Time(150));
    }

    #[test]
    fn event_records_stream_tail() {
        let mut s = Stream::new();
        s.submit(Time(0), Duration(100));
        let ev = s.record_event();
        assert_eq!(ev.completes_at(), Time(100));
        assert!(!ev.is_complete_at(Time(99)));
        assert!(ev.is_complete_at(Time(100)));
        // Work submitted after the record does not delay the event.
        s.submit(Time(0), Duration(1000));
        assert!(ev.is_complete_at(Time(100)));
    }

    #[test]
    fn event_on_idle_stream_is_immediately_complete() {
        let s = Stream::new();
        let ev = s.record_event();
        assert!(ev.is_complete_at(Time(0)));
    }

    #[test]
    fn independent_streams_run_concurrently() {
        let mut s1 = Stream::new();
        let mut s2 = Stream::new();
        let (_, e1) = s1.submit(Time(0), Duration(100));
        let (_, e2) = s2.submit(Time(0), Duration(100));
        assert_eq!(e1, Time(100));
        assert_eq!(e2, Time(100), "different streams do not serialize");
    }
}
