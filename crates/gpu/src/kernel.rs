//! The packing/unpacking kernel cost model.
//!
//! A pack (gather) or unpack (scatter) kernel is characterized by the shape
//! of the non-contiguous layout it processes: total bytes `S` moved across
//! `B` contiguous blocks. Its execution time is modelled as
//!
//! ```text
//! t_body = S / (mem_bw · eff_stride(S/B) · eff_occupancy(units))
//! t_kernel = kernel_fixed + t_body
//! ```
//!
//! * `eff_stride(len)` = `len / (len + half_eff)` — gather/scatter of short
//!   blocks wastes cache lines and issue slots; a block must be
//!   `half_eff` bytes long to reach half of peak bandwidth. This matches the
//!   qualitative behaviour of the HAND-style kernels the paper builds on:
//!   sparse layouts (tens of bytes per block) run at a few percent of peak,
//!   dense layouts (KBs per block) near peak.
//! * `units` = `max(B, ceil(S/tile))` — exploitable parallelism: each block
//!   is at least one unit of work, large blocks are tiled. With fewer units
//!   than the GPU's resident-block capacity the kernel cannot fill the
//!   machine and slows proportionally (`eff_occupancy = min(1, units/cap)`).
//!
//! Fused kernels (see [`crate::fused`]) reuse `t_body` per request and share
//! capacity between requests — which is exactly why fusing many small,
//! under-occupying kernels is nearly free on the GPU side: the paper's
//! observation that "the fused kernel's execution time can be the same as
//! the typical packing/unpacking kernel while only costing one launch".

use crate::arch::GpuArch;
use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};

/// Shape summary of a non-contiguous layout processed by one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Total payload bytes moved.
    pub total_bytes: u64,
    /// Number of contiguous blocks (gather/scatter segments).
    pub num_blocks: u64,
}

impl SegmentStats {
    pub fn new(total_bytes: u64, num_blocks: u64) -> Self {
        SegmentStats {
            total_bytes,
            num_blocks,
        }
    }

    /// Build from an explicit `(offset, len)` segment list.
    pub fn from_segments(segments: &[(u64, u64)]) -> Self {
        SegmentStats {
            total_bytes: segments.iter().map(|&(_, len)| len).sum(),
            num_blocks: segments.len() as u64,
        }
    }

    /// Average contiguous block length in bytes.
    pub fn avg_block(&self) -> f64 {
        if self.num_blocks == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.num_blocks as f64
        }
    }

    /// Merge two shapes (used when fusing accounting, not timing).
    pub fn merged(self, other: SegmentStats) -> SegmentStats {
        SegmentStats {
            total_bytes: self.total_bytes + other.total_bytes,
            num_blocks: self.num_blocks + other.num_blocks,
        }
    }

    /// Is this the empty workload?
    pub fn is_empty(&self) -> bool {
        self.total_bytes == 0
    }
}

/// Memory-efficiency factor in `(0, 1]` for strided access with the given
/// average block length.
pub fn stride_efficiency(arch: &GpuArch, avg_block_bytes: f64) -> f64 {
    if avg_block_bytes <= 0.0 {
        return 1.0; // empty workload, factor irrelevant
    }
    avg_block_bytes / (avg_block_bytes + arch.stride_half_eff_bytes)
}

/// Exploitable parallel work units for a layout: one per block, plus tiling
/// of large blocks.
pub fn work_units(arch: &GpuArch, stats: SegmentStats) -> u64 {
    if stats.is_empty() {
        return 0;
    }
    let tiles = stats.total_bytes.div_ceil(arch.tile_bytes);
    stats.num_blocks.max(tiles).max(1)
}

/// Occupancy factor in `(0, 1]`: how much of the machine the layout can use.
pub fn occupancy(arch: &GpuArch, units: u64) -> f64 {
    if units == 0 {
        return 1.0;
    }
    (units as f64 / arch.capacity_blocks() as f64).min(1.0)
}

/// Body time of a kernel running *alone* with the whole GPU available.
pub fn body_time(arch: &GpuArch, stats: SegmentStats) -> Duration {
    if stats.is_empty() {
        return Duration::ZERO;
    }
    let eff = stride_efficiency(arch, stats.avg_block());
    let occ = occupancy(arch, work_units(arch, stats));
    let bw = arch.mem_bw * eff * occ;
    Duration::from_secs_f64(stats.total_bytes as f64 / bw)
}

/// Total on-GPU time of a standalone (non-fused) pack/unpack kernel:
/// fixed startup plus body.
pub fn single_kernel_time(arch: &GpuArch, stats: SegmentStats) -> Duration {
    arch.kernel_fixed + body_time(arch, stats)
}

/// Body time when the kernel's effective bandwidth is additionally capped by
/// an external link (e.g. a DirectIPC kernel loading a peer GPU's memory
/// over NVLink at `link_bw` bytes/s).
pub fn body_time_link_capped(arch: &GpuArch, stats: SegmentStats, link_bw: f64) -> Duration {
    if stats.is_empty() {
        return Duration::ZERO;
    }
    let eff = stride_efficiency(arch, stats.avg_block());
    let occ = occupancy(arch, work_units(arch, stats));
    let bw = (arch.mem_bw * eff * occ).min(link_bw * eff.max(0.25));
    Duration::from_secs_f64(stats.total_bytes as f64 / bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuArch {
        GpuArch::v100()
    }

    #[test]
    fn stride_efficiency_monotone_in_block_size() {
        let arch = v100();
        let tiny = stride_efficiency(&arch, 4.0);
        let mid = stride_efficiency(&arch, 64.0);
        let big = stride_efficiency(&arch, 64.0 * 1024.0);
        assert!(tiny < mid && mid < big);
        assert!((mid - 0.5).abs() < 1e-9, "64B is the half-efficiency point");
        assert!(big > 0.98, "large blocks run near peak: {big}");
        // 4B gathers land near HBM2 sector granularity (32B sectors):
        // roughly 1/16..1/8 of peak.
        assert!((0.03..0.15).contains(&tiny), "4B-block efficiency {tiny}");
    }

    #[test]
    fn work_units_counts_blocks_and_tiles() {
        let arch = v100();
        // 4000 tiny blocks: block count dominates.
        assert_eq!(work_units(&arch, SegmentStats::new(4000 * 16, 4000)), 4000);
        // One 1 MiB block: tiling dominates (1MiB / 8KiB = 128 tiles).
        assert_eq!(work_units(&arch, SegmentStats::new(1 << 20, 1)), 128);
        assert_eq!(work_units(&arch, SegmentStats::new(0, 0)), 0);
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let arch = v100();
        assert!(occupancy(&arch, 1) < 0.01);
        assert_eq!(occupancy(&arch, 160), 1.0);
        assert_eq!(occupancy(&arch, 100_000), 1.0);
    }

    #[test]
    fn sparse_kernel_is_microseconds_launch_dominated() {
        // Paper Fig. 1: the packing kernel body for sparse workloads is a few
        // microseconds — *less* than the 6+ us launch overhead.
        let arch = v100();
        // specfem3D_cm-like shape: thousands of tiny blocks.
        let stats = SegmentStats::new(2000 * 24, 2000);
        let t = single_kernel_time(&arch, stats);
        assert!(
            t < arch.launch_cpu,
            "sparse pack kernel {t} should be cheaper than launch {}",
            arch.launch_cpu
        );
        assert!(t.as_micros_f64() > 1.0, "but not free: {t}");
    }

    #[test]
    fn dense_large_kernel_is_bandwidth_bound() {
        let arch = v100();
        // 16 MiB in 64 KiB blocks: should take close to 16MiB / 900GB/s.
        let stats = SegmentStats::new(16 << 20, 256);
        let t = single_kernel_time(&arch, stats);
        let ideal = Duration::from_secs_f64((16 << 20) as f64 / arch.mem_bw);
        assert!(t.as_nanos() >= ideal.as_nanos());
        assert!(
            t.as_nanos() < ideal.as_nanos() * 2,
            "dense kernel {t} should be within 2x of ideal {ideal}"
        );
    }

    #[test]
    fn more_bytes_take_longer() {
        let arch = v100();
        let small = single_kernel_time(&arch, SegmentStats::new(1024, 4));
        let large = single_kernel_time(&arch, SegmentStats::new(1024 * 1024, 4096));
        assert!(small < large);
    }

    #[test]
    fn empty_kernel_costs_only_fixed_startup() {
        let arch = v100();
        assert_eq!(
            single_kernel_time(&arch, SegmentStats::new(0, 0)),
            arch.kernel_fixed
        );
    }

    #[test]
    fn link_cap_slows_direct_ipc() {
        let arch = v100();
        let stats = SegmentStats::new(4 << 20, 64);
        let local = body_time(&arch, stats);
        let remote = body_time_link_capped(&arch, stats, 75.0e9); // NVLink2
        assert!(remote > local, "{remote} should exceed {local}");
    }

    #[test]
    fn segment_stats_helpers() {
        let s = SegmentStats::from_segments(&[(0, 100), (200, 50), (400, 50)]);
        assert_eq!(s.total_bytes, 200);
        assert_eq!(s.num_blocks, 3);
        assert!((s.avg_block() - 200.0 / 3.0).abs() < 1e-9);
        let m = s.merged(SegmentStats::new(100, 1));
        assert_eq!(m.total_bytes, 300);
        assert_eq!(m.num_blocks, 4);
        assert!(!m.is_empty());
        assert!(SegmentStats::new(0, 0).is_empty());
    }
}
