//! Per-architecture model constants.
//!
//! The numbers below are calibrated from three sources:
//!
//! 1. the paper's Fig. 1, which shows kernel-launch overhead of roughly
//!    6–10 µs across Kepler/Pascal/Volta while the packing kernels themselves
//!    take only a few µs;
//! 2. Zhang et al., "Understanding the overheads of launching CUDA kernels"
//!    (ICPP'19 poster, the paper's ref \[26\]), reporting ~5–10 µs per launch;
//! 3. public device specifications (SM counts, HBM bandwidth).
//!
//! They are *model inputs*, not measurements of this machine: the simulation
//! reproduces the paper's relative behaviour, which is governed by the ratio
//! of launch/synchronization overhead to kernel body time and wire time.

use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};

/// Cost-model constants for one GPU architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuArch {
    /// Human-readable name ("Tesla V100").
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Concurrent resident thread blocks per SM the packing kernels achieve.
    pub blocks_per_sm: u32,
    /// Peak device-memory bandwidth in bytes per second.
    pub mem_bw: f64,
    /// CPU-side driver cost of one kernel launch (`cuLaunchKernel`). The CPU
    /// is busy for this long; this is the overhead the paper's fusion design
    /// amortizes.
    pub launch_cpu: Duration,
    /// Additional latency between the end of the CPU-side launch and the
    /// kernel actually starting on an idle stream (driver/doorbell/dispatch).
    pub launch_gpu_delay: Duration,
    /// Fixed on-GPU startup/teardown time of any kernel (block scheduling,
    /// final memory fence), independent of its workload.
    pub kernel_fixed: Duration,
    /// Extra fixed time of a *fused* kernel: reading the request array and
    /// partitioning cooperative groups before the copy loops start.
    pub fused_partition: Duration,
    /// CPU cost of `cudaEventRecord`.
    pub event_record: Duration,
    /// CPU cost of one `cudaEventQuery` poll.
    pub event_query: Duration,
    /// CPU cost of the `cudaStreamSynchronize` call itself (the blocked wait
    /// until kernel completion is added on top by the scheme).
    pub stream_sync_call: Duration,
    /// CPU cost of issuing one `cudaMemcpyAsync` (the production-library
    /// naive datatype path pays this once per contiguous block).
    pub memcpy_async_call: Duration,
    /// DMA engine per-transfer setup latency.
    pub dma_setup: Duration,
    /// Block length (bytes) at which a strided gather/scatter kernel reaches
    /// half of peak memory bandwidth. Small blocks waste cache lines and
    /// issue slots; the efficiency curve is `len / (len + half_eff)`.
    pub stride_half_eff_bytes: f64,
    /// Tile size one thread block processes independently; large contiguous
    /// blocks are split into tiles of this size to expose parallelism.
    pub tile_bytes: u64,
}

impl GpuArch {
    /// NVIDIA Tesla V100 (Volta), the GPU in both Lassen and ABCI (Table II).
    pub fn v100() -> Self {
        GpuArch {
            name: "Tesla V100",
            sm_count: 80,
            blocks_per_sm: 2,
            mem_bw: 900.0e9,
            launch_cpu: Duration::from_nanos(6_200),
            launch_gpu_delay: Duration::from_nanos(900),
            kernel_fixed: Duration::from_nanos(1_600),
            fused_partition: Duration::from_nanos(700),
            event_record: Duration::from_nanos(1_300),
            event_query: Duration::from_nanos(850),
            stream_sync_call: Duration::from_nanos(3_800),
            memcpy_async_call: Duration::from_nanos(1_450),
            dma_setup: Duration::from_nanos(1_100),
            stride_half_eff_bytes: 64.0,
            tile_bytes: 8 * 1024,
        }
    }

    /// NVIDIA Tesla P100 (Pascal) — used for the Fig. 1 architecture sweep.
    pub fn p100() -> Self {
        GpuArch {
            name: "Tesla P100",
            sm_count: 56,
            blocks_per_sm: 2,
            mem_bw: 732.0e9,
            launch_cpu: Duration::from_nanos(7_400),
            launch_gpu_delay: Duration::from_nanos(1_100),
            kernel_fixed: Duration::from_nanos(1_900),
            fused_partition: Duration::from_nanos(850),
            event_record: Duration::from_nanos(1_500),
            event_query: Duration::from_nanos(950),
            stream_sync_call: Duration::from_nanos(4_300),
            memcpy_async_call: Duration::from_nanos(1_600),
            dma_setup: Duration::from_nanos(1_300),
            stride_half_eff_bytes: 96.0,
            tile_bytes: 8 * 1024,
        }
    }

    /// NVIDIA Tesla K80 (Kepler) — used for the Fig. 1 architecture sweep.
    pub fn k80() -> Self {
        GpuArch {
            name: "Tesla K80",
            sm_count: 13,
            blocks_per_sm: 2,
            mem_bw: 240.0e9,
            launch_cpu: Duration::from_nanos(9_800),
            launch_gpu_delay: Duration::from_nanos(1_600),
            kernel_fixed: Duration::from_nanos(2_800),
            fused_partition: Duration::from_nanos(1_200),
            event_record: Duration::from_nanos(1_900),
            event_query: Duration::from_nanos(1_200),
            stream_sync_call: Duration::from_nanos(5_500),
            memcpy_async_call: Duration::from_nanos(1_900),
            dma_setup: Duration::from_nanos(1_700),
            stride_half_eff_bytes: 192.0,
            tile_bytes: 8 * 1024,
        }
    }

    /// Maximum number of thread blocks the packing kernels can keep resident
    /// at once — the "capacity" against which occupancy is computed.
    #[inline]
    pub fn capacity_blocks(&self) -> u64 {
        u64::from(self.sm_count) * u64::from(self.blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architectures_are_distinct_and_ordered() {
        let k80 = GpuArch::k80();
        let p100 = GpuArch::p100();
        let v100 = GpuArch::v100();
        // Newer architectures launch faster and have more bandwidth & SMs.
        assert!(k80.launch_cpu > p100.launch_cpu);
        assert!(p100.launch_cpu > v100.launch_cpu);
        assert!(k80.mem_bw < p100.mem_bw);
        assert!(p100.mem_bw < v100.mem_bw);
        assert!(k80.sm_count < p100.sm_count);
        assert!(p100.sm_count < v100.sm_count);
    }

    #[test]
    fn launch_overhead_in_published_range() {
        // Zhang et al. [26]: ~5-10us per launch on these architectures.
        for arch in [GpuArch::k80(), GpuArch::p100(), GpuArch::v100()] {
            let us = arch.launch_cpu.as_micros_f64();
            assert!((5.0..=10.0).contains(&us), "{}: {us}us", arch.name);
        }
    }

    #[test]
    fn v100_capacity() {
        assert_eq!(GpuArch::v100().capacity_blocks(), 160);
    }
}
