//! DMA copies and the CPU↔GPU interconnect.
//!
//! [`HostLink`] describes the processor-to-GPU interconnect — the key
//! hardware difference between the paper's two platforms (Table II):
//! Lassen's POWER9 connects CPU and GPU with NVLink2 (75 GB/s one-way),
//! while ABCI uses PCIe Gen3 (32 GB/s one-way through switches). This link
//! carries `cudaMemcpy` staging traffic and GDRCopy load/stores.

use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};

/// Direction/route of a DMA copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyPath {
    /// Host memory → device memory over the host link.
    H2D,
    /// Device memory → host memory over the host link.
    D2H,
    /// Within one device (HBM to HBM).
    D2D,
}

/// The CPU↔GPU interconnect of one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostLink {
    /// Human-readable name ("NVLink2", "PCIe Gen3 x16").
    pub name: &'static str,
    /// One-way bandwidth in bytes/s.
    pub bw: f64,
    /// Per-transfer latency (first byte).
    pub latency: Duration,
    /// Whether the CPU can issue load/store directly to GPU memory at high
    /// throughput (true for NVLink-attached POWER9, false for PCIe where
    /// BAR reads in particular are extremely slow).
    pub cpu_loadstore_fast: bool,
}

impl HostLink {
    /// Lassen: NVLink2 between POWER9 and V100, 75 GB/s one-way (Table II).
    pub fn nvlink2_cpu() -> Self {
        HostLink {
            name: "NVLink2 (CPU-GPU)",
            bw: 75.0e9,
            latency: Duration::from_nanos(700),
            cpu_loadstore_fast: true,
        }
    }

    /// ABCI: PCIe Gen3 x16 through switches, 32 GB/s one-way (Table II).
    pub fn pcie_gen3() -> Self {
        HostLink {
            name: "PCIe Gen3 x16",
            bw: 32.0e9,
            latency: Duration::from_nanos(1_300),
            cpu_loadstore_fast: false,
        }
    }

    /// Pure wire time for `bytes` over this link (latency + size/bw).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_is_faster_than_pcie() {
        let nv = HostLink::nvlink2_cpu();
        let pcie = HostLink::pcie_gen3();
        assert!(nv.bw > pcie.bw);
        assert!(nv.transfer_time(1 << 20) < pcie.transfer_time(1 << 20));
        assert!(nv.cpu_loadstore_fast);
        assert!(!pcie.cpu_loadstore_fast);
    }

    #[test]
    fn transfer_time_scales_linearly_past_latency() {
        let nv = HostLink::nvlink2_cpu();
        let t1 = nv.transfer_time(75_000_000); // 1 ms of wire time
        let t2 = nv.transfer_time(150_000_000);
        let wire1 = t1 - nv.latency;
        let wire2 = t2 - nv.latency;
        let ratio = wire2.as_nanos() as f64 / wire1.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let pcie = HostLink::pcie_gen3();
        assert_eq!(pcie.transfer_time(0), pcie.latency);
    }
}
