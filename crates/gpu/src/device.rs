//! The GPU device: memory + streams + copy engines + launch API.
//!
//! All methods are *passive*: they take the instant at which the host CPU
//! issues the operation and return the timing of everything that follows.
//! The caller (the cluster driver in `fusedpack-mpi`) owns the event loop
//! and is responsible for (a) advancing the rank's CPU clock to
//! `cpu_release` and (b) scheduling completion events at the returned
//! instants. Data movement is applied eagerly at submission time — sound
//! because the simulated schemes never mutate a source buffer while a kernel
//! that reads it is in flight, and results only become *visible* to the
//! model at the completion instant.

use crate::arch::GpuArch;
use crate::copy::{CopyPath, HostLink};
use crate::fused::{self, FusedLaunch};
use crate::gdr::GdrWindow;
use crate::kernel::{self, SegmentStats};
use crate::mem::{DataMode, MemPool};
use crate::stream::{Stream, StreamId};
use fusedpack_sim::{Duration, FifoResource, Time};
use fusedpack_telemetry::{Lane, Payload, Telemetry};

/// Timing of one kernel launch or async copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTiming {
    /// When the launching CPU becomes free again (launch call returned).
    pub cpu_release: Time,
    /// When the work starts on the device.
    pub start: Time,
    /// When the work completes on the device.
    pub done: Time,
}

/// One modelled GPU.
#[derive(Debug)]
pub struct Gpu {
    pub arch: GpuArch,
    pub mem: MemPool,
    pub gdr: GdrWindow,
    host_link: HostLink,
    streams: Vec<Stream>,
    copy_engine_h2d: FifoResource,
    copy_engine_d2h: FifoResource,
    kernels_launched: u64,
    fused_launched: u64,
    requests_fused: u64,
    telemetry: Telemetry,
}

impl Gpu {
    /// Create a device with `num_streams` streams and `mem_capacity` bytes
    /// of device memory.
    pub fn new(
        arch: GpuArch,
        mem_capacity: u64,
        mode: DataMode,
        host_link: HostLink,
        num_streams: usize,
    ) -> Self {
        assert!(num_streams >= 1, "need at least one stream");
        let gdr = GdrWindow::for_link(&host_link);
        Gpu {
            arch,
            mem: MemPool::new(mem_capacity, mode),
            gdr,
            host_link,
            streams: vec![Stream::new(); num_streams],
            copy_engine_h2d: FifoResource::new(),
            copy_engine_d2h: FifoResource::new(),
            kernels_launched: 0,
            fused_launched: 0,
            requests_fused: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder (already tagged with the owning rank).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    #[inline]
    pub fn host_link(&self) -> &HostLink {
        &self.host_link
    }

    #[inline]
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Total kernel launches so far (single + fused).
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// Fused launches and the number of requests they carried.
    pub fn fusion_counters(&self) -> (u64, u64) {
        (self.fused_launched, self.requests_fused)
    }

    fn stream_mut(&mut self, stream: StreamId) -> &mut Stream {
        &mut self.streams[stream.0 as usize]
    }

    /// Reference to a stream (for event recording / queries).
    pub fn stream(&self, stream: StreamId) -> &Stream {
        &self.streams[stream.0 as usize]
    }

    /// Launch a standalone pack/unpack kernel at `at` on `stream`.
    ///
    /// The CPU is busy `[at, cpu_release)` with the driver call; the kernel
    /// becomes eligible `launch_gpu_delay` later and runs FIFO on the stream.
    pub fn launch_kernel(
        &mut self,
        at: Time,
        stream: StreamId,
        stats: SegmentStats,
    ) -> KernelTiming {
        let cpu_release = at + self.arch.launch_cpu;
        let ready = cpu_release + self.arch.launch_gpu_delay;
        let dur = kernel::single_kernel_time(&self.arch, stats);
        let (start, done) = self.stream_mut(stream).submit(ready, dur);
        self.kernels_launched += 1;
        self.telemetry
            .span(Lane::Host, at, cpu_release, || Payload::KernelLaunch {
                fused: false,
            });
        self.telemetry
            .span(Lane::Stream(stream.0), start, done, || {
                Payload::KernelExec {
                    bytes: stats.total_bytes,
                    blocks: stats.num_blocks,
                }
            });
        KernelTiming {
            cpu_release,
            start,
            done,
        }
    }

    /// Launch one *fused* kernel covering `works` requests at `at`.
    ///
    /// Costs a single CPU-side launch; per-request completion instants are
    /// returned individually (the cooperative groups signal their response
    /// status as they finish — no kernel-boundary synchronization).
    pub fn launch_fused(
        &mut self,
        at: Time,
        stream: StreamId,
        works: &[SegmentStats],
    ) -> FusedLaunch {
        let works: Vec<fused::FusedWork> = works.iter().map(|&w| w.into()).collect();
        self.launch_fused_capped(at, stream, &works)
    }

    /// [`Gpu::launch_fused`] with per-request bandwidth caps (DirectIPC
    /// requests bounded by the peer link).
    pub fn launch_fused_capped(
        &mut self,
        at: Time,
        stream: StreamId,
        works: &[fused::FusedWork],
    ) -> FusedLaunch {
        self.launch_fused_policy(at, stream, works, fused::PartitionPolicy::WeightedByWork)
    }

    /// [`Gpu::launch_fused_capped`] with an explicit cooperative-group
    /// block-partitioning policy.
    pub fn launch_fused_policy(
        &mut self,
        at: Time,
        stream: StreamId,
        works: &[fused::FusedWork],
        policy: fused::PartitionPolicy,
    ) -> FusedLaunch {
        let cpu_release = at + self.arch.launch_cpu;
        let ready = cpu_release + self.arch.launch_gpu_delay;
        let timing = fused::fused_timing_policy(&self.arch, works, policy);
        let (start, done) = self.stream_mut(stream).submit(ready, timing.total);
        self.kernels_launched += 1;
        self.fused_launched += 1;
        self.requests_fused += works.len() as u64;
        self.telemetry
            .span(Lane::Host, at, cpu_release, || Payload::KernelLaunch {
                fused: true,
            });
        FusedLaunch {
            cpu_release,
            start,
            request_done: timing.per_request.iter().map(|&d| start + d).collect(),
            done,
        }
    }

    /// `cudaMemcpyAsync`: issue an async copy of `bytes` along `path` at
    /// `at` on `stream`. The copy occupies both the per-direction DMA engine
    /// and the stream (so later kernels on the stream wait for it).
    pub fn memcpy_async(
        &mut self,
        at: Time,
        stream: StreamId,
        bytes: u64,
        path: CopyPath,
    ) -> KernelTiming {
        let cpu_release = at + self.arch.memcpy_async_call;
        let ready = cpu_release + self.arch.launch_gpu_delay;
        let wire = match path {
            CopyPath::H2D | CopyPath::D2H => self.host_link.transfer_time(bytes),
            CopyPath::D2D => Duration::from_secs_f64(bytes as f64 / (self.arch.mem_bw / 2.0)),
        };
        let dur = self.arch.dma_setup + wire;
        // Serialize on the DMA engine first, then mirror into the stream so
        // stream-ordered work behind the copy waits for it.
        let engine = match path {
            CopyPath::H2D => &mut self.copy_engine_h2d,
            CopyPath::D2H | CopyPath::D2D => &mut self.copy_engine_d2h,
        };
        let (eng_start, eng_done) = engine.acquire(ready, dur);
        let lane = Lane::Stream(stream.0);
        let stream = self.stream_mut(stream);
        let (_, done) = stream.submit(eng_start, eng_done - eng_start);
        let kind = match path {
            CopyPath::H2D => "h2d",
            CopyPath::D2H => "d2h",
            CopyPath::D2D => "d2d",
        };
        self.telemetry
            .span(lane, eng_start, done, || Payload::Memcpy { bytes, kind });
        KernelTiming {
            cpu_release,
            start: eng_start,
            done,
        }
    }

    /// Reset per-iteration state (streams, engines, counters) while keeping
    /// memory contents and allocations.
    pub fn reset_timing(&mut self) {
        for s in &mut self.streams {
            s.reset();
        }
        self.copy_engine_h2d.reset();
        self.copy_engine_d2h.reset();
        self.kernels_launched = 0;
        self.fused_launched = 0;
        self.requests_fused = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(
            GpuArch::v100(),
            1 << 20,
            DataMode::Full,
            HostLink::nvlink2_cpu(),
            4,
        )
    }

    #[test]
    fn launch_charges_cpu_then_runs() {
        let mut g = gpu();
        let t = g.launch_kernel(Time(1000), StreamId(0), SegmentStats::new(4096, 16));
        assert_eq!(t.cpu_release, Time(1000) + g.arch.launch_cpu);
        assert_eq!(t.start, t.cpu_release + g.arch.launch_gpu_delay);
        assert!(t.done > t.start);
        assert_eq!(g.kernels_launched(), 1);
    }

    #[test]
    fn same_stream_kernels_serialize_different_streams_overlap() {
        let mut g = gpu();
        // Long kernels (64 MiB) so the stream is still busy when the second
        // launch arrives.
        let stats = SegmentStats::new(64 << 20, 16384);
        let a = g.launch_kernel(Time(0), StreamId(0), stats);
        let b = g.launch_kernel(a.cpu_release, StreamId(0), stats);
        assert_eq!(b.start, a.done, "same stream: FIFO");

        let mut g2 = gpu();
        let a2 = g2.launch_kernel(Time(0), StreamId(0), stats);
        let b2 = g2.launch_kernel(a2.cpu_release, StreamId(1), stats);
        assert!(b2.start < a2.done, "different streams: concurrent");
    }

    #[test]
    fn fused_launch_pays_one_cpu_launch() {
        let mut g = gpu();
        let works = vec![SegmentStats::new(4096, 16); 8];
        let f = g.launch_fused(Time(0), StreamId(0), &works);
        assert_eq!(f.cpu_release, Time(0) + g.arch.launch_cpu);
        assert_eq!(f.request_done.len(), 8);
        assert!(f.request_done.iter().all(|&t| t <= f.done));
        let (fused, reqs) = g.fusion_counters();
        assert_eq!((fused, reqs), (1, 8));
    }

    #[test]
    fn fused_beats_back_to_back_singles_end_to_end() {
        // 8 small pack requests: fused finishes far earlier than 8 serial
        // launch+kernel rounds — the paper's Fig. 2 "DYNAMIC KERNEL FUSION".
        let stats = SegmentStats::new(16 * 1024, 64);
        let mut g1 = gpu();
        let mut t = Time(0);
        let mut last_done = Time(0);
        for _ in 0..8 {
            let k = g1.launch_kernel(t, StreamId(0), stats);
            t = k.cpu_release;
            last_done = k.done;
        }
        let mut g2 = gpu();
        let f = g2.launch_fused(Time(0), StreamId(0), &[stats; 8]);
        assert!(
            f.done.as_nanos() * 3 < last_done.as_nanos(),
            "fused {:?} should be >3x faster than serial singles {:?}",
            f.done,
            last_done
        );
    }

    #[test]
    fn memcpy_serializes_on_engine_and_stream() {
        let mut g = gpu();
        let a = g.memcpy_async(Time(0), StreamId(0), 1 << 20, CopyPath::D2H);
        let b = g.memcpy_async(a.cpu_release, StreamId(1), 1 << 20, CopyPath::D2H);
        assert_eq!(b.start, a.done, "same engine serializes across streams");
        // A kernel behind the copy on stream 0 waits for it.
        let k = g.launch_kernel(b.cpu_release, StreamId(0), SegmentStats::new(64, 1));
        assert!(k.start >= a.done);
    }

    #[test]
    fn h2d_and_d2h_engines_are_independent() {
        let mut g = gpu();
        let a = g.memcpy_async(Time(0), StreamId(0), 8 << 20, CopyPath::H2D);
        let b = g.memcpy_async(a.cpu_release, StreamId(1), 8 << 20, CopyPath::D2H);
        assert!(b.start < a.done, "opposite directions overlap");
    }

    #[test]
    fn reset_timing_clears_counters_but_not_memory() {
        let mut g = gpu();
        let ptr = g.mem.alloc(4, 1);
        g.mem.write(ptr, &[1, 2, 3, 4]);
        g.launch_kernel(Time(0), StreamId(0), SegmentStats::new(64, 1));
        g.reset_timing();
        assert_eq!(g.kernels_launched(), 0);
        assert_eq!(g.mem.read(ptr), &[1, 2, 3, 4]);
    }
}
