//! Reusable staging-buffer pool.
//!
//! The data plane used to allocate a fresh `Vec<u8>` for every staged
//! payload (eager copies, rendezvous staging reads, IPC gathers). A
//! [`BufferPool`] keeps a freelist of retired buffers behind a
//! `parking_lot::Mutex` so those per-message allocations become
//! acquire/release pairs: `take` hands out an **empty** vector whose
//! capacity already covers the request whenever the freelist can satisfy
//! it, and `put` returns the vector for the next message.
//!
//! The pool is cheap to clone (`Arc` inside), so one pool can be threaded
//! through a whole cluster — or shared across clusters — without wiring
//! lifetimes through the event loop.

use parking_lot::Mutex;
use std::sync::Arc;

/// How many retired buffers the freelist retains; beyond this, `put`
/// drops the buffer instead (bounds worst-case memory held by idle pools).
const MAX_FREE: usize = 64;

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

/// Acquire/release counters for a [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls satisfied from the freelist with sufficient capacity.
    pub hits: u64,
    /// `take` calls that had to allocate (empty freelist or too small).
    pub misses: u64,
    /// Buffers returned via `put`.
    pub released: u64,
    /// Buffers dropped by `put` because the freelist was full.
    pub dropped: u64,
}

/// A shared freelist of byte buffers. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire an empty buffer with capacity at least `len`. Prefers the
    /// largest retired buffer (the freelist is kept sorted by capacity) so
    /// steady-state traffic stops allocating once the high-water mark is
    /// reached.
    pub fn take(&self, len: usize) -> Vec<u8> {
        let mut inner = self.inner.lock();
        match inner.free.pop() {
            Some(mut buf) => {
                if buf.capacity() >= len {
                    inner.stats.hits += 1;
                } else {
                    inner.stats.misses += 1;
                    buf.reserve(len);
                }
                buf
            }
            None => {
                inner.stats.misses += 1;
                Vec::with_capacity(len)
            }
        }
    }

    /// Return a buffer to the freelist. The contents are cleared; capacity
    /// is kept for reuse.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return; // nothing worth keeping (ModelOnly payloads)
        }
        buf.clear();
        let mut inner = self.inner.lock();
        inner.stats.released += 1;
        if inner.free.len() >= MAX_FREE {
            inner.stats.dropped += 1;
            return;
        }
        // Keep the freelist sorted so `pop` hands out the largest buffer.
        let pos = inner
            .free
            .partition_point(|b| b.capacity() <= buf.capacity());
        inner.free.insert(pos, buf);
    }

    /// Counters since construction.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Buffers currently resting in the freelist.
    pub fn free_len(&self) -> usize {
        self.inner.lock().free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_take_reuses_capacity() {
        let pool = BufferPool::new();
        let mut a = pool.take(100);
        assert!(a.is_empty() && a.capacity() >= 100);
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take(50);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "same backing allocation");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.released), (1, 1, 1));
    }

    #[test]
    fn undersized_buffer_counts_as_miss_but_grows() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(8));
        let b = pool.take(1024);
        assert!(b.capacity() >= 1024);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn largest_buffer_is_handed_out_first() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(256));
        pool.put(Vec::with_capacity(64));
        assert_eq!(pool.take(200).capacity(), 256);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn freelist_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_FREE + 10) {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.free_len(), MAX_FREE);
        assert_eq!(pool.stats().dropped, 10);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.free_len(), 0);
        assert_eq!(pool.stats().released, 0);
    }

    #[test]
    fn clones_share_the_freelist() {
        let pool = BufferPool::new();
        let clone = pool.clone();
        pool.put(Vec::with_capacity(32));
        assert_eq!(clone.free_len(), 1);
        let _ = clone.take(4);
        assert_eq!(pool.free_len(), 0);
    }
}
