//! GDRCopy model: CPU-driven load/store access to GPU memory.
//!
//! GDRCopy \[34\] maps GPU memory into the CPU's address space (a BAR window
//! on PCIe systems, native load/store over NVLink on POWER9) so the *CPU*
//! can pack/unpack small GPU-resident buffers with plain memory operations —
//! no kernel launch, no stream synchronization. This is the low-latency path
//! the CPU-GPU-Hybrid baseline \[24\] uses for dense, small layouts, and the
//! reason that baseline wins Fig. 10 / Fig. 12(c) on Lassen.
//!
//! The catch: throughput is far below a GPU kernel, the CPU is occupied for
//! the whole copy, and on PCIe systems *reads* of GPU memory are extremely
//! slow (uncached BAR reads), which is why the hybrid scheme stops winning
//! on ABCI.

use crate::copy::HostLink;
use crate::kernel::SegmentStats;
use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};

/// CPU load/store window onto GPU memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GdrWindow {
    /// Is the gdrcopy kernel module / NVLink load-store path available?
    /// (The paper notes GDRCopy "may not be available in all HPC systems".)
    pub available: bool,
    /// CPU→GPU store throughput (write-combined), bytes/s.
    pub write_bw: f64,
    /// GPU→CPU load throughput, bytes/s. Tiny on PCIe BAR windows.
    pub read_bw: f64,
    /// Fixed CPU cost to start one copy (pointer math, window check).
    pub base: Duration,
    /// CPU cost per non-contiguous block (loop iteration, address gen).
    pub per_block: Duration,
}

impl GdrWindow {
    /// Derive the window characteristics from the node's host link.
    pub fn for_link(link: &HostLink) -> Self {
        if link.cpu_loadstore_fast {
            // POWER9 + NVLink2: coherent load/store at a good fraction of
            // link bandwidth in both directions.
            GdrWindow {
                available: true,
                write_bw: link.bw * 0.60,
                read_bw: link.bw * 0.50,
                base: Duration::from_nanos(350),
                per_block: Duration::from_nanos(50),
            }
        } else {
            // x86 + PCIe: write-combined stores are usable, BAR reads crawl.
            GdrWindow {
                available: true,
                write_bw: 6.0e9,
                read_bw: 0.9e9,
                base: Duration::from_nanos(600),
                per_block: Duration::from_nanos(110),
            }
        }
    }

    /// A system without GDRCopy (the fallback case the paper mentions).
    pub fn unavailable() -> Self {
        GdrWindow {
            available: false,
            write_bw: 0.0,
            read_bw: 0.0,
            base: Duration::ZERO,
            per_block: Duration::ZERO,
        }
    }

    /// CPU-busy time to *read* (pack from) GPU memory with the given layout
    /// shape into a host buffer.
    pub fn read_time(&self, stats: SegmentStats) -> Duration {
        assert!(self.available, "gdrcopy not available");
        self.base
            + self.per_block * stats.num_blocks
            + Duration::from_secs_f64(stats.total_bytes as f64 / self.read_bw)
    }

    /// CPU-busy time to *write* (unpack into) GPU memory with the given
    /// layout shape from a host buffer.
    pub fn write_time(&self, stats: SegmentStats) -> Duration {
        assert!(self.available, "gdrcopy not available");
        self.base
            + self.per_block * stats.num_blocks
            + Duration::from_secs_f64(stats.total_bytes as f64 / self.write_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_window_reads_much_faster_than_pcie() {
        let nv = GdrWindow::for_link(&HostLink::nvlink2_cpu());
        let pcie = GdrWindow::for_link(&HostLink::pcie_gen3());
        let stats = SegmentStats::new(16 * 1024, 16);
        assert!(nv.read_time(stats) < pcie.read_time(stats) / 4);
    }

    #[test]
    fn small_dense_read_beats_kernel_launch_on_nvlink() {
        // The hybrid baseline's raison d'etre: for a small dense layout the
        // CPU path undercuts even a single kernel launch.
        let arch = crate::arch::GpuArch::v100();
        let nv = GdrWindow::for_link(&HostLink::nvlink2_cpu());
        let stats = SegmentStats::new(8 * 1024, 16);
        assert!(nv.read_time(stats) < arch.launch_cpu);
    }

    #[test]
    fn sparse_layouts_pay_per_block() {
        let nv = GdrWindow::for_link(&HostLink::nvlink2_cpu());
        let dense = SegmentStats::new(64 * 1024, 16);
        let sparse = SegmentStats::new(64 * 1024, 4096);
        assert!(
            nv.read_time(sparse) > nv.read_time(dense) * 4,
            "thousands of blocks should crush the CPU path"
        );
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn unavailable_window_panics_on_use() {
        GdrWindow::unavailable().read_time(SegmentStats::new(1, 1));
    }

    #[test]
    fn write_faster_than_read_on_pcie() {
        let pcie = GdrWindow::for_link(&HostLink::pcie_gen3());
        let stats = SegmentStats::new(32 * 1024, 8);
        assert!(pcie.write_time(stats) < pcie.read_time(stats));
    }
}
