//! # fusedpack-gpu
//!
//! A calibrated model of an NVIDIA GPU as seen by a communication runtime:
//! device memory (real bytes, so packing correctness is testable), CUDA-like
//! streams and events, a kernel *cost model* (launch overhead, startup time,
//! strided-access memory efficiency, SM occupancy), fused kernels that
//! partition thread blocks across many requests via cooperative groups, a
//! DMA copy engine, and a GDRCopy-style CPU load/store window.
//!
//! ## What is modelled vs. real
//!
//! * **Bytes are real.** [`mem::MemPool`] holds actual memory; pack/unpack/
//!   copy operations really move the bytes (unless [`mem::DataMode::ModelOnly`]
//!   is selected for timing-only benchmark runs).
//! * **Time is modelled.** Kernel durations come from [`kernel`]'s cost
//!   model, whose constants (in [`arch::GpuArch`]) are calibrated against the
//!   paper's Fig. 1 (kernel launch ≈ 5–10 µs dominating µs-scale packing
//!   kernels) and public V100/P100/K80 specifications.
//!
//! The model is *passive*: every method takes the current virtual time and
//! returns completion times; the cluster driver in `fusedpack-mpi` owns the
//! event loop and schedules the returned instants.

pub mod arch;
pub mod copy;
pub mod device;
pub mod fused;
pub mod gdr;
pub mod kernel;
pub mod mem;
pub mod staging;
pub mod stream;

pub use arch::GpuArch;
pub use copy::{CopyPath, HostLink};
pub use device::{Gpu, KernelTiming};
pub use fused::{FusedLaunch, FusedTiming, FusedWork, PartitionPolicy};
pub use gdr::GdrWindow;
pub use kernel::SegmentStats;
pub use mem::{DataMode, DevPtr, FixedRuns, MemPool};
pub use staging::{BufferPool, PoolStats};
pub use stream::{EventRecord, Stream, StreamId};
