//! Device (and host) memory pools.
//!
//! A [`MemPool`] is a flat address space with a bump allocator. Pools back
//! both GPU device memory and host staging memory; pointers are plain
//! `(addr, len)` pairs valid within one pool.
//!
//! Pools run in one of two [`DataMode`]s:
//!
//! * `Full` — the pool holds real bytes and every copy moves them, so tests
//!   can verify end-to-end pack/unpack correctness;
//! * `ModelOnly` — no backing storage; copies are no-ops. Benchmark sweeps
//!   use this to avoid allocating gigabytes per iteration (timing is
//!   independent of the data).

use serde::{Deserialize, Serialize};

/// Whether a pool carries real bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataMode {
    /// Real backing storage; copies move bytes.
    Full,
    /// Timing-only; no storage, copies are no-ops.
    ModelOnly,
}

/// A pointer into a [`MemPool`]: offset and length in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DevPtr {
    pub addr: u64,
    pub len: u64,
}

impl DevPtr {
    /// A sub-range of this allocation.
    pub fn slice(self, offset: u64, len: u64) -> DevPtr {
        assert!(
            offset + len <= self.len,
            "slice {offset}+{len} out of bounds of {self:?}"
        );
        DevPtr {
            addr: self.addr + offset,
            len,
        }
    }

    /// End address (one past the last byte).
    #[inline]
    pub fn end(self) -> u64 {
        self.addr + self.len
    }
}

/// A fixed-stride copy plan: `runs` runs of `len` bytes starting at
/// absolute address `first`, each `stride` bytes after the previous. The
/// pool-side mirror of the datatype crate's commit-time uniform
/// classification (kept as plain numbers so the two crates stay
/// decoupled); the middle copy tier between "one memcpy" and the generic
/// per-segment walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedRuns {
    pub first: u64,
    pub stride: u64,
    pub len: u64,
    pub runs: u64,
}

impl FixedRuns {
    /// Total payload bytes the plan moves.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.len * self.runs
    }
}

/// Fixed-width strided copy within one buffer: the run length is a
/// compile-time constant, so each iteration is a register-width move
/// (auto-vectorizable) instead of a variable-length `memcpy` call.
#[inline]
fn runs_within<const N: usize>(
    bytes: &mut [u8],
    mut src: usize,
    src_stride: usize,
    mut dst: usize,
    dst_stride: usize,
    runs: u64,
) {
    for _ in 0..runs {
        let run: [u8; N] = bytes[src..src + N].try_into().expect("run width");
        bytes[dst..dst + N].copy_from_slice(&run);
        src += src_stride;
        dst += dst_stride;
    }
}

/// Strided copy within one buffer, dispatching common power-of-two run
/// widths to the const-generic body.
fn strided_within(
    bytes: &mut [u8],
    src: usize,
    src_stride: usize,
    dst: usize,
    dst_stride: usize,
    len: usize,
    runs: u64,
) {
    match len {
        2 => runs_within::<2>(bytes, src, src_stride, dst, dst_stride, runs),
        4 => runs_within::<4>(bytes, src, src_stride, dst, dst_stride, runs),
        8 => runs_within::<8>(bytes, src, src_stride, dst, dst_stride, runs),
        16 => runs_within::<16>(bytes, src, src_stride, dst, dst_stride, runs),
        32 => runs_within::<32>(bytes, src, src_stride, dst, dst_stride, runs),
        _ if len > 32 => block_within(bytes, src, src_stride, dst, dst_stride, len, runs),
        _ => {
            let (mut s, mut d) = (src, dst);
            for _ in 0..runs {
                bytes.copy_within(s..s + len, d);
                s += src_stride;
                d += dst_stride;
            }
        }
    }
}

/// Block-uniform tier within one buffer: large runs (> 32 bytes) move as
/// fixed 64-byte chunks (stack-staged, so overlapping source/destination
/// ranges are safe and each chunk is a full-width vector move) plus one
/// variable tail.
fn block_within(
    bytes: &mut [u8],
    mut src: usize,
    src_stride: usize,
    mut dst: usize,
    dst_stride: usize,
    len: usize,
    runs: u64,
) {
    const CHUNK: usize = 64;
    for _ in 0..runs {
        let mut i = 0;
        while i + CHUNK <= len {
            let tmp: [u8; CHUNK] = bytes[src + i..src + i + CHUNK]
                .try_into()
                .expect("chunk width");
            bytes[dst + i..dst + i + CHUNK].copy_from_slice(&tmp);
            i += CHUNK;
        }
        if i < len {
            bytes.copy_within(src + i..src + len, dst + i);
        }
        src += src_stride;
        dst += dst_stride;
    }
}

/// Fixed-width strided copy between two buffers.
#[inline]
fn runs_across<const N: usize>(
    src: &[u8],
    mut s: usize,
    src_stride: usize,
    dst: &mut [u8],
    mut d: usize,
    dst_stride: usize,
    runs: u64,
) {
    for _ in 0..runs {
        let run: &[u8; N] = src[s..s + N].try_into().expect("run width");
        dst[d..d + N].copy_from_slice(run);
        s += src_stride;
        d += dst_stride;
    }
}

/// Strided copy between two buffers, dispatching common run widths to the
/// const-generic body.
#[allow(clippy::too_many_arguments)]
fn strided_across(
    src: &[u8],
    s: usize,
    src_stride: usize,
    dst: &mut [u8],
    d: usize,
    dst_stride: usize,
    len: usize,
    runs: u64,
) {
    match len {
        2 => runs_across::<2>(src, s, src_stride, dst, d, dst_stride, runs),
        4 => runs_across::<4>(src, s, src_stride, dst, d, dst_stride, runs),
        8 => runs_across::<8>(src, s, src_stride, dst, d, dst_stride, runs),
        16 => runs_across::<16>(src, s, src_stride, dst, d, dst_stride, runs),
        32 => runs_across::<32>(src, s, src_stride, dst, d, dst_stride, runs),
        _ if len > 32 => block_across(src, s, src_stride, dst, d, dst_stride, len, runs),
        _ => {
            let (mut s, mut d) = (s, d);
            for _ in 0..runs {
                dst[d..d + len].copy_from_slice(&src[s..s + len]);
                s += src_stride;
                d += dst_stride;
            }
        }
    }
}

/// Block-uniform tier between two buffers: fixed 64-byte chunks plus one
/// variable tail per run.
#[allow(clippy::too_many_arguments)]
fn block_across(
    src: &[u8],
    mut s: usize,
    src_stride: usize,
    dst: &mut [u8],
    mut d: usize,
    dst_stride: usize,
    len: usize,
    runs: u64,
) {
    const CHUNK: usize = 64;
    for _ in 0..runs {
        let mut i = 0;
        while i + CHUNK <= len {
            let run: &[u8; CHUNK] = src[s + i..s + i + CHUNK].try_into().expect("chunk width");
            dst[d + i..d + i + CHUNK].copy_from_slice(run);
            i += CHUNK;
        }
        if i < len {
            dst[d + i..d + len].copy_from_slice(&src[s + i..s + len]);
        }
        s += src_stride;
        d += dst_stride;
    }
}

/// A flat memory pool with a bump allocator.
#[derive(Debug, Clone)]
pub struct MemPool {
    mode: DataMode,
    capacity: u64,
    cursor: u64,
    bytes: Vec<u8>,
    /// High-water mark of allocations, for sizing diagnostics.
    peak: u64,
}

impl MemPool {
    /// Create a pool of `capacity` bytes.
    pub fn new(capacity: u64, mode: DataMode) -> Self {
        let bytes = match mode {
            DataMode::Full => vec![0u8; capacity as usize],
            DataMode::ModelOnly => Vec::new(),
        };
        MemPool {
            mode,
            capacity,
            cursor: 0,
            bytes,
            peak: 0,
        }
    }

    #[inline]
    pub fn mode(&self) -> DataMode {
        self.mode
    }

    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn allocated(&self) -> u64 {
        self.cursor
    }

    /// High-water mark of allocations.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocate `len` bytes with `align` alignment (power of two).
    ///
    /// Panics if the pool is exhausted: pool sizing is a configuration
    /// decision made by the workload driver, so exhaustion is a bug there.
    pub fn alloc(&mut self, len: u64, align: u64) -> DevPtr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.cursor + align - 1) & !(align - 1);
        assert!(
            addr + len <= self.capacity,
            "pool exhausted: need {len}B at {addr}, capacity {}B",
            self.capacity
        );
        self.cursor = addr + len;
        self.peak = self.peak.max(self.cursor);
        DevPtr { addr, len }
    }

    /// Release everything allocated so far (bulk free between iterations).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Read the bytes behind `ptr`. Empty in `ModelOnly` mode.
    pub fn read(&self, ptr: DevPtr) -> &[u8] {
        match self.mode {
            DataMode::Full => &self.bytes[ptr.addr as usize..ptr.end() as usize],
            DataMode::ModelOnly => &[],
        }
    }

    /// Overwrite the bytes behind `ptr`.
    pub fn write(&mut self, ptr: DevPtr, data: &[u8]) {
        if self.mode == DataMode::ModelOnly {
            return;
        }
        assert_eq!(
            data.len() as u64,
            ptr.len,
            "write length mismatch: {} vs {:?}",
            data.len(),
            ptr
        );
        self.bytes[ptr.addr as usize..ptr.end() as usize].copy_from_slice(data);
    }

    /// Copy `len` bytes within this pool.
    pub fn copy_within(&mut self, src: u64, dst: u64, len: u64) {
        if self.mode == DataMode::ModelOnly || len == 0 {
            return;
        }
        self.bytes
            .copy_within(src as usize..(src + len) as usize, dst as usize);
    }

    /// Copy between two pools (e.g. host→device). No-op if either side is
    /// `ModelOnly`.
    pub fn copy_between(src: &MemPool, src_off: u64, dst: &mut MemPool, dst_off: u64, len: u64) {
        if src.mode == DataMode::ModelOnly || dst.mode == DataMode::ModelOnly || len == 0 {
            return;
        }
        dst.bytes[dst_off as usize..(dst_off + len) as usize]
            .copy_from_slice(&src.bytes[src_off as usize..(src_off + len) as usize]);
    }

    /// Gather scattered segments from `src` into a contiguous region of
    /// `dst` (e.g. GDRCopy packing GPU memory into a host staging buffer).
    pub fn gather_between(
        src: &MemPool,
        segments: &[(u64, u64)],
        dst: &mut MemPool,
        dst_off: u64,
    ) -> u64 {
        Self::gather_between_iter(src, segments.iter().copied(), dst, dst_off)
    }

    /// [`Self::gather_between`] over any segment iterator — the
    /// allocation-free form used with gather/scatter plans generated on
    /// the fly (e.g. a layout's `abs_segments` iterator) instead of
    /// materialised into a `Vec`.
    pub fn gather_between_iter(
        src: &MemPool,
        segments: impl IntoIterator<Item = (u64, u64)>,
        dst: &mut MemPool,
        dst_off: u64,
    ) -> u64 {
        if src.mode == DataMode::ModelOnly || dst.mode == DataMode::ModelOnly {
            return segments.into_iter().map(|(_, len)| len).sum();
        }
        let mut out = dst_off as usize;
        for (addr, len) in segments {
            dst.bytes[out..out + len as usize]
                .copy_from_slice(&src.bytes[addr as usize..(addr + len) as usize]);
            out += len as usize;
        }
        out as u64 - dst_off
    }

    /// Scatter a contiguous region of `src` out to segments of `dst`
    /// (e.g. GDRCopy unpacking a host buffer into GPU memory).
    pub fn scatter_between(
        src: &MemPool,
        src_off: u64,
        dst: &mut MemPool,
        segments: &[(u64, u64)],
    ) -> u64 {
        Self::scatter_between_iter(src, src_off, dst, segments.iter().copied())
    }

    /// [`Self::scatter_between`] over any segment iterator.
    pub fn scatter_between_iter(
        src: &MemPool,
        src_off: u64,
        dst: &mut MemPool,
        segments: impl IntoIterator<Item = (u64, u64)>,
    ) -> u64 {
        if src.mode == DataMode::ModelOnly || dst.mode == DataMode::ModelOnly {
            return segments.into_iter().map(|(_, len)| len).sum();
        }
        let mut inp = src_off as usize;
        for (addr, len) in segments {
            dst.bytes[addr as usize..(addr + len) as usize]
                .copy_from_slice(&src.bytes[inp..inp + len as usize]);
            inp += len as usize;
        }
        inp as u64 - src_off
    }

    /// Gather scattered segments into a fresh byte vector (used for
    /// cross-device transfers where both pools are borrowed).
    pub fn gather_to_vec(&self, segments: &[(u64, u64)]) -> Vec<u8> {
        let mut out = Vec::new();
        self.gather_into(segments.iter().copied(), &mut out);
        out
    }

    /// Gather scattered segments by *appending* to `out` — the pooled-buffer
    /// form of [`Self::gather_to_vec`]: the caller owns (and can recycle)
    /// the destination vector. Returns the payload byte count, which in
    /// `ModelOnly` mode is tallied without touching `out`.
    pub fn gather_into(
        &self,
        segments: impl IntoIterator<Item = (u64, u64)>,
        out: &mut Vec<u8>,
    ) -> u64 {
        if self.mode == DataMode::ModelOnly {
            return segments.into_iter().map(|(_, len)| len).sum();
        }
        let mut total = 0u64;
        for (addr, len) in segments {
            out.extend_from_slice(&self.bytes[addr as usize..(addr + len) as usize]);
            total += len;
        }
        total
    }

    /// Scatter a contiguous byte slice out to segments of this pool.
    pub fn scatter_from_slice(&mut self, data: &[u8], segments: &[(u64, u64)]) {
        self.scatter_from_slice_iter(data, segments.iter().copied());
    }

    /// [`Self::scatter_from_slice`] over any segment iterator.
    pub fn scatter_from_slice_iter(
        &mut self,
        data: &[u8],
        segments: impl IntoIterator<Item = (u64, u64)>,
    ) {
        if self.mode == DataMode::ModelOnly || data.is_empty() {
            return;
        }
        let mut inp = 0usize;
        for (addr, len) in segments {
            self.bytes[addr as usize..(addr + len) as usize]
                .copy_from_slice(&data[inp..inp + len as usize]);
            inp += len as usize;
        }
        debug_assert_eq!(inp, data.len(), "segment total must match data length");
    }

    /// Gather scattered `(src_offset, len)` segments into a contiguous region
    /// starting at `dst` — the data movement a packing kernel performs.
    /// Returns the number of bytes packed.
    pub fn gather(&mut self, segments: &[(u64, u64)], dst: u64) -> u64 {
        self.gather_iter(segments.iter().copied(), dst)
    }

    /// [`Self::gather`] over any segment iterator.
    pub fn gather_iter(&mut self, segments: impl IntoIterator<Item = (u64, u64)>, dst: u64) -> u64 {
        if self.mode == DataMode::ModelOnly {
            return segments.into_iter().map(|(_, len)| len).sum();
        }
        let mut out = dst;
        for (src, len) in segments {
            self.bytes
                .copy_within(src as usize..(src + len) as usize, out as usize);
            out += len;
        }
        out - dst
    }

    /// Scatter a contiguous region starting at `src` out to `(dst_offset,
    /// len)` segments — the data movement an unpacking kernel performs.
    pub fn scatter(&mut self, src: u64, segments: &[(u64, u64)]) -> u64 {
        self.scatter_iter(src, segments.iter().copied())
    }

    /// [`Self::scatter`] over any segment iterator.
    pub fn scatter_iter(
        &mut self,
        src: u64,
        segments: impl IntoIterator<Item = (u64, u64)>,
    ) -> u64 {
        if self.mode == DataMode::ModelOnly {
            return segments.into_iter().map(|(_, len)| len).sum();
        }
        let mut inp = src;
        for (dst, len) in segments {
            self.bytes
                .copy_within(inp as usize..(inp + len) as usize, dst as usize);
            inp += len;
        }
        inp - src
    }

    /// [`Self::gather`] for a uniform fixed-stride layout: equivalent to
    /// `gather_iter` over the plan's runs, but with a constant-width inner
    /// loop instead of per-segment `memcpy` dispatch.
    pub fn gather_uniform(&mut self, plan: FixedRuns, dst: u64) -> u64 {
        if self.mode == DataMode::ModelOnly {
            return plan.total_bytes();
        }
        strided_within(
            &mut self.bytes,
            plan.first as usize,
            plan.stride as usize,
            dst as usize,
            plan.len as usize,
            plan.len as usize,
            plan.runs,
        );
        plan.total_bytes()
    }

    /// [`Self::scatter`] for a uniform fixed-stride layout.
    pub fn scatter_uniform(&mut self, src: u64, plan: FixedRuns) -> u64 {
        if self.mode == DataMode::ModelOnly {
            return plan.total_bytes();
        }
        strided_within(
            &mut self.bytes,
            src as usize,
            plan.len as usize,
            plan.first as usize,
            plan.stride as usize,
            plan.len as usize,
            plan.runs,
        );
        plan.total_bytes()
    }

    /// [`Self::gather_into`] for a uniform fixed-stride layout: appends
    /// `plan.total_bytes()` to `out` in one resize, then fills it with the
    /// fixed-width strided loop.
    pub fn gather_into_uniform(&self, plan: FixedRuns, out: &mut Vec<u8>) -> u64 {
        if self.mode == DataMode::ModelOnly {
            return plan.total_bytes();
        }
        let start = out.len();
        out.resize(start + plan.total_bytes() as usize, 0);
        strided_across(
            &self.bytes,
            plan.first as usize,
            plan.stride as usize,
            &mut out[start..],
            0,
            plan.len as usize,
            plan.len as usize,
            plan.runs,
        );
        plan.total_bytes()
    }

    /// [`Self::scatter_from_slice`] for a uniform fixed-stride layout.
    pub fn scatter_from_slice_uniform(&mut self, data: &[u8], plan: FixedRuns) {
        if self.mode == DataMode::ModelOnly || data.is_empty() {
            return;
        }
        debug_assert_eq!(
            data.len() as u64,
            plan.total_bytes(),
            "plan total must match data length"
        );
        strided_across(
            data,
            0,
            plan.len as usize,
            &mut self.bytes,
            plan.first as usize,
            plan.stride as usize,
            plan.len as usize,
            plan.runs,
        );
    }

    /// [`Self::gather_between`] for a uniform fixed-stride layout.
    pub fn gather_between_uniform(
        src: &MemPool,
        plan: FixedRuns,
        dst: &mut MemPool,
        dst_off: u64,
    ) -> u64 {
        if src.mode == DataMode::ModelOnly || dst.mode == DataMode::ModelOnly {
            return plan.total_bytes();
        }
        strided_across(
            &src.bytes,
            plan.first as usize,
            plan.stride as usize,
            &mut dst.bytes,
            dst_off as usize,
            plan.len as usize,
            plan.len as usize,
            plan.runs,
        );
        plan.total_bytes()
    }

    /// [`Self::scatter_between`] for a uniform fixed-stride layout.
    pub fn scatter_between_uniform(
        src: &MemPool,
        src_off: u64,
        dst: &mut MemPool,
        plan: FixedRuns,
    ) -> u64 {
        if src.mode == DataMode::ModelOnly || dst.mode == DataMode::ModelOnly {
            return plan.total_bytes();
        }
        strided_across(
            &src.bytes,
            src_off as usize,
            plan.len as usize,
            &mut dst.bytes,
            plan.first as usize,
            plan.stride as usize,
            plan.len as usize,
            plan.runs,
        );
        plan.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_bounds() {
        let mut p = MemPool::new(1024, DataMode::Full);
        let a = p.alloc(10, 1);
        assert_eq!(a.addr, 0);
        let b = p.alloc(16, 64);
        assert_eq!(b.addr, 64);
        assert_eq!(p.allocated(), 80);
        assert_eq!(p.peak(), 80);
    }

    #[test]
    #[should_panic(expected = "pool exhausted")]
    fn exhaustion_panics() {
        let mut p = MemPool::new(16, DataMode::Full);
        p.alloc(32, 1);
    }

    #[test]
    fn reset_frees_but_keeps_peak() {
        let mut p = MemPool::new(128, DataMode::Full);
        p.alloc(100, 1);
        p.reset();
        assert_eq!(p.allocated(), 0);
        assert_eq!(p.peak(), 100);
        let a = p.alloc(50, 1);
        assert_eq!(a.addr, 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut p = MemPool::new(64, DataMode::Full);
        let ptr = p.alloc(4, 1);
        p.write(ptr, &[1, 2, 3, 4]);
        assert_eq!(p.read(ptr), &[1, 2, 3, 4]);
    }

    #[test]
    fn gather_packs_segments_in_order() {
        let mut p = MemPool::new(64, DataMode::Full);
        let src = p.alloc(16, 1);
        let dst = p.alloc(8, 1);
        p.write(src, &(0..16).collect::<Vec<u8>>());
        // Gather bytes at offsets 2..4, 8..10, 12..16.
        let n = p.gather(
            &[(src.addr + 2, 2), (src.addr + 8, 2), (src.addr + 12, 4)],
            dst.addr,
        );
        assert_eq!(n, 8);
        assert_eq!(p.read(dst), &[2, 3, 8, 9, 12, 13, 14, 15]);
    }

    #[test]
    fn scatter_inverts_gather() {
        let mut p = MemPool::new(128, DataMode::Full);
        let orig = p.alloc(16, 1);
        let packed = p.alloc(8, 1);
        let out = p.alloc(16, 1);
        p.write(orig, &(100..116).collect::<Vec<u8>>());
        let segs_src: Vec<(u64, u64)> = vec![(orig.addr + 1, 3), (orig.addr + 10, 5)];
        p.gather(&segs_src, packed.addr);
        let segs_dst: Vec<(u64, u64)> = vec![(out.addr + 1, 3), (out.addr + 10, 5)];
        p.scatter(packed.addr, &segs_dst);
        let o = p.read(out);
        assert_eq!(&o[1..4], &[101, 102, 103]);
        assert_eq!(&o[10..15], &[110, 111, 112, 113, 114]);
    }

    #[test]
    fn model_only_pool_is_storage_free() {
        let mut p = MemPool::new(1 << 40, DataMode::ModelOnly); // 1 TiB, no alloc
        let ptr = p.alloc(1 << 30, 256);
        assert!(p.read(ptr).is_empty());
        p.write(ptr, &[]); // no-op, no panic
        assert_eq!(p.gather(&[(0, 100), (200, 50)], 0), 150);
    }

    #[test]
    fn gather_and_scatter_between_pools() {
        let mut dev = MemPool::new(64, DataMode::Full);
        let mut host = MemPool::new(64, DataMode::Full);
        let src = dev.alloc(16, 1);
        dev.write(src, &(0..16).collect::<Vec<u8>>());
        let segs = vec![(src.addr + 1, 2u64), (src.addr + 8, 3u64)];
        let n = MemPool::gather_between(&dev, &segs, &mut host, 0);
        assert_eq!(n, 5);
        assert_eq!(&host.read(DevPtr { addr: 0, len: 5 }), &[1, 2, 8, 9, 10]);

        let mut dev2 = MemPool::new(64, DataMode::Full);
        dev2.alloc(16, 1);
        let out_segs = vec![(3u64, 2u64), (10u64, 3u64)];
        MemPool::scatter_between(&host, 0, &mut dev2, &out_segs);
        let v = dev2.read(DevPtr { addr: 0, len: 16 }).to_vec();
        assert_eq!(&v[3..5], &[1, 2]);
        assert_eq!(&v[10..13], &[8, 9, 10]);
    }

    #[test]
    fn iterator_variants_match_slice_forms() {
        let mut p = MemPool::new(64, DataMode::Full);
        let src = p.alloc(16, 1);
        let dst = p.alloc(8, 1);
        p.write(src, &(0..16).collect::<Vec<u8>>());
        let segs = [(src.addr + 2, 2u64), (src.addr + 8, 2), (src.addr + 12, 4)];
        // Iterator gather without materialising the plan.
        let n = p.gather_iter(segs.iter().copied(), dst.addr);
        assert_eq!(n, 8);
        assert_eq!(p.read(dst), &[2, 3, 8, 9, 12, 13, 14, 15]);
        // gather_into appends and reports bytes.
        let mut out = vec![0xAA];
        assert_eq!(
            p.gather_into([(src.addr, 2), (src.addr + 4, 1)], &mut out),
            3
        );
        assert_eq!(out, vec![0xAA, 0, 1, 4]);
    }

    #[test]
    fn gather_into_model_only_counts_without_writing() {
        let p = MemPool::new(1 << 30, DataMode::ModelOnly);
        let mut out = Vec::new();
        assert_eq!(p.gather_into([(0, 100), (500, 50)], &mut out), 150);
        assert!(out.is_empty());
    }

    #[test]
    fn copy_between_pools() {
        let mut a = MemPool::new(16, DataMode::Full);
        let mut b = MemPool::new(16, DataMode::Full);
        let pa = a.alloc(4, 1);
        let pb = b.alloc(4, 1);
        a.write(pa, &[9, 8, 7, 6]);
        MemPool::copy_between(&a, pa.addr, &mut b, pb.addr, 4);
        assert_eq!(b.read(pb), &[9, 8, 7, 6]);
    }

    #[test]
    fn devptr_slice() {
        let p = DevPtr { addr: 100, len: 50 };
        let s = p.slice(10, 20);
        assert_eq!(s, DevPtr { addr: 110, len: 20 });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn devptr_slice_bounds_checked() {
        DevPtr { addr: 0, len: 10 }.slice(5, 10);
    }

    /// The segment list a `FixedRuns` plan stands for.
    fn plan_segments(plan: FixedRuns) -> Vec<(u64, u64)> {
        (0..plan.runs)
            .map(|i| (plan.first + i * plan.stride, plan.len))
            .collect()
    }

    #[test]
    fn uniform_forms_match_iter_forms() {
        // Cover both the const-generic widths and the fallback loop.
        for len in [2u64, 4, 8, 16, 32, 3, 7, 48] {
            let stride = len + 5;
            let runs = 9u64;
            let plan = FixedRuns {
                first: 1,
                stride,
                len,
                runs,
            };
            let span = plan.first + (runs - 1) * stride + len;
            let total = plan.total_bytes();

            let mut fill = MemPool::new(span + total + 16, DataMode::Full);
            let region = fill.alloc(span, 1);
            let packed = fill.alloc(total, 1);
            fill.write(
                region,
                &(0..span).map(|i| (i * 37 % 251) as u8).collect::<Vec<_>>(),
            );
            let baseline = fill.clone();

            // gather_uniform vs gather_iter
            let mut a = baseline.clone();
            let mut b = baseline.clone();
            assert_eq!(a.gather_uniform(plan, packed.addr), total);
            b.gather_iter(plan_segments(plan), packed.addr);
            assert_eq!(a.read(packed), b.read(packed));

            // scatter_uniform vs scatter_iter (round-trip through packed)
            let mut c = a.clone();
            let mut d = a.clone();
            assert_eq!(c.scatter_uniform(packed.addr, plan), total);
            d.scatter_iter(packed.addr, plan_segments(plan));
            assert_eq!(c.read(region), d.read(region));
            assert_eq!(c.read(region), baseline.read(region));

            // gather_into_uniform vs gather_into (appends after a sentinel)
            let mut out_u = vec![0xEE];
            let mut out_i = vec![0xEE];
            assert_eq!(baseline.gather_into_uniform(plan, &mut out_u), total);
            baseline.gather_into(plan_segments(plan), &mut out_i);
            assert_eq!(out_u, out_i);

            // scatter_from_slice_uniform vs scatter_from_slice_iter
            let data: Vec<u8> = (0..total).map(|i| (i % 97) as u8 + 1).collect();
            let mut e = baseline.clone();
            let mut f = baseline.clone();
            e.scatter_from_slice_uniform(&data, plan);
            f.scatter_from_slice_iter(&data, plan_segments(plan));
            assert_eq!(e.read(region), f.read(region));

            // between-pool forms
            let mut host_u = MemPool::new(total + 8, DataMode::Full);
            let mut host_i = MemPool::new(total + 8, DataMode::Full);
            host_u.alloc(total, 1);
            host_i.alloc(total, 1);
            assert_eq!(
                MemPool::gather_between_uniform(&baseline, plan, &mut host_u, 0),
                total
            );
            MemPool::gather_between_iter(&baseline, plan_segments(plan), &mut host_i, 0);
            let whole = DevPtr {
                addr: 0,
                len: total,
            };
            assert_eq!(host_u.read(whole), host_i.read(whole));

            let mut back_u = MemPool::new(span + 8, DataMode::Full);
            let mut back_i = MemPool::new(span + 8, DataMode::Full);
            back_u.alloc(span, 1);
            back_i.alloc(span, 1);
            assert_eq!(
                MemPool::scatter_between_uniform(&host_u, 0, &mut back_u, plan),
                total
            );
            MemPool::scatter_between_iter(&host_i, 0, &mut back_i, plan_segments(plan));
            let whole_back = DevPtr { addr: 0, len: span };
            assert_eq!(back_u.read(whole_back), back_i.read(whole_back));
        }
    }

    #[test]
    fn uniform_model_only_counts_bytes() {
        let plan = FixedRuns {
            first: 0,
            stride: 64,
            len: 16,
            runs: 1000,
        };
        let mut p = MemPool::new(1 << 30, DataMode::ModelOnly);
        assert_eq!(p.gather_uniform(plan, 0), 16_000);
        assert_eq!(p.scatter_uniform(0, plan), 16_000);
        let mut out = Vec::new();
        assert_eq!(p.gather_into_uniform(plan, &mut out), 16_000);
        assert!(out.is_empty());
    }
}
