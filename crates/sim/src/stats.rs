//! Statistics accumulators for benchmark harnesses.
//!
//! The paper reports the *average of 500 iterations, excluding 50 warm-up
//! iterations*; [`Accumulator`] supports exactly that protocol, plus the
//! usual summary statistics used when printing table rows.

use crate::clock::Duration;
use serde::{Deserialize, Serialize};

/// Collects duration samples and produces summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    samples: Vec<f64>, // nanoseconds
    warmup_remaining: usize,
    warmup_skipped: usize,
}

/// Summary of a sample set, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub stddev_ns: f64,
    pub p50_ns: f64,
    pub p99_ns: f64,
}

impl Accumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Discard the first `n` recorded samples as warm-up.
    pub fn with_warmup(n: usize) -> Self {
        Accumulator {
            samples: Vec::new(),
            warmup_remaining: n,
            warmup_skipped: 0,
        }
    }

    pub fn record(&mut self, d: Duration) {
        if self.warmup_remaining > 0 {
            self.warmup_remaining -= 1;
            self.warmup_skipped += 1;
            return;
        }
        self.samples.push(d.as_nanos() as f64);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn warmup_skipped(&self) -> usize {
        self.warmup_skipped
    }

    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        Duration(mean.round() as u64)
    }

    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary {
                count: 0,
                mean_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                stddev_ns: 0.0,
                p50_ns: 0.0,
                p99_ns: 0.0,
            };
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        Summary {
            count: self.samples.len(),
            mean_ns: mean,
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("non-empty"),
            stddev_ns: var.sqrt(),
            p50_ns: percentile(&sorted, 0.50),
            p99_ns: percentile(&sorted, 0.99),
        }
    }
}

/// Nearest-rank percentile on a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_samples_are_dropped() {
        let mut acc = Accumulator::with_warmup(2);
        acc.record(Duration(1_000_000)); // dropped
        acc.record(Duration(1_000_000)); // dropped
        acc.record(Duration(100));
        acc.record(Duration(300));
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.warmup_skipped(), 2);
        assert_eq!(acc.mean(), Duration(200));
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let acc = Accumulator::new();
        let s = acc.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ns, 0.0);
        assert_eq!(acc.mean(), Duration::ZERO);
    }

    #[test]
    fn summary_statistics_are_correct() {
        let mut acc = Accumulator::new();
        for v in [10u64, 20, 30, 40, 50] {
            acc.record(Duration(v));
        }
        let s = acc.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_ns, 30.0);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 50.0);
        assert_eq!(s.p50_ns, 30.0);
        assert_eq!(s.p99_ns, 50.0);
        assert!((s.stddev_ns - 200.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.25), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
    }
}
