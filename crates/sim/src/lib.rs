//! # fusedpack-sim
//!
//! A small, deterministic discrete-event simulation engine used by every other
//! crate in the `fusedpack` workspace to model a GPU cluster: virtual time in
//! nanoseconds, an event queue with stable FIFO ordering for simultaneous
//! events, FIFO resources (streams, links, copy engines), a seedable RNG, and
//! statistics accumulators.
//!
//! The engine is intentionally generic: it knows nothing about GPUs or MPI.
//! Higher layers define their own event payload type and drive the loop.
//!
//! ## Determinism
//!
//! Two runs with the same inputs produce bit-identical event orderings:
//! ties in event time are broken by a monotonically increasing sequence
//! number assigned at `push` time. All randomness goes through [`rng::Pcg32`]
//! with explicit seeds.

pub mod clock;
pub mod event;
pub mod fault;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod slab;
pub mod stats;
pub mod trace;

pub use clock::{Duration, Time};
pub use event::{ClampStats, EventQueue, WheelStats};
pub use fault::{splitmix64, FaultPlan, FaultSite, FaultSpec, FaultSummary, RetryPolicy};
pub use resource::FifoResource;
pub use rng::Pcg32;
pub use shard::{Mailbox, ShardStats};
pub use slab::Slab;
pub use stats::{Accumulator, Summary};
