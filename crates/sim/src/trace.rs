//! A lightweight structured trace for debugging simulations.
//!
//! Components may record `(time, component, message)` entries and tests
//! can assert on ordering. Disabled traces record nothing and cost one
//! branch per call, following the perf-book guidance that logging must be
//! free when off.
//!
//! This is the *legacy, string-typed* view. The stack's primary recorder
//! is the typed `fusedpack-telemetry` crate: the cluster records typed
//! events there, and `mpi`'s `Cluster::trace()` synthesizes a `Trace`
//! from that timeline for backward-compatible assertions. The `reproduce`
//! binary exports the typed timeline as Chrome Trace Event JSON via
//! `--trace-out FILE` (load it in Perfetto or chrome://tracing).

use crate::clock::Time;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub time: Time,
    pub component: &'static str,
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<10} {}",
            self.time, self.component, self.message
        )
    }
}

/// A bounded trace buffer. When full, the oldest entries are dropped.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace: records nothing.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace keeping the most recent `capacity` entries.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity: capacity.max(1),
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry. `message` is only evaluated by the caller; callers on
    /// hot paths should guard with [`Trace::is_enabled`] before formatting.
    pub fn record(&mut self, time: Time, component: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            component,
            message,
        });
    }

    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All entries for one component, in order.
    pub fn for_component(&self, component: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.component == component)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Time(1), "gpu", "launch".into());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_entries_in_order() {
        let mut t = Trace::enabled(10);
        t.record(Time(1), "gpu", "a".into());
        t.record(Time(2), "net", "b".into());
        let msgs: Vec<_> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["a", "b"]);
    }

    #[test]
    fn full_trace_drops_oldest() {
        let mut t = Trace::enabled(2);
        t.record(Time(1), "x", "1".into());
        t.record(Time(2), "x", "2".into());
        t.record(Time(3), "x", "3".into());
        let msgs: Vec<_> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["2", "3"]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filter_by_component() {
        let mut t = Trace::enabled(10);
        t.record(Time(1), "gpu", "a".into());
        t.record(Time(2), "net", "b".into());
        t.record(Time(3), "gpu", "c".into());
        let gpu = t.for_component("gpu");
        assert_eq!(gpu.len(), 2);
        assert_eq!(gpu[1].message, "c");
    }

    #[test]
    fn display_contains_fields() {
        let e = TraceEvent {
            time: Time(1500),
            component: "sched",
            message: "flush".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("sched"));
        assert!(s.contains("flush"));
    }
}
