//! A free-list slab allocator for hot-path object storage.
//!
//! The simulator's data plane used to box every in-flight node (event
//! records, wire messages) individually; under sustained load that churns
//! the global allocator on every push/pop. A [`Slab`] keeps entries in one
//! growable `Vec` and recycles vacated indices through an intrusive free
//! list, so steady-state traffic allocates nothing at all. Keys are plain
//! `u32` indices — half the size of a pointer, and trivially storable
//! inside event payloads.

/// Sentinel index meaning "no entry" — shared by the slab free list and
/// the event-wheel's intrusive slot lists.
pub const NIL: u32 = u32::MAX;

enum Entry<T> {
    Occupied(T),
    Free { next: u32 },
}

/// Vec-backed slab with free-list reuse and an occupancy high-water mark.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: u32,
    high_water: u32,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: NIL,
            len: 0,
            high_water: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
            high_water: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak number of simultaneously live entries over the slab's lifetime.
    /// This is the allocator-churn health metric surfaced in run reports:
    /// total slab memory is `high_water × size_of::<T>()` regardless of how
    /// many billions of inserts flowed through.
    #[inline]
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Number of entry slots ever created (occupied + recyclable); always
    /// equals `high_water` unless entries were freed below the peak.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Store `value`, reusing a vacated index when one exists.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        if self.free_head != NIL {
            let key = self.free_head;
            match self.entries[key as usize] {
                Entry::Free { next } => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at a live entry"),
            }
            self.entries[key as usize] = Entry::Occupied(value);
            key
        } else {
            let key = self.entries.len() as u32;
            assert!(key != NIL, "slab full: 2^32-1 live entries");
            self.entries.push(Entry::Occupied(value));
            key
        }
    }

    /// Remove and return the entry at `key`.
    ///
    /// Panics on a dead or out-of-range key: a double-remove means two
    /// owners believed they held the same index, which is exactly the
    /// aliasing bug slabs are prone to — fail loudly instead of handing
    /// one owner another owner's data.
    pub fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.entries[key as usize];
        match std::mem::replace(
            slot,
            Entry::Free {
                next: self.free_head,
            },
        ) {
            Entry::Occupied(value) => {
                self.free_head = key;
                self.len -= 1;
                value
            }
            Entry::Free { next } => {
                // Undo the replace so the free list stays consistent even if
                // the caller catches the panic.
                *slot = Entry::Free { next };
                panic!("slab::remove on vacant key {key}");
            }
        }
    }

    #[inline]
    pub fn get(&self, key: u32) -> Option<&T> {
        match self.entries.get(key as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.entries.get_mut(key as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        matches!(self.entries.get(key as usize), Some(Entry::Occupied(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn freed_indices_are_reused_lifo() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // LIFO reuse: most recently freed index comes back first.
        assert_eq!(s.insert(3), b);
        assert_eq!(s.insert(4), a);
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn high_water_tracks_peak_not_total() {
        let mut s = Slab::new();
        for round in 0..10 {
            let keys: Vec<_> = (0..4).map(|i| s.insert(round * 4 + i)).collect();
            for k in keys {
                s.remove(k);
            }
        }
        assert_eq!(s.high_water(), 4);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "vacant key")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let k = s.insert(());
        s.remove(k);
        s.remove(k);
    }
}
