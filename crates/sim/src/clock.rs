//! Virtual time.
//!
//! All simulated time is kept in integer nanoseconds. [`Time`] is an absolute
//! point on the virtual clock, [`Duration`] a span between two points. Both
//! are thin wrappers over `u64` so they are `Copy`, hashable, and totally
//! ordered, and arithmetic between them is checked in debug builds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual clock, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than wrapping,
    /// so accidental misordering shows up as a zero span, not a huge one.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from a floating-point number of microseconds (rounded).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Duration {
        debug_assert!(us >= 0.0, "negative duration: {us}");
        Duration((us * 1_000.0).round() as u64)
    }

    /// Construct from a floating-point number of seconds (rounded).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        debug_assert!(s >= 0.0, "negative duration: {s}");
        Duration((s * 1e9).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {self:?} - {rhs:?}");
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self.0 >= rhs.0, "duration underflow: {self:?} - {rhs:?}");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        debug_assert!(self.0 >= rhs.0, "duration underflow: {self:?} -= {rhs:?}");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        debug_assert!(rhs >= 0.0);
        Duration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::ZERO + Duration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!(t - Time::ZERO, Duration::from_micros(5));
        assert_eq!(t.since(Time::ZERO), Duration::from_micros(5));
    }

    #[test]
    fn since_saturates() {
        let early = Time(100);
        let late = Time(200);
        assert_eq!(early.since(late), Duration::ZERO);
        assert_eq!(late.since(early), Duration(100));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_micros(3), Duration::from_nanos(3_000));
        assert_eq!(Duration::from_millis(2), Duration::from_micros(2_000));
        assert_eq!(Duration::from_micros_f64(1.5), Duration(1_500));
        assert_eq!(Duration::from_secs_f64(1e-6), Duration(1_000));
    }

    #[test]
    fn duration_float_views() {
        let d = Duration::from_nanos(2_500_000);
        assert!((d.as_micros_f64() - 2_500.0).abs() < 1e-9);
        assert!((d.as_millis_f64() - 2.5).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_micros(10);
        assert_eq!(d * 3, Duration::from_micros(30));
        assert_eq!(d * 0.5, Duration::from_micros(5));
        assert_eq!(d / 2, Duration::from_micros(5));
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_micros).sum();
        assert_eq!(total, Duration::from_micros(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Duration(999)), "999ns");
        assert_eq!(format!("{}", Duration(1_500)), "1.500us");
        assert_eq!(format!("{}", Duration(2_000_000)), "2.000ms");
        assert_eq!(format!("{}", Duration(3_500_000_000)), "3.500s");
    }

    #[test]
    fn min_max() {
        let a = Time(5);
        let b = Time(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Duration(5).max(Duration(9)), Duration(9));
        assert_eq!(Duration(5).min(Duration(9)), Duration(5));
    }
}
