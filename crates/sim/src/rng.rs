//! A small, seedable PCG32 random number generator.
//!
//! The workspace needs reproducible pseudo-randomness in a few places
//! (workload buffer contents, index patterns for `specfem3D`-style indexed
//! datatypes, jitter experiments). We keep a tiny local PCG implementation so
//! the *simulation* crates do not depend on `rand`'s global state or version
//! behaviour; the `rand` crate is still used at the workload/bench layer
//! where distributions are convenient.

/// PCG-XSH-RR 64/32 (O'Neill 2014). 64-bit state, 32-bit output.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Different stream ids
    /// give independent sequences from the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Create a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e39cb94b95bdb)
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform in `[0, bound)` using Lemire's multiply-shift rejection.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        if span <= u32::MAX as u64 {
            lo + self.next_below(span as u32) as usize
        } else {
            lo + (self.next_u64() % span) as usize
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "too many collisions: {same}");
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg32::new(7, 0);
        let mut b = Pcg32::new(7, 1);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Pcg32::seeded(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_usize_bounds() {
        let mut rng = Pcg32::seeded(9);
        for _ in 0..1000 {
            let v = rng.range_usize(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seeded(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = Pcg32::seeded(5);
        for len in [0usize, 1, 3, 4, 5, 17] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "very unlikely all-zero fill");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seeded(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
