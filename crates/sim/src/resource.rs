//! FIFO resources.
//!
//! Many modelled components serialize work in submission order: a CUDA
//! stream executes kernels back-to-back, a NIC link transmits one message at
//! a time, a DMA copy engine runs one copy at a time. [`FifoResource`]
//! captures exactly that: each `acquire` returns the interval during which
//! the work occupies the resource, starting no earlier than both the request
//! time and the completion of previously submitted work.

use crate::clock::{Duration, Time};

/// A resource that serves requests one at a time, in submission order.
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    busy_until: Time,
    /// Total time the resource has spent occupied (for utilization stats).
    busy_time: Duration,
    /// Number of requests served.
    served: u64,
}

impl FifoResource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit work of length `dur` at time `now`. Returns `(start, end)`:
    /// the work begins at `max(now, end of previous work)` and occupies the
    /// resource until `start + dur`.
    pub fn acquire(&mut self, now: Time, dur: Duration) -> (Time, Time) {
        let start = now.max(self.busy_until);
        let end = start + dur;
        self.busy_until = end;
        self.busy_time += dur;
        self.served += 1;
        (start, end)
    }

    /// The instant at which all currently submitted work completes.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Whether the resource is idle at `now`.
    #[inline]
    pub fn is_idle_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Total occupied time across all requests.
    #[inline]
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Number of requests served.
    #[inline]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Reset to idle (e.g. between benchmark iterations).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let (s, e) = r.acquire(Time(100), Duration(50));
        assert_eq!((s, e), (Time(100), Time(150)));
    }

    #[test]
    fn back_to_back_serializes() {
        let mut r = FifoResource::new();
        r.acquire(Time(0), Duration(100));
        let (s, e) = r.acquire(Time(10), Duration(20));
        assert_eq!((s, e), (Time(100), Time(120)));
        assert_eq!(r.busy_until(), Time(120));
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = FifoResource::new();
        r.acquire(Time(0), Duration(10));
        assert!(r.is_idle_at(Time(10)));
        assert!(!r.is_idle_at(Time(5)));
        let (s, _) = r.acquire(Time(500), Duration(10));
        assert_eq!(s, Time(500));
    }

    #[test]
    fn accounting_tracks_busy_time_and_count() {
        let mut r = FifoResource::new();
        r.acquire(Time(0), Duration(10));
        r.acquire(Time(0), Duration(30));
        assert_eq!(r.busy_time(), Duration(40));
        assert_eq!(r.served(), 2);
        r.reset();
        assert_eq!(r.busy_time(), Duration::ZERO);
        assert_eq!(r.served(), 0);
        assert_eq!(r.busy_until(), Time::ZERO);
    }

    #[test]
    fn zero_duration_work_does_not_block() {
        let mut r = FifoResource::new();
        let (s, e) = r.acquire(Time(5), Duration::ZERO);
        assert_eq!(s, e);
        assert!(r.is_idle_at(Time(5)));
    }
}
