//! The event queue at the heart of the simulator.
//!
//! Historically a `BinaryHeap` ordered by `(time, sequence)`; it is now a
//! hierarchical timing wheel with a calendar-queue (heap) fallback for
//! far-future events. The observable contract is unchanged and locked in
//! by a lockstep property test against the old heap:
//!
//! - events pop in `(time, seq)` order, so same-timestamp events pop in
//!   push order (*stable FIFO*) — essential for deterministic replays of
//!   the MPI progress engine, where many zero-cost bookkeeping events
//!   share a timestamp;
//! - `now()` never moves backwards, and pushes into the past panic in
//!   debug builds / clamp-and-count in release builds ([`ClampStats`]).
//!
//! # Wheel layout
//!
//! [`LEVELS`] levels of 64 slots each; a slot at level `k` spans
//! `2^(SUB + 6k)` ns, so bottom-level slots are 64 ns wide and the whole
//! wheel covers 48 bits of horizon (~78 hours at 7 levels). An event at
//! absolute time `t` lives at the level of the highest 6-bit group where
//! `t` differs from the wheel's internal `cursor` (with the bottom level
//! absorbing the lowest [`SUB`]` + 6` bits); per-level occupancy bitmaps
//! make "find the earliest slot" a trailing-zeros instruction. Draining a
//! level-`k>0` slot advances the cursor to the slot's start and *cascades*
//! its events down to lower levels; draining a bottom-level slot dumps its
//! events into a `ready` run sorted by `(time, seq)`, which restores both
//! time order within the window and FIFO order on timestamp ties
//! regardless of whether events arrived by direct push or by cascade.
//!
//! The ready run doubles as the wheel's "present": a push landing inside
//! the drained window (`at < ready_until`) goes straight into the sorted
//! run — usually an O(1) append, since new pushes carry the largest
//! sequence number — and never touches the slab at all. That is the
//! simulator's hottest pattern (handlers scheduling at `now + tiny Δ`
//! while the engine pops), so the common case costs one `VecDeque` push.
//!
//! Events beyond the wheel horizon go to an overflow heap and migrate
//! into the wheel when it drains down to them. Wheel nodes live in a
//! [`Slab`], so steady-state push/pop traffic performs no allocator calls
//! at all.

use crate::clock::{Duration, Time};
use crate::slab::{Slab, NIL};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the wheel fan-out: 64 slots per level.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// log2 of a bottom-level slot's span in ns. Draining a bottom slot sorts
/// its population by `(time, seq)`, so the span trades sort width against
/// cascade traffic. 64 ns measures fastest: drained runs stay a handful
/// of events (insertion-sort territory), while 4096 ns slots made every
/// drain a 100+-element sort of random-ordered tuples, which cost more
/// than the cascades it avoided.
const SUB: u32 = BITS;
/// Wheel depth. Level `k` slots span `2^(SUB + 6k)` ns, so 7 levels atop
/// 64 ns bottom slots cover 48 bits of horizon (~78 hours in ns);
/// anything further out goes to the overflow calendar.
const LEVELS: usize = 7;

/// A slab-resident wheel event. The intrusive `next` links live in a
/// separate dense array (`EventQueue::next`), not here: appending to a
/// slot list then writes 4 bytes into a hot 16 KB array instead of
/// dirtying the 32-byte node line of the current tail, and the node
/// itself stays one cache line smaller.
struct Node<E> {
    time: Time,
    seq: u64,
    payload: E,
}

/// One wheel slot: an intrusive singly-linked list through the node slab.
/// The tail pointer keeps direct-push appends O(1) and in arrival order
/// (which the bottom-level `(time, seq)` sort then no longer depends on,
/// but keeping lists ordered keeps cascades cheap and debugging sane).
#[derive(Clone, Copy)]
struct SlotList {
    head: u32,
    tail: u32,
}

impl SlotList {
    const EMPTY: SlotList = SlotList {
        head: NIL,
        tail: NIL,
    };
}

struct Far<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Far<E> {}
impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Tally of release-mode past-event clamps.
///
/// A clamp means some component computed a timestamp earlier than the
/// current virtual time — a determinism hazard that debug builds turn into
/// a panic. Release builds clamp to `now` so long simulations degrade
/// gracefully, but the occurrence is counted here rather than vanishing
/// without trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClampStats {
    /// How many pushes were clamped to `now`.
    pub count: u64,
    /// Sum of all clamped-away skews (`now - requested`).
    pub total_skew: Duration,
    /// Largest single clamped-away skew.
    pub max_skew: Duration,
}

/// Timing-wheel health counters, surfaced in run reports so sustained-load
/// runs can see where queue time goes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Pushes that landed beyond the wheel horizon in the overflow
    /// calendar (each later pays a heap push + migration).
    pub overflow_hits: u64,
    /// Nodes relocated from a higher level to a lower one while the
    /// cursor advanced.
    pub cascades: u64,
    /// Bottom-level slots drained ("wheel ticks", one per 64 ns window
    /// served); `processed() / slots_drained` is the events-per-tick
    /// figure.
    pub slots_drained: u64,
    /// Peak number of events simultaneously resident in the node slab.
    pub slab_high_water: u32,
}

impl WheelStats {
    /// Mean events per drained level-0 slot, given the queue's total
    /// processed count.
    pub fn events_per_tick(&self, processed: u64) -> f64 {
        if self.slots_drained == 0 {
            0.0
        } else {
            processed as f64 / self.slots_drained as f64
        }
    }
}

/// A deterministic discrete-event queue.
///
/// `now()` never moves backwards: popping an event advances the clock to the
/// event's timestamp, and pushing an event in the past panics in debug builds
/// (it is clamped to `now` in release builds so long simulations degrade
/// gracefully instead of deadlocking).
pub struct EventQueue<E> {
    nodes: Slab<Node<E>>,
    /// Intrusive slot-list links, indexed by node key (see [`Node`]).
    next: Vec<u32>,
    levels: [[SlotList; SLOTS]; LEVELS],
    occupied: [u64; LEVELS],
    /// Internal wheel time: start of the most recently drained slot.
    /// Invariant: `cursor <= now`, and every pending wheel event's time is
    /// `>= cursor` (so slot indices never wrap within a window).
    cursor: Time,
    /// The drained bottom-level window awaiting pops, sorted ascending by
    /// `(time, seq)` and served from the front. Pushes with
    /// `at < ready_until` merge directly into this run (O(1) in the
    /// common newest-seq case) instead of entering the wheel.
    ready: VecDeque<(Time, u64, E)>,
    /// Exclusive end of the time window `ready` covers. Every event still
    /// in the wheel or overflow has `time >= ready_until`.
    ready_until: Time,
    overflow: BinaryHeap<Far<E>>,
    now: Time,
    seq: u64,
    popped: u64,
    clamps: ClampStats,
    stats: WheelStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            // Pre-size one page-order of nodes: growth reallocs copy the
            // whole slab, and paying that mid-simulation (or mid-bench)
            // costs more than the ~160 KB a 4096-node table occupies.
            nodes: Slab::with_capacity(1 << 12),
            next: Vec::new(),
            levels: [[SlotList::EMPTY; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            cursor: Time::ZERO,
            ready: VecDeque::new(),
            ready_until: Time::ZERO,
            overflow: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            popped: 0,
            clamps: ClampStats::default(),
            stats: WheelStats::default(),
        }
    }

    /// Current virtual time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len() + self.ready.len() + self.overflow.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Level an event at `at` belongs to, relative to the current cursor:
    /// the highest 6-bit group where the two times differ, with the bottom
    /// level absorbing the lowest *two* groups (its slots are 64 ns wide).
    /// `LEVELS` means "beyond the horizon → overflow".
    #[inline]
    fn level_of(&self, at: Time) -> usize {
        let diff = at.0 ^ self.cursor.0;
        if diff < 1 << (SUB + BITS) {
            0
        } else {
            ((63 - diff.leading_zeros() - SUB) / BITS) as usize
        }
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn push_at(&mut self, at: Time, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.push_keyed(at, seq, payload);
    }

    /// Schedule `payload` at `at` under a caller-supplied ordering key.
    ///
    /// Ties in time break on the key exactly as they break on the internal
    /// sequence number under [`push_at`](Self::push_at). The sharded
    /// cluster loop uses this to give every event a *canonical* key derived
    /// from its origin rank, so the pop order — and therefore the whole
    /// simulation — is identical no matter which shard's queue an event
    /// lands in. A queue must use one discipline or the other: mixing
    /// auto-sequence and canonical keys would interleave two unrelated tie
    /// orders.
    #[inline]
    pub fn push_at_key(&mut self, at: Time, key: u64, payload: E) {
        self.push_keyed(at, key, payload);
    }

    fn push_keyed(&mut self, at: Time, seq: u64, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        if at < self.now {
            // Release builds clamp rather than panic, but record the hazard:
            // a clamp rewrites a computed timestamp and can mask an ordering
            // bug upstream.
            let skew = self.now.since(at);
            self.clamps.count += 1;
            self.clamps.total_skew += skew;
            self.clamps.max_skew = self.clamps.max_skew.max(skew);
        }
        let at = at.max(self.now);
        if at < self.ready_until {
            // Lands inside the already-drained window: merge straight into
            // the sorted ready run. A fresh push carries the largest seq,
            // so unless an *earlier time* within the window is still
            // pending behind it, this is a plain append.
            match self.ready.back() {
                Some(last) if (last.0, last.1) > (at, seq) => {
                    let pos = self.ready.partition_point(|e| (e.0, e.1) < (at, seq));
                    self.ready.insert(pos, (at, seq, payload));
                }
                _ => self.ready.push_back((at, seq, payload)),
            }
            return;
        }
        let level = self.level_of(at);
        if level >= LEVELS {
            self.stats.overflow_hits += 1;
            self.overflow.push(Far {
                time: at,
                seq,
                payload,
            });
            return;
        }
        self.insert_node(level, at, seq, payload);
    }

    fn insert_node(&mut self, level: usize, at: Time, seq: u64, payload: E) {
        let key = self.nodes.insert(Node {
            time: at,
            seq,
            payload,
        });
        if key as usize >= self.next.len() {
            self.next.resize(key as usize + 1, NIL);
        }
        self.link(level, at, key);
    }

    /// Append an already-slabbed node to the tail of its slot's list.
    /// Cascades use this directly, relocating a node between levels
    /// without any slab free-list traffic.
    fn link(&mut self, level: usize, at: Time, key: u32) {
        let slot = ((at.0 >> (SUB + BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.next[key as usize] = NIL;
        let list = &mut self.levels[level][slot];
        if list.head == NIL {
            list.head = key;
            list.tail = key;
            self.occupied[level] |= 1 << slot;
        } else {
            let tail = list.tail;
            list.tail = key;
            self.next[tail as usize] = key;
        }
    }

    /// Schedule `payload` after `delay` from now.
    #[inline]
    pub fn push_after(&mut self, delay: Duration, payload: E) {
        self.push_at(self.now + delay, payload);
    }

    /// Detach a slot's list, returning its head key.
    fn take_slot(&mut self, level: usize, slot: usize) -> u32 {
        let list = std::mem::replace(&mut self.levels[level][slot], SlotList::EMPTY);
        self.occupied[level] &= !(1 << slot);
        list.head
    }

    /// Make the earliest pending events servable from `ready`.
    /// Returns `false` when the queue is empty.
    fn refill_ready(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        loop {
            if self.nodes.is_empty() {
                // Wheel drained: migrate the overflow calendar, or report
                // empty. Advancing the cursor to the overflow minimum
                // re-centers the horizon so a full batch fits in the wheel.
                let min = match self.overflow.peek() {
                    Some(far) => far.time,
                    None => return false,
                };
                debug_assert!(min >= self.cursor);
                self.cursor = min;
                while let Some(far) = self.overflow.peek() {
                    let level = self.level_of(far.time);
                    if level >= LEVELS {
                        break;
                    }
                    let far = self.overflow.pop().expect("peeked");
                    self.insert_node(level, far.time, far.seq, far.payload);
                }
                continue;
            }
            // Lower levels hold strictly earlier windows, so the lowest
            // occupied level contains the earliest event.
            let level = self
                .occupied
                .iter()
                .position(|&bits| bits != 0)
                .expect("nodes live in some slot");
            let slot = self.occupied[level].trailing_zeros() as usize;
            let shift = SUB + BITS * level as u32;
            // Start of the slot's window: the cursor's bits above the
            // window, the slot index within it, zeros below. After an
            // overflow re-centering the cursor may sit mid-slot, so never
            // move it backwards.
            let slot_start =
                Time((self.cursor.0 & !((1u64 << (shift + BITS)) - 1)) | ((slot as u64) << shift));
            self.cursor = self.cursor.max(slot_start);
            let mut key = self.take_slot(level, slot);
            if level == 0 {
                // Bottom slot: its window of events becomes the new ready
                // run. Sorting by (time, seq) restores both time order
                // within the window and FIFO order on ties, erasing any
                // skew between direct pushes and cascades.
                self.ready_until = Time(slot_start.0 + (1 << SUB));
                debug_assert!(self.ready_until > self.cursor);
                while key != NIL {
                    let node = self.nodes.remove(key);
                    debug_assert!(node.time >= slot_start && node.time < self.ready_until);
                    self.ready.push_back((node.time, node.seq, node.payload));
                    key = self.next[key as usize];
                }
                self.ready
                    .make_contiguous()
                    .sort_unstable_by_key(|e| (e.0, e.1));
                self.stats.slots_drained += 1;
                return true;
            }
            // Higher-level slot: cascade its events down to their new
            // (lower) levels relative to the advanced cursor. Nodes are
            // relinked in place — no slab free-list traffic, no payload
            // moves.
            let mut cascaded = 0;
            while key != NIL {
                let at = self.nodes.get(key).expect("slot entries are live").time;
                let next = self.next[key as usize];
                let new_level = self.level_of(at);
                debug_assert!(new_level < level);
                self.link(new_level, at, key);
                cascaded += 1;
                key = next;
            }
            self.stats.cascades += cascaded;
        }
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_keyed().map(|(time, _, payload)| (time, payload))
    }

    /// Pop the earliest event, returning its ordering key alongside the
    /// timestamp. Under [`push_at_key`](Self::push_at_key) the key is the
    /// caller's canonical key; under [`push_at`](Self::push_at) it is the
    /// internal sequence number.
    pub fn pop_keyed(&mut self) -> Option<(Time, u64, E)> {
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        let (time, key, payload) = self.ready.pop_front().expect("refilled");
        debug_assert!(time >= self.now);
        self.now = time;
        self.popped += 1;
        Some((time, key, payload))
    }

    /// Timestamp of the next event without popping it.
    ///
    /// Non-mutating, so for a not-yet-drained higher-level slot this walks
    /// the slot's node list for its minimum — O(slot population), which is
    /// fine for its observability/test uses (the hot path pops directly).
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(front) = self.ready.front() {
            return Some(front.0);
        }
        if let Some(level) = self.occupied.iter().position(|&bits| bits != 0) {
            let slot = self.occupied[level].trailing_zeros() as usize;
            let mut key = self.levels[level][slot].head;
            let mut min = None;
            while key != NIL {
                let node = self.nodes.get(key).expect("slot entries are live");
                min = Some(min.map_or(node.time, |m: Time| m.min(node.time)));
                key = self.next[key as usize];
            }
            return min;
        }
        self.overflow.peek().map(|far| far.time)
    }

    /// Past-event clamp statistics (always zero in debug builds, where a
    /// past push panics instead).
    #[inline]
    pub fn clamp_stats(&self) -> ClampStats {
        self.clamps
    }

    /// Shorthand for `clamp_stats().count`.
    #[inline]
    pub fn clamps(&self) -> u64 {
        self.clamps.count
    }

    /// Wheel health counters (overflow hits, cascades, ticks, slab peak).
    #[inline]
    pub fn wheel_stats(&self) -> WheelStats {
        let mut stats = self.stats;
        stats.slab_high_water = self.nodes.high_water();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(Time(30), "c");
        q.push_at(Time(10), "a");
        q.push_at(Time(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(Time(10), "a"), (Time(20), "b"), (Time(30), "c")]
        );
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(Time(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push_at(Time(42), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time(42));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push_at(Time(100), 0u8);
        q.pop();
        q.push_after(Duration(5), 1u8);
        assert_eq!(q.pop(), Some((Time(105), 1u8)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push_at(Time(10), 1);
        q.push_at(Time(50), 5);
        assert_eq!(q.pop(), Some((Time(10), 1)));
        // Schedule something between now and the pending event.
        q.push_at(Time(20), 2);
        assert_eq!(q.pop(), Some((Time(20), 2)));
        assert_eq!(q.pop(), Some((Time(50), 5)));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push_at(Time(100), ());
        q.pop();
        q.push_at(Time(10), ());
    }

    #[test]
    fn clamp_stats_start_at_zero() {
        let mut q = EventQueue::new();
        q.push_at(Time(10), ());
        q.pop();
        q.push_at(Time(20), ());
        assert_eq!(q.clamps(), 0);
        assert_eq!(q.clamp_stats(), ClampStats::default());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_clamps_are_counted_with_skew() {
        let mut q = EventQueue::new();
        q.push_at(Time(100), 0u8);
        q.pop();
        // Two past pushes: skews of 90 and 40 ns.
        q.push_at(Time(10), 1u8);
        q.push_at(Time(60), 2u8);
        let s = q.clamp_stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_skew, Duration(130));
        assert_eq!(s.max_skew, Duration(90));
        // Both events were rewritten to fire at `now`.
        assert_eq!(q.pop(), Some((Time(100), 1u8)));
        assert_eq!(q.pop(), Some((Time(100), 2u8)));
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push_at(Time(7), ());
        q.push_at(Time(3), ());
        assert_eq!(q.peek_time(), Some(Time(3)));
    }

    /// Events beyond the 48-bit wheel horizon take the overflow calendar
    /// and still pop in order (and in FIFO order on timestamp ties).
    #[test]
    fn far_future_events_overflow_and_return() {
        let far = 1u64 << 50;
        let mut q = EventQueue::new();
        q.push_at(Time(far), "far-a");
        q.push_at(Time(5), "near");
        q.push_at(Time(far), "far-b");
        q.push_at(Time(far + 3), "farther");
        assert_eq!(q.wheel_stats().overflow_hits, 3);
        assert_eq!(q.pop(), Some((Time(5), "near")));
        assert_eq!(q.pop(), Some((Time(far), "far-a")));
        assert_eq!(q.pop(), Some((Time(far), "far-b")));
        // A near-future push relative to the advanced clock interleaves
        // correctly with the remaining overflow resident.
        q.push_at(Time(far + 1), "near-again");
        assert_eq!(q.pop(), Some((Time(far + 1), "near-again")));
        assert_eq!(q.pop(), Some((Time(far + 3), "farther")));
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    /// Cascaded events and direct pushes landing on the same timestamp
    /// still pop in global push order.
    #[test]
    fn cascade_preserves_fifo_against_direct_push() {
        let mut q = EventQueue::new();
        // Seq 0 lands above the bottom level (time 300_000 is beyond the
        // bottom window of 2^12 ns), and will cascade downward later.
        q.push_at(Time(300_000), 0);
        q.push_at(Time(90), 1);
        assert_eq!(q.pop(), Some((Time(90), 1)));
        // Draining 300_000's level-1 slot cascades seq 0 into a bottom
        // slot; once popped, the ready window covers its timestamp, so
        // this direct push merges behind it with a *larger* seq.
        q.push_at(Time(300_000), 2);
        assert_eq!(q.pop(), Some((Time(300_000), 0)));
        assert_eq!(q.pop(), Some((Time(300_000), 2)));
        assert!(q.wheel_stats().cascades > 0);
    }

    /// A push landing inside the already-drained ready window at an
    /// *earlier* time than pending ready events still pops in time order.
    #[test]
    fn push_into_ready_window_keeps_time_order() {
        let mut q = EventQueue::new();
        q.push_at(Time(10), 1);
        q.push_at(Time(50), 5);
        assert_eq!(q.pop(), Some((Time(10), 1)));
        // 10 and 50 share one 64 ns bottom slot, so 50 already sits in the
        // ready run; 20 must merge in front of it.
        q.push_at(Time(20), 2);
        assert_eq!(q.pop(), Some((Time(20), 2)));
        assert_eq!(q.pop(), Some((Time(50), 5)));
        assert!(q.pop().is_none());
    }

    /// Canonical keys order timestamp ties regardless of push order —
    /// including keys arriving out of order into the drained ready window.
    #[test]
    fn keyed_ties_break_on_key_not_push_order() {
        let mut q = EventQueue::new();
        q.push_at_key(Time(5), 30, "c");
        q.push_at_key(Time(5), 10, "a");
        q.push_at_key(Time(5), 20, "b");
        q.push_at_key(Time(3), 99, "first");
        assert_eq!(q.pop_keyed(), Some((Time(3), 99, "first")));
        // Time 3 and 5 share a bottom slot, so the keyed ties now sit in
        // the ready run; a *smaller* key pushed late must merge ahead.
        q.push_at_key(Time(5), 15, "a2");
        assert_eq!(q.pop_keyed(), Some((Time(5), 10, "a")));
        assert_eq!(q.pop_keyed(), Some((Time(5), 15, "a2")));
        assert_eq!(q.pop_keyed(), Some((Time(5), 20, "b")));
        assert_eq!(q.pop_keyed(), Some((Time(5), 30, "c")));
        assert!(q.pop().is_none());
    }

    /// Keyed events behave identically across the wheel's three storage
    /// tiers (ready run, wheel slots, overflow calendar).
    #[test]
    fn keyed_order_survives_cascade_and_overflow() {
        let far = 1u64 << 50;
        let mut q = EventQueue::new();
        q.push_at_key(Time(far), 7, "far-b");
        q.push_at_key(Time(far), 3, "far-a");
        q.push_at_key(Time(300_000), 9, "mid-b");
        q.push_at_key(Time(300_000), 1, "mid-a");
        q.push_at_key(Time(8), 5, "near");
        assert_eq!(q.pop_keyed(), Some((Time(8), 5, "near")));
        assert_eq!(q.pop_keyed(), Some((Time(300_000), 1, "mid-a")));
        assert_eq!(q.pop_keyed(), Some((Time(300_000), 9, "mid-b")));
        assert_eq!(q.pop_keyed(), Some((Time(far), 3, "far-a")));
        assert_eq!(q.pop_keyed(), Some((Time(far), 7, "far-b")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn wheel_stats_count_ticks_and_slab_peak() {
        let mut q = EventQueue::new();
        for i in 0..32 {
            // 8 distinct timestamps spread over 8 bottom slots (64 ns
            // wide).
            q.push_at(Time(64 * (i / 4)), i);
        }
        while q.pop().is_some() {}
        let s = q.wheel_stats();
        assert_eq!(s.slots_drained, 8);
        assert_eq!(s.events_per_tick(q.processed()), 4.0);
        assert_eq!(s.slab_high_water, 32);
        assert_eq!(s.overflow_hits, 0);
    }
}
