//! The event queue at the heart of the simulator.
//!
//! A min-heap ordered by `(time, sequence)`. The sequence number is assigned
//! when an event is pushed, which gives *stable FIFO ordering* for events
//! scheduled at the same instant — essential for deterministic replays of the
//! MPI progress engine, where many zero-cost bookkeeping events share a
//! timestamp.

use crate::clock::{Duration, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// `now()` never moves backwards: popping an event advances the clock to the
/// event's timestamp, and pushing an event in the past panics in debug builds
/// (it is clamped to `now` in release builds so long simulations degrade
/// gracefully instead of deadlocking).
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Time,
    seq: u64,
    popped: u64,
    clamps: ClampStats,
}

/// Tally of release-mode past-event clamps.
///
/// A clamp means some component computed a timestamp earlier than the
/// current virtual time — a determinism hazard that debug builds turn into
/// a panic. Release builds clamp to `now` so long simulations degrade
/// gracefully, but the occurrence is counted here rather than vanishing
/// without trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClampStats {
    /// How many pushes were clamped to `now`.
    pub count: u64,
    /// Sum of all clamped-away skews (`now - requested`).
    pub total_skew: Duration,
    /// Largest single clamped-away skew.
    pub max_skew: Duration,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            popped: 0,
            clamps: ClampStats::default(),
        }
    }

    /// Current virtual time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn push_at(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        if at < self.now {
            // Release builds clamp rather than panic, but record the hazard:
            // a clamp rewrites a computed timestamp and can mask an ordering
            // bug upstream.
            let skew = self.now.since(at);
            self.clamps.count += 1;
            self.clamps.total_skew += skew;
            self.clamps.max_skew = self.clamps.max_skew.max(skew);
        }
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule `payload` after `delay` from now.
    #[inline]
    pub fn push_after(&mut self, delay: Duration, payload: E) {
        self.push_at(self.now + delay, payload);
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.popped += 1;
        Some((ev.time, ev.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// Past-event clamp statistics (always zero in debug builds, where a
    /// past push panics instead).
    #[inline]
    pub fn clamp_stats(&self) -> ClampStats {
        self.clamps
    }

    /// Shorthand for `clamp_stats().count`.
    #[inline]
    pub fn clamps(&self) -> u64 {
        self.clamps.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(Time(30), "c");
        q.push_at(Time(10), "a");
        q.push_at(Time(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(Time(10), "a"), (Time(20), "b"), (Time(30), "c")]
        );
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(Time(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push_at(Time(42), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time(42));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push_at(Time(100), 0u8);
        q.pop();
        q.push_after(Duration(5), 1u8);
        assert_eq!(q.pop(), Some((Time(105), 1u8)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push_at(Time(10), 1);
        q.push_at(Time(50), 5);
        assert_eq!(q.pop(), Some((Time(10), 1)));
        // Schedule something between now and the pending event.
        q.push_at(Time(20), 2);
        assert_eq!(q.pop(), Some((Time(20), 2)));
        assert_eq!(q.pop(), Some((Time(50), 5)));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push_at(Time(100), ());
        q.pop();
        q.push_at(Time(10), ());
    }

    #[test]
    fn clamp_stats_start_at_zero() {
        let mut q = EventQueue::new();
        q.push_at(Time(10), ());
        q.pop();
        q.push_at(Time(20), ());
        assert_eq!(q.clamps(), 0);
        assert_eq!(q.clamp_stats(), ClampStats::default());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_clamps_are_counted_with_skew() {
        let mut q = EventQueue::new();
        q.push_at(Time(100), 0u8);
        q.pop();
        // Two past pushes: skews of 90 and 40 ns.
        q.push_at(Time(10), 1u8);
        q.push_at(Time(60), 2u8);
        let s = q.clamp_stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_skew, Duration(130));
        assert_eq!(s.max_skew, Duration(90));
        // Both events were rewritten to fire at `now`.
        assert_eq!(q.pop(), Some((Time(100), 1u8)));
        assert_eq!(q.pop(), Some((Time(100), 2u8)));
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push_at(Time(7), ());
        q.push_at(Time(3), ());
        assert_eq!(q.peek_time(), Some(Time(3)));
    }
}
