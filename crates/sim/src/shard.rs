//! Support types for time-window sharded execution.
//!
//! The sharded cluster loop (see `fusedpack-mpi`) partitions ranks across
//! worker threads, each draining its own [`EventQueue`](crate::EventQueue)
//! up to a conservative window boundary. Two pieces live here because they
//! are generic over the payload and belong with the engine, not the MPI
//! layer:
//!
//! - [`Mailbox`]: the bounded SPSC ring a shard fills with cross-shard
//!   messages during a round. One mailbox exists per (source shard,
//!   destination shard) pair; the worker owning the source shard is the
//!   only producer within a round and the coordinator is the only
//!   consumer, at the barrier — so no atomics are needed, just a fixed
//!   ring that degrades to a spill vector (counted, never dropped) when a
//!   bursty round overruns the preallocated capacity.
//! - [`ShardStats`]: barrier/stall counters aggregated into run reports.

use std::collections::VecDeque;

/// Default ring capacity per shard pair. A round admits at most a few
/// hundred cross-shard deliveries in the workloads we run; 1024 slots is
/// ~16 KB for a pointer-sized payload and makes spills a telemetry event,
/// not a steady state.
pub const MAILBOX_CAPACITY: usize = 1024;

/// Hard cap on one round's spill growth, as a multiple of the ring
/// capacity. Messages are never dropped (that would corrupt the
/// simulation), but a spill this deep means the window/lookahead tuning is
/// broken — warn loudly once so it is investigated instead of silently
/// degrading into unbounded allocation.
pub const MAILBOX_SPILL_WARN_FACTOR: usize = 16;

/// A bounded FIFO ring with an overflow spill, for one shard pair.
///
/// `push` never fails and never reorders: once the ring is full, messages
/// go to a spill vector and are drained after the ring's contents, which
/// preserves arrival order because the ring stops accepting pushes the
/// moment the first spill happens (drain resets both). Spill depth is
/// tracked as a high-water mark and a one-time stderr warning fires when a
/// round overruns [`MAILBOX_SPILL_WARN_FACTOR`] rings' worth of messages.
#[derive(Debug)]
pub struct Mailbox<T> {
    ring: VecDeque<T>,
    capacity: usize,
    spill: Vec<T>,
    spills: u64,
    spill_max: u64,
    warned: bool,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::with_capacity(MAILBOX_CAPACITY)
    }
}

impl<T> Mailbox<T> {
    pub fn with_capacity(capacity: usize) -> Self {
        Mailbox {
            // Preallocate so steady-state rounds never touch the allocator.
            ring: VecDeque::with_capacity(capacity),
            capacity,
            spill: Vec::new(),
            spills: 0,
            spill_max: 0,
            warned: false,
        }
    }

    /// Enqueue a message, spilling (and counting) past capacity.
    #[inline]
    pub fn push(&mut self, msg: T) {
        if self.ring.len() < self.capacity && self.spill.is_empty() {
            self.ring.push_back(msg);
        } else {
            self.spills += 1;
            self.spill.push(msg);
            self.spill_max = self.spill_max.max(self.spill.len() as u64);
            if !self.warned && self.spill.len() >= self.capacity * MAILBOX_SPILL_WARN_FACTOR {
                self.warned = true;
                eprintln!(
                    "warning: shard mailbox spill exceeded {}x its ring capacity \
                     ({} spilled past a {}-slot ring); messages are preserved, but \
                     the window lookahead is admitting far more cross-shard traffic \
                     per round than the mailboxes were sized for",
                    MAILBOX_SPILL_WARN_FACTOR,
                    self.spill.len(),
                    self.capacity
                );
            }
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len() + self.spill.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.spill.is_empty()
    }

    /// Total pushes that overran the ring so far (monotone; survives
    /// drains so the run report sees the lifetime count).
    #[inline]
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Deepest the spill vector has ever grown (messages queued past the
    /// ring at once) — the high-water mark reported via
    /// [`ShardStats::spill_max`].
    #[inline]
    pub fn spill_high_water(&self) -> u64 {
        self.spill_max
    }

    /// Remove and return all queued messages in arrival order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.ring.drain(..).chain(self.spill.drain(..))
    }
}

/// Health counters for a sharded run, merged across shards into the run
/// report. All-zero for single-queue runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker shards the run actually executed with (after clamping).
    pub shards: u32,
    /// Window barriers crossed (rounds executed).
    pub barriers: u64,
    /// Cross-shard messages admitted into destination queues at barriers.
    pub admitted_msgs: u64,
    /// Routed transmits deferred during rounds and applied at barriers.
    pub deferred_transmits: u64,
    /// Mailbox pushes that overran a ring into its spill vector.
    pub mailbox_spills: u64,
    /// Deepest any single mailbox's spill vector grew during the run (a
    /// high-water mark: 0 means no round ever overran its ring).
    pub spill_max: u64,
    /// Wall-clock nanoseconds the coordinator spent in barrier work
    /// (applying transmits, draining mailboxes, computing windows).
    pub barrier_wall_ns: u64,
    /// Wall-clock nanoseconds workers spent stalled between finishing a
    /// round and receiving the next (summed over workers).
    pub stall_wall_ns: u64,
}

impl ShardStats {
    /// Fold another shard's counters into this one. `shards` takes the
    /// max (it is a configuration echo, not a tally).
    pub fn merge(&mut self, other: &ShardStats) {
        self.shards = self.shards.max(other.shards);
        self.barriers = self.barriers.max(other.barriers);
        self.admitted_msgs += other.admitted_msgs;
        self.deferred_transmits += other.deferred_transmits;
        self.mailbox_spills += other.mailbox_spills;
        self.spill_max = self.spill_max.max(other.spill_max);
        self.barrier_wall_ns += other.barrier_wall_ns;
        self.stall_wall_ns += other.stall_wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_preserves_fifo_across_spill() {
        let mut mb = Mailbox::with_capacity(4);
        for i in 0..10 {
            mb.push(i);
        }
        assert_eq!(mb.len(), 10);
        assert_eq!(mb.spill_count(), 6);
        assert_eq!(mb.spill_high_water(), 6);
        let order: Vec<_> = mb.drain().collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert!(mb.is_empty());
        // The spill count and high-water mark survive the drain.
        assert_eq!(mb.spill_count(), 6);
        assert_eq!(mb.spill_high_water(), 6);
    }

    #[test]
    fn saturated_mailbox_keeps_every_message_and_records_high_water() {
        // Saturate far past the warn threshold: nothing may be dropped,
        // order must hold, and the high-water mark reflects the deepest
        // spill (the whole overrun, since nothing drained in between).
        let cap = 4;
        let total = cap * (MAILBOX_SPILL_WARN_FACTOR + 2) + 3;
        let mut mb = Mailbox::with_capacity(cap);
        for i in 0..total {
            mb.push(i);
        }
        assert_eq!(mb.len(), total);
        assert_eq!(mb.spill_count(), (total - cap) as u64);
        assert_eq!(mb.spill_high_water(), (total - cap) as u64);
        let drained: Vec<_> = mb.drain().collect();
        assert_eq!(drained, (0..total).collect::<Vec<_>>());
        // A later, smaller round does not shrink the high-water mark.
        for i in 0..cap + 1 {
            mb.push(i);
        }
        assert_eq!(mb.spill_high_water(), (total - cap) as u64);
    }

    #[test]
    fn mailbox_reuses_ring_after_drain() {
        let mut mb = Mailbox::with_capacity(2);
        mb.push("a");
        mb.push("b");
        assert_eq!(mb.drain().collect::<Vec<_>>(), vec!["a", "b"]);
        mb.push("c");
        assert_eq!(mb.spill_count(), 0);
        assert_eq!(mb.drain().collect::<Vec<_>>(), vec!["c"]);
    }

    #[test]
    fn shard_stats_merge_sums_and_maxes() {
        let mut a = ShardStats {
            shards: 4,
            barriers: 10,
            admitted_msgs: 5,
            deferred_transmits: 7,
            mailbox_spills: 1,
            spill_max: 3,
            barrier_wall_ns: 100,
            stall_wall_ns: 50,
        };
        let b = ShardStats {
            shards: 4,
            barriers: 10,
            admitted_msgs: 3,
            deferred_transmits: 2,
            mailbox_spills: 0,
            spill_max: 9,
            barrier_wall_ns: 40,
            stall_wall_ns: 75,
        };
        a.merge(&b);
        assert_eq!(a.barriers, 10);
        assert_eq!(a.admitted_msgs, 8);
        assert_eq!(a.deferred_transmits, 9);
        assert_eq!(a.spill_max, 9, "high-water mark maxes, not sums");
        assert_eq!(a.stall_wall_ns, 125);
    }
}
