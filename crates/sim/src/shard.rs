//! Support types for time-window sharded execution.
//!
//! The sharded cluster loop (see `fusedpack-mpi`) partitions ranks across
//! worker threads, each draining its own [`EventQueue`](crate::EventQueue)
//! up to a conservative window boundary. Two pieces live here because they
//! are generic over the payload and belong with the engine, not the MPI
//! layer:
//!
//! - [`Mailbox`]: the bounded SPSC ring a shard fills with cross-shard
//!   messages during a round. One mailbox exists per (source shard,
//!   destination shard) pair; the worker owning the source shard is the
//!   only producer within a round and the coordinator is the only
//!   consumer, at the barrier — so no atomics are needed, just a fixed
//!   ring that degrades to a spill vector (counted, never dropped) when a
//!   bursty round overruns the preallocated capacity.
//! - [`ShardStats`]: barrier/stall counters aggregated into run reports.

use std::collections::VecDeque;

/// Default ring capacity per shard pair. A round admits at most a few
/// hundred cross-shard deliveries in the workloads we run; 1024 slots is
/// ~16 KB for a pointer-sized payload and makes spills a telemetry event,
/// not a steady state.
pub const MAILBOX_CAPACITY: usize = 1024;

/// A bounded FIFO ring with an overflow spill, for one shard pair.
///
/// `push` never fails and never reorders: once the ring is full, messages
/// go to a spill vector and are drained after the ring's contents, which
/// preserves arrival order because the ring stops accepting pushes the
/// moment the first spill happens (drain resets both).
#[derive(Debug)]
pub struct Mailbox<T> {
    ring: VecDeque<T>,
    capacity: usize,
    spill: Vec<T>,
    spills: u64,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::with_capacity(MAILBOX_CAPACITY)
    }
}

impl<T> Mailbox<T> {
    pub fn with_capacity(capacity: usize) -> Self {
        Mailbox {
            // Preallocate so steady-state rounds never touch the allocator.
            ring: VecDeque::with_capacity(capacity),
            capacity,
            spill: Vec::new(),
            spills: 0,
        }
    }

    /// Enqueue a message, spilling (and counting) past capacity.
    #[inline]
    pub fn push(&mut self, msg: T) {
        if self.ring.len() < self.capacity && self.spill.is_empty() {
            self.ring.push_back(msg);
        } else {
            self.spills += 1;
            self.spill.push(msg);
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len() + self.spill.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.spill.is_empty()
    }

    /// Total pushes that overran the ring so far (monotone; survives
    /// drains so the run report sees the lifetime count).
    #[inline]
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Remove and return all queued messages in arrival order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.ring.drain(..).chain(self.spill.drain(..))
    }
}

/// Health counters for a sharded run, merged across shards into the run
/// report. All-zero for single-queue runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker shards the run actually executed with (after clamping).
    pub shards: u32,
    /// Window barriers crossed (rounds executed).
    pub barriers: u64,
    /// Cross-shard messages admitted into destination queues at barriers.
    pub admitted_msgs: u64,
    /// Routed transmits deferred during rounds and applied at barriers.
    pub deferred_transmits: u64,
    /// Mailbox pushes that overran a ring into its spill vector.
    pub mailbox_spills: u64,
    /// Wall-clock nanoseconds the coordinator spent in barrier work
    /// (applying transmits, draining mailboxes, computing windows).
    pub barrier_wall_ns: u64,
    /// Wall-clock nanoseconds workers spent stalled between finishing a
    /// round and receiving the next (summed over workers).
    pub stall_wall_ns: u64,
}

impl ShardStats {
    /// Fold another shard's counters into this one. `shards` takes the
    /// max (it is a configuration echo, not a tally).
    pub fn merge(&mut self, other: &ShardStats) {
        self.shards = self.shards.max(other.shards);
        self.barriers = self.barriers.max(other.barriers);
        self.admitted_msgs += other.admitted_msgs;
        self.deferred_transmits += other.deferred_transmits;
        self.mailbox_spills += other.mailbox_spills;
        self.barrier_wall_ns += other.barrier_wall_ns;
        self.stall_wall_ns += other.stall_wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_preserves_fifo_across_spill() {
        let mut mb = Mailbox::with_capacity(4);
        for i in 0..10 {
            mb.push(i);
        }
        assert_eq!(mb.len(), 10);
        assert_eq!(mb.spill_count(), 6);
        let order: Vec<_> = mb.drain().collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert!(mb.is_empty());
        // The spill count survives the drain.
        assert_eq!(mb.spill_count(), 6);
    }

    #[test]
    fn mailbox_reuses_ring_after_drain() {
        let mut mb = Mailbox::with_capacity(2);
        mb.push("a");
        mb.push("b");
        assert_eq!(mb.drain().collect::<Vec<_>>(), vec!["a", "b"]);
        mb.push("c");
        assert_eq!(mb.spill_count(), 0);
        assert_eq!(mb.drain().collect::<Vec<_>>(), vec!["c"]);
    }

    #[test]
    fn shard_stats_merge_sums_and_maxes() {
        let mut a = ShardStats {
            shards: 4,
            barriers: 10,
            admitted_msgs: 5,
            deferred_transmits: 7,
            mailbox_spills: 1,
            barrier_wall_ns: 100,
            stall_wall_ns: 50,
        };
        let b = ShardStats {
            shards: 4,
            barriers: 10,
            admitted_msgs: 3,
            deferred_transmits: 2,
            mailbox_spills: 0,
            barrier_wall_ns: 40,
            stall_wall_ns: 75,
        };
        a.merge(&b);
        assert_eq!(a.barriers, 10);
        assert_eq!(a.admitted_msgs, 8);
        assert_eq!(a.deferred_transmits, 9);
        assert_eq!(a.stall_wall_ns, 125);
    }
}
