//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a set of per-site [`FaultSpec`]s (probability, burst
//! length, latency-spike magnitude) driven entirely by [`Pcg32`] streams
//! derived from one seed, so a chaos run is reproducible bit-for-bit: the
//! same seed yields the same injection decisions in the same order, no
//! matter how many times (or on how many worker threads, as long as each
//! cluster owns its own plan) it is replayed.
//!
//! Sites are named after the injection points they arm in the higher
//! layers: NIC completion behaviour, wire transmission, fused-kernel
//! launches, DirectIPC mapping, and request-ring capacity. The plan itself
//! is policy-free — it only answers "does this site fire now?" and "how
//! large is the spike?"; the recovery ladders live next to the call sites.
//!
//! Two properties the rest of the workspace relies on:
//!
//! * **Zero probability draws nothing.** `should_inject` on a site with
//!   `probability <= 0` returns `false` *without advancing the RNG*, so a
//!   run with an all-zero plan is bit-identical to a run with no plan at
//!   all (enforced by test here and end-to-end in `fusedpack-mpi`).
//! * **Per-site streams.** Each site consumes an independent PCG stream,
//!   so arming one site never perturbs the decision sequence of another.

use crate::clock::Duration;
use crate::rng::Pcg32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named injection point in the simulated stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// `Nic::post_send(_gdr)`: the completion (CQE) for a posted send is
    /// delayed past the normal wire latency.
    NicTimeout,
    /// `Nic::post_send(_gdr)`: a second, spurious completion is generated
    /// for an already-completed send.
    NicDupCompletion,
    /// `Link::transmit`: the payload is lost on the wire; the sender only
    /// finds out via its retransmission timeout.
    LinkDrop,
    /// `Link::transmit`: the payload arrives but fails its checksum; the
    /// receiver NACKs and the sender retransmits.
    LinkCorrupt,
    /// `Link::transmit`: the payload is delayed by a latency spike but
    /// arrives intact.
    LinkDelay,
    /// `gpu::fused` launch: the cooperative launch fails (e.g. not enough
    /// co-resident blocks); the batch degrades to per-request kernels.
    FusedLaunchFail,
    /// `gpu::fused` launch: one request's completion flag is never set;
    /// a host-side watchdog rescues it after a penalty.
    FusedFlagLost,
    /// DirectIPC handle mapping fails; the transfer degrades to a staged
    /// copy through the staging buffer pool.
    IpcMapFail,
    /// `RequestRing` reports exhaustion even though capacity remains,
    /// exercising the backpressure (flush + requeue) ladder.
    RingExhausted,
}

impl FaultSite {
    /// Every site, in stable declaration order (indexes into a plan).
    pub const ALL: [FaultSite; 9] = [
        FaultSite::NicTimeout,
        FaultSite::NicDupCompletion,
        FaultSite::LinkDrop,
        FaultSite::LinkCorrupt,
        FaultSite::LinkDelay,
        FaultSite::FusedLaunchFail,
        FaultSite::FusedFlagLost,
        FaultSite::IpcMapFail,
        FaultSite::RingExhausted,
    ];

    /// Stable human-readable label (used in telemetry args and tables).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NicTimeout => "nic_timeout",
            FaultSite::NicDupCompletion => "nic_dup_completion",
            FaultSite::LinkDrop => "link_drop",
            FaultSite::LinkCorrupt => "link_corrupt",
            FaultSite::LinkDelay => "link_delay",
            FaultSite::FusedLaunchFail => "fused_launch_fail",
            FaultSite::FusedFlagLost => "fused_flag_lost",
            FaultSite::IpcMapFail => "ipc_map_fail",
            FaultSite::RingExhausted => "ring_exhausted",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultSite::NicTimeout => 0,
            FaultSite::NicDupCompletion => 1,
            FaultSite::LinkDrop => 2,
            FaultSite::LinkCorrupt => 3,
            FaultSite::LinkDelay => 4,
            FaultSite::FusedLaunchFail => 5,
            FaultSite::FusedFlagLost => 6,
            FaultSite::IpcMapFail => 7,
            FaultSite::RingExhausted => 8,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-site injection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that a decision at this site fires, in `[0, 1]`.
    pub probability: f64,
    /// After a probabilistic trigger, the next `burst` decisions at this
    /// site fire unconditionally (models correlated failures: a flapping
    /// link, a NIC stalled for several completions in a row).
    pub burst: u32,
    /// Mean magnitude of the latency spike / timeout this site charges,
    /// in nanoseconds. Sampled uniformly from `[d/2, 3d/2)` by
    /// [`FaultPlan::spike`].
    pub delay_ns: u64,
}

impl FaultSpec {
    /// A disarmed site: never fires, draws nothing.
    pub const OFF: FaultSpec = FaultSpec {
        probability: 0.0,
        burst: 0,
        delay_ns: 0,
    };

    /// A spec firing with probability `p`, no burst, default 20 µs spike.
    pub fn with_probability(p: f64) -> FaultSpec {
        FaultSpec {
            probability: p,
            burst: 0,
            delay_ns: 20_000,
        }
    }

    /// Builder: set the burst length.
    pub fn burst(mut self, burst: u32) -> FaultSpec {
        self.burst = burst;
        self
    }

    /// Builder: set the mean spike magnitude in nanoseconds.
    pub fn delay_ns(mut self, ns: u64) -> FaultSpec {
        self.delay_ns = ns;
        self
    }
}

#[derive(Debug, Clone)]
struct SiteState {
    spec: FaultSpec,
    rng: Pcg32,
    burst_left: u32,
    decisions: u64,
    fired: u64,
}

/// A seeded, deterministic fault-injection plan.
///
/// One plan belongs to one simulated cluster; decisions are consumed in
/// event order inside the single-threaded simulation loop, which is what
/// makes chaos runs reproducible.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<SiteState>,
}

/// Stream-id tag mixed with the site index so fault streams never collide
/// with the workload-content streams (`Pcg32::new(seed, rank_idx)`).
const FAULT_STREAM_TAG: u64 = 0xFA417;

impl FaultPlan {
    /// A plan with every site disarmed ([`FaultSpec::OFF`]).
    pub fn new(seed: u64) -> FaultPlan {
        let sites = FaultSite::ALL
            .iter()
            .map(|s| SiteState {
                spec: FaultSpec::OFF,
                rng: Pcg32::new(seed, FAULT_STREAM_TAG + s.index() as u64),
                burst_left: 0,
                decisions: 0,
                fired: 0,
            })
            .collect();
        FaultPlan { seed, sites }
    }

    /// Builder: arm `site` with `spec`.
    pub fn with(mut self, site: FaultSite, spec: FaultSpec) -> FaultPlan {
        self.sites[site.index()].spec = spec;
        self
    }

    /// A plan arming *every* site at probability `p` (spike defaults from
    /// [`FaultSpec::with_probability`]).
    pub fn uniform(seed: u64, p: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for s in FaultSite::ALL {
            plan = plan.with(s, FaultSpec::with_probability(p));
        }
        plan
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any site can ever fire. An unarmed plan behaves exactly
    /// like no plan at all.
    pub fn is_armed(&self) -> bool {
        self.sites
            .iter()
            .any(|s| s.spec.probability > 0.0 || s.burst_left > 0)
    }

    /// The spec currently armed at `site`.
    pub fn spec(&self, site: FaultSite) -> FaultSpec {
        self.sites[site.index()].spec
    }

    /// Decide whether `site` fires now. Zero-probability sites return
    /// `false` without advancing the site's RNG.
    pub fn should_inject(&mut self, site: FaultSite) -> bool {
        let s = &mut self.sites[site.index()];
        s.decisions += 1;
        if s.burst_left > 0 {
            s.burst_left -= 1;
            s.fired += 1;
            return true;
        }
        if s.spec.probability <= 0.0 {
            return false;
        }
        if s.rng.next_f64() < s.spec.probability {
            s.burst_left = s.spec.burst;
            s.fired += 1;
            true
        } else {
            false
        }
    }

    /// Sample a latency spike for `site`: uniform in `[d/2, 3d/2)` around
    /// the spec's mean `delay_ns` (or exactly zero if the mean is zero).
    pub fn spike(&mut self, site: FaultSite) -> Duration {
        let s = &mut self.sites[site.index()];
        let mean = s.spec.delay_ns;
        if mean == 0 {
            return Duration::ZERO;
        }
        let lo = mean / 2;
        let span = mean.max(1);
        Duration::from_nanos(lo + s.rng.next_u64() % span)
    }

    /// Deterministically pick a victim index in `[0, n)` for `site`.
    pub fn pick(&mut self, site: FaultSite, n: usize) -> usize {
        debug_assert!(n > 0, "pick from empty set");
        self.sites[site.index()].rng.range_usize(0, n)
    }

    /// How many times `site` has fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].fired
    }

    /// Total decisions consulted at `site` (fired or not).
    pub fn decisions(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].decisions
    }

    /// Total fires across all sites.
    pub fn fired_total(&self) -> u64 {
        self.sites.iter().map(|s| s.fired).sum()
    }
}

/// Aggregate outcome of a faulted run, reported in `RunReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Faults the plan injected.
    pub injected: u64,
    /// Retransmission attempts made by the retry protocol.
    pub retried: u64,
    /// Times a degradation ladder was taken (per-request kernels, staged
    /// copy, backpressure requeue).
    pub degraded: u64,
    /// Faults fully absorbed (retry succeeded, degradation completed,
    /// spurious event ignored, spike waited out).
    pub recovered: u64,
    /// Transfers whose retry budget (attempts or per-op deadline) ran out
    /// before a clean delivery; the final forced attempt still completes
    /// the exchange, but the overrun is reported here.
    pub deadline_exceeded: u64,
    /// Spurious protocol events dropped by idempotence guards (duplicate
    /// completions, stale ids after a waitall epoch).
    pub spurious: u64,
    /// Extra virtual time charged by faults: wasted wire occupancy,
    /// timeouts, backoffs, spikes, watchdog rescues.
    pub added_latency: Duration,
}

impl FaultSummary {
    /// True when nothing at all was injected or degraded.
    pub fn is_clean(&self) -> bool {
        *self == FaultSummary::default()
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.injected += other.injected;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.recovered += other.recovered;
        self.deadline_exceeded += other.deadline_exceeded;
        self.spurious += other.spurious;
        self.added_latency += other.added_latency;
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected={} retried={} degraded={} recovered={} deadline_exceeded={} \
             spurious={} added_latency={}",
            self.injected,
            self.retried,
            self.degraded,
            self.recovered,
            self.deadline_exceeded,
            self.spurious,
            self.added_latency
        )
    }
}

/// Bounded exponential backoff with deterministic jitter and a per-op
/// deadline, driving retransmission in the transfer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts before the sender stops waiting for clean delivery
    /// (includes the first transmission).
    pub max_attempts: u32,
    /// How long the sender waits for an ACK before declaring a loss.
    pub detect_timeout: Duration,
    /// Backoff before retry `k` is `base * factor^(k-1)`, capped at
    /// `backoff_max`, then jittered to `[1/2, 3/2)` of itself.
    pub backoff_base: Duration,
    pub backoff_factor: u32,
    pub backoff_max: Duration,
    /// Total extra time (timeouts + backoffs) one operation may accrue
    /// before the overrun is counted as `deadline_exceeded`.
    pub deadline: Duration,
}

impl RetryPolicy {
    /// Defaults tuned to the simulated interconnects: 10 µs loss
    /// detection, 5 µs initial backoff doubling to a 160 µs cap, five
    /// attempts, 1 ms per-op deadline.
    pub fn default_transfer() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            detect_timeout: Duration::from_micros(10),
            backoff_base: Duration::from_micros(5),
            backoff_factor: 2,
            backoff_max: Duration::from_micros(160),
            deadline: Duration::from_millis(1),
        }
    }

    /// Backoff before retry attempt `attempt` (1-based: the wait after the
    /// first failed transmission is `backoff(1, ..)`). Exponential growth
    /// capped at `backoff_max`, with deterministic jitter drawn from `rng`
    /// mapping the nominal value to `[1/2, 3/2)` of itself.
    pub fn backoff(&self, attempt: u32, rng: &mut Pcg32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let nominal = self
            .backoff_base
            .as_nanos()
            .saturating_mul(u64::from(self.backoff_factor).saturating_pow(exp))
            .min(self.backoff_max.as_nanos());
        if nominal == 0 {
            return Duration::ZERO;
        }
        let jittered = nominal / 2 + rng.next_u64() % nominal.max(1);
        Duration::from_nanos(jittered)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_transfer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires_and_never_draws() {
        let mut plan = FaultPlan::new(42);
        for _ in 0..1000 {
            for s in FaultSite::ALL {
                assert!(!plan.should_inject(s));
            }
        }
        assert_eq!(plan.fired_total(), 0);
        // The RNG state must be untouched: a fresh plan's streams produce
        // the same next values as the exercised plan's.
        let mut fresh = FaultPlan::uniform(42, 1.0);
        let mut used = {
            let mut p = FaultPlan::new(42);
            for _ in 0..1000 {
                for s in FaultSite::ALL {
                    p.should_inject(s);
                }
            }
            // Arm after the fact; the streams must not have advanced.
            for s in FaultSite::ALL {
                p = p.with(s, FaultSpec::with_probability(1.0));
            }
            p
        };
        for s in FaultSite::ALL {
            assert_eq!(used.spike(s).as_nanos(), fresh.spike(s).as_nanos());
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FaultPlan::uniform(7, 0.3);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..500 {
            for s in FaultSite::ALL {
                assert_eq!(a.should_inject(s), b.should_inject(s));
            }
        }
        assert!(a.fired_total() > 0, "p=0.3 over 4500 decisions must fire");
        assert_eq!(a.fired_total(), b.fired_total());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::uniform(1, 0.5);
        let mut b = FaultPlan::uniform(2, 0.5);
        let diffs = (0..200)
            .filter(|_| {
                a.should_inject(FaultSite::LinkDrop) != b.should_inject(FaultSite::LinkDrop)
            })
            .count();
        assert!(diffs > 10, "seeds should disagree sometimes: {diffs}");
    }

    #[test]
    fn sites_are_independent_streams() {
        // Arming LinkDrop must not perturb LinkDelay's decision sequence.
        let drops_only = {
            let mut p =
                FaultPlan::new(9).with(FaultSite::LinkDelay, FaultSpec::with_probability(0.4));
            (0..300)
                .map(|_| p.should_inject(FaultSite::LinkDelay))
                .collect::<Vec<_>>()
        };
        let both = {
            let mut p = FaultPlan::new(9)
                .with(FaultSite::LinkDelay, FaultSpec::with_probability(0.4))
                .with(FaultSite::LinkDrop, FaultSpec::with_probability(0.4));
            (0..300)
                .map(|_| {
                    p.should_inject(FaultSite::LinkDrop);
                    p.should_inject(FaultSite::LinkDelay)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(drops_only, both);
    }

    #[test]
    fn burst_fires_consecutively() {
        let mut p = FaultPlan::new(5).with(
            FaultSite::NicTimeout,
            FaultSpec {
                probability: 0.05,
                burst: 3,
                delay_ns: 1000,
            },
        );
        // Find the first probabilistic trigger, then expect 3 more fires.
        let mut i = 0;
        while !p.should_inject(FaultSite::NicTimeout) {
            i += 1;
            assert!(i < 10_000, "p=0.05 should trigger well before 10k");
        }
        for _ in 0..3 {
            assert!(p.should_inject(FaultSite::NicTimeout), "burst continues");
        }
    }

    #[test]
    fn spike_is_bounded_around_mean() {
        let mut p = FaultPlan::new(3).with(FaultSite::LinkDelay, FaultSpec::with_probability(1.0));
        for _ in 0..1000 {
            let d = p.spike(FaultSite::LinkDelay).as_nanos();
            assert!((10_000..30_000).contains(&d), "spike {d} out of [d/2,3d/2)");
        }
        assert_eq!(p.spike(FaultSite::LinkDrop), Duration::ZERO, "mean 0 => 0");
    }

    #[test]
    fn backoff_grows_caps_and_jitters_in_range() {
        let pol = RetryPolicy::default_transfer();
        let mut rng = Pcg32::seeded(17);
        let mut prev_nominal = 0u64;
        for attempt in 1..=8 {
            let nominal = pol
                .backoff_base
                .as_nanos()
                .saturating_mul(u64::from(pol.backoff_factor).saturating_pow(attempt - 1))
                .min(pol.backoff_max.as_nanos());
            assert!(nominal >= prev_nominal, "monotone until the cap");
            prev_nominal = nominal;
            let b = pol.backoff(attempt, &mut rng).as_nanos();
            assert!(
                b >= nominal / 2 && b < nominal / 2 + nominal,
                "attempt {attempt}: backoff {b} outside jitter window of {nominal}"
            );
        }
        // Deterministic for a fixed rng state.
        let mut r1 = Pcg32::seeded(23);
        let mut r2 = Pcg32::seeded(23);
        assert_eq!(pol.backoff(3, &mut r1), pol.backoff(3, &mut r2));
    }

    #[test]
    fn summary_merge_and_clean() {
        let mut a = FaultSummary::default();
        assert!(a.is_clean());
        let b = FaultSummary {
            injected: 2,
            retried: 3,
            degraded: 1,
            recovered: 2,
            deadline_exceeded: 0,
            spurious: 1,
            added_latency: Duration::from_micros(5),
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.injected, 4);
        assert_eq!(a.retried, 6);
        assert_eq!(a.added_latency, Duration::from_micros(10));
        assert!(!a.is_clean());
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in FaultSite::ALL {
            assert!(seen.insert(s.label()), "duplicate label {}", s.label());
            assert_eq!(format!("{s}"), s.label());
        }
        assert_eq!(seen.len(), FaultSite::ALL.len());
    }
}
