//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a set of per-site [`FaultSpec`]s (probability, burst
//! length, latency-spike magnitude) whose decisions derive entirely from
//! one seed, so a chaos run is reproducible bit-for-bit: the same seed
//! yields the same injection decisions no matter how many times — or on
//! how many worker threads or event-loop shards — it is replayed.
//!
//! Sites are named after the injection points they arm in the higher
//! layers: NIC completion behaviour, wire transmission, per-hop fabric
//! health, fused-kernel launches, DirectIPC mapping, and request-ring
//! capacity. The plan itself is policy-free — it only answers "does this
//! site fire now?" and "how large is the spike?"; the recovery ladders
//! live next to the call sites.
//!
//! ## Two decision families
//!
//! * **Rank-scoped streams** ([`FaultPlan::fires`]): sites that only ever
//!   fire inside one rank's own event execution (kernel launches, IPC
//!   mapping, ring capacity) draw from a lazily created [`Pcg32`] stream
//!   per `(site, rank)`, derived with [`splitmix64`] from the plan seed.
//!   A rank's events execute in the same relative order at any shard
//!   count, so these streams are shard-safe by construction.
//! * **Keyed draws** ([`FaultPlan::fires_keyed`]): sites attached to a
//!   transfer or a fabric hop are *stateless* — the decision is a pure
//!   hash of `(seed, site, salt, key)` where `key` is the transfer's
//!   canonical event key and `salt` distinguishes hops. The sharded event
//!   loop replays deferred transmits at window barriers, in an order that
//!   interleaves differently from the single-queue loop; a stateless draw
//!   cannot observe that difference, which is what lets chaos reports stay
//!   byte-identical at any `--shards N`.
//!
//! Two properties the rest of the workspace relies on:
//!
//! * **Zero probability draws nothing.** A decision at a site with
//!   `probability <= 0` returns `false` without advancing (or creating)
//!   any RNG stream, so a run with an all-zero plan is bit-identical to a
//!   run with no plan at all (enforced by test here and end-to-end in
//!   `fusedpack-mpi`).
//! * **Per-site independence.** Each site's streams and hashes are salted
//!   with the site index, so arming one site never perturbs the decision
//!   sequence of another.

use crate::clock::Duration;
use crate::rng::Pcg32;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A named injection point in the simulated stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// `Nic::post_send(_gdr)`: the completion (CQE) for a posted send is
    /// delayed past the normal wire latency.
    NicTimeout,
    /// `Nic::post_send(_gdr)`: a second, spurious completion is generated
    /// for an already-completed send.
    NicDupCompletion,
    /// `Link::transmit`: the payload is lost on the wire; the sender only
    /// finds out via its retransmission timeout.
    LinkDrop,
    /// `Link::transmit`: the payload arrives but fails its checksum; the
    /// receiver NACKs and the sender retransmits.
    LinkCorrupt,
    /// `Link::transmit`: the payload is delayed by a latency spike but
    /// arrives intact.
    LinkDelay,
    /// `gpu::fused` launch: the cooperative launch fails (e.g. not enough
    /// co-resident blocks); the batch degrades to per-request kernels.
    FusedLaunchFail,
    /// `gpu::fused` launch: one request's completion flag is never set;
    /// a host-side watchdog rescues it after a penalty.
    FusedFlagLost,
    /// DirectIPC handle mapping fails; the transfer degrades to a staged
    /// copy through the staging buffer pool.
    IpcMapFail,
    /// `RequestRing` reports exhaustion even though capacity remains,
    /// exercising the backpressure (flush + requeue) ladder.
    RingExhausted,
    /// `TopoNet` per-hop: a transient error on one hop of a routed
    /// transfer — the payload is delayed by a spike and the health
    /// monitor's error streak for that hop deepens (enough consecutive
    /// flaps mark the hop down).
    HopFlap,
    /// `TopoNet` per-hop: sustained rail degradation — the hop drops to a
    /// fraction of its nominal bandwidth until its health streak heals.
    RailDegrade,
    /// `TopoNet` per-hop: the hop fails permanently; routes re-resolve
    /// around it (ECMP reroute / dual-rail failover).
    HopDown,
}

impl FaultSite {
    /// Every site, in stable declaration order (indexes into a plan).
    pub const ALL: [FaultSite; 12] = [
        FaultSite::NicTimeout,
        FaultSite::NicDupCompletion,
        FaultSite::LinkDrop,
        FaultSite::LinkCorrupt,
        FaultSite::LinkDelay,
        FaultSite::FusedLaunchFail,
        FaultSite::FusedFlagLost,
        FaultSite::IpcMapFail,
        FaultSite::RingExhausted,
        FaultSite::HopFlap,
        FaultSite::RailDegrade,
        FaultSite::HopDown,
    ];

    /// Stable human-readable label (used in telemetry args and tables).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NicTimeout => "nic_timeout",
            FaultSite::NicDupCompletion => "nic_dup_completion",
            FaultSite::LinkDrop => "link_drop",
            FaultSite::LinkCorrupt => "link_corrupt",
            FaultSite::LinkDelay => "link_delay",
            FaultSite::FusedLaunchFail => "fused_launch_fail",
            FaultSite::FusedFlagLost => "fused_flag_lost",
            FaultSite::IpcMapFail => "ipc_map_fail",
            FaultSite::RingExhausted => "ring_exhausted",
            FaultSite::HopFlap => "hop_flap",
            FaultSite::RailDegrade => "rail_degrade",
            FaultSite::HopDown => "hop_down",
        }
    }

    /// Whether this site injects on fabric hops (only reachable through a
    /// routed topology; a flat-model run never consults it).
    pub fn is_fabric(self) -> bool {
        matches!(
            self,
            FaultSite::HopFlap | FaultSite::RailDegrade | FaultSite::HopDown
        )
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultSite::NicTimeout => 0,
            FaultSite::NicDupCompletion => 1,
            FaultSite::LinkDrop => 2,
            FaultSite::LinkCorrupt => 3,
            FaultSite::LinkDelay => 4,
            FaultSite::FusedLaunchFail => 5,
            FaultSite::FusedFlagLost => 6,
            FaultSite::IpcMapFail => 7,
            FaultSite::RingExhausted => 8,
            FaultSite::HopFlap => 9,
            FaultSite::RailDegrade => 10,
            FaultSite::HopDown => 11,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-site injection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that a decision at this site fires, in `[0, 1]`.
    pub probability: f64,
    /// After a probabilistic trigger, the next `burst` decisions at this
    /// site fire unconditionally (models correlated failures: a flapping
    /// link, a NIC stalled for several completions in a row). For keyed
    /// sites the burst window is the `burst` next canonical keys from the
    /// same source, which is the same "consecutive decisions" notion
    /// expressed statelessly.
    pub burst: u32,
    /// Mean magnitude of the latency spike / timeout this site charges,
    /// in nanoseconds. Sampled uniformly from `[d/2, 3d/2)` by
    /// [`FaultPlan::spike`] / [`FaultPlan::spike_keyed`].
    pub delay_ns: u64,
}

impl FaultSpec {
    /// A disarmed site: never fires, draws nothing.
    pub const OFF: FaultSpec = FaultSpec {
        probability: 0.0,
        burst: 0,
        delay_ns: 0,
    };

    /// A spec firing with probability `p`, no burst, default 20 µs spike.
    pub fn with_probability(p: f64) -> FaultSpec {
        FaultSpec {
            probability: p,
            burst: 0,
            delay_ns: 20_000,
        }
    }

    /// Builder: set the burst length.
    pub fn burst(mut self, burst: u32) -> FaultSpec {
        self.burst = burst;
        self
    }

    /// Builder: set the mean spike magnitude in nanoseconds.
    pub fn delay_ns(mut self, ns: u64) -> FaultSpec {
        self.delay_ns = ns;
        self
    }
}

/// The SplitMix64 step: increments by the golden-ratio gamma and applies
/// the Stafford variant-13 finalizer. Used everywhere the workspace needs
/// a cheap, high-quality, *stateless* hash of structured coordinates
/// (seeds, site indexes, hop ids, canonical event keys).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a hash to a uniform f64 in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One rank's lazily created decision stream at one site.
#[derive(Debug, Clone)]
struct RankStream {
    rng: Pcg32,
    burst_left: u32,
}

#[derive(Debug, Clone)]
struct SiteState {
    spec: FaultSpec,
    /// Base hash for stateless keyed draws at this site.
    keyed_base: u64,
    /// Per-rank streams for rank-scoped decisions, created on first armed
    /// draw (so an unarmed plan allocates nothing).
    ranks: HashMap<u32, RankStream>,
    decisions: u64,
    fired: u64,
}

/// A seeded, deterministic fault-injection plan.
///
/// One plan belongs to one simulated cluster. Rank-scoped decisions are
/// consumed in each rank's own event order and keyed decisions are pure
/// hashes of canonical event keys, which together make chaos runs
/// reproducible at any worker-thread or event-loop-shard count.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<SiteState>,
}

/// Tag mixed into every fault hash/stream so fault decisions never collide
/// with the workload-content streams (`Pcg32::new(seed, rank_idx)`).
const FAULT_STREAM_TAG: u64 = 0xFA417;

/// Salt separating spike-magnitude hashes from fire/no-fire hashes.
const SPIKE_PHASE: u64 = 0x5b1e_aced;

impl FaultPlan {
    /// A plan with every site disarmed ([`FaultSpec::OFF`]).
    pub fn new(seed: u64) -> FaultPlan {
        let sites = FaultSite::ALL
            .iter()
            .map(|s| SiteState {
                spec: FaultSpec::OFF,
                keyed_base: splitmix64(seed ^ (FAULT_STREAM_TAG << 16) ^ s.index() as u64),
                ranks: HashMap::new(),
                decisions: 0,
                fired: 0,
            })
            .collect();
        FaultPlan { seed, sites }
    }

    /// Builder: arm `site` with `spec`.
    pub fn with(mut self, site: FaultSite, spec: FaultSpec) -> FaultPlan {
        self.sites[site.index()].spec = spec;
        self
    }

    /// A plan arming *every* site at probability `p` (spike defaults from
    /// [`FaultSpec::with_probability`]).
    pub fn uniform(seed: u64, p: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for s in FaultSite::ALL {
            plan = plan.with(s, FaultSpec::with_probability(p));
        }
        plan
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any site can ever fire. An unarmed plan behaves exactly
    /// like no plan at all.
    pub fn is_armed(&self) -> bool {
        self.sites
            .iter()
            .any(|s| s.spec.probability > 0.0 || s.ranks.values().any(|r| r.burst_left > 0))
    }

    /// Whether any fabric (per-hop) site is armed — the cluster only wires
    /// a fault profile into `TopoNet` when this holds.
    pub fn is_fabric_armed(&self) -> bool {
        FaultSite::ALL
            .iter()
            .any(|&s| s.is_fabric() && self.sites[s.index()].spec.probability > 0.0)
    }

    /// The spec currently armed at `site`.
    pub fn spec(&self, site: FaultSite) -> FaultSpec {
        self.sites[site.index()].spec
    }

    /// Decide whether `site` fires now for `rank`, drawing from the
    /// per-`(site, rank)` stream. Zero-probability sites return `false`
    /// without creating or advancing any stream.
    pub fn fires(&mut self, site: FaultSite, rank: u32) -> bool {
        let seed = self.seed;
        let s = &mut self.sites[site.index()];
        s.decisions += 1;
        if s.spec.probability <= 0.0 {
            // A burst tail keeps firing even if the probability was
            // zeroed after the trigger.
            if let Some(rs) = s.ranks.get_mut(&rank) {
                if rs.burst_left > 0 {
                    rs.burst_left -= 1;
                    s.fired += 1;
                    return true;
                }
            }
            return false;
        }
        let site_idx = site.index() as u64;
        let rs = s.ranks.entry(rank).or_insert_with(|| RankStream {
            rng: Pcg32::new(
                splitmix64(seed ^ (FAULT_STREAM_TAG << 24) ^ site_idx),
                FAULT_STREAM_TAG + u64::from(rank),
            ),
            burst_left: 0,
        });
        if rs.burst_left > 0 {
            rs.burst_left -= 1;
            s.fired += 1;
            return true;
        }
        if rs.rng.next_f64() < s.spec.probability {
            rs.burst_left = s.spec.burst;
            s.fired += 1;
            true
        } else {
            false
        }
    }

    /// Sample a latency spike for `site` from `rank`'s stream: uniform in
    /// `[d/2, 3d/2)` around the spec's mean `delay_ns` (or exactly zero if
    /// the mean is zero).
    pub fn spike(&mut self, site: FaultSite, rank: u32) -> Duration {
        let seed = self.seed;
        let s = &mut self.sites[site.index()];
        let mean = s.spec.delay_ns;
        if mean == 0 {
            return Duration::ZERO;
        }
        let site_idx = site.index() as u64;
        let rs = s.ranks.entry(rank).or_insert_with(|| RankStream {
            rng: Pcg32::new(
                splitmix64(seed ^ (FAULT_STREAM_TAG << 24) ^ site_idx),
                FAULT_STREAM_TAG + u64::from(rank),
            ),
            burst_left: 0,
        });
        let lo = mean / 2;
        let span = mean.max(1);
        Duration::from_nanos(lo + rs.rng.next_u64() % span)
    }

    /// Decide whether `site` fires for the decision identified by
    /// `(salt, key)` — a *stateless* draw: the answer is a pure hash of
    /// the plan seed, the site, `salt` (e.g. a hop id) and `key` (a
    /// canonical event key), so it is independent of evaluation order and
    /// therefore identical at any shard count.
    ///
    /// Burst is expressed statelessly: a decision fires if its own draw
    /// fires *or* any of the `burst` immediately preceding keys from the
    /// same source fired (canonical keys from one rank are consecutive,
    /// so this is "the next `burst` decisions fire unconditionally").
    pub fn fires_keyed(&mut self, site: FaultSite, salt: u64, key: u64) -> bool {
        let s = &mut self.sites[site.index()];
        s.decisions += 1;
        let p = s.spec.probability;
        if p <= 0.0 {
            return false;
        }
        let base = splitmix64(s.keyed_base ^ salt);
        let lookback = u64::from(s.spec.burst);
        let fired = (0..=lookback).any(|j| unit_f64(splitmix64(base ^ key.wrapping_sub(j))) < p);
        if fired {
            s.fired += 1;
        }
        fired
    }

    /// Stateless spike for a keyed decision: uniform in `[d/2, 3d/2)`
    /// around the spec's mean, derived from `(salt, key)` with a phase
    /// salt so it never correlates with the fire/no-fire hash.
    pub fn spike_keyed(&self, site: FaultSite, salt: u64, key: u64) -> Duration {
        let s = &self.sites[site.index()];
        let mean = s.spec.delay_ns;
        if mean == 0 {
            return Duration::ZERO;
        }
        let h = splitmix64(splitmix64(s.keyed_base ^ SPIKE_PHASE ^ salt) ^ key);
        Duration::from_nanos(mean / 2 + h % mean.max(1))
    }

    /// How many times `site` has fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].fired
    }

    /// Total decisions consulted at `site` (fired or not).
    pub fn decisions(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].decisions
    }

    /// Total fires across all sites.
    pub fn fired_total(&self) -> u64 {
        self.sites.iter().map(|s| s.fired).sum()
    }
}

/// Aggregate outcome of a faulted run, reported in `RunReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Faults the plan injected.
    pub injected: u64,
    /// Retransmission attempts made by the retry protocol.
    pub retried: u64,
    /// Times a degradation ladder was taken (per-request kernels, staged
    /// copy, backpressure requeue, forced delivery past a dead fabric).
    pub degraded: u64,
    /// Faults fully absorbed (retry succeeded, degradation completed,
    /// spurious event ignored, spike waited out).
    pub recovered: u64,
    /// Transfers whose retry budget (attempts or per-op deadline) ran out
    /// before a clean delivery; the final forced attempt still completes
    /// the exchange, but the overrun is reported here.
    pub deadline_exceeded: u64,
    /// Spurious protocol events dropped by idempotence guards (duplicate
    /// completions, stale ids after a waitall epoch).
    pub spurious: u64,
    /// Event-queue timestamp clamps observed during the run. A clean
    /// chaos run must not clamp: a clamp means some recovery path tried
    /// to schedule into the past, which silently reorders the timeline.
    pub event_clamps: u64,
    /// Extra virtual time charged by faults: wasted wire occupancy,
    /// timeouts, backoffs, spikes, watchdog rescues.
    pub added_latency: Duration,
}

impl FaultSummary {
    /// True when nothing at all was injected, degraded, or clamped.
    pub fn is_clean(&self) -> bool {
        *self == FaultSummary::default()
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.injected += other.injected;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.recovered += other.recovered;
        self.deadline_exceeded += other.deadline_exceeded;
        self.spurious += other.spurious;
        self.event_clamps += other.event_clamps;
        self.added_latency += other.added_latency;
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected={} retried={} degraded={} recovered={} deadline_exceeded={} \
             spurious={} event_clamps={} added_latency={}",
            self.injected,
            self.retried,
            self.degraded,
            self.recovered,
            self.deadline_exceeded,
            self.spurious,
            self.event_clamps,
            self.added_latency
        )
    }
}

/// Bounded exponential backoff with deterministic jitter and a per-op
/// deadline, driving retransmission in the transfer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts before the sender stops waiting for clean delivery
    /// (includes the first transmission).
    pub max_attempts: u32,
    /// How long the sender waits for an ACK before declaring a loss.
    pub detect_timeout: Duration,
    /// Backoff before retry `k` is `base * factor^(k-1)`, capped at
    /// `backoff_max`, then jittered to `[1/2, 3/2)` of itself.
    pub backoff_base: Duration,
    pub backoff_factor: u32,
    pub backoff_max: Duration,
    /// Total extra time (timeouts + backoffs) one operation may accrue
    /// before the overrun is counted as `deadline_exceeded`.
    pub deadline: Duration,
}

impl RetryPolicy {
    /// Defaults tuned to the simulated interconnects: 10 µs loss
    /// detection, 5 µs initial backoff doubling to a 160 µs cap, five
    /// attempts, 1 ms per-op deadline.
    pub fn default_transfer() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            detect_timeout: Duration::from_micros(10),
            backoff_base: Duration::from_micros(5),
            backoff_factor: 2,
            backoff_max: Duration::from_micros(160),
            deadline: Duration::from_millis(1),
        }
    }

    /// Nominal (pre-jitter) backoff before retry attempt `attempt`
    /// (1-based): exponential growth capped at `backoff_max`.
    fn nominal(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(20);
        self.backoff_base
            .as_nanos()
            .saturating_mul(u64::from(self.backoff_factor).saturating_pow(exp))
            .min(self.backoff_max.as_nanos())
    }

    /// Backoff before retry attempt `attempt` (1-based: the wait after the
    /// first failed transmission is `backoff(1, ..)`). Exponential growth
    /// capped at `backoff_max`, with deterministic jitter drawn from `rng`
    /// mapping the nominal value to `[1/2, 3/2)` of itself.
    pub fn backoff(&self, attempt: u32, rng: &mut Pcg32) -> Duration {
        let nominal = self.nominal(attempt);
        if nominal == 0 {
            return Duration::ZERO;
        }
        let jittered = nominal / 2 + rng.next_u64() % nominal.max(1);
        Duration::from_nanos(jittered)
    }

    /// Stateless variant of [`RetryPolicy::backoff`]: jitter derives from
    /// `(seed, key, attempt)` via [`splitmix64`] instead of a shared RNG
    /// stream, so concurrent retry ladders on different event-loop shards
    /// draw identical backoffs to the single-queue loop.
    pub fn backoff_keyed(&self, attempt: u32, seed: u64, key: u64) -> Duration {
        let nominal = self.nominal(attempt);
        if nominal == 0 {
            return Duration::ZERO;
        }
        let h = splitmix64(splitmix64(seed ^ (FAULT_STREAM_TAG << 32) ^ u64::from(attempt)) ^ key);
        Duration::from_nanos(nominal / 2 + h % nominal.max(1))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_transfer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires_and_never_draws() {
        let mut plan = FaultPlan::new(42);
        for _ in 0..1000 {
            for s in FaultSite::ALL {
                assert!(!plan.fires(s, 0));
                assert!(!plan.fires_keyed(s, 0, 7));
            }
        }
        assert_eq!(plan.fired_total(), 0);
        // No streams may have been created or advanced: a fresh plan's
        // spikes match the exercised plan's exactly.
        let mut fresh = FaultPlan::uniform(42, 1.0);
        let mut used = {
            let mut p = FaultPlan::new(42);
            for _ in 0..1000 {
                for s in FaultSite::ALL {
                    p.fires(s, 0);
                }
            }
            // Arm after the fact; the streams must not have advanced.
            for s in FaultSite::ALL {
                p = p.with(s, FaultSpec::with_probability(1.0));
            }
            p
        };
        for s in FaultSite::ALL {
            assert_eq!(used.spike(s, 0).as_nanos(), fresh.spike(s, 0).as_nanos());
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FaultPlan::uniform(7, 0.3);
        let mut a = mk();
        let mut b = mk();
        for i in 0..500u64 {
            for s in FaultSite::ALL {
                assert_eq!(a.fires(s, 3), b.fires(s, 3));
                assert_eq!(a.fires_keyed(s, 2, i), b.fires_keyed(s, 2, i));
            }
        }
        assert!(a.fired_total() > 0, "p=0.3 over 12k decisions must fire");
        assert_eq!(a.fired_total(), b.fired_total());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::uniform(1, 0.5);
        let mut b = FaultPlan::uniform(2, 0.5);
        let diffs = (0..200)
            .filter(|_| a.fires(FaultSite::LinkDrop, 0) != b.fires(FaultSite::LinkDrop, 0))
            .count();
        assert!(diffs > 10, "seeds should disagree sometimes: {diffs}");
        let keyed_diffs = (0..200u64)
            .filter(|&i| {
                a.fires_keyed(FaultSite::HopDown, 4, i) != b.fires_keyed(FaultSite::HopDown, 4, i)
            })
            .count();
        assert!(
            keyed_diffs > 10,
            "keyed draws should diverge: {keyed_diffs}"
        );
    }

    #[test]
    fn sites_are_independent_streams() {
        // Arming LinkDrop must not perturb LinkDelay's decision sequence.
        let drops_only = {
            let mut p =
                FaultPlan::new(9).with(FaultSite::LinkDelay, FaultSpec::with_probability(0.4));
            (0..300)
                .map(|_| p.fires(FaultSite::LinkDelay, 1))
                .collect::<Vec<_>>()
        };
        let both = {
            let mut p = FaultPlan::new(9)
                .with(FaultSite::LinkDelay, FaultSpec::with_probability(0.4))
                .with(FaultSite::LinkDrop, FaultSpec::with_probability(0.4));
            (0..300)
                .map(|_| {
                    p.fires(FaultSite::LinkDrop, 1);
                    p.fires(FaultSite::LinkDelay, 1)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(drops_only, both);
    }

    #[test]
    fn ranks_are_independent_streams() {
        // Rank 5's decision sequence must not depend on how often other
        // ranks consulted the same site — the property that makes the
        // streams shard-safe.
        let alone = {
            let mut p =
                FaultPlan::new(31).with(FaultSite::LinkDrop, FaultSpec::with_probability(0.4));
            (0..300)
                .map(|_| p.fires(FaultSite::LinkDrop, 5))
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let mut p =
                FaultPlan::new(31).with(FaultSite::LinkDrop, FaultSpec::with_probability(0.4));
            (0..300)
                .map(|i| {
                    // A varying number of draws on *other* ranks (0..=4)
                    // between each of rank 5's draws.
                    for r in 0..=(i % 5) {
                        p.fires(FaultSite::LinkDrop, r);
                    }
                    p.fires(FaultSite::LinkDrop, 5)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn keyed_draws_are_order_independent() {
        // The same (salt, key) set evaluated in any order gives the same
        // fire set — the property the sharded barrier replay relies on.
        let mut p = FaultPlan::new(11).with(FaultSite::HopFlap, FaultSpec::with_probability(0.3));
        let forward: Vec<bool> = (0..200u64)
            .map(|k| p.fires_keyed(FaultSite::HopFlap, 9, k))
            .collect();
        let mut q = FaultPlan::new(11).with(FaultSite::HopFlap, FaultSpec::with_probability(0.3));
        let mut backward: Vec<(u64, bool)> = (0..200u64)
            .rev()
            .map(|k| (k, q.fires_keyed(FaultSite::HopFlap, 9, k)))
            .collect();
        backward.sort_by_key(|&(k, _)| k);
        assert_eq!(
            forward,
            backward.iter().map(|&(_, f)| f).collect::<Vec<_>>()
        );
        // And spikes are pure functions of the coordinates.
        assert_eq!(
            p.spike_keyed(FaultSite::HopFlap, 9, 77),
            q.spike_keyed(FaultSite::HopFlap, 9, 77)
        );
    }

    #[test]
    fn burst_fires_consecutively() {
        let mut p = FaultPlan::new(5).with(
            FaultSite::RingExhausted,
            FaultSpec {
                probability: 0.05,
                burst: 3,
                delay_ns: 1000,
            },
        );
        // Find the first probabilistic trigger, then expect 3 more fires.
        let mut i = 0;
        while !p.fires(FaultSite::RingExhausted, 2) {
            i += 1;
            assert!(i < 10_000, "p=0.05 should trigger well before 10k");
        }
        for _ in 0..3 {
            assert!(p.fires(FaultSite::RingExhausted, 2), "burst continues");
        }
    }

    #[test]
    fn keyed_burst_extends_over_consecutive_keys() {
        let spec = FaultSpec {
            probability: 0.05,
            burst: 3,
            delay_ns: 1000,
        };
        let mut p = FaultPlan::new(5).with(FaultSite::LinkDrop, spec);
        // Find a key whose own (no-lookback) draw fires, then the next
        // `burst` keys must fire through the lookback window.
        let mut bare = FaultPlan::new(5).with(FaultSite::LinkDrop, spec.burst(0));
        let mut k = 0u64;
        while !bare.fires_keyed(FaultSite::LinkDrop, 0, k) {
            k += 1;
            assert!(k < 10_000, "p=0.05 should trigger well before 10k");
        }
        for j in 1..=3u64 {
            assert!(
                p.fires_keyed(FaultSite::LinkDrop, 0, k + j),
                "burst covers key {k}+{j}"
            );
        }
    }

    #[test]
    fn spike_is_bounded_around_mean() {
        let mut p = FaultPlan::new(3).with(FaultSite::LinkDelay, FaultSpec::with_probability(1.0));
        for i in 0..1000u64 {
            let d = p.spike(FaultSite::LinkDelay, 0).as_nanos();
            assert!((10_000..30_000).contains(&d), "spike {d} out of [d/2,3d/2)");
            let dk = p.spike_keyed(FaultSite::LinkDelay, 1, i).as_nanos();
            assert!(
                (10_000..30_000).contains(&dk),
                "keyed spike {dk} out of range"
            );
        }
        assert_eq!(
            p.spike(FaultSite::LinkDrop, 0),
            Duration::ZERO,
            "mean 0 => 0"
        );
    }

    #[test]
    fn backoff_grows_caps_and_jitters_in_range() {
        let pol = RetryPolicy::default_transfer();
        let mut rng = Pcg32::seeded(17);
        let mut prev_nominal = 0u64;
        for attempt in 1..=8 {
            let nominal = pol
                .backoff_base
                .as_nanos()
                .saturating_mul(u64::from(pol.backoff_factor).saturating_pow(attempt - 1))
                .min(pol.backoff_max.as_nanos());
            assert!(nominal >= prev_nominal, "monotone until the cap");
            prev_nominal = nominal;
            let b = pol.backoff(attempt, &mut rng).as_nanos();
            assert!(
                b >= nominal / 2 && b < nominal / 2 + nominal,
                "attempt {attempt}: backoff {b} outside jitter window of {nominal}"
            );
            let bk = pol.backoff_keyed(attempt, 42, 1234).as_nanos();
            assert!(
                bk >= nominal / 2 && bk < nominal / 2 + nominal,
                "attempt {attempt}: keyed backoff {bk} outside jitter window of {nominal}"
            );
        }
        // Deterministic for a fixed rng state / fixed coordinates.
        let mut r1 = Pcg32::seeded(23);
        let mut r2 = Pcg32::seeded(23);
        assert_eq!(pol.backoff(3, &mut r1), pol.backoff(3, &mut r2));
        assert_eq!(pol.backoff_keyed(3, 9, 81), pol.backoff_keyed(3, 9, 81));
    }

    #[test]
    fn summary_merge_and_clean() {
        let mut a = FaultSummary::default();
        assert!(a.is_clean());
        let b = FaultSummary {
            injected: 2,
            retried: 3,
            degraded: 1,
            recovered: 2,
            deadline_exceeded: 0,
            spurious: 1,
            event_clamps: 0,
            added_latency: Duration::from_micros(5),
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.injected, 4);
        assert_eq!(a.retried, 6);
        assert_eq!(a.added_latency, Duration::from_micros(10));
        assert!(!a.is_clean());
    }

    #[test]
    fn event_clamps_break_cleanliness() {
        // The chaos baseline hard-fail relies on clamps folding into
        // is_clean(): a run that schedules into the past is not clean even
        // if nothing was injected.
        let summary = FaultSummary {
            event_clamps: 1,
            ..FaultSummary::default()
        };
        assert!(!summary.is_clean());
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in FaultSite::ALL {
            assert!(seen.insert(s.label()), "duplicate label {}", s.label());
            assert_eq!(format!("{s}"), s.label());
        }
        assert_eq!(seen.len(), FaultSite::ALL.len());
    }

    #[test]
    fn splitmix_is_stable() {
        // Reference values for the canonical SplitMix64 sequence starting
        // from 0 — pins the hash so recorded chaos reports stay replayable.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(splitmix64(0)), 0xa706_dd2f_4d19_7e6f);
    }
}
