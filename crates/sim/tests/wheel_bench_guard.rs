//! Release-mode regression guard for the timing-wheel event queue.
//!
//! The wheel replaced a `BinaryHeap` whose `hotpaths/event_queue_push_pop_4k`
//! baseline is recorded in `BENCH_hotpaths.json`. Absolute nanoseconds vary
//! by machine, so the guard is *relative*: on the same host, in the same
//! process, the wheel must clear the inline binary-heap reference by a
//! comfortable margin on the benchmark's exact workload. A regression that
//! erodes the wheel's advantage (accidental per-pop allocation, cascade
//! blow-up, slot-scan bugs) trips this long before anyone re-reads the
//! bench JSON.
//!
//! Debug builds skip the guard — unoptimised timing proves nothing.

#![cfg(not(debug_assertions))]

use fusedpack_sim::{EventQueue, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// The `hotpaths/event_queue_push_pop_4k` workload, verbatim.
fn wheel_round() -> u64 {
    let mut q = EventQueue::new();
    for i in 0..4096u64 {
        q.push_at(Time(i * 6151 % 65_536), i);
    }
    let mut sum = 0u64;
    while let Some((_, e)) = q.pop() {
        sum = sum.wrapping_add(e);
    }
    sum
}

/// The same workload on the pre-wheel representation: a reversed binary
/// heap of `(time, seq, payload)` with monotone-now clamping.
fn heap_round() -> u64 {
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut now = 0u64;
    for i in 0..4096u64 {
        let at = (i * 6151 % 65_536).max(now);
        heap.push(Reverse((at, i, i)));
    }
    let mut sum = 0u64;
    while let Some(Reverse((t, _, e))) = heap.pop() {
        now = t;
        sum = sum.wrapping_add(e);
    }
    std::hint::black_box(now);
    sum
}

/// One timed batch of `per_batch` calls, in ns per call.
fn batch_ns(f: impl Fn() -> u64, per_batch: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..per_batch {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / per_batch as f64
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[test]
fn wheel_beats_reference_heap_on_the_bench_workload() {
    // Both rounds must agree on the drained payload sum before any timing
    // claim means anything.
    assert_eq!(wheel_round(), heap_round());

    for _ in 0..10 {
        std::hint::black_box(wheel_round());
        std::hint::black_box(heap_round());
    }
    // Interleave wheel and heap batches so machine-speed drift (shared
    // hosts throttle and un-throttle over seconds) hits both sides
    // equally; the medians then compare like with like.
    let mut wheel_samples = Vec::new();
    let mut heap_samples = Vec::new();
    for _ in 0..15 {
        wheel_samples.push(batch_ns(wheel_round, 10));
        heap_samples.push(batch_ns(heap_round, 10));
    }
    let wheel = median(wheel_samples);
    let heap = median(heap_samples);

    // The measured gap is ~2x; 1.4x leaves headroom for noisy CI hosts
    // while still catching any real regression (which lands at <= 1x).
    assert!(
        wheel * 1.4 <= heap,
        "timing wheel ({wheel:.0} ns/round) must beat the binary-heap \
         reference ({heap:.0} ns/round) by >= 1.4x on the \
         event_queue_push_pop_4k workload"
    );
}
