//! Window-sharding properties: random small halo tori run through the
//! time-window sharded event loop must be *observably identical* to the
//! single-queue run.
//!
//! Two invariants pin the conservative-window protocol down (DESIGN.md
//! §11):
//!
//! - **Per-hop transmit order.** The topology network records the start
//!   time of every transmit per hop and counts regressions; a sharded
//!   run must replay deferred transmits in canonical `(time, key, seq)`
//!   order, so the violation counter stays zero exactly as it does
//!   single-queue.
//! - **Exact reconciliation.** Per-hop byte/wasted/busy totals, event
//!   counts, and every lap makespan are compared field-for-field — not
//!   within a tolerance. The sharded loop is a decomposition of the same
//!   simulation, not an approximation of it.
//!
//! The grids are chosen to span ≥ 2 nodes (Lassen packs 4 ranks per
//! node) so the coordinator actually engages — every case asserts that
//! at least one window barrier ran.

use fusedpack_gpu::DataMode;
use fusedpack_mpi::{ClusterBuilder, SchemeKind};
use fusedpack_net::{Hierarchy, Platform};
use fusedpack_sim::Duration;
use fusedpack_workloads::halo::halo_programs;
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::HaloGrid;
use proptest::prelude::*;
use std::sync::Arc;

/// Iterations per program: two laps so window boundaries interleave with
/// the Waitall barrier at least once.
const LAPS: usize = 2;

/// Everything sharding must not change.
#[derive(Debug, PartialEq)]
struct Observed {
    events: u64,
    laps: Vec<Duration>,
    /// `(bytes, wasted, busy ns)` per hop, in hop-table order (empty
    /// without a topology).
    per_hop: Vec<(u64, u64, u64)>,
}

/// Run one periodic halo on `shards` workers; returns the observables,
/// the topology's hop-order violation count, and the barrier count.
fn run_grid(
    grid: HaloGrid,
    n_msgs: usize,
    points: u64,
    shards: u32,
    topo: bool,
) -> (Observed, u64, u64) {
    let platform = Platform::lassen();
    let gpus_per_node = platform.gpus_per_node.max(1);
    let nodes = grid.ranks().div_ceil(gpus_per_node);
    let programs = halo_programs(&grid, &specfem3d_cm(points), n_msgs, LAPS, 7);
    let mut builder = ClusterBuilder::new(platform, SchemeKind::fusion_default())
        .data_mode(DataMode::ModelOnly)
        .shards(shards);
    if topo {
        builder = builder.topology(Arc::new(Hierarchy::lassen_like(nodes)));
    }
    for (rank, (program, _)) in programs.into_iter().enumerate() {
        builder = builder.add_rank(rank as u32 / gpus_per_node, program);
    }
    let mut cluster = builder.build();
    let report = cluster.run();
    let per_hop = cluster
        .topo_hop_stats()
        .map(|stats| {
            stats
                .iter()
                .map(|h| (h.bytes, h.wasted, h.busy.as_nanos()))
                .collect()
        })
        .unwrap_or_default();
    (
        Observed {
            events: report.events_processed,
            laps: (0..LAPS).map(|i| report.lap_makespan(i)).collect(),
            per_hop,
        },
        cluster.topo_order_violations().unwrap_or(0),
        report.shard.barriers,
    )
}

/// Multi-node tori: every grid spans at least 2 Lassen nodes (8+ ranks)
/// so the requested shard count survives the per-node clamp.
fn arb_grid() -> impl Strategy<Value = HaloGrid> {
    prop_oneof![
        Just(HaloGrid::new_3d(2, 2, 2)),
        Just(HaloGrid::new_2d(4, 2)),
        Just(HaloGrid::new_2d(3, 3)),
        Just(HaloGrid::new_3d(4, 2, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded and single-queue runs agree on every observable — event
    /// count, each lap's makespan, and (with a topology attached) the
    /// full per-hop byte/wasted/busy table — and the sharded run's
    /// per-hop transmit starts never regress.
    #[test]
    fn sharded_run_is_observably_identical_to_single_queue(
        grid in arb_grid(),
        shards in 2u32..5,
        n_msgs in 1usize..3,
        topo in any::<bool>(),
    ) {
        let (single, single_viol, _) = run_grid(grid, n_msgs, 200, 1, topo);
        let (sharded, sharded_viol, barriers) = run_grid(grid, n_msgs, 200, shards, topo);
        prop_assert!(
            barriers > 0,
            "coordinator must engage on a {}-rank grid at {} shards",
            grid.ranks(),
            shards
        );
        prop_assert_eq!(single_viol, 0);
        prop_assert_eq!(sharded_viol, 0, "per-hop transmit starts regressed under sharding");
        prop_assert_eq!(single, sharded);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Topology-routed runs specifically: sharded per-hop *byte* totals
    /// reconcile exactly with the single queue, hop by hop — no traffic
    /// lost in a mailbox, none double-applied at a barrier.
    #[test]
    fn per_hop_byte_totals_reconcile_exactly(
        grid in arb_grid(),
        shards in 2u32..5,
    ) {
        let (single, _, _) = run_grid(grid, 1, 300, 1, true);
        let (sharded, violations, barriers) = run_grid(grid, 1, 300, shards, true);
        prop_assert!(barriers > 0);
        prop_assert_eq!(violations, 0);
        prop_assert!(!sharded.per_hop.is_empty(), "topology must expose hop stats");
        prop_assert_eq!(sharded.per_hop.len(), single.per_hop.len());
        let mut total = 0u64;
        for (hop, (a, b)) in single.per_hop.iter().zip(&sharded.per_hop).enumerate() {
            prop_assert_eq!(a.0, b.0, "hop {} bytes diverged", hop);
            total += b.0;
        }
        prop_assert!(total > 0, "halo traffic must cross the fabric");
    }
}
