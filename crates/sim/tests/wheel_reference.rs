//! Lockstep equivalence: the timing-wheel [`EventQueue`] against a
//! plain `(time, seq)` binary-heap reference model.
//!
//! The wheel replaced the heap for speed; these tests pin down that the
//! two are *observably identical* — same pop sequence (including FIFO
//! order on timestamp ties), same clock trajectory, same clamp behaviour
//! — under randomized interleavings of pushes and pops that deliberately
//! cross wheel levels and the overflow horizon.

use fusedpack_sim::{Duration, EventQueue, Time};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-wheel implementation, distilled: a max-heap on
/// `Reverse((time, seq))` with the same monotone clock and release-mode
/// clamp accounting.
struct ReferenceHeap {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    now: u64,
    seq: u64,
    clamps: u64,
    total_skew: u64,
}

impl ReferenceHeap {
    fn new() -> Self {
        ReferenceHeap {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            clamps: 0,
            total_skew: 0,
        }
    }

    fn push_at(&mut self, at: u64, payload: u32) {
        if at < self.now {
            self.clamps += 1;
            self.total_skew += self.now - at;
        }
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((t, _, p)) = self.heap.pop()?;
        self.now = t;
        Some((t, p))
    }
}

/// Time offsets chosen to exercise every interesting region: within the
/// current level-0 window, across cascade boundaries at several levels,
/// and beyond the 48-bit wheel horizon into the overflow calendar.
fn arb_delay() -> impl Strategy<Value = u64> {
    // (The vendored proptest stub has no weighted arms; repetition of the
    // near-future cases supplies the skew instead.)
    prop_oneof![
        0u64..64, // level 0: same 64 ns window
        0u64..64,
        0u64..5_000, // levels 0-2
        0u64..5_000,
        0u64..5_000_000,            // levels up to 4
        (1u64 << 40)..(1u64 << 44), // high wheel levels
        (1u64 << 48)..(1u64 << 52), // overflow calendar
        Just(0u64),                 // exact-now ties
    ]
}

proptest! {
    /// Random interleaved push/pop: the wheel and the reference heap
    /// produce identical `(time, payload)` pop sequences, identical
    /// clocks at every step, and identical final drains.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec((arb_delay(), 0u8..4), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeap::new();
        let mut id: u32 = 0;
        for (delay, pops) in ops {
            wheel.push_after(Duration(delay), id);
            heap.push_at(heap.now + delay, id);
            id += 1;
            for _ in 0..pops {
                let got = wheel.pop();
                let want = heap.pop().map(|(t, p)| (Time(t), p));
                prop_assert_eq!(got, want);
                prop_assert_eq!(wheel.now(), Time(heap.now));
            }
        }
        loop {
            let got = wheel.pop();
            let want = heap.pop().map(|(t, p)| (Time(t), p));
            prop_assert_eq!(got, want);
            prop_assert_eq!(wheel.now(), Time(heap.now));
            if got.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.processed(), id as u64);
    }

    /// Bursts of same-timestamp events pop in exact push order from both
    /// implementations, even when the shared timestamp sits near a level
    /// boundary or past the overflow horizon.
    #[test]
    fn tie_bursts_stay_fifo(
        bursts in prop::collection::vec((arb_delay(), 1usize..20), 1..30),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeap::new();
        let mut id: u32 = 0;
        for (delay, width) in bursts {
            let at = wheel.now() + Duration(delay);
            for _ in 0..width {
                wheel.push_at(at, id);
                heap.push_at(at.0, id);
                id += 1;
            }
            // Drain roughly half after each burst so later bursts land
            // both before and after pending ones.
            for _ in 0..(width / 2) {
                prop_assert_eq!(wheel.pop(), heap.pop().map(|(t, p)| (Time(t), p)));
            }
        }
        loop {
            let got = wheel.pop();
            prop_assert_eq!(got, heap.pop().map(|(t, p)| (Time(t), p)));
            if got.is_none() {
                break;
            }
        }
    }

    /// Release-mode clamp accounting matches the reference model: same
    /// count, same accumulated skew, and clamped events fire at `now` in
    /// push order. (In debug builds past pushes panic instead, so this
    /// property only compiles its body under `not(debug_assertions)`.)
    #[test]
    #[cfg(not(debug_assertions))]
    fn clamps_match_reference(
        jumps in prop::collection::vec((0u64..10_000, 0u64..15_000), 1..50),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeap::new();
        let mut id: u32 = 0;
        for (ahead, back) in jumps {
            // Advance the clock by popping an event `ahead` ns out, then
            // push `back` ns before the new now — clamped when back > 0.
            wheel.push_after(Duration(ahead), id);
            heap.push_at(heap.now + ahead, id);
            id += 1;
            prop_assert_eq!(wheel.pop(), heap.pop().map(|(t, p)| (Time(t), p)));
            let at = wheel.now().0.saturating_sub(back);
            wheel.push_at(Time(at), id);
            heap.push_at(at, id);
            id += 1;
        }
        loop {
            let got = wheel.pop();
            prop_assert_eq!(got, heap.pop().map(|(t, p)| (Time(t), p)));
            if got.is_none() {
                break;
            }
        }
        let s = wheel.clamp_stats();
        prop_assert_eq!(s.count, heap.clamps);
        prop_assert_eq!(s.total_skew, Duration(heap.total_skew));
    }
}
