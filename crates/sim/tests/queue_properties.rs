//! Property-based tests of the event queue's ordering guarantees.

use fusedpack_sim::{EventQueue, Time};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order, with FIFO tie-breaking.
    #[test]
    fn pops_are_ordered_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push_at(Time(t), (t, seq));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, seq))) = q.pop() {
            prop_assert_eq!(at, Time(t));
            if let Some((lt, lseq)) = last {
                prop_assert!(t > lt || (t == lt && seq > lseq),
                    "order violated: ({lt},{lseq}) then ({t},{seq})");
            }
            last = Some((t, seq));
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// Interleaved push/pop never lets the clock move backwards.
    #[test]
    fn clock_is_monotone_under_interleaving(
        ops in prop::collection::vec((0u64..100, any::<bool>()), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut last_now = Time::ZERO;
        for (delay, do_pop) in ops {
            q.push_after(fusedpack_sim::Duration(delay), ());
            if do_pop {
                q.pop();
                prop_assert!(q.now() >= last_now);
                last_now = q.now();
            }
        }
        while q.pop().is_some() {
            prop_assert!(q.now() >= last_now);
            last_now = q.now();
        }
    }
}
