//! Property tests for the slab allocator, mirroring the staging-pool
//! suite: recycling indices must never alias live entries, and the
//! occupancy accounting must stay exact under arbitrary interleavings.

use fusedpack_sim::Slab;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Under a random insert/remove interleaving, every live key reads
    /// back exactly the value stored under it — reused indices never
    /// alias an entry that is still live — and `len`/`high_water` match
    /// an exact model.
    #[test]
    fn reuse_never_aliases_live_entries(
        ops in prop::collection::vec((any::<bool>(), 0usize..16), 1..300),
    ) {
        let mut slab = Slab::new();
        let mut live: HashMap<u32, u64> = HashMap::new();
        let mut keys: Vec<u32> = Vec::new();
        let mut stamp: u64 = 0;
        let mut peak = 0usize;
        for (insert, pick) in ops {
            if insert || keys.is_empty() {
                stamp += 1;
                let key = slab.insert(stamp);
                // A fresh key must not collide with any live key.
                prop_assert!(live.insert(key, stamp).is_none(),
                    "slab handed out live key {key} twice");
                keys.push(key);
                peak = peak.max(live.len());
            } else {
                let key = keys.swap_remove(pick % keys.len());
                let want = live.remove(&key).expect("tracked key");
                prop_assert_eq!(slab.remove(key), want);
            }
            // Every live entry still reads back its own value.
            for (&k, &v) in &live {
                prop_assert_eq!(slab.get(k), Some(&v));
            }
            prop_assert_eq!(slab.len(), live.len());
        }
        prop_assert_eq!(slab.high_water() as usize, peak);
        // Backing storage never exceeded the live peak: churn was served
        // by recycling, not growth.
        prop_assert!(slab.capacity() <= peak);
    }

    /// Dead keys stay dead until reassigned: `get` returns None and
    /// `contains` is false right after removal, regardless of history.
    #[test]
    fn removed_keys_read_as_vacant(n in 1usize..50, remove_order in any::<u64>()) {
        let mut slab = Slab::new();
        let keys: Vec<u32> = (0..n as u64).map(|i| slab.insert(i)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        // Cheap deterministic shuffle driven by the seed.
        let mut s = remove_order | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        for &i in &order {
            let k = keys[i];
            prop_assert!(slab.contains(k));
            slab.remove(k);
            prop_assert!(!slab.contains(k));
            prop_assert_eq!(slab.get(k), None);
        }
        prop_assert!(slab.is_empty());
    }
}
