//! SPECFEM3D_GLOBE boundary-exchange layouts (sparse).
//!
//! SPECFEM3D simulates seismic wave propagation with spectral elements; the
//! boundary data it exchanges is a *gather of scattered grid points* —
//! ddtbench models it with `MPI_Type_indexed` over thousands of tiny
//! blocks. Two variants appear in the paper (§V-A):
//!
//! * `specfem3D_oc` — the outer-core field: plain indexed type over single
//!   floats (one value per boundary point);
//! * `specfem3D_cm` — the crust-mantle field: a struct-on-indexed layout
//!   (three displacement components per boundary point, gathered from
//!   separate field arrays).

use crate::{LayoutClass, Workload};
use fusedpack_datatype::TypeBuilder;
use fusedpack_sim::Pcg32;

/// Deterministic boundary-point displacement pattern: `n` strictly
/// increasing element displacements with irregular small gaps — the
/// signature of an unstructured spectral-element boundary.
fn boundary_displacements(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Pcg32::new(seed, 0x5eef);
    let mut disp = 0u64;
    (0..n)
        .map(|_| {
            let d = disp;
            // Gap of 2-4 elements between consecutive boundary points, so
            // blocks never abut (abutting blocks would coalesce and the
            // layout would lose its sparse character).
            disp += 2 + rng.next_below(3) as u64;
            d
        })
        .collect()
}

/// `specfem3D_oc`: indexed type over `points` single-float boundary values.
///
/// Sparse: `points` blocks of 4 bytes each. The paper's Fig. 12/13 x-axis
/// ("dimension size") maps to the boundary point count.
pub fn specfem3d_oc(points: u64) -> Workload {
    assert!(points >= 1);
    let disps = boundary_displacements(points, 0x0c);
    let desc = TypeBuilder::indexed_block(&disps, 1, TypeBuilder::float());
    Workload {
        name: "specfem3D_oc",
        class: LayoutClass::Sparse,
        desc,
        count: 1,
    }
}

/// `specfem3D_cm`: struct of three indexed fields (x/y/z displacement
/// components), each gathering `points` boundary values from its own field
/// array — the "struct-on-indexed" layout of §V-A.
pub fn specfem3d_cm(points: u64) -> Workload {
    assert!(points >= 1);
    let disps = boundary_displacements(points, 0xc3);
    let field = TypeBuilder::indexed_block(&disps, 1, TypeBuilder::float());
    // Field arrays are spaced by the footprint of one field.
    let field_extent = field.extent();
    let stride = (field_extent + 63) & !63;
    let desc = TypeBuilder::structure(&[
        (0, 1, field.clone()),
        (stride, 1, field.clone()),
        (2 * stride, 1, field),
    ]);
    Workload {
        name: "specfem3D_cm",
        class: LayoutClass::Sparse,
        desc,
        count: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oc_has_one_block_per_point() {
        let w = specfem3d_oc(1500);
        assert_eq!(w.blocks(), 1500);
        assert_eq!(w.packed_bytes(), 1500 * 4);
    }

    #[test]
    fn cm_triples_the_payload() {
        let w = specfem3d_cm(1000);
        assert_eq!(w.blocks(), 3000);
        assert_eq!(w.packed_bytes(), 3 * 1000 * 4);
    }

    #[test]
    fn displacements_are_strictly_increasing_and_deterministic() {
        let a = boundary_displacements(500, 7);
        let b = boundary_displacements(500, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn different_seeds_give_different_patterns() {
        assert_ne!(
            boundary_displacements(100, 1),
            boundary_displacements(100, 2)
        );
    }

    #[test]
    fn workloads_scale_with_points() {
        let small = specfem3d_oc(100);
        let large = specfem3d_oc(10_000);
        assert!(large.packed_bytes() > 50 * small.packed_bytes());
        assert!(
            large.footprint() > large.packed_bytes(),
            "gaps make footprint larger"
        );
    }
}
