//! 2-D/3-D stencil halo-exchange programs at cluster scale.
//!
//! Every rank owns one cell of a Cartesian grid and exchanges `n_msgs`
//! non-contiguous buffers with each face neighbor per iteration — the
//! neighbor pattern of Eijkhout's DDT study and LLNL Comb, and the shape
//! of the paper's §V-C stress test generalized from 2 ranks to thousands.
//! On a periodic (torus) grid every rank sends and receives
//! `2 × active_dims × n_msgs` messages per lap, which is what makes
//! shared fabric hops contend and the topology contrast visible.
//!
//! Tag scheme: a sender tags direction `d` traffic `d * n_msgs + i`; the
//! receiver posting toward its direction-`d'` neighbor listens for the tag
//! of the *opposite* direction (`d' ^ 1`). On a periodic dimension of
//! size 2 the +/- neighbors are the same rank, and the opposite-direction
//! tags are exactly what keeps those two streams apart.

use crate::Workload;
use fusedpack_gpu::DataMode;
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{AppOp, BufId, ClusterBuilder, Program, RankId, SchemeKind, TypeSlot};
use fusedpack_net::{FabricHealth, Platform, TopologyHandle};
use fusedpack_sim::{ClampStats, Duration, FaultPlan, FaultSummary};
use fusedpack_telemetry::Telemetry;

/// A Cartesian process grid. Dimensions of size 1 are inactive (a 2-D
/// grid is `[x, y, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct HaloGrid {
    pub dims: [u32; 3],
    /// Torus wrap-around. Non-periodic boundary ranks simply have fewer
    /// neighbors.
    pub periodic: bool,
}

impl HaloGrid {
    pub fn new_2d(x: u32, y: u32) -> Self {
        HaloGrid {
            dims: [x, y, 1],
            periodic: true,
        }
    }

    pub fn new_3d(x: u32, y: u32, z: u32) -> Self {
        HaloGrid {
            dims: [x, y, z],
            periodic: true,
        }
    }

    pub fn ranks(&self) -> u32 {
        self.dims.iter().product()
    }

    /// Row-major coordinates of a rank (x fastest).
    pub fn coords(&self, rank: u32) -> [u32; 3] {
        debug_assert!(rank < self.ranks());
        let [x, y, _] = self.dims;
        [rank % x, (rank / x) % y, rank / (x * y)]
    }

    pub fn rank_at(&self, c: [u32; 3]) -> u32 {
        let [x, y, _] = self.dims;
        c[0] + c[1] * x + c[2] * x * y
    }

    /// The face neighbor of `rank` along `dim` (`positive` picks the +
    /// face). `None` for inactive dimensions and non-periodic boundaries;
    /// never the rank itself.
    pub fn neighbor(&self, rank: u32, dim: usize, positive: bool) -> Option<u32> {
        let size = self.dims[dim];
        if size < 2 {
            return None;
        }
        let mut c = self.coords(rank);
        c[dim] = if positive {
            match (c[dim] + 1 < size, self.periodic) {
                (true, _) => c[dim] + 1,
                (false, true) => 0,
                (false, false) => return None,
            }
        } else {
            match (c[dim] > 0, self.periodic) {
                (true, _) => c[dim] - 1,
                (false, true) => size - 1,
                (false, false) => return None,
            }
        };
        Some(self.rank_at(c))
    }

    /// Active `(direction, neighbor)` pairs of a rank. Direction index:
    /// `dim * 2` for the negative face, `dim * 2 + 1` for the positive;
    /// `d ^ 1` is the opposite direction.
    pub fn neighbors(&self, rank: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for dim in 0..3 {
            for (bit, positive) in [(0u32, false), (1u32, true)] {
                if let Some(n) = self.neighbor(rank, dim, positive) {
                    out.push((dim as u32 * 2 + bit, n));
                }
            }
        }
        out
    }
}

/// Buffer handles of one rank's halo program (tests).
#[derive(Debug, Clone)]
pub struct HaloBuffers {
    /// `send[k][i]`: message `i` toward the k-th active neighbor.
    pub send: Vec<Vec<BufId>>,
    pub recv: Vec<Vec<BufId>>,
}

/// Build one program per rank of the grid: `laps` iterations of post all
/// receives, post all sends, `Waitall`.
pub fn halo_programs(
    grid: &HaloGrid,
    workload: &Workload,
    n_msgs: usize,
    laps: usize,
    seed_base: u64,
) -> Vec<(Program, HaloBuffers)> {
    assert!(n_msgs >= 1 && laps >= 1);
    assert!(grid.ranks() >= 2, "a halo needs at least two ranks");
    let buf_len = workload.footprint().max(1);
    let n = n_msgs as u32;

    (0..grid.ranks())
        .map(|rank| {
            let neighbors = grid.neighbors(rank);
            let mut p = Program::new();
            let send: Vec<Vec<BufId>> = neighbors
                .iter()
                .enumerate()
                .map(|(k, _)| {
                    (0..n_msgs)
                        .map(|i| {
                            p.buffer(
                                buf_len,
                                BufInit::Random(
                                    seed_base + (rank as u64 * 64 + k as u64) * 31 + i as u64,
                                ),
                            )
                        })
                        .collect()
                })
                .collect();
            let recv: Vec<Vec<BufId>> = neighbors
                .iter()
                .map(|_| {
                    (0..n_msgs)
                        .map(|_| p.buffer(buf_len, BufInit::Zero))
                        .collect()
                })
                .collect();
            p.push(AppOp::Commit {
                slot: TypeSlot(0),
                desc: workload.desc.clone(),
            });
            for _ in 0..laps {
                p.push(AppOp::ResetTimer);
                for (k, &(d, peer)) in neighbors.iter().enumerate() {
                    for (i, &rbuf) in recv[k].iter().enumerate() {
                        p.push(AppOp::Irecv {
                            buf: rbuf,
                            ty: TypeSlot(0),
                            count: workload.count,
                            src: RankId(peer),
                            // The peer sent this in the opposite direction.
                            tag: (d ^ 1) * n + i as u32,
                        });
                    }
                }
                for (k, &(d, peer)) in neighbors.iter().enumerate() {
                    for (i, &sbuf) in send[k].iter().enumerate() {
                        p.push(AppOp::Isend {
                            buf: sbuf,
                            ty: TypeSlot(0),
                            count: workload.count,
                            dst: RankId(peer),
                            tag: d * n + i as u32,
                        });
                    }
                }
                p.push(AppOp::Waitall);
                p.push(AppOp::RecordLap);
            }
            (p, HaloBuffers { send, recv })
        })
        .collect()
}

/// Configuration of one halo-exchange measurement.
#[derive(Clone)]
pub struct HaloConfig {
    pub platform: Platform,
    pub scheme: SchemeKind,
    pub workload: Workload,
    pub grid: HaloGrid,
    /// Buffers per neighbor per iteration.
    pub n_msgs: usize,
    pub warmup_laps: usize,
    pub measured_laps: usize,
    /// Route transfers through a topology; `None` runs the legacy flat
    /// model.
    pub topology: Option<TopologyHandle>,
    /// Worker shards for the event loop (clamped by the cluster; 1 =
    /// single-queue). Reports are byte-identical at any shard count —
    /// armed fault plans included.
    pub shards: u32,
    /// Fault plan armed on the cluster (the chaos harness). `None` runs
    /// fault-free.
    pub fault_plan: Option<FaultPlan>,
}

impl HaloConfig {
    pub fn new(
        platform: Platform,
        scheme: SchemeKind,
        workload: Workload,
        grid: HaloGrid,
        n_msgs: usize,
    ) -> Self {
        HaloConfig {
            platform,
            scheme,
            workload,
            grid,
            n_msgs,
            warmup_laps: 1,
            measured_laps: 1,
            topology: None,
            shards: 1,
            fault_plan: None,
        }
    }

    pub fn with_topology(mut self, topo: TopologyHandle) -> Self {
        self.topology = Some(topo);
        self
    }

    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Results of one halo measurement.
#[derive(Debug, Clone)]
pub struct HaloOutcome {
    /// Mean makespan of the measured iterations across all ranks.
    pub latency: Duration,
    pub lap_latencies: Vec<Duration>,
    /// Ranks that ran.
    pub ranks: u32,
    /// Simulation events processed (scale diagnostics).
    pub events: u64,
    /// Busiest hop's total occupancy (zero without a topology).
    pub busiest_hop_busy: Duration,
    /// Bytes summed over every hop of the topology (zero without one).
    pub hop_bytes: u64,
    /// Hop-level start-time order violations observed by the topology
    /// network (zero without one; must stay zero under sharding).
    pub order_violations: u64,
    /// Window barriers the sharded coordinator ran (zero single-queue).
    pub shard_barriers: u64,
}

/// Run one halo-exchange measurement.
pub fn run_halo(cfg: &HaloConfig) -> HaloOutcome {
    run_halo_with(cfg, None)
}

/// [`run_halo`] with a live telemetry recorder (reconciliation tests).
pub fn run_halo_traced(cfg: &HaloConfig, telemetry: &Telemetry) -> HaloOutcome {
    run_halo_with(cfg, Some(telemetry))
}

fn run_halo_with(cfg: &HaloConfig, telemetry: Option<&Telemetry>) -> HaloOutcome {
    let laps = cfg.warmup_laps + cfg.measured_laps;
    let programs = halo_programs(&cfg.grid, &cfg.workload, cfg.n_msgs, laps, 7);
    let gpus_per_node = cfg.platform.gpus_per_node.max(1);
    let mut builder = ClusterBuilder::new(cfg.platform.clone(), cfg.scheme.clone())
        .data_mode(DataMode::ModelOnly)
        .shards(cfg.shards);
    if let Some(topo) = &cfg.topology {
        builder = builder.topology(topo.clone());
    }
    if let Some(plan) = &cfg.fault_plan {
        builder = builder.fault_plan(plan.clone());
    }
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    for (rank, (program, _)) in programs.into_iter().enumerate() {
        builder = builder.add_rank(rank as u32 / gpus_per_node, program);
    }
    let mut cluster = builder.build();
    let report = cluster.run();

    let measured: Vec<Duration> = (cfg.warmup_laps..laps)
        .map(|i| report.lap_makespan(i))
        .collect();
    let mean = if measured.is_empty() {
        Duration::ZERO
    } else {
        measured.iter().copied().sum::<Duration>() / measured.len() as u64
    };
    let (busiest, bytes) = cluster
        .topo_hop_stats()
        .map(|stats| {
            (
                stats.iter().map(|h| h.busy).max().unwrap_or(Duration::ZERO),
                stats.iter().map(|h| h.bytes).sum(),
            )
        })
        .unwrap_or((Duration::ZERO, 0));

    HaloOutcome {
        latency: mean,
        lap_latencies: measured,
        ranks: cfg.grid.ranks(),
        events: report.events_processed,
        busiest_hop_busy: busiest,
        hop_bytes: bytes,
        order_violations: cluster.topo_order_violations().unwrap_or(0),
        shard_barriers: report.shard.barriers,
    }
}

/// Results of one fault-injected (or fault-free reference) halo run.
#[derive(Debug, Clone)]
pub struct HaloChaosOutcome {
    /// Mean makespan of the measured iterations.
    pub latency: Duration,
    /// What the fault plan did to this run (flat sites + forced
    /// deliveries).
    pub faults: FaultSummary,
    /// Fabric fault-domain accounting: per-hop injections, health
    /// transitions, reroutes, rail failovers, forced-delivery
    /// disconnects. All-zero without a topology or an armed fabric plan.
    pub fabric: FabricHealth,
    /// Past-event clamps the event queue repaired. Must be zero on the
    /// fault-free baseline.
    pub clamps: ClampStats,
    /// FNV-1a over every rank's receive buffers in (rank, neighbor,
    /// message) order — the end-to-end data-integrity fingerprint. A
    /// faulty run recovered correctly iff its checksum equals the
    /// fault-free baseline's.
    pub checksum: u64,
    /// Window barriers the sharded coordinator ran (zero single-queue).
    pub shard_barriers: u64,
}

/// Run one halo exchange with real bytes ([`DataMode::Full`]) under the
/// config's optional fault plan, returning latency plus integrity
/// evidence. The topo-chaos grid compares each cell's checksum against a
/// fault-free baseline run of the same config.
pub fn run_halo_chaos(cfg: &HaloConfig) -> HaloChaosOutcome {
    let laps = cfg.warmup_laps + cfg.measured_laps;
    let programs = halo_programs(&cfg.grid, &cfg.workload, cfg.n_msgs, laps, 7);
    let gpus_per_node = cfg.platform.gpus_per_node.max(1);
    let mut builder = ClusterBuilder::new(cfg.platform.clone(), cfg.scheme.clone())
        .data_mode(DataMode::Full)
        .shards(cfg.shards);
    if let Some(topo) = &cfg.topology {
        builder = builder.topology(topo.clone());
    }
    if let Some(plan) = &cfg.fault_plan {
        builder = builder.fault_plan(plan.clone());
    }
    let mut rbufs = Vec::new();
    for (rank, (program, bufs)) in programs.into_iter().enumerate() {
        builder = builder.add_rank(rank as u32 / gpus_per_node, program);
        rbufs.push(bufs.recv);
    }
    let mut cluster = builder.build();
    let report = cluster.run();

    let measured: Vec<Duration> = (cfg.warmup_laps..laps)
        .map(|i| report.lap_makespan(i))
        .collect();
    let mean = if measured.is_empty() {
        Duration::ZERO
    } else {
        measured.iter().copied().sum::<Duration>() / measured.len() as u64
    };

    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for (rank, neighbors) in rbufs.iter().enumerate() {
        for bufs in neighbors {
            for &buf in bufs {
                for byte in cluster.rank_buffer(RankId(rank as u32), buf) {
                    checksum ^= byte as u64;
                    checksum = checksum.wrapping_mul(0x0100_0000_01b3);
                }
            }
        }
    }

    HaloChaosOutcome {
        latency: mean,
        faults: report.fault_summary,
        fabric: report.fabric,
        clamps: report.event_clamps,
        checksum,
        shard_barriers: report.shard.barriers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfem::specfem3d_cm;
    use fusedpack_net::Hierarchy;
    use std::sync::Arc;

    #[test]
    fn torus_neighbors_are_complete_and_never_self() {
        let grid = HaloGrid::new_3d(4, 2, 2);
        for r in 0..grid.ranks() {
            let ns = grid.neighbors(r);
            assert_eq!(ns.len(), 6, "3 active dims, 2 faces each");
            assert!(ns.iter().all(|&(_, n)| n != r));
        }
        // Size-2 periodic dims fold both faces onto the same neighbor.
        let [_, dy, _] = grid.coords(0);
        assert_eq!(dy, 0);
        assert_eq!(
            grid.neighbor(0, 1, true),
            grid.neighbor(0, 1, false),
            "size-2 dim: +y and -y are the same rank"
        );
    }

    #[test]
    fn open_boundaries_trim_neighbor_lists() {
        let mut grid = HaloGrid::new_2d(3, 3);
        grid.periodic = false;
        // Corner rank: one +x and one +y neighbor only.
        assert_eq!(grid.neighbors(0).len(), 2);
        // Center rank keeps all four.
        assert_eq!(grid.neighbors(4).len(), 4);
        // z is inactive everywhere.
        assert!(grid.neighbor(4, 2, true).is_none());
    }

    #[test]
    fn coords_round_trip() {
        let grid = HaloGrid::new_3d(4, 3, 2);
        for r in 0..grid.ranks() {
            assert_eq!(grid.rank_at(grid.coords(r)), r);
        }
    }

    #[test]
    fn halo_runs_on_a_small_torus_and_matches_all_messages() {
        let cfg = HaloConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_cm(200),
            HaloGrid::new_3d(2, 2, 2),
            2,
        );
        let out = run_halo(&cfg);
        assert_eq!(out.ranks, 8);
        assert!(out.latency.as_nanos() > 0);
        assert_eq!(out.hop_bytes, 0, "no topology attached");
    }

    #[test]
    fn topology_attached_halo_accounts_hop_traffic() {
        let cfg = HaloConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_cm(200),
            HaloGrid::new_3d(2, 2, 2),
            1,
        )
        .with_topology(Arc::new(Hierarchy::lassen_like(2)));
        let out = run_halo(&cfg);
        assert!(out.hop_bytes > 0);
        assert!(out.busiest_hop_busy.as_nanos() > 0);
    }

    #[test]
    fn sharded_halo_matches_single_queue_exactly() {
        for topo in [false, true] {
            let mut cfg = HaloConfig::new(
                Platform::lassen(),
                SchemeKind::fusion_default(),
                specfem3d_cm(200),
                HaloGrid::new_3d(2, 2, 2),
                2,
            );
            if topo {
                cfg = cfg.with_topology(Arc::new(Hierarchy::lassen_like(2)));
            }
            let single = run_halo(&cfg);
            let sharded = run_halo(&cfg.clone().with_shards(2));
            assert!(sharded.shard_barriers > 0, "sharding engaged (topo={topo})");
            assert_eq!(single.latency, sharded.latency, "topo={topo}");
            assert_eq!(single.lap_latencies, sharded.lap_latencies, "topo={topo}");
            assert_eq!(single.events, sharded.events, "topo={topo}");
            assert_eq!(single.hop_bytes, sharded.hop_bytes, "topo={topo}");
            assert_eq!(
                single.busiest_hop_busy, sharded.busiest_hop_busy,
                "topo={topo}"
            );
            assert_eq!(sharded.order_violations, 0, "topo={topo}");
        }
    }
}
