//! Additional ddtbench-style workloads beyond the paper's four, for the
//! "more application workloads" direction its future-work section names.
//!
//! * **WRF** (Weather Research & Forecasting): halo slabs of a 3-D grid
//!   expressed as `MPI_Type_create_subarray` — dense, medium blocks.
//! * **LAMMPS** (molecular dynamics): per-atom property exchange gathered
//!   through index lists — sparse-ish with small fixed-size blocks.

use crate::{LayoutClass, Workload};
use fusedpack_datatype::TypeBuilder;
use fusedpack_sim::Pcg32;

/// WRF x-direction halo: a slab of thickness `halo` from an `n×n×n`
/// double-precision grid, as a 3-D subarray. The innermost dimension is
/// contiguous, so blocks are `n` doubles long.
pub fn wrf_x_slab(n: u64, halo: u64) -> Workload {
    assert!(n >= 2 && halo >= 1 && halo < n);
    Workload {
        name: "WRF_x",
        class: LayoutClass::Dense,
        desc: TypeBuilder::subarray(&[n, n, n], &[halo, n, n], &[0, 0, 0], TypeBuilder::double()),
        count: 1,
    }
}

/// WRF y-direction halo: interior slab along the middle dimension —
/// `n·halo` blocks of `n` contiguous doubles.
pub fn wrf_y_slab(n: u64, halo: u64) -> Workload {
    assert!(n >= 2 && halo >= 1 && halo < n);
    Workload {
        name: "WRF_y",
        class: LayoutClass::Dense,
        desc: TypeBuilder::subarray(&[n, n, n], &[n, halo, n], &[0, 0, 0], TypeBuilder::double()),
        count: 1,
    }
}

/// LAMMPS-style atom exchange: `atoms` boundary atoms, each contributing a
/// fixed-size property record (position + velocity + charge + type ≈ 8
/// doubles), gathered from an unsorted atom array via an index list.
pub fn lammps_full(atoms: u64) -> Workload {
    assert!(atoms >= 1);
    const DOUBLES_PER_ATOM: u64 = 8;
    // Deterministic irregular selection: every 2nd-4th atom is a boundary
    // atom.
    let mut rng = Pcg32::seeded(0x1a33);
    let mut disp = 0u64;
    let disps: Vec<u64> = (0..atoms)
        .map(|_| {
            let d = disp;
            disp += 2 + rng.next_below(3) as u64;
            d
        })
        .collect();
    let atom = TypeBuilder::contiguous(DOUBLES_PER_ATOM, TypeBuilder::double());
    Workload {
        name: "LAMMPS_full",
        class: LayoutClass::Sparse,
        desc: TypeBuilder::indexed_block(&disps, 1, atom),
        count: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_exchange, ExchangeConfig};
    use fusedpack_mpi::SchemeKind;
    use fusedpack_net::Platform;

    #[test]
    fn wrf_x_slab_is_one_contiguous_run_per_plane() {
        // Thickness-1 x-slab of a cube: one fully contiguous n*n plane.
        let w = wrf_x_slab(32, 1);
        assert_eq!(w.blocks(), 1, "innermost dims coalesce");
        assert_eq!(w.packed_bytes(), 32 * 32 * 8);
    }

    #[test]
    fn wrf_y_slab_has_one_block_per_outer_row() {
        let w = wrf_y_slab(16, 2);
        assert_eq!(w.blocks(), 16, "one run of halo*n per outer index");
        assert_eq!(w.packed_bytes(), 16 * 2 * 16 * 8);
    }

    #[test]
    fn lammps_records_are_fixed_size_blocks() {
        let w = lammps_full(500);
        assert_eq!(w.blocks(), 500);
        assert_eq!(w.packed_bytes(), 500 * 64);
        let avg = w.packed_bytes() / w.blocks();
        assert_eq!(avg, 64, "one 8-double record per boundary atom");
    }

    #[test]
    fn fusion_wins_bulk_on_both_new_workloads() {
        for w in [wrf_y_slab(32, 2), lammps_full(800)] {
            let fusion = run_exchange(&ExchangeConfig::new(
                Platform::lassen(),
                SchemeKind::fusion_default(),
                w.clone(),
                16,
            ));
            let sync = run_exchange(&ExchangeConfig::new(
                Platform::lassen(),
                SchemeKind::GpuSync,
                w.clone(),
                16,
            ));
            assert!(
                fusion.latency < sync.latency,
                "{}: {} vs {}",
                w.name,
                fusion.latency,
                sync.latency
            );
        }
    }

    #[test]
    fn lammps_generation_is_deterministic() {
        assert_eq!(lammps_full(100).desc, lammps_full(100).desc);
    }
}
