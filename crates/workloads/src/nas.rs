//! NAS MG face-exchange layouts (dense, vectors, large blocks).
//!
//! The NAS multigrid benchmark exchanges the six faces of a 3-D `n³`
//! double-precision grid. Depending on the face orientation the layout is
//! anywhere from fully contiguous to a strided vector:
//!
//! * **x face** (`i = const`): `n²` doubles, one contiguous slab;
//! * **y face** (`j = const`): `n` blocks of `n` doubles, stride `n²` —
//!   the classic dense vector the paper's NAS_MG workload uses;
//! * **z face** (`k = const`): `n²` blocks of a single double, stride `n` —
//!   the pathological fine-grained vector.

use crate::{LayoutClass, Workload};
use fusedpack_datatype::TypeBuilder;

/// Contiguous x-face of an `n³` grid of doubles.
pub fn nas_mg_x(n: u64) -> Workload {
    assert!(n >= 2);
    Workload {
        name: "NAS_MG_x",
        class: LayoutClass::Dense,
        desc: TypeBuilder::contiguous(n * n, TypeBuilder::double()),
        count: 1,
    }
}

/// Strided y-face: `n` blocks of `n` contiguous doubles, stride `n²` —
/// the paper's headline NAS workload (Fig. 12(d)/13(d)).
pub fn nas_mg_y(n: u64) -> Workload {
    assert!(n >= 2);
    Workload {
        name: "NAS_MG",
        class: LayoutClass::Dense,
        desc: TypeBuilder::vector(n, n, n * n, TypeBuilder::double()),
        count: 1,
    }
}

/// Fine-grained z-face: `n²` single-double blocks with stride `n`.
pub fn nas_mg_z(n: u64) -> Workload {
    assert!(n >= 2);
    Workload {
        name: "NAS_MG_z",
        class: LayoutClass::Dense,
        desc: TypeBuilder::vector(n * n, 1, n, TypeBuilder::double()),
        count: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_faces_move_the_same_bytes() {
        let n = 64;
        let (x, y, z) = (nas_mg_x(n), nas_mg_y(n), nas_mg_z(n));
        assert_eq!(x.packed_bytes(), n * n * 8);
        assert_eq!(x.packed_bytes(), y.packed_bytes());
        assert_eq!(y.packed_bytes(), z.packed_bytes());
    }

    #[test]
    fn block_granularity_ordering() {
        let n = 64;
        assert_eq!(nas_mg_x(n).blocks(), 1);
        assert_eq!(nas_mg_y(n).blocks(), n);
        assert_eq!(nas_mg_z(n).blocks(), n * n);
    }

    #[test]
    fn y_face_blocks_are_fat() {
        let w = nas_mg_y(256);
        let avg = w.packed_bytes() / w.blocks();
        assert_eq!(avg, 256 * 8, "each block is one grid line");
        // Large dimension: megabyte-scale messages (Fig. 12(d) right edge).
        assert!(w.packed_bytes() >= 512 * 1024);
    }
}
