//! # fusedpack-workloads
//!
//! The application kernels of the paper's evaluation (§V-A), re-created in
//! the style of ddtbench \[32\] and LLNL Comb \[33\]:
//!
//! * [`specfem::specfem3d_oc`] — `MPI_Type_indexed`, *sparse* (thousands of
//!   tiny blocks), Geophysical Science;
//! * [`specfem::specfem3d_cm`] — struct-on-indexed, *sparse*, Geophysics;
//! * [`milc::milc_su3_zdown`] — nested vectors, *dense* (small/medium
//!   blocks), Quantum Chromodynamics;
//! * [`nas::nas_mg_y`] (and x/z faces) — vectors, *dense* (large blocks),
//!   Fluid Dynamics.
//!
//! Plus the communication drivers: [`bulk::bulk_exchange_programs`] (N buffers per
//! neighbor, Figs. 9/10), the 3-D halo exchange with 32 non-blocking
//! operations (Figs. 12/13), and [`driver::run_exchange`], the single entry
//! point the benchmark harness uses.

pub mod approaches;
pub mod bulk;
pub mod driver;
pub mod extra;
pub mod halo;
pub mod milc;
pub mod nas;
pub mod serve;
pub mod specfem;

pub use bulk::{bulk_exchange_programs, phase_shift_programs};
pub use driver::{
    run_exchange, run_exchange_chaos, run_exchange_traced, run_phase_shift, run_phase_shift_traced,
    ChaosOutcome, ExchangeConfig, ExchangeOutcome, PhaseShiftOutcome,
};
pub use halo::{
    run_halo, run_halo_chaos, run_halo_traced, HaloChaosOutcome, HaloConfig, HaloGrid, HaloOutcome,
};
pub use serve::{run_serve, ServeConfig, ServeOutcome};

use fusedpack_datatype::TypeDesc;
use std::sync::Arc;

/// Sparse vs. dense, as the paper classifies its workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutClass {
    /// "more than thousands of small blocks" (indexed, struct-on-indexed).
    Sparse,
    /// "less than thousand of blocks" (vector, nested vector).
    Dense,
}

/// One benchmark workload: a datatype, an element count, and metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub class: LayoutClass,
    pub desc: Arc<TypeDesc>,
    pub count: u64,
}

impl Workload {
    /// Packed payload bytes per message.
    pub fn packed_bytes(&self) -> u64 {
        self.desc.size() * self.count
    }

    /// Contiguous blocks per message (before coalescing).
    pub fn blocks(&self) -> u64 {
        fusedpack_datatype::Layout::of(&self.desc).total_blocks(self.count)
    }

    /// Memory footprint of one message's user buffer.
    pub fn footprint(&self) -> u64 {
        fusedpack_datatype::Layout::of(&self.desc).footprint(self.count)
    }

    /// Average contiguous-block size in bytes — the input of
    /// [`fusedpack_core::predict_threshold`] (`reproduce --threshold auto`).
    pub fn avg_block_bytes(&self) -> f64 {
        self.packed_bytes() as f64 / self.blocks().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_classes_match_paper_taxonomy() {
        // Sparse workloads: thousands of blocks; dense: under a thousand.
        let oc = specfem::specfem3d_oc(4000);
        assert_eq!(oc.class, LayoutClass::Sparse);
        assert!(oc.blocks() >= 1000, "{} blocks", oc.blocks());

        let cm = specfem::specfem3d_cm(2000);
        assert_eq!(cm.class, LayoutClass::Sparse);
        assert!(cm.blocks() >= 1000);

        let milc = milc::milc_su3_zdown(8);
        assert_eq!(milc.class, LayoutClass::Dense);
        assert!(milc.blocks() < 1000, "{} blocks", milc.blocks());

        let nas = nas::nas_mg_y(128);
        assert_eq!(nas.class, LayoutClass::Dense);
        assert!(nas.blocks() < 1000);
    }

    #[test]
    fn sparse_blocks_are_small_dense_blocks_are_big() {
        let oc = specfem::specfem3d_oc(2000);
        let nas = nas::nas_mg_y(128);
        let oc_avg = oc.packed_bytes() as f64 / oc.blocks() as f64;
        let nas_avg = nas.packed_bytes() as f64 / nas.blocks() as f64;
        assert!(oc_avg < 64.0, "sparse avg block {oc_avg}B");
        assert!(nas_avg > 512.0, "dense avg block {nas_avg}B");
    }
}
