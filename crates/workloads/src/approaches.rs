//! The three ways to move non-contiguous GPU data with MPI (paper §III):
//!
//! * **Algorithm 1** — MPI-level *explicit* pack/unpack: blocking
//!   `MPI_Pack` per buffer, contiguous sends, blocking `MPI_Unpack` after
//!   the waitall. Synchronizes at every kernel boundary.
//! * **Algorithm 2** — *application-level* pack/unpack: the application
//!   launches its own asynchronous kernels and synchronizes once
//!   (`cudaDeviceSynchronize`) before communicating. More code, one sync.
//! * **Algorithm 3** — MPI-level *implicit*: pass the derived datatype
//!   straight to `Isend`/`Irecv` and let the runtime schedule the
//!   processing — the approach the paper's fusion framework accelerates.
//!
//! Each builder returns the two symmetric rank programs for a bulk
//! exchange of `n_msgs` buffers each way.

use crate::Workload;
use fusedpack_datatype::TypeBuilder;
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{AppOp, BufId, Program, RankId, TypeSlot};

/// Buffer handles for verification.
pub struct ApproachBuffers {
    pub recv_user: Vec<BufId>,
}

fn declare_bufs(
    p: &mut Program,
    workload: &Workload,
    n_msgs: usize,
    seed: u64,
    explicit: bool,
) -> (Vec<BufId>, Vec<BufId>, Vec<BufId>, Vec<BufId>) {
    let len = workload.footprint().max(1);
    let packed = workload.packed_bytes().max(1);
    let send_user: Vec<BufId> = (0..n_msgs)
        .map(|i| p.buffer(len, BufInit::Random(seed + i as u64)))
        .collect();
    let recv_user: Vec<BufId> = (0..n_msgs).map(|_| p.buffer(len, BufInit::Zero)).collect();
    let (send_packed, recv_packed) = if explicit {
        (
            (0..n_msgs)
                .map(|_| p.buffer(packed, BufInit::Zero))
                .collect(),
            (0..n_msgs)
                .map(|_| p.buffer(packed, BufInit::Zero))
                .collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    (send_user, recv_user, send_packed, recv_packed)
}

/// Algorithm 1: MPI-level explicit pack/unpack.
pub fn algorithm1_programs(
    workload: &Workload,
    n_msgs: usize,
    seed: u64,
) -> (Program, Program, ApproachBuffers) {
    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let (send_user, recv_user, send_packed, recv_packed) =
            declare_bufs(&mut p, workload, n_msgs, seed, true);
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: workload.desc.clone(),
        });
        p.push(AppOp::Commit {
            slot: TypeSlot(1),
            desc: TypeBuilder::contiguous(workload.packed_bytes().max(1), TypeBuilder::byte()),
        });
        p.push(AppOp::ResetTimer);
        for (i, &b) in recv_packed.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: b,
                ty: TypeSlot(1),
                count: 1,
                src: peer,
                tag: i as u32,
            });
        }
        for i in 0..n_msgs {
            // Blocking MPI_Pack, then send the packed (contiguous) buffer.
            p.push(AppOp::Pack {
                src: send_user[i],
                ty: TypeSlot(0),
                count: workload.count,
                dst: send_packed[i],
            });
            p.push(AppOp::Isend {
                buf: send_packed[i],
                ty: TypeSlot(1),
                count: 1,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        for i in 0..n_msgs {
            p.push(AppOp::Unpack {
                src: recv_packed[i],
                ty: TypeSlot(0),
                count: workload.count,
                dst: recv_user[i],
            });
        }
        p.push(AppOp::RecordLap);
        (p, ApproachBuffers { recv_user })
    };
    let (p0, _) = build(seed, RankId(1));
    let (p1, bufs1) = build(seed + 1000, RankId(0));
    (p0, p1, bufs1)
}

/// Algorithm 2: application-level explicit pack/unpack, one sync each way.
pub fn algorithm2_programs(
    workload: &Workload,
    n_msgs: usize,
    seed: u64,
) -> (Program, Program, ApproachBuffers) {
    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let (send_user, recv_user, send_packed, recv_packed) =
            declare_bufs(&mut p, workload, n_msgs, seed, true);
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: workload.desc.clone(),
        });
        p.push(AppOp::Commit {
            slot: TypeSlot(1),
            desc: TypeBuilder::contiguous(workload.packed_bytes().max(1), TypeBuilder::byte()),
        });
        p.push(AppOp::ResetTimer);
        // Launch every packing kernel asynchronously...
        for i in 0..n_msgs {
            p.push(AppOp::PackAsync {
                src: send_user[i],
                ty: TypeSlot(0),
                count: workload.count,
                dst: send_packed[i],
            });
        }
        // ...one synchronization at the kernel boundary...
        p.push(AppOp::DeviceSync);
        // ...then communicate the contiguous buffers.
        for (i, &b) in recv_packed.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: b,
                ty: TypeSlot(1),
                count: 1,
                src: peer,
                tag: i as u32,
            });
        }
        for (i, &b) in send_packed.iter().enumerate() {
            p.push(AppOp::Isend {
                buf: b,
                ty: TypeSlot(1),
                count: 1,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        for i in 0..n_msgs {
            p.push(AppOp::UnpackAsync {
                src: recv_packed[i],
                ty: TypeSlot(0),
                count: workload.count,
                dst: recv_user[i],
            });
        }
        p.push(AppOp::DeviceSync);
        p.push(AppOp::RecordLap);
        (p, ApproachBuffers { recv_user })
    };
    let (p0, _) = build(seed, RankId(1));
    let (p1, bufs1) = build(seed + 1000, RankId(0));
    (p0, p1, bufs1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfem::specfem3d_cm;
    use fusedpack_datatype::Layout;
    use fusedpack_gpu::DataMode;
    use fusedpack_mpi::{ClusterBuilder, SchemeKind};
    use fusedpack_net::Platform;
    use fusedpack_sim::{Duration, Pcg32};

    fn run(
        programs: (Program, Program, ApproachBuffers),
        scheme: SchemeKind,
        workload: &Workload,
        seed: u64,
    ) -> Duration {
        let (p0, p1, bufs1) = programs;
        let mut cluster = ClusterBuilder::new(Platform::lassen(), scheme)
            .data_mode(DataMode::Full)
            .add_rank(0, p0)
            .add_rank(1, p1)
            .build();
        let report = cluster.run();
        // Verify rank 1 received rank 0's data.
        let layout = Layout::of(&workload.desc);
        let len = workload.footprint().max(1);
        for (i, &rbuf) in bufs1.recv_user.iter().enumerate() {
            let got = cluster.rank_buffer(fusedpack_mpi::RankId(1), rbuf);
            let mut want = vec![0u8; len as usize];
            Pcg32::new(seed + i as u64, 0).fill_bytes(&mut want);
            for (addr, seg_len) in layout.absolute_segments(0, workload.count) {
                let (a, b) = (addr as usize, (addr + seg_len) as usize);
                assert_eq!(&got[a..b], &want[a..b], "msg {i} segment {addr}");
            }
        }
        report.lap_makespan(0)
    }

    #[test]
    fn all_three_approaches_move_correct_bytes() {
        let w = specfem3d_cm(600);
        let n = 8;
        let a1 = run(algorithm1_programs(&w, n, 40), SchemeKind::GpuSync, &w, 40);
        let a2 = run(algorithm2_programs(&w, n, 40), SchemeKind::GpuSync, &w, 40);
        // Algorithm 2's single sync beats Algorithm 1's per-call syncs.
        assert!(a2 < a1, "app-level {a2} should beat MPI-explicit {a1}");
    }

    #[test]
    fn implicit_with_fusion_beats_both_explicit_approaches() {
        let w = specfem3d_cm(600);
        let n = 8;
        let a1 = run(algorithm1_programs(&w, n, 41), SchemeKind::GpuSync, &w, 41);
        let a2 = run(algorithm2_programs(&w, n, 41), SchemeKind::GpuSync, &w, 41);
        let ((p0, _), (p1, b1)) = crate::bulk::bulk_exchange_programs(&w, n, 1, 41);
        let a3 = {
            let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
                .data_mode(DataMode::Full)
                .add_rank(0, p0)
                .add_rank(1, p1)
                .build();
            let report = cluster.run();
            let _ = b1;
            report.lap_makespan(0)
        };
        assert!(a3 < a2, "implicit+fusion {a3} should beat app-level {a2}");
        assert!(
            a3 < a1,
            "implicit+fusion {a3} should beat MPI-explicit {a1}"
        );
    }
}
